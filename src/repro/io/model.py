"""Serialization of fitted CP models (Kruskal tensors)."""

from __future__ import annotations

import os

import numpy as np

from ..core.dtypes import VALUE_DTYPE
from ..core.kruskal import KruskalTensor


def save_model(model: KruskalTensor, path) -> None:
    """Write a Kruskal model to a compressed ``.npz``.

    Layout: ``weights`` plus ``factor_0 .. factor_{N-1}``; loadable by
    :func:`load_model` and by plain ``np.load`` from other tools.
    """
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    arrays = {"weights": model.weights}
    for n, U in enumerate(model.factors):
        arrays[f"factor_{n}"] = U
    np.savez_compressed(path, **arrays)


def load_model(path) -> KruskalTensor:
    """Load a Kruskal model saved by :func:`save_model`."""
    with np.load(path) as data:
        if "weights" not in data:
            raise ValueError(f"{path}: missing 'weights' array")
        factors = []
        n = 0
        while f"factor_{n}" in data:
            factors.append(data[f"factor_{n}"].astype(VALUE_DTYPE))
            n += 1
        if not factors:
            raise ValueError(f"{path}: no factor_<n> arrays found")
        return KruskalTensor(
            data["weights"].astype(VALUE_DTYPE), factors, copy=False
        )
