"""Binary tensor cache (``.npz``): fast reload of generated datasets."""

from __future__ import annotations

import os

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import INDEX_DTYPE, VALUE_DTYPE


def save_npz(tensor: CooTensor, path) -> None:
    """Save a tensor's coordinate block, values, and shape."""
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(
        path,
        idx=tensor.idx,
        vals=tensor.vals,
        shape=np.asarray(tensor.shape, dtype=INDEX_DTYPE),
    )


def load_npz(path) -> CooTensor:
    """Load a tensor saved by :func:`save_npz`."""
    with np.load(path) as data:
        for key in ("idx", "vals", "shape"):
            if key not in data:
                raise ValueError(f"{path}: missing array {key!r}")
        return CooTensor(
            data["idx"].astype(INDEX_DTYPE),
            data["vals"].astype(VALUE_DTYPE),
            tuple(int(s) for s in data["shape"]),
        )


def cached_dataset(name: str, cache_dir, *, scale: float = 1.0) -> CooTensor:
    """Load a registry dataset through an on-disk cache."""
    from ..synth.datasets import load_dataset

    os.makedirs(cache_dir, exist_ok=True)
    fname = f"{name}_scale{scale:g}.npz"
    path = os.path.join(os.fspath(cache_dir), fname)
    if os.path.exists(path):
        return load_npz(path)
    tensor = load_dataset(name, scale=scale)
    save_npz(tensor, path)
    return tensor
