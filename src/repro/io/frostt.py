"""FROSTT ``.tns`` text format: read/write sparse tensors.

The FROSTT interchange format is one nonzero per line — ``N`` 1-based
coordinates followed by the value — with ``#`` comments.  ``.gz`` paths are
transparently (de)compressed.
"""

from __future__ import annotations

import gzip
import io
import os
from typing import Sequence

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import INDEX_DTYPE, VALUE_DTYPE


def _open(path, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def _read_rows(path) -> np.ndarray | None:
    """Parse the numeric rows of a ``.tns`` file; None if there are none.

    Fast path: ``np.loadtxt`` over the whole file (C-speed parsing).  On a
    shape mismatch (ragged rows) we re-parse line by line to raise an error
    that names the offending line.
    """
    import warnings

    with _open(path, "r") as fh:
        try:
            with warnings.catch_warnings():
                # An all-comment file is a legitimate empty tensor.
                warnings.simplefilter("ignore", UserWarning)
                data = np.loadtxt(fh, comments=["#", "%"], ndmin=2,
                                  dtype=np.float64)
        except ValueError:
            data = None
    if data is not None:
        return data if data.size else None
    # Slow path, for diagnostics only.
    ncols: int | None = None
    rows: list[list[float]] = []
    with _open(path, "r") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if ncols is None:
                ncols = len(parts)
            elif len(parts) != ncols:
                raise ValueError(
                    f"{path}:{lineno}: expected {ncols} fields, got "
                    f"{len(parts)}"
                )
            try:
                rows.append([float(p) for p in parts])
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
    if not rows:
        return None
    return np.asarray(rows, dtype=np.float64)


def read_tns(path, *, shape: Sequence[int] | None = None) -> CooTensor:
    """Read a ``.tns``/``.tns.gz`` file.

    ``shape`` overrides the inferred mode sizes (which default to the
    per-mode maximum coordinate).
    """
    data = _read_rows(path)
    if data is None:
        if shape is None:
            raise ValueError(f"{path}: empty tensor file and no shape given")
        return CooTensor.empty(shape)
    if data.shape[1] < 2:
        raise ValueError(f"{path}: need >= 1 coordinate column + a value")
    idx = data[:, :-1].astype(INDEX_DTYPE) - 1  # 1-based on disk
    vals = data[:, -1].astype(VALUE_DTYPE)
    if (idx < 0).any():
        raise ValueError(f"{path}: coordinates must be 1-based positive")
    if shape is None:
        shape = tuple(int(m) + 1 for m in idx.max(axis=0))
    return CooTensor(idx, vals, shape, copy=False)


def write_tns(tensor: CooTensor, path) -> None:
    """Write a tensor in FROSTT format (1-based coordinates)."""
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with _open(path, "w") as fh:
        fh.write(f"# shape: {' '.join(map(str, tensor.shape))}\n")
        buf = io.StringIO()
        one_based = tensor.idx + 1
        for row, val in zip(one_based, tensor.vals.tolist()):
            buf.write(" ".join(map(str, row.tolist())))
            # repr of a Python float round-trips exactly.
            buf.write(f" {val!r}\n")
        fh.write(buf.getvalue())
