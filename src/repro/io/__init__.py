"""Tensor I/O: FROSTT text format, binary caching, model serialization."""

from .cache import cached_dataset, load_npz, save_npz
from .frostt import read_tns, write_tns
from .model import load_model, save_model

__all__ = ["cached_dataset", "load_npz", "save_npz", "read_tns",
           "write_tns", "load_model", "save_model"]
