"""Lightweight wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating stopwatch usable as a context manager."""

    elapsed: float = 0.0
    laps: list = field(default_factory=list)
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    @property
    def mean(self) -> float:
        return self.elapsed / len(self.laps) if self.laps else 0.0

    @property
    def best(self) -> float:
        return min(self.laps) if self.laps else 0.0


def time_callable(fn, *, repeats: int = 3, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` after ``warmup`` calls."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best
