"""Instrumentation: operation counters and timers."""

from .counters import Counters, active_counters, counting, record
from .timer import Timer, time_callable

__all__ = ["Counters", "active_counters", "counting", "record", "Timer", "time_callable"]
