"""Operation counters: measured work, for validating the cost model.

The analytic performance model (:mod:`repro.model.cost`) *predicts* flops and
memory words; the engine *counts* the same events as it executes.  Agreement
between the two is a tested invariant, which is what licenses using the model
to pick strategies without running them.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Counters:
    """Accumulated work counters.

    Attributes
    ----------
    flops: Hadamard-product and reduction flop events (see
        :func:`repro.model.cost.contraction_flops` for the exact convention).
    words: value words moved (gathers + value-matrix reads/writes).
    contractions: single-mode tensor-times-matrix contraction count.
    node_builds: intermediate-tensor rebuild count.
    mttkrps: completed MTTKRP calls.
    """

    flops: int = 0
    words: int = 0
    contractions: int = 0
    node_builds: int = 0
    mttkrps: int = 0
    extra: dict = field(default_factory=dict)

    def add(self, other: "Counters") -> None:
        self.flops += other.flops
        self.words += other.words
        self.contractions += other.contractions
        self.node_builds += other.node_builds
        self.mttkrps += other.mttkrps
        for k, v in other.extra.items():
            self.extra[k] = self.extra.get(k, 0) + v

    def reset(self) -> None:
        self.flops = 0
        self.words = 0
        self.contractions = 0
        self.node_builds = 0
        self.mttkrps = 0
        self.extra.clear()

    def snapshot(self) -> dict:
        out = {
            "flops": self.flops,
            "words": self.words,
            "contractions": self.contractions,
            "node_builds": self.node_builds,
            "mttkrps": self.mttkrps,
        }
        out.update(self.extra)
        return out

    def __repr__(self) -> str:
        return f"Counters({self.snapshot()})"


_active: contextvars.ContextVar[Counters | None] = contextvars.ContextVar(
    "repro_active_counters", default=None
)


def active_counters() -> Counters | None:
    """The counters installed by the innermost :func:`counting` context."""
    return _active.get()


@contextmanager
def counting(counters: Counters | None = None):
    """Context manager installing ``counters`` as the active sink.

    Usage::

        with counting() as c:
            engine.mttkrp(0)
        print(c.flops)
    """
    counters = counters if counters is not None else Counters()
    token = _active.set(counters)
    try:
        yield counters
    finally:
        _active.reset(token)


def record(**events) -> None:
    """Add events to the active counters, if any (no-op otherwise)."""
    c = _active.get()
    if c is None:
        return
    for name, value in events.items():
        if hasattr(c, name) and name != "extra":
            setattr(c, name, getattr(c, name) + value)
        else:
            c.extra[name] = c.extra.get(name, 0) + value
