"""Reusable scratch buffers for the numeric phase.

Every node rebuild needs one or two ``(rows, R)`` temporaries (the running
Hadamard product and a gather scratch).  Allocating them fresh each rebuild
costs a page-faulting pass over memory that dwarfs the arithmetic for large
nodes; a :class:`WorkspaceArena` hands out slices of buffers that persist
across rebuilds and iterations, so steady-state CP-ALS performs zero large
allocations in the kernel layer.

Buffers are held per *thread* (the parallel engine's workers each get their
own set), so a single arena can be shared by an engine and its thread pool
without locking.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.dtypes import VALUE_DTYPE


def _round_up_rows(rows: int) -> int:
    """Round a row request up to the next power of two (bounded waste,
    few reallocations as node sizes vary)."""
    cap = 1024
    while cap < rows:
        cap *= 2
    return cap


class WorkspaceArena:
    """Named, growable scratch buffers with per-thread isolation.

    ``request(slot, rows, cols)`` returns a C-contiguous ``(rows, cols)``
    view of a cached buffer, reallocating only when the cached capacity is
    exceeded or the column count changes.  Contents are unspecified — callers
    must fully overwrite what they read.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._all_slots: list[dict[str, np.ndarray]] = []
        self._all_slots_lock = threading.Lock()

    def _slots(self) -> dict[str, np.ndarray]:
        slots = getattr(self._local, "slots", None)
        if slots is None:
            slots = {}
            self._local.slots = slots
            with self._all_slots_lock:
                self._all_slots.append(slots)
        return slots

    def request(self, slot: str, rows: int, cols: int) -> np.ndarray:
        """A writable ``(rows, cols)`` scratch view for this thread."""
        slots = self._slots()
        buf = slots.get(slot)
        if buf is None or buf.shape[0] < rows or buf.shape[1] != cols:
            buf = np.empty((_round_up_rows(rows), cols), dtype=VALUE_DTYPE)
            slots[slot] = buf
        return buf[:rows]

    def nbytes(self) -> int:
        """Total bytes currently held across all threads' buffers."""
        with self._all_slots_lock:
            return sum(
                buf.nbytes for slots in self._all_slots for buf in slots.values()
            )

    def clear(self) -> None:
        """Drop every cached buffer (all threads)."""
        with self._all_slots_lock:
            for slots in self._all_slots:
                slots.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WorkspaceArena(nbytes={self.nbytes()})"
