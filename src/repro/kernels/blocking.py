"""Cache-blocked execution: segment-aligned blocks and a block-size tuner.

The fused gather → Hadamard → segmented-sum pipeline streams ``(nnz, R)``
scratch; for large nodes those temporaries spill every cache level and each
numpy pass pays full memory bandwidth.  Processing sources in segment-aligned
blocks keeps the running product cache-resident between passes, which is
where the multi-pass numpy formulation recovers most of what a truly fused
loop would win.

Blocks always end on segment boundaries, so per-block ``np.add.reduceat``
results are bitwise identical to the unblocked reduction.

Block size resolution order:

1. ``REPRO_KERNEL_BLOCK`` environment variable (``0`` disables blocking);
2. a cached :func:`autotune_block_rows` measurement for the rank
   (run explicitly, or lazily when ``REPRO_KERNEL_AUTOTUNE=1``);
3. a cache-capacity heuristic (:func:`default_block_rows`).
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..core.dtypes import VALUE_DTYPE

#: candidate block sizes (rows) swept by the auto-tuner; 0 = unblocked.
CANDIDATE_BLOCK_ROWS: tuple[int, ...] = (2048, 4096, 8192, 16384, 32768, 65536)

#: scratch working set targeted by the heuristic (≈ per-core L2 capacity).
_TARGET_WORKING_SET = 2 * 1024 * 1024

#: rank -> tuned block rows, filled by :func:`autotune_block_rows`.
_TUNED: dict[int, int] = {}


def default_block_rows(rank: int) -> int:
    """Heuristic block size: two ``(rows, R)`` scratch buffers plus the
    output stream should fit the target working set."""
    rows = _TARGET_WORKING_SET // (max(rank, 1) * np.dtype(VALUE_DTYPE).itemsize * 3)
    return int(min(max(rows, 1024), 1 << 18))


def resolve_block_rows(rank: int) -> int:
    """The block size the numpy kernel should use for ``rank`` (0 = unblocked)."""
    env = os.environ.get("REPRO_KERNEL_BLOCK")
    if env is not None and env.strip():
        return max(0, int(env))
    tuned = _TUNED.get(rank)
    if tuned is not None:
        return tuned
    if os.environ.get("REPRO_KERNEL_AUTOTUNE", "").strip() == "1":
        return autotune_block_rows(rank)
    return default_block_rows(rank)


def clear_tuning_cache() -> None:
    _TUNED.clear()


def autotune_block_rows(
    rank: int,
    candidates: tuple[int, ...] = CANDIDATE_BLOCK_ROWS,
    *,
    sample_rows: int = 1 << 18,
    mean_segment: int = 4,
    repeats: int = 3,
    random_state: int = 0,
) -> int:
    """Pick a block size by timing the pipeline on synthetic data.

    Runs the gather → Hadamard → ``reduceat`` sequence the numpy kernel
    executes, at each candidate block size, and caches the fastest.  The
    synthetic workload (one factor gather, one value multiply, segments of
    ``mean_segment`` average length) matches a typical leaf rebuild.
    """
    rng = np.random.default_rng(random_state)
    n_rows = max(int(sample_rows), max(candidates) if candidates else 1)
    factor = rng.random((50_000, rank))
    gather_idx = rng.integers(0, factor.shape[0], n_rows).astype(np.intp)
    svals = rng.random(n_rows)
    starts = np.flatnonzero(rng.random(n_rows) < 1.0 / mean_segment).astype(np.intp)
    if starts.size == 0 or starts[0] != 0:
        starts = np.concatenate(([0], starts[starts > 0])).astype(np.intp)
    out = np.empty((starts.size, rank), dtype=VALUE_DTYPE)
    prod = np.empty((n_rows, rank), dtype=VALUE_DTYPE)

    def run(block_rows: int) -> None:
        for lo, hi, seg_lo, seg_hi, lstarts in segment_blocks(
            starts, n_rows, block_rows
        ):
            p = prod[: hi - lo]
            np.take(factor, gather_idx[lo:hi], axis=0, out=p, mode="clip")
            np.multiply(p, svals[lo:hi, None], out=p)
            np.add.reduceat(p, lstarts, axis=0, out=out[seg_lo:seg_hi])

    best_rows, best_time = 0, float("inf")
    for block_rows in (0,) + tuple(candidates):
        run(block_rows)  # warm-up (and first-touch of the buffers)
        elapsed = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            run(block_rows)
            elapsed = min(elapsed, time.perf_counter() - t0)
        if elapsed < best_time:
            best_rows, best_time = block_rows, elapsed
    _TUNED[rank] = best_rows
    return best_rows


def segment_blocks(
    starts: np.ndarray,
    n_sources: int,
    block_rows: int,
    *,
    seg_lo: int = 0,
    seg_hi: int | None = None,
):
    """Yield ``(src_lo, src_hi, seg_lo, seg_hi, local_starts)`` blocks.

    Each block covers whole segments and at most ``block_rows`` source rows
    (more only when a single segment alone exceeds ``block_rows``).
    ``block_rows <= 0`` yields the whole range as one block.  ``seg_lo`` /
    ``seg_hi`` restrict to a segment sub-range (the parallel engine's
    chunks); ``local_starts`` are the block's ``reduceat`` offsets relative
    to ``src_lo``.
    """
    n_segments = starts.shape[0] if seg_hi is None else seg_hi
    if seg_lo >= n_segments:
        return
    end_src = (
        n_sources if n_segments == starts.shape[0] else int(starts[n_segments])
    )
    if block_rows <= 0:
        lo = int(starts[seg_lo])
        yield lo, end_src, seg_lo, n_segments, starts[seg_lo:n_segments] - lo
        return
    seg = seg_lo
    while seg < n_segments:
        lo = int(starts[seg])
        nxt = int(np.searchsorted(starts[:n_segments], lo + block_rows, side="right")) - 1
        if nxt <= seg:
            nxt = seg + 1  # one oversized segment: take it whole
        hi = int(starts[nxt]) if nxt < n_segments else end_src
        yield lo, hi, seg, nxt, starts[seg:nxt] - lo
        seg = nxt
