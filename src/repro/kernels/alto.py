"""ALTO-style adaptive linearized layout: one bit-packed index per nonzero.

The COO and kernel-index layouts keep one int64 per (nonzero, mode): an
order-N tensor pays N index words per nonzero per MTTKRP, and a memoized
node with d delta modes keeps d flat gather arrays.  ALTO (Laukemann et
al., see PAPERS.md) observes that the whole coordinate tuple fits in *one*
machine word when ``sum(ceil(log2(I_m)))`` bits fit: pack every mode into
a disjoint bit field of a single ``uint64`` and recover any mode with a
cached shift + mask.  Index storage drops by the tensor order; the price
is two integer ops per recovered coordinate — a flops-for-words trade the
cost model (:func:`repro.model.cost.execution_candidates`) scores per
tensor, Dynasor-style, instead of hard-coding either layout.

Three consumers:

* :class:`AltoKernel` — a registry backend (``REPRO_KERNEL=alto``) for
  the memoized engines: packs each node's delta-mode gather arrays into
  one code array (cached on the :class:`~repro.kernels.indices
  .NodeKernelIndex`) and decodes per cache-sized block.  Bitwise
  identical to ``numpy`` — the decoded integers are exactly the cached
  gather values, so every float op sees identical inputs in identical
  order.
* :class:`~repro.parallel.procpool.AltoCooMttkrp` — the thread-tier COO
  baseline on packed codes.
* :class:`~repro.parallel.procpool.ProcessMttkrp` with ``layout="alto"``
  — ships one code array instead of an index *matrix* through shared
  memory, and uses :func:`aligned_chunks` to snap shard boundaries to
  linearization ranges: no mode-0 output row spans two shards, so shards
  accumulate the leading mode conflict-free without partials.
"""

from __future__ import annotations

import numpy as np

from ..core.dtypes import INDEX_DTYPE
from .backends import NumpyKernel, RebuildContext

__all__ = [
    "AltoEncoding", "AltoKernel", "PackedGather",
    "alto_bits", "fits_alto", "aligned_chunks",
]

#: bit budget for one packed code (uint64 storage, int64-safe range).
MAX_BITS = 63


def alto_bits(dims) -> list[int]:
    """Bit-field width per mode: ``ceil(log2(I_m))`` (0 for size-1 modes)."""
    out = []
    for d in dims:
        d = int(d)
        if d < 1:
            raise ValueError(f"mode sizes must be >= 1, got {d}")
        out.append((d - 1).bit_length())
    return out


def fits_alto(dims) -> bool:
    """Whether one uint64 code can hold a full coordinate tuple."""
    return sum(alto_bits(dims)) <= MAX_BITS


class AltoEncoding:
    """Bit-packed linearized coordinates for one index matrix.

    Mode-major packing (mode 0 in the highest field) makes code order
    agree with the tensor's canonical lexicographic nonzero order, so
    contiguous nonzero ranges *are* linearization ranges.
    """

    __slots__ = ("dims", "bits", "shifts", "masks", "codes")

    def __init__(self, dims: tuple[int, ...], codes: np.ndarray):
        self.dims = tuple(int(d) for d in dims)
        self.bits = alto_bits(self.dims)
        total = sum(self.bits)
        if total > MAX_BITS:
            raise ValueError(
                f"alto layout needs {total} bits for dims {self.dims}; "
                f"max is {MAX_BITS}"
            )
        shifts = []
        acc = total
        for b in self.bits:
            acc -= b
            shifts.append(acc)
        self.shifts = tuple(shifts)
        self.masks = tuple((1 << b) - 1 for b in self.bits)
        self.codes = codes

    @classmethod
    def encode(cls, idx: np.ndarray, dims) -> "AltoEncoding":
        """Pack an ``(nnz, N)`` index matrix into ``(nnz,)`` uint64 codes."""
        dims = tuple(int(d) for d in dims)
        enc = cls(dims, np.zeros(idx.shape[0], dtype=np.uint64))
        codes = enc.codes
        for m, shift in enumerate(enc.shifts):
            col = idx[:, m].astype(np.uint64)
            if shift:
                col <<= np.uint64(shift)
            codes |= col
        return enc

    def decode(self, mode: int, lo: int = 0, hi: int | None = None) -> np.ndarray:
        """Recover one mode's coordinates for ``codes[lo:hi]`` (int64)."""
        sl = self.codes[lo:hi if hi is not None else self.codes.shape[0]]
        field = sl >> np.uint64(self.shifts[mode])
        if mode != 0:  # the top field needs no mask
            field &= np.uint64(self.masks[mode])
        return field.astype(INDEX_DTYPE, copy=False)

    @property
    def nnz(self) -> int:
        return int(self.codes.shape[0])

    def nbytes(self) -> int:
        return int(self.codes.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AltoEncoding(dims={self.dims}, bits={self.bits}, "
                f"nnz={self.nnz})")


def aligned_chunks(mode0: np.ndarray, k: int) -> list[tuple[int, int]]:
    """``k`` contiguous nonzero ranges snapped to mode-0 boundaries.

    ``mode0`` is the (nondecreasing, canonical-order) leading-mode column.
    Each near-equal boundary moves left to the first nonzero of the mode-0
    slice it lands in, so no output row of a leading-mode MTTKRP is
    written by two shards: shard accumulation is conflict-free.  Empty
    ranges (heavy slices swallowing a boundary) are dropped.
    """
    from ..parallel.partition import contiguous_chunks

    n = int(mode0.shape[0])
    bounds = sorted({
        0, n, *(
            int(np.searchsorted(mode0, mode0[b], side="left"))
            for _, b in contiguous_chunks(n, k)[:-1] if b < n
        ),
    })
    return [
        (bounds[i], bounds[i + 1])
        for i in range(len(bounds) - 1)
        if bounds[i + 1] > bounds[i]
    ]


class PackedGather:
    """One node's delta-mode gather arrays packed into a single code array."""

    __slots__ = ("codes", "shifts", "masks")

    def __init__(self, codes: np.ndarray, shifts: tuple[int, ...],
                 masks: tuple[int, ...]):
        self.codes = codes
        self.shifts = shifts
        self.masks = masks

    def decode(self, field: int, lo: int, hi: int) -> np.ndarray:
        sl = self.codes[lo:hi] >> np.uint64(self.shifts[field])
        if field != 0:
            sl &= np.uint64(self.masks[field])
        return sl.astype(np.intp, copy=False)


def _packed_for(ki, dims: tuple[int, ...]):
    """The node's cached :class:`PackedGather` (False = not packable)."""
    packed = ki._alto
    if packed is None:
        bits = alto_bits(dims)
        if len(ki.gather) < 2 or sum(bits) > MAX_BITS:
            # One delta mode: the flat gather already is a linearized
            # index, nothing to fuse.  Too many bits: fall back.
            packed = False
        else:
            shifts, acc = [], sum(bits)
            for b in bits:
                acc -= b
                shifts.append(acc)
            codes = np.zeros(ki.n_sources, dtype=np.uint64)
            for g, shift in zip(ki.gather, shifts):
                col = g.astype(np.uint64)
                if shift:
                    col <<= np.uint64(shift)
                codes |= col
            packed = PackedGather(
                codes, tuple(shifts), tuple((1 << b) - 1 for b in bits)
            )
        ki._alto = packed
    return packed


class AltoKernel(NumpyKernel):
    """Blocked rebuild reading one packed code array per node.

    Identical block structure and float operation order to
    :class:`~repro.kernels.backends.NumpyKernel` — only the *source* of
    the gather integers differs — so outputs are bitwise equal.  Nodes
    with a single delta mode, or whose fields overflow 63 bits, run the
    plain numpy path (same result either way).
    """

    name = "alto"
    supports_chunks = True

    def _run_blocks(self, ctx: RebuildContext, ki, blocks, out) -> None:
        dims = tuple(
            ctx.factors[d].shape[0] for d in ki.delta_modes
        )
        packed = _packed_for(ki, dims)
        if packed is False:
            NumpyKernel._run_blocks(self, ctx, ki, blocks, out)
            return
        factors = ctx.factors
        arena = ctx.arena
        parent_vals = ctx.parent_vals
        root_vals = ctx.root_vals
        perm = ki.perm
        d0 = ki.delta_modes[0]
        rest = tuple(enumerate(ki.delta_modes[1:], start=1))
        for lo, hi, seg_lo, seg_hi, lstarts in blocks:
            n = hi - lo
            prod = out[lo:hi] if ki.identity else arena.request("prod", n, ctx.rank)
            np.take(factors[d0], packed.decode(0, lo, hi), axis=0, out=prod,
                    mode="clip")
            for field, d_mode in rest:
                scratch = arena.request("scratch", n, ctx.rank)
                np.take(factors[d_mode], packed.decode(field, lo, hi),
                        axis=0, out=scratch, mode="clip")
                np.multiply(prod, scratch, out=prod)
            if parent_vals is not None:
                if perm is None:
                    np.multiply(prod, parent_vals[lo:hi], out=prod)
                else:
                    scratch = arena.request("scratch", n, ctx.rank)
                    np.take(parent_vals, perm[lo:hi], axis=0, out=scratch,
                            mode="clip")
                    np.multiply(prod, scratch, out=prod)
            else:
                svals = (
                    root_vals[lo:hi] if perm is None
                    else root_vals[perm[lo:hi]]
                )
                np.multiply(prod, svals[:, None], out=prod)
            if not ki.identity:
                np.add.reduceat(prod, lstarts, axis=0, out=out[seg_lo:seg_hi])


# The thread-tier COO backend on packed codes (AltoCooMttkrp) lives in
# repro.parallel.procpool: parallel already depends on kernels, never the
# reverse.
