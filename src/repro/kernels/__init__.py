"""Fused MTTKRP kernel layer: cached gather indices, reusable workspaces,
blocked execution, and a pluggable backend registry.

The memoized engine's numeric phase is the same three-step pipeline for
every node rebuild — gather factor rows, Hadamard-multiply with the parent
values, segment-sum — and everything about it except the floating-point
values is static.  This package caches the static part
(:class:`NodeKernelIndex`), reuses the scratch (:class:`WorkspaceArena`),
blocks the passes to cache capacity (:mod:`~repro.kernels.blocking`), and
makes the executor pluggable (:func:`get_kernel`; select with the
``REPRO_KERNEL`` environment variable or the engines' ``kernel=`` argument).

Backends: ``numpy`` (default; bitwise identical to the original engine),
``reference`` (the original engine's numeric path, for benchmarking and
differential tests), and ``numba`` (fused ``prange`` loop, auto-detected).
"""

from .alto import AltoEncoding, AltoKernel, aligned_chunks, fits_alto
from .backends import KernelBackend, NumpyKernel, RebuildContext, ReferenceKernel
from .blocking import (CANDIDATE_BLOCK_ROWS, autotune_block_rows,
                       clear_tuning_cache, default_block_rows,
                       resolve_block_rows, segment_blocks)
from .indices import NodeKernelIndex, build_node_index
from .registry import (DEFAULT_KERNEL, available_kernels, get_kernel,
                       register_kernel, register_unavailable,
                       unavailable_kernels)
from .workspace import WorkspaceArena

register_kernel(NumpyKernel.name, NumpyKernel)
register_kernel(ReferenceKernel.name, ReferenceKernel)
register_kernel(AltoKernel.name, AltoKernel)

try:  # optional fused backend — self-registers on import
    from . import numba_backend  # noqa: F401
except Exception as _numba_err:  # pragma: no cover - depends on environment
    register_unavailable("numba", f"numba import failed: {_numba_err}")

__all__ = [
    "AltoEncoding",
    "AltoKernel",
    "CANDIDATE_BLOCK_ROWS",
    "DEFAULT_KERNEL",
    "KernelBackend",
    "NodeKernelIndex",
    "NumpyKernel",
    "RebuildContext",
    "ReferenceKernel",
    "WorkspaceArena",
    "aligned_chunks",
    "autotune_block_rows",
    "fits_alto",
    "available_kernels",
    "build_node_index",
    "clear_tuning_cache",
    "default_block_rows",
    "get_kernel",
    "register_kernel",
    "register_unavailable",
    "resolve_block_rows",
    "segment_blocks",
    "unavailable_kernels",
]
