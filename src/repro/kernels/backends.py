"""Kernel backends: interchangeable implementations of one node rebuild.

A backend turns a :class:`RebuildContext` (static indices + current numeric
state) into the node's ``(n_segments, R)`` value matrix.  All backends
compute the *same* values — the engine's perf counters and the cost model
are backend-independent — they differ only in how the gather → Hadamard →
segmented-sum pipeline is executed:

``numpy``
    The default.  Pre-permuted flat gather indices (no per-rebuild
    permutation pass), ``np.take`` into reused workspace buffers (no large
    allocations), in-place Hadamard, and cache-sized segment-aligned blocks.
    Bitwise identical to ``reference``.

``reference``
    The original engine's numeric path, kept as the plain-numpy baseline
    for benchmarking and differential testing.

``numba``
    A fused-loop ``prange`` kernel (see :mod:`repro.kernels.numba_backend`),
    registered only when numba imports cleanly.
"""

from __future__ import annotations

import numpy as np

from ..core.dtypes import VALUE_DTYPE
from ..obs import trace as _trace
from .blocking import resolve_block_rows
from .workspace import WorkspaceArena


class RebuildContext:
    """Everything a backend may need to rebuild one node.

    ``sym``/``parent_sym`` are :class:`~repro.core.symbolic.NodeSymbolic`
    blocks; exactly one of ``parent_vals`` (a ``(m, R)`` cached node value
    matrix) and ``root_vals`` (the tensor's ``(m,)`` nonzero values) is set.
    """

    __slots__ = ("symbolic", "node_id", "sym", "parent_sym", "factors",
                 "parent_vals", "root_vals", "rank", "arena")

    def __init__(self, symbolic, node_id, sym, parent_sym, factors,
                 parent_vals, root_vals, rank, arena: WorkspaceArena):
        self.symbolic = symbolic
        self.node_id = node_id
        self.sym = sym
        self.parent_sym = parent_sym
        self.factors = factors
        self.parent_vals = parent_vals
        self.root_vals = root_vals
        self.rank = rank
        self.arena = arena

    def kernel_index(self):
        """The node's cached :class:`~repro.kernels.indices.NodeKernelIndex`."""
        return self.symbolic.kernel_index(self.node_id)


class KernelBackend:
    """Interface: :meth:`rebuild` a whole node, optionally by chunks."""

    #: registry name (overridden by implementations).
    name = "abstract"

    #: whether :meth:`rebuild_chunk` is implemented (the parallel engine's
    #: segment-aligned chunking requires it).
    supports_chunks = False

    def rebuild(self, ctx: RebuildContext) -> np.ndarray:
        raise NotImplementedError

    def traced_rebuild(self, ctx: RebuildContext) -> np.ndarray:
        """:meth:`rebuild` inside a ``kernel`` span attributing the pass to
        this backend (separating kernel time from the engine's accounting)."""
        if not _trace.enabled():
            return self.rebuild(ctx)
        with _trace.span("kernel", backend=self.name, node=ctx.node_id):
            return self.rebuild(ctx)

    def rebuild_chunk(self, ctx: RebuildContext, source_slice: slice,
                      segment_slice: slice, out: np.ndarray) -> None:
        """Compute rows ``segment_slice`` of the node's value matrix into
        ``out`` (the full ``(n_segments, R)`` array), reading only sources
        in ``source_slice``.  Chunks come from ``SegmentPlan.chunks`` and
        are segment-aligned, so concurrent chunk writes never overlap."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class NumpyKernel(KernelBackend):
    """Blocked gather → in-place Hadamard → ``reduceat`` on cached indices."""

    name = "numpy"
    supports_chunks = True

    def rebuild(self, ctx: RebuildContext) -> np.ndarray:
        ki = ctx.kernel_index()
        out = np.empty((ki.n_segments, ctx.rank), dtype=VALUE_DTYPE)
        if ki.n_sources:
            block_rows = resolve_block_rows(ctx.rank)
            self._run_blocks(ctx, ki, ki.blocks_for(block_rows), out)
        return out

    def rebuild_chunk(self, ctx: RebuildContext, source_slice: slice,
                      segment_slice: slice, out: np.ndarray) -> None:
        from .blocking import segment_blocks

        ki = ctx.kernel_index()
        blocks = segment_blocks(
            ki.starts, ki.n_sources, resolve_block_rows(ctx.rank),
            seg_lo=segment_slice.start, seg_hi=segment_slice.stop,
        )
        self._run_blocks(ctx, ki, blocks, out)

    def _run_blocks(self, ctx: RebuildContext, ki, blocks, out) -> None:
        factors = ctx.factors
        arena = ctx.arena
        parent_vals = ctx.parent_vals
        root_vals = ctx.root_vals
        perm = ki.perm
        d0 = ki.delta_modes[0]
        g0 = ki.gather[0]
        rest = tuple(zip(ki.delta_modes[1:], ki.gather[1:]))
        for lo, hi, seg_lo, seg_hi, lstarts in blocks:
            n = hi - lo
            # Identity plans map source row k to output row k: gather
            # straight into the output and skip the reduction entirely.
            prod = out[lo:hi] if ki.identity else arena.request("prod", n, ctx.rank)
            np.take(factors[d0], g0[lo:hi], axis=0, out=prod, mode="clip")
            for d_mode, g in rest:
                scratch = arena.request("scratch", n, ctx.rank)
                np.take(factors[d_mode], g[lo:hi], axis=0, out=scratch,
                        mode="clip")
                np.multiply(prod, scratch, out=prod)
            if parent_vals is not None:
                if perm is None:
                    np.multiply(prod, parent_vals[lo:hi], out=prod)
                else:
                    scratch = arena.request("scratch", n, ctx.rank)
                    np.take(parent_vals, perm[lo:hi], axis=0, out=scratch,
                            mode="clip")
                    np.multiply(prod, scratch, out=prod)
            else:
                svals = (
                    root_vals[lo:hi] if perm is None
                    else root_vals[perm[lo:hi]]
                )
                np.multiply(prod, svals[:, None], out=prod)
            if not ki.identity:
                np.add.reduceat(prod, lstarts, axis=0, out=out[seg_lo:seg_hi])


class ReferenceKernel(KernelBackend):
    """The seed engine's numeric path, verbatim (baseline + differential
    testing): per-rebuild strided column reads, a fresh allocation per pass,
    and the segment permutation applied to the ``(m, R)`` products."""

    name = "reference"
    supports_chunks = True

    def rebuild(self, ctx: RebuildContext) -> np.ndarray:
        sym, parent_sym = ctx.sym, ctx.parent_sym
        factors = ctx.factors
        prod: np.ndarray | None = None
        for d_mode, d_col in zip(sym.delta_modes, sym.delta_parent_cols):
            rows = factors[d_mode][parent_sym.index[:, d_col]]
            if prod is None:
                prod = rows.copy()
            else:
                prod *= rows
        assert prod is not None, "strategy validation guarantees non-empty delta"
        if ctx.parent_vals is None:
            prod *= ctx.root_vals[:, None]
        else:
            prod *= ctx.parent_vals
        assert sym.plan is not None
        return sym.plan.reduce(prod)

    def rebuild_chunk(self, ctx: RebuildContext, source_slice: slice,
                      segment_slice: slice, out: np.ndarray) -> None:
        sym, parent_sym = ctx.sym, ctx.parent_sym
        plan = sym.plan
        assert plan is not None
        factors = ctx.factors
        rows = plan.sorted_sources(source_slice)
        prod: np.ndarray | None = None
        for d_mode, d_col in zip(sym.delta_modes, sym.delta_parent_cols):
            gathered = factors[d_mode][parent_sym.index[rows, d_col]]
            if prod is None:
                prod = gathered
            else:
                prod *= gathered
        assert prod is not None
        if ctx.parent_vals is None:
            prod *= ctx.root_vals[rows, None]
        else:
            prod *= ctx.parent_vals[rows]
        starts = plan.local_starts(source_slice, segment_slice)
        np.add.reduceat(prod, starts, axis=0, out=out[segment_slice])
