"""Static per-node gather indices: the cached half of every node rebuild.

A node rebuild gathers factor rows addressed by columns of the *parent's*
index block, multiplies them with the parent values, permutes the products
into segment order, and segment-sums.  Everything about that except the
floating-point values is fixed by the sparsity pattern and the strategy —
yet the baseline engine re-derives it on every rebuild: the column slice
``parent.index[:, d_col]`` is a strided read, and the segment permutation is
applied as a separate ``(nnz, R)`` fancy-gather pass over the products.

:class:`NodeKernelIndex` precomputes, once per node:

* one **flat, contiguous, pre-permuted** gather array per delta mode
  (``parent.index[perm, d_col]``), so the factor gather lands directly in
  segment order and the per-rebuild permutation pass disappears entirely;
* the parent-row permutation (``None`` when the plan's order is already
  sorted) for gathering parent/root values;
* the ``reduceat`` segment starts.

These arrays are cached on the :class:`~repro.core.symbolic.SymbolicTree`,
so engines, restarts, and parallel workers sharing a tree share them too.
"""

from __future__ import annotations

import numpy as np


class NodeKernelIndex:
    """Precomputed flat gather/reduction indices for one non-root node."""

    __slots__ = (
        "node_id", "delta_modes", "n_sources", "n_segments", "gather",
        "perm", "starts", "identity", "_blocks", "_stacked", "_perm_full",
        "_alto",
    )

    def __init__(self, node_id: int, delta_modes: tuple[int, ...],
                 gather: tuple[np.ndarray, ...], perm: np.ndarray | None,
                 starts: np.ndarray, n_sources: int, identity: bool):
        self.node_id = node_id
        self.delta_modes = delta_modes
        self.gather = gather
        self.perm = perm
        self.starts = starts
        self.n_sources = int(n_sources)
        self.n_segments = int(starts.shape[0])
        self.identity = bool(identity)
        self._blocks: dict[int, list] = {}
        self._stacked: np.ndarray | None = None
        self._perm_full: np.ndarray | None = None
        #: lazily built bit-packed gather (see repro.kernels.alto);
        #: False = packing checked and not applicable.
        self._alto = None

    def blocks_for(self, block_rows: int) -> list:
        """Cached segment-aligned block list for one block size."""
        blocks = self._blocks.get(block_rows)
        if blocks is None:
            from .blocking import segment_blocks

            blocks = list(segment_blocks(self.starts, self.n_sources, block_rows))
            self._blocks[block_rows] = blocks
        return blocks

    def stacked_gather(self) -> np.ndarray:
        """All gather arrays as one ``(n_delta, n_sources)`` matrix (for
        fused backends that want a single typed argument)."""
        if self._stacked is None:
            self._stacked = np.ascontiguousarray(np.vstack(self.gather))
        return self._stacked

    def perm_or_identity(self) -> np.ndarray:
        """The permutation as a concrete array (``arange`` when identity)."""
        if self.perm is not None:
            return self.perm
        if self._perm_full is None:
            self._perm_full = np.arange(self.n_sources, dtype=np.intp)
        return self._perm_full

    def nbytes(self) -> int:
        """Bytes held by the cached index structures."""
        total = self.starts.nbytes + sum(g.nbytes for g in self.gather)
        if self.perm is not None:
            total += self.perm.nbytes
        if self._stacked is not None:
            total += self._stacked.nbytes
        if self._alto is not None and self._alto is not False:
            total += self._alto.codes.nbytes
        return int(total)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NodeKernelIndex(node={self.node_id}, "
            f"deltas={self.delta_modes}, sources={self.n_sources}, "
            f"segments={self.n_segments}, identity={self.identity})"
        )


def build_node_index(sym, parent_sym) -> NodeKernelIndex:
    """Build the kernel index for ``sym`` (a non-root
    :class:`~repro.core.symbolic.NodeSymbolic`) from its parent's block."""
    plan = sym.plan
    assert plan is not None, "root nodes have no kernel index"
    perm: np.ndarray | None
    if plan.has_identity_perm:
        perm = None
    else:
        perm = np.ascontiguousarray(plan.perm, dtype=np.intp)
    gather = []
    for d_col in sym.delta_parent_cols:
        col = parent_sym.index[:, d_col]
        flat = col if perm is None else col[perm]
        gather.append(np.ascontiguousarray(flat, dtype=np.intp))
    starts = np.ascontiguousarray(plan.starts, dtype=np.intp)
    return NodeKernelIndex(
        node_id=sym.node_id,
        delta_modes=sym.delta_modes,
        gather=tuple(gather),
        perm=perm,
        starts=starts,
        n_sources=plan.n_sources,
        identity=plan.is_identity,
    )
