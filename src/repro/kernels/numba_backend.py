"""Optional numba backend: the pipeline fused into one parallel loop.

Importing this module requires numba; :mod:`repro.kernels` imports it inside
a ``try`` and registers the backend as unavailable when the import fails, so
the rest of the library never depends on it.

The fused loop does per segment what the numpy backend does in passes:
gather the delta-mode factor rows, multiply them with the source value, and
accumulate into the output row — one trip through memory, ``prange`` over
segments (disjoint output rows, no atomics).  Within a segment the
accumulation order matches ``np.add.reduceat``; across the factor product
the association differs from the numpy backend, so outputs agree to
``AGREEMENT_RTOL`` rather than bitwise.
"""

from __future__ import annotations

import numba  # noqa: F401  (import failure => backend unavailable)
import numpy as np
from numba import njit, prange
from numba.typed import List as NumbaList

from ..core.dtypes import VALUE_DTYPE
from .backends import KernelBackend, RebuildContext
from .registry import register_kernel


@njit(parallel=True, cache=False)
def _fused_rebuild(gather, factor_list, source_vals, starts, out):
    """gather: (k, m) intp; factor_list: typed list of (I_d, R) float64;
    source_vals: (m,) permuted parent/root values; starts: (u,) intp;
    out: (u, R) float64."""
    n_delta = gather.shape[0]
    m = gather.shape[1]
    n_seg = starts.shape[0]
    rank = out.shape[1]
    for s in prange(n_seg):
        lo = starts[s]
        hi = starts[s + 1] if s + 1 < n_seg else m
        for r in range(rank):
            out[s, r] = 0.0
        for i in range(lo, hi):
            v = source_vals[i]
            for r in range(rank):
                acc = v
                for j in range(n_delta):
                    acc *= factor_list[j][gather[j, i], r]
                out[s, r] += acc


@njit(parallel=True, cache=False)
def _gather_rows(matrix, perm, out):
    """out[i] = matrix[perm[i]] — permuted (m, R) gather for parent values."""
    for i in prange(perm.shape[0]):
        out[i] = matrix[perm[i]]


class NumbaKernel(KernelBackend):
    """Fused gather–Hadamard–reduce in one ``prange`` loop per node."""

    name = "numba"
    supports_chunks = False  # prange parallelizes inside the node already

    def rebuild(self, ctx: RebuildContext) -> np.ndarray:
        ki = ctx.kernel_index()
        out = np.empty((ki.n_segments, ctx.rank), dtype=VALUE_DTYPE)
        if not ki.n_sources:
            return out
        factor_list = NumbaList()
        for d_mode in ki.delta_modes:
            factor_list.append(ctx.factors[d_mode])
        if ctx.parent_vals is None:
            source_vals = (
                ctx.root_vals if ki.perm is None else ctx.root_vals[ki.perm]
            )
            source_vals = np.ascontiguousarray(source_vals, dtype=VALUE_DTYPE)
            _fused_rebuild(
                ki.stacked_gather(), factor_list, source_vals, ki.starts, out
            )
        else:
            # Fold the (m, R) parent into the product by treating it as one
            # more "factor" gathered with the permutation itself.
            factor_list.append(np.ascontiguousarray(ctx.parent_vals))
            gather = np.vstack(
                (ki.stacked_gather(), ki.perm_or_identity()[None, :])
            )
            ones = np.ones(ki.n_sources, dtype=VALUE_DTYPE)
            _fused_rebuild(np.ascontiguousarray(gather), factor_list, ones,
                           ki.starts, out)
        return out


def _warmup() -> None:  # pragma: no cover - requires numba
    """Compile the jitted kernels on a toy problem (call once, optional)."""
    gather = np.zeros((1, 2), dtype=np.intp)
    factors = NumbaList()
    factors.append(np.ones((1, 2), dtype=VALUE_DTYPE))
    out = np.empty((1, 2), dtype=VALUE_DTYPE)
    _fused_rebuild(gather, factors, np.ones(2, dtype=VALUE_DTYPE),
                   np.zeros(1, dtype=np.intp), out)


register_kernel("numba", NumbaKernel)
