"""The kernel backend registry.

Backends register a factory under a name; engines resolve a backend from an
explicit argument, the ``REPRO_KERNEL`` environment variable, or the default
(``numpy``).  Optional backends (numba) register as *unavailable* with a
reason when their dependency is missing, and requesting one falls back to
the default with a warning rather than failing — the numeric result is the
same either way.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable

from ..obs.metrics import registry as _metrics
from .backends import KernelBackend

DEFAULT_KERNEL = "numpy"

_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_UNAVAILABLE: dict[str, str] = {}


def register_kernel(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    key = name.lower()
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)
    _UNAVAILABLE.pop(key, None)


def register_unavailable(name: str, reason: str) -> None:
    """Record that ``name`` exists but cannot be used (missing dependency)."""
    key = name.lower()
    if key not in _FACTORIES:
        _UNAVAILABLE[key] = reason


def available_kernels() -> list[str]:
    """Names of backends that can actually run, default first."""
    names = sorted(_FACTORIES)
    names.sort(key=lambda n: n != DEFAULT_KERNEL)
    return names


def unavailable_kernels() -> dict[str, str]:
    """Known-but-unusable backend names mapped to the reason."""
    return dict(_UNAVAILABLE)


def get_kernel(spec: "str | KernelBackend | None" = None) -> KernelBackend:
    """Resolve a backend: instance pass-through, name, ``REPRO_KERNEL``,
    or the default.  Shared singleton per name (backends are stateless)."""
    if isinstance(spec, KernelBackend):
        return spec
    name = (spec or os.environ.get("REPRO_KERNEL") or DEFAULT_KERNEL)
    name = name.strip().lower() or DEFAULT_KERNEL
    if name not in _FACTORIES:
        if name in _UNAVAILABLE:
            warnings.warn(
                f"kernel backend {name!r} is unavailable "
                f"({_UNAVAILABLE[name]}); falling back to {DEFAULT_KERNEL!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            _metrics.incr("kernel.fallbacks")
            name = DEFAULT_KERNEL
        else:
            raise ValueError(
                f"unknown kernel backend {name!r}; available: "
                f"{available_kernels()}"
            )
    inst = _INSTANCES.get(name)
    if inst is None:
        inst = _FACTORIES[name]()
        _INSTANCES[name] = inst
    _metrics.incr(f"kernel.resolved.{name}")
    return inst
