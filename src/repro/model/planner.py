"""The adaptive planner: enumerate strategies, predict, select.

This is the paper's "model-driven" step.  Given a tensor and a CP rank, the
planner (1) generates candidate memoization trees, (2) obtains every
candidate node's intermediate size from one shared
:class:`~repro.model.overlap.DistinctCounter`, (3) scores each candidate with
the analytic cost model, and (4) returns the cheapest candidate whose memory
footprint fits the budget.  Because the candidate set always includes the
star tree (the no-memoization baseline), the selected plan can never be
predicted slower than the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.coo import CooTensor
from ..core.strategy import MemoStrategy
from ..core.validate import check_positive_int
from .cost import DEFAULT_MACHINE, CostReport, MachineModel, cost_report
from .overlap import DistinctCounter


@dataclass
class ScoredStrategy:
    """One candidate with its predicted cost and feasibility."""

    strategy: MemoStrategy
    cost: CostReport
    feasible: bool

    @property
    def predicted_seconds(self) -> float:
        return self.cost.predicted_seconds


@dataclass
class PlannerReport:
    """Full outcome of a planning run.

    ``scored`` is sorted by predicted time (feasible candidates first);
    ``best`` is the fastest feasible candidate.
    """

    scored: list[ScoredStrategy]
    machine: MachineModel
    memory_budget: int | None
    count_method: str
    notes: list[str] = field(default_factory=list)

    @property
    def best(self) -> ScoredStrategy:
        for s in self.scored:
            if s.feasible:
                return s
        raise RuntimeError("no feasible strategy (memory budget too small?)")

    def ranked_names(self) -> list[str]:
        return [s.strategy.name for s in self.scored]

    def rank_of(self, strategy: MemoStrategy) -> int:
        """0-based rank of ``strategy`` in the predicted ordering."""
        sig = strategy.signature()
        for i, s in enumerate(self.scored):
            if s.strategy.signature() == sig:
                return i
        raise KeyError(f"strategy {strategy.name!r} not among candidates")

    def summary(self, top: int = 8) -> str:
        lines = [
            f"planner: {len(self.scored)} candidates, machine={self.machine.name}, "
            f"budget={'none' if self.memory_budget is None else self.memory_budget}",
        ]
        for s in self.scored[:top]:
            flag = " " if s.feasible else "!"
            lines.append(f"  {flag} {s.cost.summary()}")
        return "\n".join(lines)


def plan(
    tensor: CooTensor,
    rank: int,
    *,
    candidates: Sequence[MemoStrategy] | None = None,
    memory_budget: int | None = None,
    machine: MachineModel | None = None,
    count_method: str = "exact",
    sample_size: int = 100_000,
    random_state=0,
) -> PlannerReport:
    """Select a memoization strategy for CP-ALS on ``tensor`` at ``rank``.

    Parameters
    ----------
    tensor: input sparse tensor.
    rank: CP rank the decomposition will use.
    candidates:
        strategies to consider; defaults to
        :func:`repro.model.search.search_candidates` (star, all chains,
        all two-way splits, balanced binary, every contiguous binary tree
        for order <= 8, greedy-constructed trees above that).
    memory_budget:
        cap in bytes on a candidate's ``total_memory_bytes``; infeasible
        candidates are kept in the report but never selected.
    machine:
        time-model constants; defaults to :data:`DEFAULT_MACHINE` (pass the
        result of :func:`repro.model.calibrate.calibrate_machine` for
        host-accurate predictions).
    count_method / sample_size / random_state:
        forwarded to :class:`DistinctCounter` (``'sampled'`` trades count
        accuracy for planning speed on huge tensors).
    """
    check_positive_int(rank, "rank")
    if tensor.ndim < 2:
        raise ValueError("planning requires an order >= 2 tensor")
    machine = machine or DEFAULT_MACHINE
    counter = DistinctCounter(
        tensor, method=count_method, sample_size=sample_size,
        random_state=random_state,
    )
    if candidates is None:
        from .search import search_candidates

        candidates = search_candidates(tensor, counter=counter)
    if not candidates:
        raise ValueError("candidate list is empty")
    scored: list[ScoredStrategy] = []
    for strat in candidates:
        if strat.n_modes != tensor.ndim:
            raise ValueError(
                f"candidate {strat.name!r} covers {strat.n_modes} modes, "
                f"tensor has {tensor.ndim}"
            )
        report = cost_report(strat, counter.node_nnz(strat), rank, machine)
        feasible = (
            memory_budget is None or report.total_memory_bytes <= memory_budget
        )
        scored.append(ScoredStrategy(strat, report, feasible))
    scored.sort(key=lambda s: (not s.feasible, s.predicted_seconds))
    notes = [f"distinct-count cache entries: {counter.cache_size()}"]
    return PlannerReport(
        scored=scored,
        machine=machine,
        memory_budget=memory_budget,
        count_method=count_method,
        notes=notes,
    )
