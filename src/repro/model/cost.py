"""Analytic cost model for memoization strategies.

Given a strategy tree and the nonzero count of every intermediate node, the
model predicts — exactly, by construction — the flop and word counts that the
engine's operation counters will report for one CP-ALS iteration, plus the
peak memory held by memoized value matrices and symbolic index structures.
Predicted wall-clock time is a two-parameter linear model
``alpha * flops + beta * words`` calibrated per machine
(:mod:`repro.model.calibrate`).

The flop/word conventions are shared with
:func:`repro.core.engine.contraction_work`; the test suite asserts the
model's per-iteration predictions equal the engine's measured counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.dtypes import INDEX_ITEMSIZE, VALUE_ITEMSIZE
from ..core.engine import contraction_work
from ..core.strategy import MemoStrategy
from ..core.symbolic import SymbolicTree


@dataclass(frozen=True)
class MachineModel:
    """Two-parameter time model: seconds = alpha*flops + beta*words."""

    alpha_per_flop: float
    beta_per_word: float
    name: str = "generic"

    def seconds(self, flops: float, words: float) -> float:
        return self.alpha_per_flop * flops + self.beta_per_word * words


#: Rough default calibration for a modern x86 core running NumPy kernels.
#: Use :func:`repro.model.calibrate.calibrate_machine` for measured values.
DEFAULT_MACHINE = MachineModel(
    alpha_per_flop=2.5e-10, beta_per_word=4.0e-10, name="default"
)


@dataclass
class CostReport:
    """Predicted per-iteration cost of one strategy on one tensor.

    Attributes
    ----------
    strategy: the evaluated strategy.
    rank: CP rank assumed.
    flops_per_iteration / words_per_iteration:
        work for one full CP-ALS iteration (every non-root node rebuilt
        once, every leaf scattered once).
    peak_value_bytes:
        maximum bytes of simultaneously live memoized value matrices under
        the strategy's mode schedule.
    index_bytes:
        bytes of symbolic structures (index blocks + reduction plans),
        allocated once and held for the run's lifetime.
    node_nnz: per-node intermediate nonzero counts (model input).
    predicted_seconds: ``machine.seconds(flops, words)``.
    """

    strategy: MemoStrategy
    rank: int
    flops_per_iteration: int
    words_per_iteration: int
    peak_value_bytes: int
    index_bytes: int
    node_nnz: list[int]
    predicted_seconds: float

    @property
    def total_memory_bytes(self) -> int:
        """Peak transient values + persistent index structures."""
        return self.peak_value_bytes + self.index_bytes

    def summary(self) -> str:
        return (
            f"{self.strategy.name:<14s} flops/iter={self.flops_per_iteration:>14,d} "
            f"words/iter={self.words_per_iteration:>14,d} "
            f"peak_mem={self.total_memory_bytes / 1e6:>9.2f}MB "
            f"pred={self.predicted_seconds * 1e3:>9.3f}ms"
        )


def iteration_flops_words(
    strategy: MemoStrategy, node_nnz: Sequence[int], rank: int
) -> tuple[int, int]:
    """(flops, words) for one CP-ALS iteration under ``strategy``.

    Every non-root node is rebuilt exactly once per iteration (the schedule
    property of post-order mode updates), and every leaf's value matrix is
    read once when scattered into the MTTKRP output.
    """
    flops = 0
    words = 0
    for node in strategy.nodes:
        if node.is_root:
            continue
        parent_nnz = node_nnz[node.parent]  # type: ignore[index]
        f, w = contraction_work(parent_nnz, rank, len(node.delta))
        flops += f
        words += w
        if node.is_leaf:
            words += node_nnz[node.id] * rank
    return flops, words


@dataclass(frozen=True)
class NodeCostTerms:
    """One tree node's predicted contribution to an iteration's cost.

    One entry exists per strategy node (the root included, with zero work)
    so measured attributions align node-for-node by id.  ``words`` includes
    the leaf's scatter read (``scatter_words``); summing ``flops`` /
    ``words`` over all nodes reproduces :func:`iteration_flops_words`
    exactly — a tested invariant, not an approximation.
    """

    node_id: int
    modes: tuple[int, ...]
    parent: int | None
    delta: tuple[int, ...]
    nnz: int
    parent_nnz: int | None
    flops: int
    words: int
    scatter_words: int
    value_bytes: int
    index_bytes: int
    #: mode whose sub-iteration rebuilds this node in the steady-state
    #: schedule (None for the root, which is never rebuilt).
    rebuild_mode: int | None


def node_cost_terms(
    strategy: MemoStrategy, node_nnz: Sequence[int], rank: int
) -> list[NodeCostTerms]:
    """Per-node decomposition of one iteration's predicted flops/words.

    The per-node terms are exactly the addends of
    :func:`iteration_flops_words`: each non-root node contributes one
    rebuild from its parent (``contraction_work``) plus, for leaves, the
    scatter read of its value matrix into the MTTKRP output.  Byte terms
    mirror :func:`simulate_peak_value_bytes` (value matrices) and
    :func:`symbolic_index_bytes` (index structures) per node.
    """
    if len(node_nnz) != len(strategy.nodes):
        raise ValueError(
            f"node_nnz has {len(node_nnz)} entries for "
            f"{len(strategy.nodes)} nodes"
        )
    rebuild_mode: dict[int, int] = {}
    for mode, built in strategy.rebuild_schedule():
        for nid in built:
            rebuild_mode[nid] = mode
    terms: list[NodeCostTerms] = []
    for node in strategy.nodes:
        nnz_t = int(node_nnz[node.id])
        if node.is_root:
            terms.append(NodeCostTerms(
                node_id=node.id, modes=node.modes, parent=None, delta=(),
                nnz=nnz_t, parent_nnz=None, flops=0, words=0,
                scatter_words=0, value_bytes=0,
                index_bytes=nnz_t * len(node.modes) * INDEX_ITEMSIZE,
                rebuild_mode=None,
            ))
            continue
        parent_nnz = int(node_nnz[node.parent])  # type: ignore[index]
        flops, words = contraction_work(parent_nnz, rank, len(node.delta))
        scatter = nnz_t * rank if node.is_leaf else 0
        terms.append(NodeCostTerms(
            node_id=node.id, modes=node.modes, parent=node.parent,
            delta=node.delta, nnz=nnz_t, parent_nnz=parent_nnz,
            flops=flops, words=words + scatter, scatter_words=scatter,
            value_bytes=nnz_t * rank * VALUE_ITEMSIZE,
            index_bytes=(nnz_t * len(node.modes)
                         + parent_nnz + 2 * nnz_t) * INDEX_ITEMSIZE,
            rebuild_mode=rebuild_mode.get(node.id),
        ))
    return terms


def per_mode_cost(
    strategy: MemoStrategy, node_nnz: Sequence[int], rank: int
) -> dict[int, dict[str, int]]:
    """Predicted per-mode flops/words: node terms grouped by rebuild mode.

    Each mode's entry sums the :func:`node_cost_terms` of the nodes its
    sub-iteration rebuilds, so the per-mode values partition the iteration
    totals exactly.
    """
    out: dict[int, dict[str, int]] = {
        m: {"flops": 0, "words": 0, "nodes": 0}
        for m in strategy.mode_order
    }
    for term in node_cost_terms(strategy, node_nnz, rank):
        if term.rebuild_mode is None:
            continue
        agg = out[term.rebuild_mode]
        agg["flops"] += term.flops
        agg["words"] += term.words
        agg["nodes"] += 1
    return out


def simulate_peak_value_bytes(
    strategy: MemoStrategy, node_nnz: Sequence[int], rank: int
) -> int:
    """Peak live memoized-value bytes over one iteration's schedule.

    Replays the engine's cache behaviour: computing leaf ``n`` materializes
    every node on its root path; updating mode ``n`` then destroys every node
    whose contracted set contains ``n``.  Returns the maximum concurrent
    total of non-root value-matrix bytes.
    """
    live: set[int] = set()
    peak = 0
    bytes_of = [
        node_nnz[i] * rank * VALUE_ITEMSIZE for i in range(len(strategy.nodes))
    ]

    def total() -> int:
        return sum(bytes_of[i] for i in live)

    # Two passes: caches persist across iterations, so steady-state peaks can
    # exceed the cold-start first iteration.  Doomed nodes are freed on
    # entering a sub-iteration, before the path materializes (the engine's
    # eager-free schedule).
    for _ in range(2):
        for n in strategy.mode_order:
            for nid in strategy.invalidated_by(n):
                live.discard(nid)
            for nid in strategy.path_to_root(strategy.leaf_id(n)):
                if not strategy.nodes[nid].is_root:
                    live.add(nid)
            peak = max(peak, total())
    return peak


def symbolic_index_bytes(strategy: MemoStrategy, node_nnz: Sequence[int]) -> int:
    """Bytes of symbolic structures, matching ``SymbolicTree.index_nbytes``.

    Root: its index block aliases the tensor's coordinates (counted, since
    the model compares storage across strategies that all share it).
    Non-root node ``t``: index block (``nnz_t * |modes|`` indices), reduction
    permutation (``nnz_parent``), segment starts (``nnz_t``), and group ids
    (``nnz_t``).
    """
    total = 0
    for node in strategy.nodes:
        if node.is_root:
            total += node_nnz[node.id] * len(node.modes) * INDEX_ITEMSIZE
            continue
        nnz_t = node_nnz[node.id]
        nnz_p = node_nnz[node.parent]  # type: ignore[index]
        total += nnz_t * len(node.modes) * INDEX_ITEMSIZE
        total += (nnz_p + 2 * nnz_t) * INDEX_ITEMSIZE
    return total


def cost_report(
    strategy: MemoStrategy,
    node_nnz: Sequence[int],
    rank: int,
    machine: MachineModel = DEFAULT_MACHINE,
) -> CostReport:
    """Assemble a :class:`CostReport` from per-node nonzero counts."""
    if len(node_nnz) != len(strategy.nodes):
        raise ValueError(
            f"node_nnz has {len(node_nnz)} entries for "
            f"{len(strategy.nodes)} nodes"
        )
    flops, words = iteration_flops_words(strategy, node_nnz, rank)
    return CostReport(
        strategy=strategy,
        rank=rank,
        flops_per_iteration=flops,
        words_per_iteration=words,
        peak_value_bytes=simulate_peak_value_bytes(strategy, node_nnz, rank),
        index_bytes=symbolic_index_bytes(strategy, node_nnz),
        node_nnz=list(node_nnz),
        predicted_seconds=machine.seconds(flops, words),
    )


def cost_from_symbolic(
    symbolic: SymbolicTree, rank: int, machine: MachineModel = DEFAULT_MACHINE
) -> CostReport:
    """Cost report using exact node sizes from a built symbolic tree."""
    return cost_report(symbolic.strategy, symbolic.node_nnz(), rank, machine)
