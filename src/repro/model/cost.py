"""Analytic cost model for memoization strategies.

Given a strategy tree and the nonzero count of every intermediate node, the
model predicts — exactly, by construction — the flop and word counts that the
engine's operation counters will report for one CP-ALS iteration, plus the
peak memory held by memoized value matrices and symbolic index structures.
Predicted wall-clock time is a two-parameter linear model
``alpha * flops + beta * words`` calibrated per machine
(:mod:`repro.model.calibrate`).

The flop/word conventions are shared with
:func:`repro.core.engine.contraction_work`; the test suite asserts the
model's per-iteration predictions equal the engine's measured counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.dtypes import INDEX_ITEMSIZE, VALUE_ITEMSIZE
from ..core.engine import contraction_work
from ..core.strategy import MemoStrategy
from ..core.symbolic import SymbolicTree
from ..kernels.alto import MAX_BITS, alto_bits


@dataclass(frozen=True)
class MachineModel:
    """Two-parameter time model: seconds = alpha*flops + beta*words."""

    alpha_per_flop: float
    beta_per_word: float
    name: str = "generic"

    def seconds(self, flops: float, words: float) -> float:
        return self.alpha_per_flop * flops + self.beta_per_word * words


#: Rough default calibration for a modern x86 core running NumPy kernels.
#: Use :func:`repro.model.calibrate.calibrate_machine` for measured values.
DEFAULT_MACHINE = MachineModel(
    alpha_per_flop=2.5e-10, beta_per_word=4.0e-10, name="default"
)


@dataclass
class CostReport:
    """Predicted per-iteration cost of one strategy on one tensor.

    Attributes
    ----------
    strategy: the evaluated strategy.
    rank: CP rank assumed.
    flops_per_iteration / words_per_iteration:
        work for one full CP-ALS iteration (every non-root node rebuilt
        once, every leaf scattered once).
    peak_value_bytes:
        maximum bytes of simultaneously live memoized value matrices under
        the strategy's mode schedule.
    index_bytes:
        bytes of symbolic structures (index blocks + reduction plans),
        allocated once and held for the run's lifetime.
    node_nnz: per-node intermediate nonzero counts (model input).
    predicted_seconds: ``machine.seconds(flops, words)``.
    """

    strategy: MemoStrategy
    rank: int
    flops_per_iteration: int
    words_per_iteration: int
    peak_value_bytes: int
    index_bytes: int
    node_nnz: list[int]
    predicted_seconds: float

    @property
    def total_memory_bytes(self) -> int:
        """Peak transient values + persistent index structures."""
        return self.peak_value_bytes + self.index_bytes

    def summary(self) -> str:
        return (
            f"{self.strategy.name:<14s} flops/iter={self.flops_per_iteration:>14,d} "
            f"words/iter={self.words_per_iteration:>14,d} "
            f"peak_mem={self.total_memory_bytes / 1e6:>9.2f}MB "
            f"pred={self.predicted_seconds * 1e3:>9.3f}ms"
        )


def iteration_flops_words(
    strategy: MemoStrategy, node_nnz: Sequence[int], rank: int
) -> tuple[int, int]:
    """(flops, words) for one CP-ALS iteration under ``strategy``.

    Every non-root node is rebuilt exactly once per iteration (the schedule
    property of post-order mode updates), and every leaf's value matrix is
    read once when scattered into the MTTKRP output.
    """
    flops = 0
    words = 0
    for node in strategy.nodes:
        if node.is_root:
            continue
        parent_nnz = node_nnz[node.parent]  # type: ignore[index]
        f, w = contraction_work(parent_nnz, rank, len(node.delta))
        flops += f
        words += w
        if node.is_leaf:
            words += node_nnz[node.id] * rank
    return flops, words


@dataclass(frozen=True)
class NodeCostTerms:
    """One tree node's predicted contribution to an iteration's cost.

    One entry exists per strategy node (the root included, with zero work)
    so measured attributions align node-for-node by id.  ``words`` includes
    the leaf's scatter read (``scatter_words``); summing ``flops`` /
    ``words`` over all nodes reproduces :func:`iteration_flops_words`
    exactly — a tested invariant, not an approximation.
    """

    node_id: int
    modes: tuple[int, ...]
    parent: int | None
    delta: tuple[int, ...]
    nnz: int
    parent_nnz: int | None
    flops: int
    words: int
    scatter_words: int
    value_bytes: int
    index_bytes: int
    #: mode whose sub-iteration rebuilds this node in the steady-state
    #: schedule (None for the root, which is never rebuilt).
    rebuild_mode: int | None


def node_cost_terms(
    strategy: MemoStrategy, node_nnz: Sequence[int], rank: int
) -> list[NodeCostTerms]:
    """Per-node decomposition of one iteration's predicted flops/words.

    The per-node terms are exactly the addends of
    :func:`iteration_flops_words`: each non-root node contributes one
    rebuild from its parent (``contraction_work``) plus, for leaves, the
    scatter read of its value matrix into the MTTKRP output.  Byte terms
    mirror :func:`simulate_peak_value_bytes` (value matrices) and
    :func:`symbolic_index_bytes` (index structures) per node.
    """
    if len(node_nnz) != len(strategy.nodes):
        raise ValueError(
            f"node_nnz has {len(node_nnz)} entries for "
            f"{len(strategy.nodes)} nodes"
        )
    rebuild_mode: dict[int, int] = {}
    for mode, built in strategy.rebuild_schedule():
        for nid in built:
            rebuild_mode[nid] = mode
    terms: list[NodeCostTerms] = []
    for node in strategy.nodes:
        nnz_t = int(node_nnz[node.id])
        if node.is_root:
            terms.append(NodeCostTerms(
                node_id=node.id, modes=node.modes, parent=None, delta=(),
                nnz=nnz_t, parent_nnz=None, flops=0, words=0,
                scatter_words=0, value_bytes=0,
                index_bytes=nnz_t * len(node.modes) * INDEX_ITEMSIZE,
                rebuild_mode=None,
            ))
            continue
        parent_nnz = int(node_nnz[node.parent])  # type: ignore[index]
        flops, words = contraction_work(parent_nnz, rank, len(node.delta))
        scatter = nnz_t * rank if node.is_leaf else 0
        terms.append(NodeCostTerms(
            node_id=node.id, modes=node.modes, parent=node.parent,
            delta=node.delta, nnz=nnz_t, parent_nnz=parent_nnz,
            flops=flops, words=words + scatter, scatter_words=scatter,
            value_bytes=nnz_t * rank * VALUE_ITEMSIZE,
            index_bytes=(nnz_t * len(node.modes)
                         + parent_nnz + 2 * nnz_t) * INDEX_ITEMSIZE,
            rebuild_mode=rebuild_mode.get(node.id),
        ))
    return terms


def per_mode_cost(
    strategy: MemoStrategy, node_nnz: Sequence[int], rank: int
) -> dict[int, dict[str, int]]:
    """Predicted per-mode flops/words: node terms grouped by rebuild mode.

    Each mode's entry sums the :func:`node_cost_terms` of the nodes its
    sub-iteration rebuilds, so the per-mode values partition the iteration
    totals exactly.
    """
    out: dict[int, dict[str, int]] = {
        m: {"flops": 0, "words": 0, "nodes": 0}
        for m in strategy.mode_order
    }
    for term in node_cost_terms(strategy, node_nnz, rank):
        if term.rebuild_mode is None:
            continue
        agg = out[term.rebuild_mode]
        agg["flops"] += term.flops
        agg["words"] += term.words
        agg["nodes"] += 1
    return out


def simulate_peak_value_bytes(
    strategy: MemoStrategy, node_nnz: Sequence[int], rank: int
) -> int:
    """Peak live memoized-value bytes over one iteration's schedule.

    Replays the engine's cache behaviour: computing leaf ``n`` materializes
    every node on its root path; updating mode ``n`` then destroys every node
    whose contracted set contains ``n``.  Returns the maximum concurrent
    total of non-root value-matrix bytes.
    """
    live: set[int] = set()
    peak = 0
    bytes_of = [
        node_nnz[i] * rank * VALUE_ITEMSIZE for i in range(len(strategy.nodes))
    ]

    def total() -> int:
        return sum(bytes_of[i] for i in live)

    # Two passes: caches persist across iterations, so steady-state peaks can
    # exceed the cold-start first iteration.  Doomed nodes are freed on
    # entering a sub-iteration, before the path materializes (the engine's
    # eager-free schedule).
    for _ in range(2):
        for n in strategy.mode_order:
            for nid in strategy.invalidated_by(n):
                live.discard(nid)
            for nid in strategy.path_to_root(strategy.leaf_id(n)):
                if not strategy.nodes[nid].is_root:
                    live.add(nid)
            peak = max(peak, total())
    return peak


def symbolic_index_bytes(strategy: MemoStrategy, node_nnz: Sequence[int]) -> int:
    """Bytes of symbolic structures, matching ``SymbolicTree.index_nbytes``.

    Root: its index block aliases the tensor's coordinates (counted, since
    the model compares storage across strategies that all share it).
    Non-root node ``t``: index block (``nnz_t * |modes|`` indices), reduction
    permutation (``nnz_parent``), segment starts (``nnz_t``), and group ids
    (``nnz_t``).
    """
    total = 0
    for node in strategy.nodes:
        if node.is_root:
            total += node_nnz[node.id] * len(node.modes) * INDEX_ITEMSIZE
            continue
        nnz_t = node_nnz[node.id]
        nnz_p = node_nnz[node.parent]  # type: ignore[index]
        total += nnz_t * len(node.modes) * INDEX_ITEMSIZE
        total += (nnz_p + 2 * nnz_t) * INDEX_ITEMSIZE
    return total


def cost_report(
    strategy: MemoStrategy,
    node_nnz: Sequence[int],
    rank: int,
    machine: MachineModel = DEFAULT_MACHINE,
) -> CostReport:
    """Assemble a :class:`CostReport` from per-node nonzero counts."""
    if len(node_nnz) != len(strategy.nodes):
        raise ValueError(
            f"node_nnz has {len(node_nnz)} entries for "
            f"{len(strategy.nodes)} nodes"
        )
    flops, words = iteration_flops_words(strategy, node_nnz, rank)
    return CostReport(
        strategy=strategy,
        rank=rank,
        flops_per_iteration=flops,
        words_per_iteration=words,
        peak_value_bytes=simulate_peak_value_bytes(strategy, node_nnz, rank),
        index_bytes=symbolic_index_bytes(strategy, node_nnz),
        node_nnz=list(node_nnz),
        predicted_seconds=machine.seconds(flops, words),
    )


def cost_from_symbolic(
    symbolic: SymbolicTree, rank: int, machine: MachineModel = DEFAULT_MACHINE
) -> CostReport:
    """Cost report using exact node sizes from a built symbolic tree."""
    return cost_report(symbolic.strategy, symbolic.node_nnz(), rank, machine)


# -- execution tier / layout model ------------------------------------------
#
# The strategy model above chooses *what* to memoize; the execution model
# below chooses *how to run it*: thread tier vs process tier, COO index
# matrix vs ALTO packed codes.  This is the Dynasor-style per-tensor layout
# decision from the paper lifted to the runtime level: layouts trade index
# words for decode flops, tiers trade GIL serialization for IPC + partials
# reduction, and the same alpha/beta machine calibration prices both sides.


@dataclass(frozen=True)
class ExecutionParams:
    """Knobs of the tier/layout model (defaults fit the thread tier's
    measured E8 plateau and the process tier's dispatch overheads).

    ``gil_serial_fraction`` is the share of an MTTKRP's wall time spent in
    interpreter glue between GIL-releasing NumPy kernels — serialized on
    the thread tier, parallel on the process tier.
    ``memory_bound_fraction`` / ``bandwidth_workers`` mirror
    :class:`repro.parallel.simulate.ScalingParams`: that share of kernel
    time scales only to the memory system's effective stream count.
    ``bandwidth_workers=None`` (the default) defers to
    :func:`resolve_bandwidth_workers`: the measured saturation point from
    the host's ``repro-machine/v1`` calibration artifact when one exists,
    else the historical guess of 8 — an explicit value always wins.
    ``ipc_seconds_per_task`` is one process-pool dispatch + result
    (pickled specs and bounds, a few hundred bytes).
    ``alto_decode_flops_per_index`` prices recovering one coordinate from
    a packed code: the shift+mask pair is integer ALU work that overlaps
    the factor gather's memory latency, so it costs about one effective
    flop, not two — which is what makes the layout trade order-dependent
    (the ``N-1`` saved index words grow with order, the decode does not
    outpace them).
    """

    gil_serial_fraction: float = 0.45
    memory_bound_fraction: float = 0.6
    bandwidth_workers: int | None = None
    sync_seconds: float = 5e-5
    ipc_seconds_per_task: float = 2e-4
    alto_decode_flops_per_index: int = 1


DEFAULT_EXECUTION = ExecutionParams()

#: the pre-calibration guess for the memory system's effective stream
#: count, used only when no ``repro-machine/v1`` artifact exists.
FALLBACK_BANDWIDTH_WORKERS = 8


def resolve_bandwidth_workers(
    params: ExecutionParams = DEFAULT_EXECUTION,
) -> tuple[int, str]:
    """``(bandwidth_workers, source)`` for the execution model.

    Source is ``"explicit"`` when the params pin a value, ``"calibrated"``
    when the host's roofline artifact supplies its measured saturation
    point (:func:`repro.model.calibrate.load_roofline` — load-only, never
    measures), and ``"default"`` for the
    :data:`FALLBACK_BANDWIDTH_WORKERS` guess.  Plan artifacts record the
    source so a decision made from a guess is distinguishable from one
    made from a measurement.
    """
    if params.bandwidth_workers is not None:
        return int(params.bandwidth_workers), "explicit"
    from .calibrate import load_roofline

    roofline = load_roofline()
    if roofline is not None:
        return max(1, int(roofline.saturation_workers)), "calibrated"
    return FALLBACK_BANDWIDTH_WORKERS, "default"


@dataclass
class ExecutionCandidate:
    """One (tier, layout) execution plan priced for a tensor.

    ``terms`` decomposes ``predicted_seconds``: ``base_seconds`` (the
    serial alpha*flops + beta*words time), ``parallel_seconds`` (kernel
    time after Amdahl + bandwidth scaling), and the tier's overheads
    (``gil_seconds`` / ``sync_seconds`` for threads, ``ipc_seconds`` /
    ``reduction_seconds`` for processes).  Infeasible candidates (alto
    overflowing its 63-bit budget) carry ``feasible=False`` and a reason.
    """

    tier: str
    layout: str
    n_workers: int
    feasible: bool
    predicted_seconds: float
    index_bytes: int
    terms: dict = field(default_factory=dict)
    reason: str | None = None

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "layout": self.layout,
            "n_workers": self.n_workers,
            "feasible": self.feasible,
            "predicted_seconds": self.predicted_seconds,
            "index_bytes": self.index_bytes,
            "terms": dict(self.terms),
            "reason": self.reason,
        }


def coo_mode_work(shape, nnz: int, rank: int, mode: int, layout: str,
                  params: ExecutionParams = DEFAULT_EXECUTION
                  ) -> tuple[float, float]:
    """(flops, words) of one COO MTTKRP for ``mode`` over ``nnz`` nonzeros.

    ``N-1`` gathered-row Hadamard multiplies, the value multiply, and the
    scatter-add (``nnz*R*(N+1)`` flops); value traffic is the gathered
    rows, the value vector, and the output read+write; index traffic is
    ``N`` coordinate reads per nonzero on the COO layout and one packed
    code per nonzero plus decode flops on alto.

    Pass a shard's nonzero count to price one worker's span: the output
    term stays full-size because every shard scatters into its own
    ``I_n x R`` partial (the roofline attribution pass joins these terms
    to measured ``kernel`` span seconds, so the convention must match
    what a shard actually touches).
    """
    ndim = len(shape)
    flops = float(nnz * rank * (ndim + 1))
    words = float(nnz * rank * (ndim - 1) + nnz + 2 * shape[mode] * rank)
    if layout == "alto":
        words += nnz
        flops += params.alto_decode_flops_per_index * ndim * nnz
    else:
        words += nnz * ndim
    return flops, words


def _iteration_base(shape, nnz: int, rank: int, layout: str,
                    params: ExecutionParams) -> tuple[float, float, int]:
    """(flops, words, index_bytes) of one COO MTTKRP iteration (all modes).

    The per-mode addends are exactly :func:`coo_mode_work`, so span-level
    attributions built from it partition these totals.
    """
    ndim = len(shape)
    flops = 0.0
    words = 0.0
    for n in range(ndim):
        f, w = coo_mode_work(shape, nnz, rank, n, layout, params)
        flops += f
        words += w
    index_bytes = nnz * (8 if layout == "alto" else ndim * INDEX_ITEMSIZE)
    return flops, words, index_bytes


def iteration_io_lower_bound_bytes(shape, nnz: int, rank: int,
                                   layout: str = "numpy") -> int:
    """Compulsory memory traffic of one COO iteration: the roofline floor.

    Per mode: every nonzero value and its coordinates (or packed code)
    must be read once, every non-target factor streamed once (assuming
    perfect cache reuse of gathered rows — the bound's whole point), and
    the output written once.  No model parameters enter: this is the
    traffic no schedule, chunking, or layout trick can avoid, so
    ``bytes / measured_bandwidth`` is a machine-checkable time floor for
    ``repro plan`` to cite next to its alpha/beta prediction.
    """
    ndim = len(shape)
    idx_bytes = INDEX_ITEMSIZE if layout == "alto" else ndim * INDEX_ITEMSIZE
    total = 0
    for n in range(ndim):
        total += nnz * VALUE_ITEMSIZE            # nonzero values
        total += nnz * idx_bytes                 # coordinates / packed codes
        total += sum(
            shape[m] for m in range(ndim) if m != n
        ) * rank * VALUE_ITEMSIZE                # factors streamed once
        total += shape[n] * rank * VALUE_ITEMSIZE  # output written once
    return int(total)


def execution_candidates(
    shape: Sequence[int],
    nnz: int,
    rank: int,
    n_workers: int,
    machine: MachineModel = DEFAULT_MACHINE,
    params: ExecutionParams = DEFAULT_EXECUTION,
) -> list[ExecutionCandidate]:
    """Price every {thread, process} x {numpy, alto} combination.

    Thread tier: the GIL-serial fraction does not scale; the kernel
    remainder splits into a bandwidth-limited share (scales to
    ``bandwidth_workers``) and a compute share (scales to ``p``), plus a
    per-mode synchronization term.  Process tier: no GIL term, full kernel
    scaling, but each mode pays ``p`` task dispatches and (for the
    ``ndim - 1`` non-leading modes) a parent-side reduction of ``p``
    partial slabs.  Returned in input order (thread/process x
    numpy/alto); use :func:`recommend_execution` for the winner.
    """
    shape = tuple(int(s) for s in shape)
    ndim = len(shape)
    p = max(1, int(n_workers))
    alto_total_bits = sum(alto_bits(shape))
    alto_ok = alto_total_bits <= MAX_BITS
    bandwidth_workers, _bw_source = resolve_bandwidth_workers(params)
    eff = min(p, bandwidth_workers)
    # Exactly 1.0 at p=1 so both tiers price a single worker identically
    # (and recommend_execution's min() resolves the tie to "thread",
    # which needs no pool at all).
    kernel_scale = 1.0 if p == 1 else (
        params.memory_bound_fraction / eff
        + (1.0 - params.memory_bound_fraction) / p
    )
    out: list[ExecutionCandidate] = []
    for tier in ("thread", "process"):
        for layout in ("numpy", "alto"):
            if layout == "alto" and not alto_ok:
                out.append(ExecutionCandidate(
                    tier=tier, layout=layout, n_workers=p, feasible=False,
                    predicted_seconds=float("inf"), index_bytes=0,
                    reason=(f"needs {alto_total_bits} index bits; "
                            f"max is {MAX_BITS}"),
                ))
                continue
            flops, words, index_bytes = _iteration_base(
                shape, nnz, rank, layout, params
            )
            base = machine.seconds(flops, words)
            terms = {
                "flops": flops,
                "words": words,
                "base_seconds": base,
                "bandwidth_workers": bandwidth_workers,
                "io_lower_bound_bytes": iteration_io_lower_bound_bytes(
                    shape, nnz, rank, layout
                ),
            }
            if tier == "thread":
                gil = base * params.gil_serial_fraction
                # p=1: the exact complement, so gil + par == base == the
                # process tier's single-worker price (tie, thread wins).
                par = (base - gil if p == 1 else
                       base * (1.0 - params.gil_serial_fraction) * kernel_scale)
                sync = params.sync_seconds * ndim if p > 1 else 0.0
                terms.update(gil_seconds=gil, parallel_seconds=par,
                             sync_seconds=sync)
                seconds = gil + par + sync
            else:
                par = base * kernel_scale
                ipc = params.ipc_seconds_per_task * ndim * p if p > 1 else 0.0
                reduction = (
                    machine.beta_per_word
                    * 2.0 * p * rank * sum(shape[1:])
                    if p > 1 else 0.0
                )
                terms.update(parallel_seconds=par, ipc_seconds=ipc,
                             reduction_seconds=reduction)
                seconds = par + ipc + reduction
            out.append(ExecutionCandidate(
                tier=tier, layout=layout, n_workers=p, feasible=True,
                predicted_seconds=seconds, index_bytes=index_bytes,
                terms=terms,
            ))
    return out


def recommend_execution(
    shape: Sequence[int],
    nnz: int,
    rank: int,
    n_workers: int,
    machine: MachineModel = DEFAULT_MACHINE,
    params: ExecutionParams = DEFAULT_EXECUTION,
) -> ExecutionCandidate:
    """The cheapest feasible execution candidate for this tensor."""
    candidates = [
        c for c in execution_candidates(
            shape, nnz, rank, n_workers, machine, params
        ) if c.feasible
    ]
    return min(candidates, key=lambda c: c.predicted_seconds)
