"""Plain-text table formatting for benchmark and planner output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an ASCII table with right-aligned numeric columns.

    Every row must have exactly one cell per header; ragged input raises
    ``ValueError`` (a short row would otherwise render as a silently
    misaligned table, a long one as an ``IndexError``).
    """
    if not headers:
        raise ValueError("format_table requires at least one header")
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)} "
                f"(headers: {', '.join(map(str, headers))})"
            )
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        cells = []
        for j, cell in enumerate(row):
            if _is_numeric(cell):
                cells.append(cell.rjust(widths[j]))
            else:
                cells.append(cell.ljust(widths[j]))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.replace(",", ""))
        return True
    except ValueError:
        return False
