"""Performance model and the adaptive (model-driven) strategy planner."""

from .calibrate import (MACHINE_SCHEMA, BandwidthPoint, MachineRoofline,
                        calibrate_machine, calibrate_roofline,
                        default_machine_path, load_roofline, machine_artifact,
                        measure_roofline, reset_calibration,
                        validate_machine_artifact)
from .cost import (DEFAULT_EXECUTION, DEFAULT_MACHINE,
                   FALLBACK_BANDWIDTH_WORKERS, CostReport, ExecutionCandidate,
                   ExecutionParams, MachineModel, coo_mode_work,
                   cost_from_symbolic, cost_report, execution_candidates,
                   iteration_flops_words, iteration_io_lower_bound_bytes,
                   recommend_execution, resolve_bandwidth_workers,
                   simulate_peak_value_bytes, symbolic_index_bytes)
from .fit import WorkSample, collect_samples, fit_machine_model, fitted_machine
from .overlap import DistinctCounter
from .planner import PlannerReport, ScoredStrategy, plan
from .search import greedy_tree, search_candidates
from .report import format_table

__all__ = [
    "MACHINE_SCHEMA",
    "BandwidthPoint",
    "MachineRoofline",
    "calibrate_machine",
    "calibrate_roofline",
    "default_machine_path",
    "load_roofline",
    "machine_artifact",
    "measure_roofline",
    "reset_calibration",
    "validate_machine_artifact",
    "DEFAULT_EXECUTION",
    "DEFAULT_MACHINE",
    "FALLBACK_BANDWIDTH_WORKERS",
    "CostReport",
    "ExecutionCandidate",
    "ExecutionParams",
    "MachineModel",
    "coo_mode_work",
    "cost_from_symbolic",
    "cost_report",
    "execution_candidates",
    "iteration_flops_words",
    "iteration_io_lower_bound_bytes",
    "recommend_execution",
    "resolve_bandwidth_workers",
    "simulate_peak_value_bytes",
    "symbolic_index_bytes",
    "DistinctCounter",
    "WorkSample",
    "collect_samples",
    "fit_machine_model",
    "fitted_machine",
    "PlannerReport",
    "ScoredStrategy",
    "plan",
    "greedy_tree",
    "search_candidates",
    "format_table",
]
