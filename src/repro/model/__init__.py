"""Performance model and the adaptive (model-driven) strategy planner."""

from .calibrate import calibrate_machine, reset_calibration
from .cost import (DEFAULT_EXECUTION, DEFAULT_MACHINE, CostReport,
                   ExecutionCandidate, ExecutionParams, MachineModel,
                   cost_from_symbolic, cost_report, execution_candidates,
                   iteration_flops_words, recommend_execution,
                   simulate_peak_value_bytes, symbolic_index_bytes)
from .fit import WorkSample, collect_samples, fit_machine_model, fitted_machine
from .overlap import DistinctCounter
from .planner import PlannerReport, ScoredStrategy, plan
from .search import greedy_tree, search_candidates
from .report import format_table

__all__ = [
    "calibrate_machine",
    "reset_calibration",
    "DEFAULT_EXECUTION",
    "DEFAULT_MACHINE",
    "CostReport",
    "ExecutionCandidate",
    "ExecutionParams",
    "MachineModel",
    "cost_from_symbolic",
    "cost_report",
    "execution_candidates",
    "iteration_flops_words",
    "recommend_execution",
    "simulate_peak_value_bytes",
    "symbolic_index_bytes",
    "DistinctCounter",
    "WorkSample",
    "collect_samples",
    "fit_machine_model",
    "fitted_machine",
    "PlannerReport",
    "ScoredStrategy",
    "plan",
    "greedy_tree",
    "search_candidates",
    "format_table",
]
