"""Index-overlap estimation: intermediate nonzero counts without contraction.

A strategy node keeping mode set ``S`` has as many nonzeros as the input
tensor has *distinct* coordinate projections onto ``S``.  The planner needs
these counts for dozens of candidate trees; two facts keep that cheap:

* counts depend only on the mode *set*, so they are shared across every
  candidate containing a node with the same set — one cache serves all; and
* each count is a single distinct-row pass (``exact``) or a Chao-corrected
  sample estimate (``sampled``) for very large tensors.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core import rowcodes
from ..core.coo import CooTensor
from ..core.strategy import MemoStrategy
from ..core.validate import check_random_state


class DistinctCounter:
    """Cached distinct-projection counter for one tensor.

    Parameters
    ----------
    tensor: the input tensor.
    method: ``'exact'`` (full distinct-row count) or ``'sampled'``
        (Chao1-corrected estimate on ``sample_size`` rows).
    sample_size: rows drawn for the sampled method.
    random_state: seed for sampling.
    """

    def __init__(self, tensor: CooTensor, *, method: str = "exact",
                 sample_size: int = 100_000, random_state=0):
        if method not in ("exact", "sampled"):
            raise ValueError(f"method must be 'exact' or 'sampled', got {method!r}")
        self.tensor = tensor
        self.method = method
        self.sample_size = int(sample_size)
        self._rng = check_random_state(random_state)
        self._cache: dict[frozenset[int], int] = {}
        self._sample_rows: np.ndarray | None = None

    def count(self, modes: Iterable[int]) -> int:
        """(Estimated) number of distinct projections onto ``modes``."""
        key = frozenset(int(m) for m in modes)
        if not key:
            return 1 if self.tensor.nnz else 0
        if key == frozenset(range(self.tensor.ndim)):
            return self.tensor.nnz
        if key not in self._cache:
            cols = sorted(key)
            dims = [self.tensor.shape[c] for c in cols]
            if self.method == "exact" or self.tensor.nnz <= self.sample_size:
                self._cache[key] = rowcodes.count_distinct_rows(
                    self.tensor.idx[:, cols], dims
                )
            else:
                self._cache[key] = self._sampled_count(cols, dims)
        return self._cache[key]

    def _sample(self) -> np.ndarray:
        if self._sample_rows is None:
            self._sample_rows = self._rng.choice(
                self.tensor.nnz, size=self.sample_size, replace=False
            )
        return self._sample_rows

    def _sampled_count(self, cols: Sequence[int], dims: Sequence[int]) -> int:
        """Chao1 species-richness estimate, capped by population bounds."""
        rows = self._sample()
        sub = self.tensor.idx[np.sort(rows)][:, cols]
        codes = rowcodes.encode_rows(sub, dims) if rowcodes.fits_int64(dims) else None
        if codes is None:
            uniq, counts = np.unique(sub, axis=0, return_counts=True)
            counts = counts.ravel()
        else:
            _, counts = np.unique(codes, return_counts=True)
        u = counts.shape[0]
        f1 = int((counts == 1).sum())
        f2 = int((counts == 2).sum())
        if f2 > 0:
            estimate = u + f1 * f1 / (2.0 * f2)
        else:
            estimate = u + f1 * (f1 - 1) / 2.0
        # The estimate cannot exceed the nonzero count nor the projected
        # cell count; nor fall below what the sample already saw.
        cap = float(self.tensor.nnz)
        cell_cap = 1.0
        for d in dims:
            cell_cap *= float(d)
            if cell_cap > cap:
                break
        return int(min(max(estimate, u), cap, cell_cap))

    def node_nnz(self, strategy: MemoStrategy) -> list[int]:
        """Per-node intermediate sizes for ``strategy`` (cost-model input)."""
        return [self.count(node.modes) for node in strategy.nodes]

    def cache_size(self) -> int:
        return len(self._cache)
