"""Machine calibration: fit the time model's alpha/beta on this host.

The cost model's two constants are the per-flop cost of a streaming Hadamard
multiply-accumulate and the per-word cost of an indexed gather — measured by
micro-benchmarks shaped exactly like the engine's inner kernels.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.dtypes import VALUE_DTYPE
from .cost import MachineModel

_cached: MachineModel | None = None


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate_machine(
    n_elements: int = 2_000_000, rank: int = 16, repeats: int = 3,
    *, force: bool = False,
) -> MachineModel:
    """Measure alpha (per flop) and beta (per word) on this machine.

    Results are cached per process; pass ``force=True`` to re-measure.
    """
    global _cached
    if _cached is not None and not force:
        return _cached
    rng = np.random.default_rng(0)
    rows = n_elements // rank
    a = rng.random((rows, rank), dtype=VALUE_DTYPE)
    b = rng.random((rows, rank), dtype=VALUE_DTYPE)
    out = np.empty_like(a)

    # alpha: streaming multiply, one flop per element.
    def mul():
        np.multiply(a, b, out=out)

    mul()  # warm caches / allocator
    alpha = _best_of(mul, repeats) / (rows * rank)

    # beta: random-row gather, one word per element read plus one written.
    gather_rows = rng.integers(0, rows, size=rows)

    def gather():
        out[...] = a[gather_rows]

    gather()
    beta = _best_of(gather, repeats) / (2 * rows * rank)

    _cached = MachineModel(
        alpha_per_flop=float(max(alpha, 1e-12)),
        beta_per_word=float(max(beta, 1e-12)),
        name="calibrated",
    )
    return _cached


def reset_calibration() -> None:
    """Drop the cached calibration (tests)."""
    global _cached
    _cached = None
