"""Machine calibration: fit the time model's constants and ceilings.

Two layers share this module:

* **alpha/beta fit** — the cost model's two constants are the per-flop
  cost of a streaming Hadamard multiply-accumulate and the per-word cost
  of an indexed gather, measured by micro-benchmarks shaped exactly like
  the engine's inner kernels (:func:`calibrate_machine`).
* **roofline ceilings** — STREAM-style bandwidth microbenchmarks at
  1..N threads (triad and indexed gather) plus a dense-matmul compute
  ceiling (:func:`measure_roofline`).  The bandwidth curve yields the
  host's *saturation point*: the smallest worker count that already
  reaches the memory system's peak, which replaces the execution model's
  former hardcoded ``bandwidth_workers = 8`` guess
  (:func:`repro.model.cost.resolve_bandwidth_workers`).

Ceilings are cached to a versioned ``repro-machine/v1`` artifact (JSON,
shared ``repro-bench/v1`` envelope) at :func:`default_machine_path` so a
one-time ``repro roofline`` calibration serves every later plan, trace
report, and dashboard on the same host.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..core.dtypes import INDEX_DTYPE, VALUE_DTYPE, VALUE_ITEMSIZE
from .cost import MachineModel

#: payload schema tag for the machine-calibration artifact (bump on change).
MACHINE_SCHEMA = "repro-machine/v1"

#: a thread count "saturates" bandwidth once its triad rate is within this
#: fraction of the curve's peak — loose enough that run-to-run noise on a
#: saturated machine does not push the knee one power of two to the right.
SATURATION_FRACTION = 0.9

#: in-process memo of alpha/beta fits, keyed on the measurement parameters
#: (a second call with different sizes must re-measure, not alias the
#: first result).
_machine_cache: dict[tuple[int, int, int], MachineModel] = {}

#: in-process memo of the last roofline loaded/measured: (path, roofline).
_roofline_cache: tuple[str, "MachineRoofline"] | None = None


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate_machine(
    n_elements: int = 2_000_000, rank: int = 16, repeats: int = 3,
    *, force: bool = False,
) -> MachineModel:
    """Measure alpha (per flop) and beta (per word) on this machine.

    Results are cached per process, keyed on ``(n_elements, rank,
    repeats)`` — distinct measurement sizes are distinct calibrations.
    Pass ``force=True`` to re-measure.
    """
    key = (int(n_elements), int(rank), int(repeats))
    if not force and key in _machine_cache:
        return _machine_cache[key]
    rng = np.random.default_rng(0)
    rows = n_elements // rank
    a = rng.random((rows, rank), dtype=VALUE_DTYPE)
    b = rng.random((rows, rank), dtype=VALUE_DTYPE)
    out = np.empty_like(a)

    # alpha: streaming multiply, one flop per element.
    def mul():
        np.multiply(a, b, out=out)

    mul()  # warm caches / allocator
    alpha = _best_of(mul, repeats) / (rows * rank)

    # beta: random-row gather, one word per element read plus one written.
    gather_rows = rng.integers(0, rows, size=rows)

    def gather():
        out[...] = a[gather_rows]

    gather()
    beta = _best_of(gather, repeats) / (2 * rows * rank)

    model = MachineModel(
        alpha_per_flop=float(max(alpha, 1e-12)),
        beta_per_word=float(max(beta, 1e-12)),
        name="calibrated",
    )
    _machine_cache[key] = model
    return model


def reset_calibration() -> None:
    """Drop every cached calibration — alpha/beta fits and roofline (tests).

    Disk artifacts are left alone; only the in-process memos clear.
    """
    global _roofline_cache
    _machine_cache.clear()
    _roofline_cache = None


# -- roofline ceilings -------------------------------------------------------


@dataclass(frozen=True)
class BandwidthPoint:
    """Measured memory throughput at one thread count.

    ``triad_gbs`` is the streaming (STREAM add/triad) rate; ``gather_gbs``
    the random-gather rate — the engine's scatter/gather kernels live
    between the two.
    """

    threads: int
    triad_gbs: float
    gather_gbs: float

    def to_dict(self) -> dict:
        return {"threads": self.threads, "triad_gbs": self.triad_gbs,
                "gather_gbs": self.gather_gbs}


@dataclass(frozen=True)
class MachineRoofline:
    """The host's measured ceilings: bandwidth curve + compute peak.

    ``saturation_workers`` is the smallest measured thread count whose
    triad rate reaches ``SATURATION_FRACTION`` of ``peak_bandwidth_gbs``
    — beyond it, extra workers add no memory throughput, which is the
    number the execution model's bandwidth-scaling term wants.
    """

    bandwidth_points: tuple[BandwidthPoint, ...]
    peak_bandwidth_gbs: float
    peak_gather_gbs: float
    saturation_workers: int
    peak_gflops: float
    host_cpus: int
    n_elements: int
    quick: bool = False

    def to_dict(self) -> dict:
        return {
            "bandwidth_points": [p.to_dict() for p in self.bandwidth_points],
            "peak_bandwidth_gbs": self.peak_bandwidth_gbs,
            "peak_gather_gbs": self.peak_gather_gbs,
            "saturation_workers": self.saturation_workers,
            "peak_gflops": self.peak_gflops,
            "host_cpus": self.host_cpus,
            "n_elements": self.n_elements,
            "quick": self.quick,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MachineRoofline":
        return cls(
            bandwidth_points=tuple(
                BandwidthPoint(int(p["threads"]), float(p["triad_gbs"]),
                               float(p["gather_gbs"]))
                for p in d["bandwidth_points"]
            ),
            peak_bandwidth_gbs=float(d["peak_bandwidth_gbs"]),
            peak_gather_gbs=float(d["peak_gather_gbs"]),
            saturation_workers=int(d["saturation_workers"]),
            peak_gflops=float(d["peak_gflops"]),
            host_cpus=int(d["host_cpus"]),
            n_elements=int(d["n_elements"]),
            quick=bool(d.get("quick", False)),
        )

    def summary(self) -> str:
        from .report import format_table

        rows = [
            [p.threads, round(p.triad_gbs, 2), round(p.gather_gbs, 2),
             ("<- saturates" if p.threads == self.saturation_workers else "")]
            for p in self.bandwidth_points
        ]
        table = format_table(
            ["threads", "triad GB/s", "gather GB/s", ""], rows,
            title=(f"memory-bandwidth curve ({self.host_cpus} cpus, "
                   f"{self.n_elements:,} elements"
                   f"{', quick' if self.quick else ''})"),
        )
        return (
            f"{table}\n"
            f"ceilings: bandwidth {self.peak_bandwidth_gbs:.2f} GB/s "
            f"(gather {self.peak_gather_gbs:.2f} GB/s), compute "
            f"{self.peak_gflops:.2f} GFLOP/s; bandwidth saturates at "
            f"{self.saturation_workers} worker(s)"
        )


def _thread_counts(max_threads: int | None) -> list[int]:
    """1, 2, 4, ... up to the host's cpu count (or an explicit cap)."""
    cpus = os.cpu_count() or 1
    limit = max(1, min(int(max_threads), cpus) if max_threads else cpus)
    counts = {1, limit}
    p = 2
    while p < limit:
        counts.add(p)
        p *= 2
    return sorted(counts)


def _parallel_best(worker_fns, repeats: int) -> float:
    """Best-of wall seconds running all callables concurrently.

    The calling thread takes the first share so a single-threaded point
    pays no thread start/join cost at all; NumPy releases the GIL inside
    the array ops, so the remaining shares genuinely overlap.
    """
    best = float("inf")
    for _ in range(repeats):
        threads = [threading.Thread(target=fn) for fn in worker_fns[1:]]
        t0 = time.perf_counter()
        for th in threads:
            th.start()
        worker_fns[0]()
        for th in threads:
            th.join()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_roofline(
    *,
    n_elements: int = 4_000_000,
    repeats: int = 3,
    max_threads: int | None = None,
    matmul_n: int = 384,
    quick: bool = False,
) -> MachineRoofline:
    """Measure the host's bandwidth saturation curve and compute ceiling.

    Bandwidth: for each thread count, disjoint contiguous slices of the
    same arrays are processed concurrently — a 3-stream add (``out = b +
    c``; NumPy cannot fuse STREAM's scalar multiply without a second
    pass, and the traffic is identical at 3 words/element) and an
    indexed gather (index read + gathered read + write, 3 words/element
    as a compulsory-traffic lower bound).  Compute: a dense matmul,
    ``2 n^3`` flops at whatever threading the BLAS brings — the dense
    roof sparse kernels are compared against.
    """
    if quick:
        n_elements = min(n_elements, 400_000)
        repeats = min(repeats, 2)
        matmul_n = min(matmul_n, 160)
        if max_threads is None:
            max_threads = 4
    rng = np.random.default_rng(0)
    n = int(n_elements)
    b = rng.random(n, dtype=VALUE_DTYPE)
    c = rng.random(n, dtype=VALUE_DTYPE)
    out = np.empty_like(b)
    idx = rng.integers(0, n, size=n, dtype=INDEX_DTYPE)

    points: list[BandwidthPoint] = []
    for p in _thread_counts(max_threads):
        bounds = np.linspace(0, n, p + 1, dtype=np.int64)
        slices = [slice(int(lo), int(hi))
                  for lo, hi in zip(bounds[:-1], bounds[1:])]

        def triad(sl):
            np.add(b[sl], c[sl], out=out[sl])

        def gather(sl):
            out[sl] = b[idx[sl]]

        triad_fns = [lambda sl=sl: triad(sl) for sl in slices]
        gather_fns = [lambda sl=sl: gather(sl) for sl in slices]
        for fn in (triad_fns[0], gather_fns[0]):
            fn()  # warm: caches, page faults, lazy thread state
        triad_s = _parallel_best(triad_fns, repeats)
        gather_s = _parallel_best(gather_fns, repeats)
        bytes_moved = 3.0 * n * VALUE_ITEMSIZE
        points.append(BandwidthPoint(
            threads=p,
            triad_gbs=bytes_moved / triad_s / 1e9,
            gather_gbs=bytes_moved / gather_s / 1e9,
        ))

    peak = max(pt.triad_gbs for pt in points)
    saturation = next(
        pt.threads for pt in points
        if pt.triad_gbs >= SATURATION_FRACTION * peak
    )

    k = int(matmul_n)
    a2 = rng.random((k, k), dtype=VALUE_DTYPE)
    b2 = rng.random((k, k), dtype=VALUE_DTYPE)
    c2 = np.empty_like(a2)

    def matmul():
        np.matmul(a2, b2, out=c2)

    matmul()
    gflops = 2.0 * k ** 3 / _best_of(matmul, repeats) / 1e9

    return MachineRoofline(
        bandwidth_points=tuple(points),
        peak_bandwidth_gbs=peak,
        peak_gather_gbs=max(pt.gather_gbs for pt in points),
        saturation_workers=saturation,
        peak_gflops=gflops,
        host_cpus=os.cpu_count() or 1,
        n_elements=n,
        quick=quick,
    )


def default_machine_path() -> str:
    """Where the host's calibration artifact lives.

    ``REPRO_MACHINE`` overrides (tests, CI); the default is a per-user
    cache path so one ``repro roofline`` serves every checkout.
    """
    env = os.environ.get("REPRO_MACHINE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "repro-machine-v1.json")


def machine_artifact(roofline: MachineRoofline,
                     machine: MachineModel | None = None) -> dict:
    """The ``repro-machine/v1`` payload in the shared artifact envelope."""
    from ..obs.buildinfo import artifact_envelope

    payload = {
        "schema": MACHINE_SCHEMA,
        "roofline": roofline.to_dict(),
        "machine": None if machine is None else {
            "name": machine.name,
            "alpha_per_flop": machine.alpha_per_flop,
            "beta_per_word": machine.beta_per_word,
        },
    }
    return artifact_envelope("machine-calibration", payload,
                             host_cpus=roofline.host_cpus,
                             quick=roofline.quick)


def validate_machine_artifact(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a sound machine artifact.

    Structural checks only — thread counts strictly increasing from 1,
    positive ceilings, the saturation point among the measured counts —
    never throughput magnitudes, so CI can validate deterministically.
    """
    from ..obs.buildinfo import ARTIFACT_SCHEMA

    if not isinstance(doc, dict):
        raise ValueError("machine artifact must be a JSON object")
    if doc.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"envelope schema {doc.get('schema')!r} != {ARTIFACT_SCHEMA!r}"
        )
    payload = doc.get("result")
    if not isinstance(payload, dict):
        raise ValueError("machine artifact has no result payload")
    if payload.get("schema") != MACHINE_SCHEMA:
        raise ValueError(
            f"payload schema {payload.get('schema')!r} != {MACHINE_SCHEMA!r}"
        )
    roof = payload.get("roofline")
    if not isinstance(roof, dict):
        raise ValueError("machine artifact has no roofline section")
    points = roof.get("bandwidth_points")
    if not points:
        raise ValueError("roofline has no bandwidth points")
    threads = [p.get("threads") for p in points]
    if threads[0] != 1 or threads != sorted(set(threads)):
        raise ValueError(
            f"bandwidth thread counts must increase from 1, got {threads}"
        )
    for p in points:
        for key in ("triad_gbs", "gather_gbs"):
            if not (isinstance(p.get(key), (int, float)) and p[key] > 0):
                raise ValueError(f"bandwidth point {p} has bad {key!r}")
    for key in ("peak_bandwidth_gbs", "peak_gather_gbs", "peak_gflops"):
        if not (isinstance(roof.get(key), (int, float)) and roof[key] > 0):
            raise ValueError(f"roofline {key!r} must be positive")
    if roof.get("saturation_workers") not in threads:
        raise ValueError(
            f"saturation_workers {roof.get('saturation_workers')!r} is not "
            f"a measured thread count {threads}"
        )
    machine = payload.get("machine")
    if machine is not None:
        for key in ("alpha_per_flop", "beta_per_word"):
            if not (isinstance(machine.get(key), (int, float))
                    and machine[key] > 0):
                raise ValueError(f"machine {key!r} must be positive")


def calibrate_roofline(
    *,
    force: bool = False,
    quick: bool = False,
    path: str | None = None,
    max_threads: int | None = None,
) -> MachineRoofline:
    """Measure-or-load the host roofline, persisting the artifact.

    Resolution order: in-process memo, then the artifact at ``path``
    (default :func:`default_machine_path`), then a fresh measurement —
    which is written back so the next process loads instead of measuring.
    ``force=True`` always re-measures and overwrites.
    """
    global _roofline_cache
    resolved = path or default_machine_path()
    if not force:
        cached = load_roofline(resolved)
        if cached is not None:
            return cached
    roofline = measure_roofline(quick=quick, max_threads=max_threads)
    machine = calibrate_machine(
        n_elements=200_000 if quick else 2_000_000,
        repeats=2 if quick else 3,
    )
    doc = machine_artifact(roofline, machine)
    directory = os.path.dirname(resolved)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(resolved, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    _roofline_cache = (resolved, roofline)
    return roofline


def load_roofline(path: str | None = None) -> MachineRoofline | None:
    """The persisted roofline, or ``None`` — never measures.

    Invalid or missing artifacts degrade to ``None`` (callers report
    "uncalibrated"), so stale or corrupt cache files cannot crash a plan.
    """
    global _roofline_cache
    resolved = path or default_machine_path()
    if _roofline_cache is not None and _roofline_cache[0] == resolved:
        return _roofline_cache[1]
    try:
        with open(resolved) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    try:
        validate_machine_artifact(doc)
        roofline = MachineRoofline.from_dict(doc["result"]["roofline"])
    except (ValueError, KeyError, TypeError):
        return None
    _roofline_cache = (resolved, roofline)
    return roofline
