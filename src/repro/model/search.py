"""Greedy strategy search for orders beyond exhaustive enumeration.

The contiguous-binary-tree space grows as the Catalan numbers
(`~4^N / N^1.5`), so past order ~8 the planner cannot score every tree.  The
greedy constructor builds one good tree top-down: at each node it picks the
contiguous cut of the (permuted) mode list that minimizes the *estimated
downstream cost* of the two children, using the same distinct-projection
counts the cost model consumes — so the greedy tree plugs into the planner as
one more candidate, scored on equal footing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.coo import CooTensor
from ..core.strategy import MemoStrategy, from_nested
from .overlap import DistinctCounter


def greedy_tree(
    tensor: CooTensor,
    *,
    counter: DistinctCounter | None = None,
    mode_order: Sequence[int] | None = None,
    name: str = "greedy",
) -> MemoStrategy:
    """Build a memoization tree greedily by best contiguous cut.

    ``mode_order`` permutes the modes before cutting (defaults to sorting by
    per-mode distinct-index count, which groups "collapsible" modes — a
    standard heuristic for maximizing intermediate shrinkage).  The result is
    a valid :class:`MemoStrategy` over the *original* mode labels.
    """
    if tensor.ndim < 2:
        raise ValueError("greedy_tree requires an order >= 2 tensor")
    counter = counter or DistinctCounter(tensor)
    if mode_order is None:
        sizes = [counter.count([m]) for m in range(tensor.ndim)]
        mode_order = list(np.argsort(sizes, kind="stable"))
    else:
        mode_order = list(mode_order)
        if sorted(mode_order) != list(range(tensor.ndim)):
            raise ValueError("mode_order must permute all modes")

    # Memoize subtree cost by mode tuple; the recursion in _subtree_cost is
    # exponential in principle but operates on contiguous slices of
    # mode_order, giving O(N^2) distinct tuples.
    from functools import lru_cache

    order = tuple(mode_order)

    @lru_cache(maxsize=None)
    def cost(lo: int, hi: int, parent_nnz: int) -> float:
        modes = order[lo:hi]
        if len(modes) == 1:
            return float(parent_nnz)
        nnz_here = counter.count(modes)
        best = float("inf")
        for cut in range(lo + 1, hi):
            best = min(best, cost(lo, cut, nnz_here) + cost(cut, hi, nnz_here))
        return float(parent_nnz) + best

    def build(lo: int, hi: int, parent_nnz: int):
        modes = order[lo:hi]
        if len(modes) == 1:
            return int(modes[0])
        nnz_here = counter.count(modes)
        best_cut, best_cost = lo + 1, float("inf")
        for cut in range(lo + 1, hi):
            c = cost(lo, cut, nnz_here) + cost(cut, hi, nnz_here)
            if c < best_cost:
                best_cut, best_cost = cut, c
        return (build(lo, best_cut, nnz_here), build(best_cut, hi, nnz_here))

    spec = build(0, tensor.ndim, tensor.nnz)
    return from_nested(spec, name=name)


def search_candidates(
    tensor: CooTensor,
    *,
    counter: DistinctCounter | None = None,
    exhaustive_limit: int = 8,
) -> list[MemoStrategy]:
    """The planner's candidate set.

    Order <= ``exhaustive_limit``: the full default family (including the
    Catalan enumeration over contiguous mode ranges) *plus* the greedy tree
    under the size-sorted mode order — the only candidate able to group
    non-adjacent modes, which matters when collapsible modes are not
    neighbors in the label order.  Higher orders: the named families plus
    greedy trees under both the size-sorted and natural mode orders.
    """
    from ..core.strategy import default_candidates

    candidates = default_candidates(tensor.ndim,
                                    exhaustive_limit=exhaustive_limit)
    counter = counter or DistinctCounter(tensor)
    candidates.append(greedy_tree(tensor, counter=counter))
    if tensor.ndim > exhaustive_limit:
        candidates.append(
            greedy_tree(
                tensor, counter=counter,
                mode_order=range(tensor.ndim), name="greedy-natural",
            )
        )
    seen: set[str] = set()
    unique = []
    for c in candidates:
        if c.signature() not in seen:
            seen.add(c.signature())
            unique.append(c)
    return unique
