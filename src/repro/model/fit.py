"""Fit the time model from observed runs (closed-loop calibration).

The micro-benchmark calibration (:mod:`repro.model.calibrate`) measures
alpha/beta on synthetic kernels.  This module closes the loop on *real*
executions: run a few (strategy, tensor) configurations, record their exact
flop/word counts (from the operation counters) and wall time, and fit the
two-parameter model by non-negative least squares.  A model fitted this way
absorbs machine effects the micro-benchmarks miss (allocator behaviour,
cache pressure at the real working-set sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import nnls

from ..core.coo import CooTensor
from ..core.cpals import initialize_factors
from ..core.engine import MemoizedMttkrp
from ..core.strategy import MemoStrategy
from ..perf.counters import counting
from ..perf.timer import time_callable
from .cost import MachineModel


@dataclass(frozen=True)
class WorkSample:
    """One observed execution: exact work counts and wall time."""

    flops: int
    words: int
    seconds: float
    label: str = ""


def fit_machine_model(
    samples: Sequence[WorkSample], name: str = "fitted"
) -> MachineModel:
    """Non-negative least-squares fit of ``seconds ~ a*flops + b*words``.

    Requires at least two samples with non-collinear work vectors; degenerate
    inputs fall back to attributing all time to flops.
    """
    if not samples:
        raise ValueError("need at least one sample")
    A = np.array([[s.flops, s.words] for s in samples], dtype=np.float64)
    y = np.array([s.seconds for s in samples], dtype=np.float64)
    if (y < 0).any():
        raise ValueError("sample times must be non-negative")
    coeffs, _ = nnls(A, y)
    alpha, beta = float(coeffs[0]), float(coeffs[1])
    if alpha <= 0 and beta <= 0:
        # Degenerate (e.g. all-zero work): attribute time to flops.
        total_flops = max(float(A[:, 0].sum()), 1.0)
        alpha = float(y.sum()) / total_flops
    return MachineModel(
        alpha_per_flop=max(alpha, 1e-15),
        beta_per_word=max(beta, 1e-15),
        name=name,
    )


def collect_samples(
    tensor: CooTensor,
    strategies: Sequence[MemoStrategy],
    rank: int,
    *,
    repeats: int = 3,
    random_state: int = 0,
) -> list[WorkSample]:
    """Measure one steady-state CP-ALS iteration per strategy.

    Counts are taken from the engine's operation counters during a counted
    (untimed) iteration; wall time from separate best-of-``repeats`` timed
    iterations, so instrumentation overhead never contaminates the timing.
    """
    samples = []
    for strategy in strategies:
        factors = initialize_factors(tensor, rank, random_state=random_state)
        engine = MemoizedMttkrp(tensor, strategy, factors)

        def one_iteration():
            for n in engine.mode_order:
                engine.mttkrp(n)
                engine.update_factor(n, factors[n])

        one_iteration()  # steady state
        with counting() as c:
            one_iteration()
        seconds = time_callable(one_iteration, repeats=repeats, warmup=0)
        samples.append(
            WorkSample(
                flops=c.flops, words=c.words, seconds=seconds,
                label=strategy.name,
            )
        )
    return samples


def fitted_machine(
    tensor: CooTensor,
    rank: int,
    *,
    strategies: Sequence[MemoStrategy] | None = None,
    repeats: int = 3,
    random_state: int = 0,
) -> MachineModel:
    """One-call closed-loop calibration on ``tensor``.

    Defaults to sampling the star, balanced-binary, and maximal-chain
    strategies (work vectors far apart, so the 2-parameter fit is well
    conditioned).
    """
    if strategies is None:
        from ..core.strategy import balanced_binary, chain, star

        n = tensor.ndim
        strategies = [star(n), balanced_binary(n)]
        if n >= 3:
            strategies.append(chain(n, n - 2))
    samples = collect_samples(
        tensor, strategies, rank, repeats=repeats, random_state=random_state
    )
    return fit_machine_model(samples, name="fitted")
