"""Uniform random sparse tensors."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import INDEX_DTYPE, VALUE_DTYPE
from ..core.rowcodes import fits_int64, group_rows
from ..core.validate import check_positive_int, check_random_state, check_shape

#: value samplers by name.
VALUE_DISTRIBUTIONS = ("uniform", "normal", "count")


def sample_values(rng: np.random.Generator, size: int, distribution: str) -> np.ndarray:
    """Draw nonzero values: uniform(0,1], standard normal, or 1+Poisson(2)."""
    if distribution == "uniform":
        # shift off zero so no sampled entry silently disappears.
        return (1.0 - rng.random(size)).astype(VALUE_DTYPE)
    if distribution == "normal":
        v = rng.standard_normal(size).astype(VALUE_DTYPE)
        v[v == 0.0] = 1.0
        return v
    if distribution == "count":
        return (1.0 + rng.poisson(2.0, size)).astype(VALUE_DTYPE)
    raise ValueError(
        f"unknown value distribution {distribution!r}; "
        f"choose from {VALUE_DISTRIBUTIONS}"
    )


def sample_unique_indices(
    shape: Sequence[int],
    nnz: int,
    rng: np.random.Generator,
    mode_sampler: Callable[[int, int], np.ndarray] | None = None,
    *,
    max_rounds: int = 64,
) -> np.ndarray:
    """Sample exactly ``nnz`` distinct coordinate rows.

    ``mode_sampler(mode, size)`` draws ``size`` indices for one mode
    (uniform by default).  Sampling proceeds in oversampled rounds with
    deduplication until the target is met; raises if the tensor cannot hold
    ``nnz`` distinct cells.
    """
    shape = check_shape(shape)
    check_positive_int(nnz, "nnz", minimum=0)
    total_cells = 1.0
    for s in shape:
        total_cells *= float(s)
    if nnz > total_cells:
        raise ValueError(
            f"cannot place {nnz} distinct nonzeros in {total_cells:.0f} cells"
        )
    if mode_sampler is None:
        def mode_sampler(mode: int, size: int) -> np.ndarray:
            return rng.integers(0, shape[mode], size=size, dtype=INDEX_DTYPE)

    collected: np.ndarray | None = None
    need = nnz
    for _ in range(max_rounds):
        if need <= 0:
            break
        draw = max(int(need * 1.25) + 16, 64)
        block = np.empty((draw, len(shape)), dtype=INDEX_DTYPE)
        for m in range(len(shape)):
            block[:, m] = np.minimum(mode_sampler(m, draw), shape[m] - 1)
        if collected is not None:
            block = np.concatenate([collected, block], axis=0)
        unique_rows, _ = group_rows(block, shape)
        collected = unique_rows
        need = nnz - collected.shape[0]
    if collected is None or collected.shape[0] < nnz:
        # Dense fallback for tiny/dense shapes where rejection stalls.
        if fits_int64(shape) and total_cells <= 50_000_000:
            all_codes = rng.permutation(int(total_cells))[:nnz]
            out = np.empty((nnz, len(shape)), dtype=INDEX_DTYPE)
            rem = all_codes.astype(INDEX_DTYPE)
            for m in range(len(shape) - 1, -1, -1):
                out[:, m] = rem % shape[m]
                rem //= shape[m]
            order = np.lexsort(out.T[::-1])
            return out[order]
        raise RuntimeError("failed to sample enough distinct coordinates")
    if collected.shape[0] > nnz:
        keep = np.sort(rng.choice(collected.shape[0], size=nnz, replace=False))
        collected = collected[keep]
    return collected


def uniform_random_tensor(
    shape: Sequence[int],
    nnz: int,
    *,
    random_state=None,
    value_distribution: str = "uniform",
) -> CooTensor:
    """A sparse tensor with ``nnz`` uniformly placed nonzeros."""
    rng = check_random_state(random_state)
    idx = sample_unique_indices(shape, nnz, rng)
    vals = sample_values(rng, idx.shape[0], value_distribution)
    return CooTensor(idx, vals, shape, canonical=False, copy=False)
