"""Planted low-rank sparse tensors: ground truth for recovery tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import VALUE_DTYPE
from ..core.kruskal import KruskalTensor
from ..core.validate import (check_positive_int, check_random_state,
                             check_shape)
from .random_tensor import sample_unique_indices


@dataclass
class PlantedTensor:
    """A sparse observation of a known Kruskal model.

    Attributes
    ----------
    tensor: observed sparse tensor (model values at sampled coordinates,
        plus optional noise).
    ktensor: the planted ground-truth model.
    noise_level: relative noise that was added.
    """

    tensor: CooTensor
    ktensor: KruskalTensor
    noise_level: float


def random_kruskal(
    shape: Sequence[int],
    rank: int,
    rng: np.random.Generator,
    *,
    nonneg: bool = True,
) -> KruskalTensor:
    """A random well-conditioned Kruskal model (unit weights pushed out)."""
    factors = []
    for dim in shape:
        if nonneg:
            # Gamma(0.8) rows: sparse-ish, heavy-tailed, strictly >= 0 —
            # resembles topic/phenotype factors.
            U = rng.gamma(0.8, 1.0, size=(dim, rank)).astype(VALUE_DTYPE)
        else:
            U = rng.standard_normal((dim, rank)).astype(VALUE_DTYPE)
        factors.append(U)
    return KruskalTensor.from_factors(factors).normalize()


def lowrank_tensor(
    shape: Sequence[int],
    rank: int,
    nnz: int,
    *,
    noise: float = 0.0,
    nonneg: bool = True,
    random_state=None,
) -> PlantedTensor:
    """Sample ``nnz`` cells of a planted rank-``R`` model.

    Unsampled cells are (explicit) zeros, so a *partially* observed tensor is
    the planted model times a sampling mask — itself generally not rank-R.
    For exact-recovery tests pass ``nnz = prod(shape)`` (full observation):
    then with ``noise=0`` CP-ALS at the true rank drives the fit to 1 and
    recovers the planted factors up to permutation/scaling.
    """
    shape = check_shape(shape)
    check_positive_int(rank, "rank")
    if noise < 0:
        raise ValueError("noise must be >= 0")
    rng = check_random_state(random_state)
    ktensor = random_kruskal(shape, rank, rng, nonneg=nonneg)
    idx = sample_unique_indices(shape, nnz, rng)
    vals = ktensor.values_at(idx)
    if noise > 0:
        scale = float(np.sqrt(np.mean(vals**2))) or 1.0
        vals = vals + noise * scale * rng.standard_normal(vals.shape[0])
    tensor = CooTensor(idx, vals, shape, canonical=True, copy=False)
    return PlantedTensor(tensor=tensor, ktensor=ktensor, noise_level=noise)
