"""Synthetic tensor generators and the benchmark dataset registry."""

from .datasets import DatasetSpec, dataset_names, get_spec, load_dataset
from .lowrank import PlantedTensor, lowrank_tensor, random_kruskal
from .random_tensor import (sample_unique_indices, sample_values,
                            uniform_random_tensor)
from .skewed import (skewed_random_tensor, zipf_mode_sampler,
                     zipf_probabilities)

__all__ = [
    "DatasetSpec",
    "dataset_names",
    "get_spec",
    "load_dataset",
    "PlantedTensor",
    "lowrank_tensor",
    "random_kruskal",
    "sample_unique_indices",
    "sample_values",
    "uniform_random_tensor",
    "skewed_random_tensor",
    "zipf_mode_sampler",
    "zipf_probabilities",
]
