"""Zipf-skewed sparse tensors: realistic index overlap.

Real web/recommender/EHR tensors have heavily skewed per-mode index
frequencies (a few users/tags/entities dominate).  Skew is what makes
memoized intermediates *shrink* after contraction — the index-overlap effect
the memoization gains depend on — so the real-tensor analogs in
:mod:`repro.synth.datasets` are generated with per-mode Zipf exponents.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import INDEX_DTYPE
from ..core.validate import check_random_state, check_shape
from .random_tensor import sample_unique_indices, sample_values


def zipf_probabilities(size: int, exponent: float) -> np.ndarray:
    """Normalized Zipf pmf over ``size`` items: ``p_i ~ (i+1)^-exponent``."""
    if size < 1:
        raise ValueError("size must be >= 1")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    ranks = np.arange(1, size + 1, dtype=np.float64)
    p = ranks**-exponent
    return p / p.sum()


def zipf_mode_sampler(
    shape: Sequence[int],
    exponents: Sequence[float],
    rng: np.random.Generator,
    *,
    shuffle: bool = True,
):
    """Per-mode sampler drawing indices with Zipf-distributed frequencies.

    ``shuffle=True`` randomly relabels each mode so that popular indices are
    not clustered at 0 (matching real data where hub identities are
    arbitrary).  Returns a callable suitable for
    :func:`repro.synth.random_tensor.sample_unique_indices`.
    """
    shape = check_shape(shape)
    if len(exponents) != len(shape):
        raise ValueError("need one Zipf exponent per mode")
    tables = []
    relabels = []
    for dim, a in zip(shape, exponents):
        tables.append(zipf_probabilities(dim, float(a)))
        relabels.append(
            rng.permutation(dim).astype(INDEX_DTYPE)
            if shuffle
            else np.arange(dim, dtype=INDEX_DTYPE)
        )

    def sampler(mode: int, size: int) -> np.ndarray:
        raw = rng.choice(shape[mode], size=size, p=tables[mode])
        return relabels[mode][raw]

    return sampler


def skewed_random_tensor(
    shape: Sequence[int],
    nnz: int,
    exponents: Sequence[float] | float = 1.0,
    *,
    random_state=None,
    value_distribution: str = "count",
    shuffle: bool = True,
) -> CooTensor:
    """A sparse tensor whose mode-index frequencies follow Zipf laws.

    ``exponents`` may be a scalar (same skew in every mode) or one exponent
    per mode; exponent 0 recovers the uniform generator.
    """
    shape = check_shape(shape)
    rng = check_random_state(random_state)
    if np.isscalar(exponents):
        exponents = [float(exponents)] * len(shape)
    sampler = zipf_mode_sampler(shape, list(exponents), rng, shuffle=shuffle)
    idx = sample_unique_indices(shape, nnz, rng, sampler)
    vals = sample_values(rng, idx.shape[0], value_distribution)
    return CooTensor(idx, vals, shape, canonical=False, copy=False)
