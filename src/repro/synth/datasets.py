"""Registry of benchmark datasets: real-tensor analogs plus random sweeps.

The paper evaluates on FROSTT-style real tensors (NELL, CHOA EHR, Delicious,
Flickr, Enron, NIPS, Uber) that are unavailable offline; each registry entry
generates a *statistical analog*: the same order, proportionally scaled mode
sizes, a matched sparsity regime, and per-mode Zipf skews chosen to mimic the
source domain (hub entities, popular tags, frequent words).  Skew controls
index overlap after contraction — the property the memoization gains depend
on — so the analogs exercise the same code paths and trade-offs as the real
tensors.  See DESIGN.md ("Data substitution").

All generation is deterministic given the registry seed, so benchmark runs
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.coo import CooTensor
from ..core.validate import check_random_state
from .random_tensor import uniform_random_tensor
from .skewed import skewed_random_tensor


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one benchmark dataset.

    ``shape`` and ``nnz`` are the *reference* size (scale=1.0); loading with
    a different ``scale`` multiplies nnz and mode sizes accordingly.
    """

    name: str
    shape: tuple[int, ...]
    nnz: int
    skew: tuple[float, ...]
    value_distribution: str
    seed: int
    description: str
    analog_of: str | None = None

    @property
    def order(self) -> int:
        return len(self.shape)


_REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate dataset name {spec.name!r}")
    if len(spec.skew) != len(spec.shape):
        raise ValueError(f"{spec.name}: skew must have one entry per mode")
    _REGISTRY[spec.name] = spec


# ---------------------------------------------------------------------------
# Real-tensor analogs (3rd order)
# ---------------------------------------------------------------------------
_register(DatasetSpec(
    name="nell1",
    shape=(2900, 2100, 25500), nnz=150_000,
    skew=(1.1, 1.1, 1.3), value_distribution="uniform", seed=101,
    description="entity x relation-phrase x entity knowledge-base analog",
    analog_of="NELL-1 (2.9M x 2.1M x 25.5M, 144M nnz)",
))
_register(DatasetSpec(
    name="nell2",
    shape=(1200, 900, 2800), nnz=120_000,
    skew=(1.0, 1.0, 1.2), value_distribution="uniform", seed=102,
    description="dense-core knowledge-base analog",
    analog_of="NELL-2 (12K x 9K x 28K, 77M nnz)",
))
_register(DatasetSpec(
    name="choa",
    shape=(7200, 1200, 480), nnz=120_000,
    skew=(0.6, 1.4, 1.4), value_distribution="count", seed=103,
    description="patient x diagnosis x procedure EHR analog",
    analog_of="CHOA EHR (pediatric hospital records)",
))
# ---------------------------------------------------------------------------
# Real-tensor analogs (4th order)
# ---------------------------------------------------------------------------
_register(DatasetSpec(
    name="delicious",
    shape=(150, 5000, 1600, 250), nnz=150_000,
    skew=(0.4, 1.1, 1.3, 0.5), value_distribution="count", seed=104,
    description="time x user x resource x tag bookmarking analog",
    analog_of="Delicious-4d (1.4K x 532K x 17M x 2.4M, 140M nnz)",
))
_register(DatasetSpec(
    name="flickr",
    shape=(100, 3000, 2800, 160), nnz=120_000,
    skew=(0.4, 1.2, 1.3, 0.6), value_distribution="count", seed=105,
    description="time x user x photo x tag analog",
    analog_of="Flickr-4d (731 x 319K x 28M x 1.6M, 112M nnz)",
))
_register(DatasetSpec(
    name="enron",
    shape=(600, 600, 6000, 200), nnz=120_000,
    skew=(1.2, 1.2, 1.3, 0.3), value_distribution="count", seed=106,
    description="sender x receiver x word x date email analog",
    analog_of="Enron (6K x 5.7K x 244K x 1.2K, 54M nnz)",
))
_register(DatasetSpec(
    name="nips",
    shape=(500, 600, 2800, 17), nnz=100_000,
    skew=(0.7, 0.9, 1.2, 0.1), value_distribution="count", seed=107,
    description="paper x author x word x year publication analog",
    analog_of="NIPS (2.5K x 2.9K x 14K x 17, 3.1M nnz)",
))
_register(DatasetSpec(
    name="uber",
    shape=(183, 24, 570, 860), nnz=150_000,
    skew=(0.2, 0.5, 1.0, 1.0), value_distribution="count", seed=108,
    description="date x hour x lat x lon trip analog",
    analog_of="Uber (183 x 24 x 1.1K x 1.7K, 3.3M nnz)",
))
_register(DatasetSpec(
    name="netflix",
    shape=(4800, 1700, 220), nnz=150_000,
    skew=(0.8, 1.0, 0.3), value_distribution="count", seed=109,
    description="user x movie x week ratings analog",
    analog_of="Netflix (480K x 17K x 2K, 100M nnz)",
))
_register(DatasetSpec(
    name="amazon",
    shape=(6600, 2400, 2300), nnz=200_000,
    skew=(0.9, 1.1, 1.2), value_distribution="count", seed=110,
    description="user x product x word review analog",
    analog_of="Amazon reviews (6.6M x 2.4M x 23K, 1.3B nnz)",
))
_register(DatasetSpec(
    name="patents",
    shape=(460, 3200, 3200), nnz=180_000,
    skew=(0.2, 1.2, 1.2), value_distribution="count", seed=111,
    description="year x term x term co-occurrence analog",
    analog_of="Patents (46 x 239K x 239K, 3.6B nnz)",
))
_register(DatasetSpec(
    name="reddit",
    shape=(1200, 1800, 2700), nnz=180_000,
    skew=(1.1, 1.0, 1.2), value_distribution="count", seed=112,
    description="user x subreddit x word analog",
    analog_of="Reddit-2015 (8.2M x 177K x 8.1M, 4.7B nnz)",
))
# ---------------------------------------------------------------------------
# Synthetic order sweep (uniform, no skew): isolates the pure op-count effect
# ---------------------------------------------------------------------------
for _order in range(3, 9):
    _register(DatasetSpec(
        name=f"rand{_order}d",
        shape=tuple([300] * _order), nnz=100_000,
        skew=tuple([0.0] * _order), value_distribution="uniform",
        seed=200 + _order,
        description=f"uniform random order-{_order} tensor",
        analog_of=None,
    ))
# Skewed order sweep: adds realistic index overlap.
for _order in range(3, 9):
    _register(DatasetSpec(
        name=f"skew{_order}d",
        shape=tuple([300] * _order), nnz=100_000,
        skew=tuple([1.1] * _order), value_distribution="count",
        seed=300 + _order,
        description=f"Zipf-skewed order-{_order} tensor",
        analog_of=None,
    ))


def dataset_names(*, analogs_only: bool = False) -> list[str]:
    """Registered dataset names (insertion order)."""
    return [
        name for name, spec in _REGISTRY.items()
        if not analogs_only or spec.analog_of is not None
    ]


def get_spec(name: str) -> DatasetSpec:
    """The registry entry for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None


def load_dataset(name: str, *, scale: float = 1.0, random_state=None) -> CooTensor:
    """Generate a registry dataset.

    ``scale`` multiplies the nonzero count (mode sizes are scaled by
    ``scale ** (1/order)`` so density stays roughly constant).  Default seed
    is the spec's; pass ``random_state`` for an independent instance.
    """
    spec = get_spec(name)
    if scale <= 0:
        raise ValueError("scale must be > 0")
    rng = check_random_state(
        spec.seed if random_state is None else random_state
    )
    if scale == 1.0:
        shape = spec.shape
        nnz = spec.nnz
    else:
        dim_scale = scale ** (1.0 / spec.order)
        shape = tuple(max(2, int(round(s * dim_scale))) for s in spec.shape)
        nnz = max(1, int(round(spec.nnz * scale)))
    if all(a == 0.0 for a in spec.skew):
        return uniform_random_tensor(
            shape, nnz, random_state=rng,
            value_distribution=spec.value_distribution,
        )
    return skewed_random_tensor(
        shape, nnz, spec.skew, random_state=rng,
        value_distribution=spec.value_distribution,
    )
