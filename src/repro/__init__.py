"""repro — model-driven sparse CP decomposition for higher-order tensors.

A from-scratch reproduction of the AdaTM system (Li, Choi, Perros, Sun,
Vuduc; IPDPS 2017): memoized MTTKRP over a strategy tree, an analytic
performance model, and a planner that adaptively selects the memoization
algorithm per tensor.

Quickstart::

    import repro

    X = repro.synth.lowrank_tensor((50, 40, 30, 20), rank=5, nnz=20_000,
                                   random_state=0).tensor
    result = repro.cp_als(X, rank=5, strategy="auto", random_state=0)
    print(result.fit, result.strategy_name)
"""

from . import (algos, baselines, core, formats, io, kernels, linalg, model,
               parallel, perf, synth)
from .core import (CooTensor, CPResult, KruskalTensor, MemoizedMttkrp,
                   MemoStrategy, balanced_binary, chain, cp_als,
                   default_candidates, from_nested, star, two_way)
from .model import CostReport, MachineModel, PlannerReport, plan

__version__ = "1.0.0"

__all__ = [
    "algos",
    "baselines",
    "core",
    "formats",
    "io",
    "kernels",
    "linalg",
    "model",
    "parallel",
    "perf",
    "synth",
    "CooTensor",
    "CPResult",
    "KruskalTensor",
    "MemoizedMttkrp",
    "MemoStrategy",
    "balanced_binary",
    "chain",
    "cp_als",
    "default_candidates",
    "from_nested",
    "star",
    "two_way",
    "CostReport",
    "MachineModel",
    "PlannerReport",
    "plan",
    "__version__",
]
