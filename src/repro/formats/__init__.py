"""Alternative sparse tensor storage formats."""

from .csf import CsfTensor, default_mode_order
from .hicoo import HicooTensor

__all__ = ["CsfTensor", "default_mode_order", "HicooTensor"]
