"""Compressed Sparse Fiber (CSF) tensors — SPLATT's storage format.

A CSF tensor stores the nonzeros as a forest of prefix trees under a fixed
mode ordering: level ``l`` holds one node per distinct length-``(l+1)``
coordinate prefix, with pointer arrays delimiting each node's children.  The
MTTKRP for the root mode then proceeds bottom-up, performing the reduction at
each level on *fibers* rather than raw nonzeros — the fiber-compression
saving that SPLATT exploits.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import rowcodes
from ..core.coo import CooTensor
from ..core.dtypes import INDEX_DTYPE, VALUE_DTYPE
from ..perf import counters as perf


class CsfTensor:
    """One CSF representation of a sparse tensor under a mode ordering.

    Parameters
    ----------
    tensor: canonical COO tensor.
    mode_order: permutation of modes; ``mode_order[0]`` is the root mode
        (the mode whose MTTKRP this CSF serves).
    """

    def __init__(self, tensor: CooTensor, mode_order: Sequence[int]):
        order = tuple(int(m) for m in mode_order)
        if sorted(order) != list(range(tensor.ndim)):
            raise ValueError(
                f"mode_order must permute 0..{tensor.ndim - 1}, got {order}"
            )
        self.shape = tensor.shape
        self.mode_order = order
        ndim = tensor.ndim
        reordered = tensor.idx[:, order]
        perm = rowcodes.lexsort_rows(reordered)
        idxs = np.ascontiguousarray(reordered[perm])
        self.vals = np.ascontiguousarray(tensor.vals[perm])
        nnz = idxs.shape[0]

        # Node start positions per level: a node begins wherever the
        # length-(l+1) prefix changes.
        starts: list[np.ndarray] = []
        if nnz == 0:
            self.fids = [np.zeros(0, dtype=INDEX_DTYPE) for _ in range(ndim)]
            self.ptrs = [np.zeros(1, dtype=np.intp) for _ in range(ndim - 1)]
            self._leaf_idx = idxs
            self._node_counts = [0] * ndim
            return
        changed = np.zeros(nnz - 1, dtype=bool)
        for l in range(ndim):
            np.logical_or(changed, idxs[1:, l] != idxs[:-1, l], out=changed)
            p = np.concatenate(([0], np.flatnonzero(changed) + 1)).astype(np.intp)
            starts.append(p)
        # Canonical tensors have unique coordinates, so leaf nodes are
        # exactly the nonzeros.
        assert starts[-1].shape[0] == nnz

        #: per-level node index values (the coordinate in mode_order[l]).
        self.fids = [idxs[p, l].astype(INDEX_DTYPE) for l, p in enumerate(starts)]
        #: ptrs[l][j]:ptrs[l][j+1] delimits node j's children at level l+1.
        self.ptrs = [
            np.searchsorted(starts[l + 1], np.append(starts[l], nnz)).astype(np.intp)
            for l in range(ndim - 1)
        ]
        self._leaf_idx = idxs
        self._node_counts = [int(p.shape[0]) for p in starts]

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    def node_counts(self) -> list[int]:
        """Nodes per level (fiber-compression profile)."""
        return list(self._node_counts)

    def nbytes(self) -> int:
        total = int(self.vals.nbytes)
        for f in self.fids:
            total += int(f.nbytes)
        for p in self.ptrs:
            total += int(p.nbytes)
        return total

    # ------------------------------------------------------------------
    def mttkrp_root(self, factors: Sequence[np.ndarray]) -> np.ndarray:
        """MTTKRP for the root mode ``mode_order[0]``.

        Performs ``N-1`` level reductions bottom-up; each level's multiply
        touches only that level's fibers, not the raw nonzeros.
        """
        ndim = self.ndim
        root_mode = self.mode_order[0]
        rank = factors[0].shape[1]
        out = np.zeros((self.shape[root_mode], rank), dtype=VALUE_DTYPE)
        if self.nnz == 0:
            perf.record(mttkrps=1)
            return out
        leaf_mode = self.mode_order[ndim - 1]
        T = self.vals[:, None] * factors[leaf_mode][self._leaf_idx[:, ndim - 1]]
        flops = self.nnz * rank
        words = self.nnz * rank * 2
        for l in range(ndim - 2, 0, -1):
            T = np.add.reduceat(T, self.ptrs[l][:-1], axis=0)
            mode_l = self.mode_order[l]
            T *= factors[mode_l][self.fids[l]]
            n_l = self._node_counts[l]
            n_child = self._node_counts[l + 1]
            flops += (n_child + n_l) * rank
            words += (n_child + 3 * n_l) * rank
        M_rows = np.add.reduceat(T, self.ptrs[0][:-1], axis=0)
        out[self.fids[0]] = M_rows
        flops += self._node_counts[1] * rank
        words += (self._node_counts[1] + self._node_counts[0]) * rank
        perf.record(
            mttkrps=1,
            contractions=ndim - 1,
            flops=flops,
            words=words,
        )
        return out

    def _expand(self, per_node: np.ndarray, level: int) -> np.ndarray:
        """Replicate level-``level`` node rows to level ``level+1`` nodes."""
        counts = np.diff(self.ptrs[level])
        return np.repeat(per_node, counts, axis=0)

    def mttkrp_level(self, factors: Sequence[np.ndarray], level: int) -> np.ndarray:
        """MTTKRP for the mode at tree ``level`` — the CSF-1 algorithm.

        One CSF serves every mode: partial products from the levels *above*
        the target flow down (replicated along the tree), partials from the
        levels *below* are reduced up, and their product scatters into the
        output at the target level's node ids.  Work still benefits from
        fiber compression at each level; storage is a single tree instead of
        SPLATT-allmode's N trees.
        """
        ndim = self.ndim
        if not 0 <= level < ndim:
            raise ValueError(f"level must be in [0, {ndim - 1}], got {level}")
        if level == 0:
            return self.mttkrp_root(factors)
        target_mode = self.mode_order[level]
        rank = factors[0].shape[1]
        out = np.zeros((self.shape[target_mode], rank), dtype=VALUE_DTYPE)
        if self.nnz == 0:
            perf.record(mttkrps=1)
            return out

        # Top partial: product of factor rows for levels 0..level-1,
        # expressed per level-(level) node.
        top = factors[self.mode_order[0]][self.fids[0]]
        flops = self._node_counts[0] * rank
        words = 2 * self._node_counts[0] * rank
        for l in range(1, level):
            top = self._expand(top, l - 1)
            top = top * factors[self.mode_order[l]][self.fids[l]]
            flops += self._node_counts[l] * rank
            words += 3 * self._node_counts[l] * rank
        top = self._expand(top, level - 1)  # rows: level-`level` nodes

        # Bottom partial: reduce leaf values up to level `level`, multiplying
        # each intermediate level's factor rows on the way.
        if level == ndim - 1:
            bottom = self.vals[:, None]
        else:
            leaf_mode = self.mode_order[ndim - 1]
            bottom = self.vals[:, None] * (
                factors[leaf_mode][self._leaf_idx[:, ndim - 1]]
            )
            flops += self.nnz * rank
            words += 2 * self.nnz * rank
            for l in range(ndim - 2, level, -1):
                bottom = np.add.reduceat(bottom, self.ptrs[l][:-1], axis=0)
                bottom = bottom * factors[self.mode_order[l]][self.fids[l]]
                flops += (self._node_counts[l + 1] + self._node_counts[l]) * rank
                words += (self._node_counts[l + 1] + 3 * self._node_counts[l]) * rank
            # Collapse the children of each target-level node.
            bottom = np.add.reduceat(bottom, self.ptrs[level][:-1], axis=0)
            flops += self._node_counts[level + 1] * rank
            words += (self._node_counts[level + 1] + self._node_counts[level]) * rank

        contrib = top * bottom  # rows: level-`level` nodes
        np.add.at(out, self.fids[level], contrib)
        flops += 2 * self._node_counts[level] * rank
        words += 3 * self._node_counts[level] * rank
        perf.record(
            mttkrps=1, contractions=ndim - 1, flops=flops, words=words
        )
        return out

    def __repr__(self) -> str:
        return (
            f"CsfTensor(mode_order={self.mode_order}, nnz={self.nnz}, "
            f"node_counts={self._node_counts})"
        )


def default_mode_order(root_mode: int, ndim: int) -> tuple[int, ...]:
    """Root mode first, remaining modes in natural order."""
    return (root_mode,) + tuple(m for m in range(ndim) if m != root_mode)
