"""HiCOO: hierarchical blocked COO storage for sparse tensors.

HiCOO (Li et al., the same research line as the target paper) tiles the
coordinate space into ``B x ... x B`` blocks and stores, per nonzero, only
its *offset within the block* in a narrow integer type; block coordinates are
stored once per block.  For tensors whose nonzeros cluster (the skewed
real-world regime) this cuts index memory by nearly the ratio of coordinate
width to offset width, mode-agnostically — one representation serves every
mode's MTTKRP, unlike CSF-per-mode.

This implementation keeps the format faithful (block scheduling + 8/16-bit
element offsets) while the MTTKRP kernel stays vectorized: blocks are
processed in bulk by reconstructing absolute coordinates on the fly
(block base * B + offset), so the kernel is a constant factor over plain COO
rather than a cache-blocked C loop — the *storage* comparison is the point
here, and it is exact.
"""

from __future__ import annotations

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import INDEX_DTYPE, VALUE_DTYPE
from ..core.rowcodes import group_rows
from ..core.validate import check_mode, check_positive_int
from ..perf import counters as perf


def _offset_dtype(block_size: int):
    if block_size <= 256:
        return np.uint8
    if block_size <= 65536:
        return np.uint16
    return np.uint32


class HicooTensor:
    """A sparse tensor in HiCOO (blocked COO) format.

    Parameters
    ----------
    tensor: canonical COO tensor to convert.
    block_size: tile edge length ``B`` (power of two recommended; default
        128 so offsets fit in one byte).
    """

    def __init__(self, tensor: CooTensor, block_size: int = 128):
        check_positive_int(block_size, "block_size")
        self.shape = tensor.shape
        self.block_size = int(block_size)
        ndim = tensor.ndim
        B = self.block_size

        block_coords = tensor.idx // B
        offsets = (tensor.idx - block_coords * B).astype(
            _offset_dtype(B), copy=False
        )
        block_dims = [(-(-s // B)) for s in tensor.shape]
        unique_blocks, inverse = group_rows(block_coords, block_dims)
        order = np.argsort(inverse, kind="stable")

        #: per-block coordinates (n_blocks x N), block-major order.
        self.block_index = np.ascontiguousarray(
            unique_blocks, dtype=INDEX_DTYPE
        )
        #: per-nonzero within-block offsets, grouped by block.
        self.offsets = np.ascontiguousarray(offsets[order])
        #: nonzero values, grouped by block.
        self.vals = np.ascontiguousarray(
            tensor.vals[order], dtype=VALUE_DTYPE
        )
        #: block boundary pointers into offsets/vals (n_blocks + 1).
        sorted_inverse = inverse[order]
        self.block_ptr = np.concatenate((
            [0],
            np.flatnonzero(np.diff(sorted_inverse)) + 1,
            [tensor.nnz],
        )).astype(np.intp) if tensor.nnz else np.zeros(1, dtype=np.intp)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    @property
    def n_blocks(self) -> int:
        return int(self.block_index.shape[0])

    def index_nbytes(self) -> int:
        """Bytes of index structures (block coords + offsets + pointers)."""
        return int(
            self.block_index.nbytes + self.offsets.nbytes
            + self.block_ptr.nbytes
        )

    def nbytes(self) -> int:
        return self.index_nbytes() + int(self.vals.nbytes)

    def compression_vs_coo(self) -> float:
        """COO index bytes / HiCOO index bytes (higher = better)."""
        coo_index = self.nnz * self.ndim * 8
        return coo_index / max(self.index_nbytes(), 1)

    # ------------------------------------------------------------------
    def absolute_coords(self) -> np.ndarray:
        """Reconstruct the full ``nnz x N`` coordinate block."""
        if self.nnz == 0:
            return np.zeros((0, self.ndim), dtype=INDEX_DTYPE)
        expanded = np.repeat(
            self.block_index, np.diff(self.block_ptr), axis=0
        )
        return expanded * self.block_size + self.offsets.astype(INDEX_DTYPE)

    def to_coo(self) -> CooTensor:
        """Convert back to canonical COO (exact round trip)."""
        return CooTensor(
            self.absolute_coords(), self.vals, self.shape, copy=False
        )

    def mttkrp(self, factors, mode: int) -> np.ndarray:
        """Mode-``n`` MTTKRP directly from the blocked representation."""
        mode = check_mode(mode, self.ndim)
        rank = factors[0].shape[1]
        out = np.zeros((self.shape[mode], rank), dtype=VALUE_DTYPE)
        if self.nnz == 0:
            perf.record(mttkrps=1)
            return out
        coords = self.absolute_coords()
        prod: np.ndarray | None = None
        for m in range(self.ndim):
            if m == mode:
                continue
            rows = factors[m][coords[:, m]]
            if prod is None:
                prod = rows.copy()
            else:
                prod *= rows
        assert prod is not None
        prod *= self.vals[:, None]
        np.add.at(out, coords[:, mode], prod)
        n_other = self.ndim - 1
        perf.record(
            mttkrps=1, contractions=n_other,
            flops=self.nnz * rank * (n_other + 1),
            words=self.nnz * rank * (n_other + 2),
        )
        return out

    def block_density(self) -> float:
        """Mean nonzeros per occupied block (clustering indicator)."""
        if self.n_blocks == 0:
            return 0.0
        return self.nnz / self.n_blocks

    def __repr__(self) -> str:
        return (
            f"HicooTensor(shape={self.shape}, nnz={self.nnz}, "
            f"blocks={self.n_blocks}, B={self.block_size}, "
            f"index_bytes={self.index_nbytes()})"
        )
