"""Work partitioning for the multicore runtime.

Nonzero-parallel MTTKRP needs chunks that (a) balance actual work — per-slice
nonzero counts are heavily skewed in real tensors — and (b) keep memory
locality (contiguous ranges of the canonical ordering).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.coo import CooTensor
from ..core.validate import check_mode, check_positive_int


def contiguous_chunks(n: int, k: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``k`` near-equal contiguous half-open ranges.

    Ranges may be empty when ``k > n``; their count is always exactly ``k``.
    """
    check_positive_int(k, "k")
    if n < 0:
        raise ValueError("n must be >= 0")
    bounds = np.linspace(0, n, k + 1).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(k)]


def greedy_partition(weights: Sequence[float], k: int) -> np.ndarray:
    """Longest-processing-time assignment of weighted items to ``k`` bins.

    Returns an array mapping each item to its bin.  LPT gives a 4/3
    approximation of the optimal makespan — good enough to balance skewed
    slice weights.
    """
    check_positive_int(k, "k")
    weights = np.asarray(weights, dtype=np.float64)
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    order = np.argsort(-weights, kind="stable")
    loads = np.zeros(k)
    assign = np.empty(weights.shape[0], dtype=np.intp)
    # A heap would be asymptotically better; argmin over k bins is simpler
    # and k (worker count) is small.
    for item in order:
        bin_ = int(np.argmin(loads))
        assign[item] = bin_
        loads[bin_] += weights[item]
    return assign


def partition_balance(weights: Sequence[float], assign: np.ndarray, k: int) -> float:
    """Load imbalance ``max_load / mean_load`` of an assignment (1.0 = perfect)."""
    weights = np.asarray(weights, dtype=np.float64)
    loads = np.bincount(assign, weights=weights, minlength=k)
    mean = loads.mean()
    return float(loads.max() / mean) if mean > 0 else 1.0


def partition_nonzeros(tensor: CooTensor, k: int) -> list[tuple[int, int]]:
    """Contiguous nonzero ranges with equal counts (the default scheme).

    Because the tensor is canonically sorted, contiguous ranges also cluster
    mode-0 slices, which helps gather locality.
    """
    return contiguous_chunks(tensor.nnz, k)


def partition_slices(tensor: CooTensor, mode: int, k: int) -> np.ndarray:
    """Assign mode-``n`` slices to ``k`` workers balancing nonzero counts.

    Returns a length-``shape[mode]`` array of worker ids.  This is the
    slice-parallel (owner-computes) decomposition: each worker owns whole
    output rows, so no reduction is needed — at the cost of imbalance when a
    few slices dominate (measured by :func:`partition_balance`).
    """
    mode = check_mode(mode, tensor.ndim)
    return greedy_partition(tensor.slice_nnz(mode), k)
