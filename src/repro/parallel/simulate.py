"""Strong-scaling simulator: predicted parallel time from the cost model.

Python threading introduces overheads a C/OpenMP implementation does not
have, so alongside the *measured* thread-pool scaling the benchmarks report a
deterministic model-based projection: per-worker compute from the cost
model's flop/word totals divided under the actual partition's load balance,
plus a bandwidth-saturation term and a per-sync overhead.  This reproduces
the *shape* of the paper's multicore scaling (near-linear until
bandwidth-bound) independent of interpreter effects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.coo import CooTensor
from ..model.cost import DEFAULT_MACHINE, CostReport, MachineModel
from .partition import contiguous_chunks


@dataclass(frozen=True)
class ScalingParams:
    """Hardware model for the scaling simulator.

    Attributes
    ----------
    bandwidth_workers: worker count at which memory bandwidth saturates —
        beyond it, the memory-bound share of the work stops scaling.
    sync_seconds: per-synchronization overhead (one sync per MTTKRP).
    memory_bound_fraction: share of the work limited by bandwidth rather
        than compute throughput.
    """

    bandwidth_workers: int = 8
    sync_seconds: float = 5e-5
    memory_bound_fraction: float = 0.6


def load_imbalance(tensor: CooTensor, n_workers: int) -> float:
    """max/mean chunk work for the equal-count contiguous partition.

    Equal nonzero counts balance MTTKRP flops exactly, so imbalance here is
    1.0 unless chunks are degenerate (more workers than nonzeros).
    """
    chunks = contiguous_chunks(tensor.nnz, n_workers)
    sizes = np.array([hi - lo for lo, hi in chunks], dtype=float)
    mean = sizes.mean()
    return float(sizes.max() / mean) if mean > 0 else 1.0


def simulate_parallel_time(
    cost: CostReport,
    n_workers: int,
    *,
    machine: MachineModel = DEFAULT_MACHINE,
    params: ScalingParams = ScalingParams(),
    imbalance: float = 1.0,
) -> float:
    """Predicted seconds for one CP-ALS iteration on ``n_workers`` workers."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    serial = machine.seconds(
        cost.flops_per_iteration, cost.words_per_iteration
    )
    compute_share = serial * (1.0 - params.memory_bound_fraction)
    memory_share = serial * params.memory_bound_fraction
    effective_mem_workers = min(n_workers, params.bandwidth_workers)
    n_syncs = cost.strategy.n_modes  # one reduction barrier per MTTKRP
    return (
        imbalance * compute_share / n_workers
        + imbalance * memory_share / effective_mem_workers
        + n_syncs * params.sync_seconds * np.log2(max(n_workers, 2))
    )


def simulate_speedup_curve(
    cost: CostReport,
    worker_counts,
    *,
    machine: MachineModel = DEFAULT_MACHINE,
    params: ScalingParams = ScalingParams(),
    imbalance: float = 1.0,
) -> dict[int, float]:
    """Speedup vs 1 worker for each count in ``worker_counts``."""
    base = simulate_parallel_time(
        cost, 1, machine=machine, params=params, imbalance=imbalance
    )
    return {
        int(p): base / simulate_parallel_time(
            cost, int(p), machine=machine, params=params, imbalance=imbalance
        )
        for p in worker_counts
    }
