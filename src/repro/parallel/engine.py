"""Parallel memoized engine: chunked node rebuilds on a thread pool.

Parallelizes the memoized MTTKRP's numeric phase.  Each node rebuild is
split along *segment boundaries* of its reduction plan, so every worker
produces a disjoint range of the node's output rows: gathers, Hadamard
products, and the segmented sums all run concurrently with no write
conflicts and no reduction pass.

Workers execute through the kernel backend's ``rebuild_chunk`` — the same
precomputed flat gather indices and per-thread workspace buffers as the
sequential engine, so no per-chunk index arithmetic happens on the hot
path.  Backends without chunk support (e.g. ``numba``, which parallelizes
inside the node already) fall back to the numpy chunk kernel.
"""

from __future__ import annotations

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import VALUE_DTYPE
from ..core.engine import MemoizedMttkrp, contraction_work
import time

from ..kernels import get_kernel
from ..obs import attribution as _attr
from ..obs import events as _events
from ..obs import memory as _mem
from ..obs import trace as _trace
from ..perf import counters as perf
from .pool import WorkerPool


class ParallelMemoizedMttkrp(MemoizedMttkrp):
    """Drop-in replacement for :class:`MemoizedMttkrp` using worker threads.

    Single-worker pools degrade gracefully to near-sequential behaviour
    (one chunk per node), so speedup measurements can use the same class at
    every worker count.  Usable as a context manager; pools created by the
    engine are closed on exit.
    """

    name = "parallel-memoized"

    #: node rebuilds with fewer parent rows than this run sequentially —
    #: below it, thread dispatch costs more than the kernel itself.
    min_chunk_rows = 16_384

    def __init__(self, tensor: CooTensor, strategy, factors=None, *,
                 n_workers: int | None = None, pool: WorkerPool | None = None,
                 symbolic=None, min_chunk_rows: int | None = None,
                 kernel=None):
        self._own_pool = pool is None
        self.pool = pool or WorkerPool(n_workers)
        if min_chunk_rows is not None:
            self.min_chunk_rows = int(min_chunk_rows)
        super().__init__(tensor, strategy, factors, symbolic=symbolic,
                         kernel=kernel)
        self._chunk_kernel = (
            self._kernel if self._kernel.supports_chunks else get_kernel("numpy")
        )

    def close(self) -> None:
        if self._own_pool:
            self.pool.close()
        if _mem.enabled():
            # Pool engines are commonly short-lived context managers; drop
            # their entries so the tracker's live total reflects reality.
            _mem.get_tracker().release_engine(id(self))

    def __enter__(self) -> "ParallelMemoizedMttkrp":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _compute_node(self, node_id: int) -> np.ndarray:
        sym = self.symbolic.nodes[node_id]
        plan = sym.plan
        assert plan is not None
        n_chunks = min(
            self.pool.n_workers,
            max(1, plan.n_sources // self.min_chunk_rows),
        )
        chunks = plan.chunks(n_chunks) if n_chunks > 1 else []
        if len(chunks) <= 1:
            return super()._compute_node(node_id)

        ctx = self._rebuild_context(node_id)
        kernel = self._chunk_kernel
        attr = _attr.get_recorder() if _attr.enabled() else None
        seconds = 0.0
        out = np.empty((sym.nnz, self.rank), dtype=VALUE_DTYPE)
        if _trace.enabled():
            def chunk_fn(s, g):
                with _trace.span("kernel_chunk", backend=kernel.name,
                                 node=node_id):
                    kernel.rebuild_chunk(ctx, s, g, out)

            with _trace.span("node_rebuild", node=node_id, nnz=sym.nnz,
                             parent_nnz=ctx.parent_sym.nnz,
                             chunks=len(chunks)) as rec:
                self.pool.run([
                    (lambda s=s, g=g: chunk_fn(s, g)) for s, g in chunks
                ])
            if rec is not None:
                seconds = rec.duration
                if _events.enabled():
                    _events.emit("node_rebuild", node=node_id, nnz=sym.nnz,
                                 seconds=seconds, chunks=len(chunks))
        elif _events.enabled() or attr is not None:
            t0 = time.perf_counter()
            self.pool.run([
                (lambda s=s, g=g: kernel.rebuild_chunk(ctx, s, g, out))
                for s, g in chunks
            ])
            seconds = time.perf_counter() - t0
            if _events.enabled():
                _events.emit("node_rebuild", node=node_id, nnz=sym.nnz,
                             seconds=seconds, chunks=len(chunks))
        else:
            self.pool.run([
                (lambda s=s, g=g: kernel.rebuild_chunk(ctx, s, g, out))
                for s, g in chunks
            ])
        flops, words = contraction_work(
            ctx.parent_sym.nnz, self.rank, len(sym.delta_modes)
        )
        perf.record(
            flops=flops, words=words,
            contractions=len(sym.delta_modes), node_builds=1,
        )
        if attr is not None:
            attr.on_rebuild(node_id, flops, words, seconds)
        if _trace.enabled():
            # Chunked rebuilds grow per-worker arena buffers; refresh the
            # workspace gauge here so the peak is visible even between
            # mttkrp span boundaries.
            self._publish_memory_gauges()
        return out
