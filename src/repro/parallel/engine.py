"""Parallel memoized engine: chunked node rebuilds on a thread pool.

Parallelizes the memoized MTTKRP's numeric phase.  Each node rebuild is
split along *segment boundaries* of its reduction plan, so every worker
produces a disjoint range of the node's output rows: gathers, Hadamard
products, and the segmented sums all run concurrently with no write
conflicts and no reduction pass.
"""

from __future__ import annotations

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import VALUE_DTYPE
from ..core.engine import MemoizedMttkrp, contraction_work
from ..perf import counters as perf
from .pool import WorkerPool


class ParallelMemoizedMttkrp(MemoizedMttkrp):
    """Drop-in replacement for :class:`MemoizedMttkrp` using worker threads.

    Single-worker pools degrade gracefully to near-sequential behaviour
    (one chunk per node), so speedup measurements can use the same class at
    every worker count.
    """

    name = "parallel-memoized"

    #: node rebuilds with fewer parent rows than this run sequentially —
    #: below it, thread dispatch costs more than the kernel itself.
    min_chunk_rows = 16_384

    def __init__(self, tensor: CooTensor, strategy, factors=None, *,
                 n_workers: int | None = None, pool: WorkerPool | None = None,
                 symbolic=None, min_chunk_rows: int | None = None):
        self._own_pool = pool is None
        self.pool = pool or WorkerPool(n_workers)
        if min_chunk_rows is not None:
            self.min_chunk_rows = int(min_chunk_rows)
        super().__init__(tensor, strategy, factors, symbolic=symbolic)

    def close(self) -> None:
        if self._own_pool:
            self.pool.close()

    def _compute_node(self, node_id: int) -> np.ndarray:
        node = self.strategy.nodes[node_id]
        sym = self.symbolic.nodes[node_id]
        parent = self.strategy.nodes[node.parent]  # type: ignore[index]
        parent_sym = self.symbolic.nodes[node.parent]  # type: ignore[index]
        plan = sym.plan
        assert plan is not None
        n_chunks = min(
            self.pool.n_workers,
            max(1, plan.n_sources // self.min_chunk_rows),
        )
        chunks = plan.chunks(n_chunks) if n_chunks > 1 else []
        if len(chunks) <= 1:
            return super()._compute_node(node_id)

        factors = self.factors
        parent_vals = None if parent.is_root else self._values[parent.id]
        out = np.empty((sym.nnz, self.rank), dtype=VALUE_DTYPE)

        def work(source_slice: slice, segment_slice: slice) -> None:
            rows = plan.sorted_sources(source_slice)
            prod: np.ndarray | None = None
            for d_mode, d_col in zip(sym.delta_modes, sym.delta_parent_cols):
                gathered = factors[d_mode][parent_sym.index[rows, d_col]]
                if prod is None:
                    prod = gathered.copy()
                else:
                    prod *= gathered
            assert prod is not None
            if parent_vals is None:
                prod *= self._root_vals[rows, None]
            else:
                prod *= parent_vals[rows]
            starts = plan.local_starts(source_slice, segment_slice)
            out[segment_slice] = np.add.reduceat(prod, starts, axis=0)

        self.pool.run([
            (lambda s=s, g=g: work(s, g)) for s, g in chunks
        ])
        flops, words = contraction_work(
            parent_sym.nnz, self.rank, len(sym.delta_modes)
        )
        perf.record(
            flops=flops, words=words,
            contractions=len(sym.delta_modes), node_builds=1,
        )
        return out
