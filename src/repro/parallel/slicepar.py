"""Slice-parallel (owner-computes) MTTKRP.

The alternative shared-memory decomposition: instead of splitting *nonzeros*
and reducing partial outputs, split the *output rows* — each worker owns a
set of mode-``n`` slices and processes exactly the nonzeros falling in them.
Owners write disjoint output rows, so there is no reduction at all; the price
is load imbalance when a few slices dominate (the skew measured by
:func:`repro.parallel.partition.partition_balance`), which is why the
nonzero-parallel scheme is the default and this one exists as the measured
counterpoint.
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import MttkrpBackend
from ..core.coo import CooTensor
from ..core.dtypes import VALUE_DTYPE
from ..core.validate import check_mode
from .partition import partition_balance, partition_slices
from .pool import WorkerPool


class SliceParallelMttkrp(MttkrpBackend):
    """Owner-computes MTTKRP backend.

    For every mode, slices are assigned to workers by LPT over per-slice
    nonzero counts; per-worker nonzero row sets are precomputed once (they
    depend only on the pattern).
    """

    name = "parallel-slice"

    def __init__(self, tensor: CooTensor, n_workers: int | None = None,
                 pool: WorkerPool | None = None):
        super().__init__(tensor)
        self._own_pool = pool is None
        self.pool = pool or WorkerPool(n_workers)
        #: mode -> list of per-worker nonzero row-index arrays.
        self._worker_rows: dict[int, list[np.ndarray]] = {}
        #: mode -> measured load imbalance of the slice assignment.
        self.imbalance: dict[int, float] = {}

    def close(self) -> None:
        if self._own_pool:
            self.pool.close()

    def __enter__(self) -> "SliceParallelMttkrp":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _rows_for_mode(self, mode: int) -> list[np.ndarray]:
        if mode not in self._worker_rows:
            k = self.pool.n_workers
            assign = partition_slices(self.tensor, mode, k)
            self.imbalance[mode] = partition_balance(
                self.tensor.slice_nnz(mode), assign, k
            )
            owner_of_nonzero = assign[self.tensor.idx[:, mode]]
            order = np.argsort(owner_of_nonzero, kind="stable")
            sorted_owner = owner_of_nonzero[order]
            bounds = np.searchsorted(sorted_owner, np.arange(k + 1))
            self._worker_rows[mode] = [
                order[bounds[w]:bounds[w + 1]] for w in range(k)
            ]
        return self._worker_rows[mode]

    def mttkrp(self, mode: int) -> np.ndarray:
        mode = check_mode(mode, self.tensor.ndim)
        tensor, factors, rank = self.tensor, self.factors, self.rank
        out = np.zeros((tensor.shape[mode], rank), dtype=VALUE_DTYPE)
        if tensor.nnz == 0:
            return out
        worker_rows = self._rows_for_mode(mode)

        def work(rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            idx = tensor.idx[rows]
            prod: np.ndarray | None = None
            for m in range(tensor.ndim):
                if m == mode:
                    continue
                gathered = factors[m][idx[:, m]]
                if prod is None:
                    prod = gathered.copy()
                else:
                    prod *= gathered
            assert prod is not None
            prod *= tensor.vals[rows, None]
            # This worker owns every output row it touches: direct add.
            np.add.at(out, idx[:, mode], prod)

        self.pool.run([(lambda r=r: work(r)) for r in worker_rows])
        return out
