"""Thread-pool execution of MTTKRP kernels.

NumPy's heavy kernels (fancy gathers, element-wise multiplies, ``reduceat``)
release the GIL, so a thread pool yields real concurrency on the memory-bound
inner loops without the serialization cost of multiprocessing.  The pool is
deliberately thin: submit a list of thunks, collect results in order.
"""

from __future__ import annotations

import contextvars
import os
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import VALUE_DTYPE
from ..core.validate import check_mode, check_positive_int
from ..baselines.base import MttkrpBackend
from ..obs import _ctx as _run_ctx
from ..obs import profiler as _profiler
from ..obs import trace as _trace
from ..obs.metrics import registry as _metrics
from .partition import partition_nonzeros


def _env_workers() -> int | None:
    """Parsed ``REPRO_WORKERS`` override (None when unset)."""
    raw = (os.environ.get("REPRO_WORKERS") or "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {value}")
    return value


def oversubscription_allowed() -> bool:
    """Whether ``REPRO_ALLOW_OVERSUBSCRIBE`` opts out of worker clamping."""
    raw = (os.environ.get("REPRO_ALLOW_OVERSUBSCRIBE") or "").strip().lower()
    return raw in {"1", "true", "yes", "on"}


def resolve_worker_count(
    requested: int | None = None,
    *,
    clamp: bool = True,
    allow_oversubscribe: bool | None = None,
    tier: str = "thread",
) -> int:
    """One precedence rule for every execution tier: explicit ``requested``
    (``--workers`` / an ``n_workers=`` argument) beats ``REPRO_WORKERS``,
    which beats the cpu-count default (capped at 8).

    Counts above ``os.cpu_count()`` are oversubscription: harmless for
    threads (GIL-released kernels interleave), but each extra *process*
    burns a core and a copy of the interpreter.  With ``clamp=True`` such
    counts are reduced to the cpu count with a ``RuntimeWarning`` naming
    both numbers; ``allow_oversubscribe=True`` (or the
    ``REPRO_ALLOW_OVERSUBSCRIBE=1`` environment opt-out, for deliberate
    scaling sweeps on small machines) keeps the requested count, still
    with a warning instead of silence.
    """
    if requested is not None:
        value = check_positive_int(requested, "n_workers")
        source = "n_workers"
    else:
        env = _env_workers()
        if env is not None:
            value = env
            source = "REPRO_WORKERS"
        else:
            return max(1, min(os.cpu_count() or 1, 8))
    ncpu = os.cpu_count() or 1
    if value > ncpu:
        if allow_oversubscribe is None:
            allow_oversubscribe = oversubscription_allowed()
        if not clamp or allow_oversubscribe:
            warnings.warn(
                f"{source}={value} oversubscribes this machine "
                f"({ncpu} cpus); proceeding as requested ({tier} tier)",
                RuntimeWarning, stacklevel=2,
            )
        else:
            warnings.warn(
                f"{source}={value} exceeds os.cpu_count()={ncpu}; "
                f"clamping to {ncpu} ({tier} tier; set "
                f"REPRO_ALLOW_OVERSUBSCRIBE=1 to keep the requested count)",
                RuntimeWarning, stacklevel=2,
            )
            value = ncpu
    return value


def default_workers() -> int:
    """Worker count default: ``REPRO_WORKERS`` override (validated and
    clamped against the cpu count by :func:`resolve_worker_count`), else
    cpu count capped at 8 (memory-bound kernels stop scaling past that on
    typical desktop memory systems)."""
    return resolve_worker_count(None)


class WorkerPool:
    """A reusable thread pool with ordered map semantics.

    With ``n_workers=1`` everything runs inline (no threads), which keeps
    single-worker baselines overhead-free and deterministic for profiling.
    """

    def __init__(self, n_workers: int | None = None):
        # Explicit thread counts are honored even past the cpu count
        # (threads oversubscribe harmlessly); env/default counts go
        # through the shared resolution + clamp.
        if n_workers is not None:
            self.n_workers = check_positive_int(n_workers, "n_workers")
        else:
            self.n_workers = resolve_worker_count(None)
        self._executor: ThreadPoolExecutor | None = None
        if self.n_workers > 1:
            self._executor = ThreadPoolExecutor(max_workers=self.n_workers)
        # Stable small worker ids (0..n-1) keyed by thread ident, assigned
        # first-seen: the inline path runs on the submitting thread, which
        # therefore gets id 0 — identical span shape to a one-thread pool.
        self._worker_ids: dict[int, int] = {}
        self._worker_lock = threading.Lock()

    def _worker_id(self) -> int:
        ident = threading.get_ident()
        with self._worker_lock:
            wid = self._worker_ids.get(ident)
            if wid is None:
                wid = self._worker_ids[ident] = len(self._worker_ids)
                # Once per thread: folded profiler stacks carry the same
                # lane id as this thread's pool_task spans.
                _profiler.label_thread(ident, f"worker-{wid}")
            return wid

    def run(self, tasks: Sequence[Callable[[], object]]) -> list[object]:
        """Execute thunks, returning their results in submission order.

        When tracing is enabled, each task runs inside a copy of the
        submitting thread's :mod:`contextvars` context wrapped in a
        ``pool_task`` span carrying ``index``, ``worker`` (stable lane id),
        ``queue_wait`` (seconds between submit and start; exactly 0.0
        on the inline path), and ``source="measured"`` (threads are timed
        directly, never synthesized), so worker-thread spans (and any
        context-local
        counters) nest under the caller's current span and
        :mod:`repro.obs.utilization` can reconstruct per-worker timelines.
        Each traced fan-out of >=2 tasks also publishes the
        ``pool.imbalance`` gauge (max/mean task seconds).  The traced path
        is entirely skipped while tracing is off.
        """
        if self._executor is None or len(tasks) <= 1:
            if _trace.enabled():
                durations: list[float] = []
                results = [
                    self._run_span(t, i, None, durations)
                    for i, t in enumerate(tasks)
                ]
                self._publish_imbalance(durations)
                return results
            return [t() for t in tasks]
        if _trace.enabled() or _run_ctx.current() is not None:
            # One context copy per task: a Context cannot be entered by two
            # threads at once, and the copy carries the parent span id and
            # the active run context (so worker-thread events/metrics land
            # in the right run even when tracing itself is off).
            durations = []
            tracer = _trace.get_tracer()
            futures = [
                self._executor.submit(
                    contextvars.copy_context().run, self._run_span, t, i,
                    tracer.now(), durations
                )
                for i, t in enumerate(tasks)
            ]
            results = [f.result() for f in futures]
            self._publish_imbalance(durations)
            return results
        futures = [self._executor.submit(t) for t in tasks]
        return [f.result() for f in futures]

    def _run_span(self, task: Callable[[], object], index: int,
                  t_submit: float | None,
                  durations: list[float]) -> object:
        # t_submit None = inline execution: no queue, wait is exactly 0.0.
        queue_wait = (
            max(_trace.get_tracer().now() - t_submit, 0.0)
            if t_submit is not None else 0.0
        )
        with _trace.span(
            "pool_task", index=index, worker=self._worker_id(),
            queue_wait=queue_wait, source="measured",
        ) as rec:
            result = task()
        if rec is not None:
            durations.append(rec.duration)
        return result

    @staticmethod
    def _publish_imbalance(durations: list[float]) -> None:
        if len(durations) < 2:
            return
        mean = sum(durations) / len(durations)
        if mean > 0:
            _metrics.set_gauge("pool.imbalance", max(durations) / mean)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ParallelCooMttkrp(MttkrpBackend):
    """Nonzero-parallel COO MTTKRP: chunk, partial-accumulate, reduce.

    Each worker computes the Hadamard products for a contiguous nonzero
    range and scatters into a private ``I_n x R`` partial; partials are
    summed (the distributive-TTV property).  This is the shared-memory
    algorithm of the paper's multicore evaluation, with the reduction taking
    the role of the atomic/privatized accumulation in the C implementation.
    """

    name = "parallel-coo"

    def __init__(self, tensor: CooTensor, n_workers: int | None = None,
                 pool: WorkerPool | None = None):
        super().__init__(tensor)
        self._own_pool = pool is None
        self.pool = pool or WorkerPool(n_workers)
        self.chunks = [
            (lo, hi) for lo, hi in partition_nonzeros(tensor, self.pool.n_workers)
            if hi > lo
        ]

    def close(self) -> None:
        if self._own_pool:
            self.pool.close()

    def __enter__(self) -> "ParallelCooMttkrp":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _partial(self, lo: int, hi: int, mode: int) -> np.ndarray:
        tensor, factors = self.tensor, self.factors
        idx = tensor.idx[lo:hi]
        prod: np.ndarray | None = None
        for m in range(tensor.ndim):
            if m == mode:
                continue
            rows = factors[m][idx[:, m]]
            if prod is None:
                prod = rows.copy()
            else:
                prod *= rows
        assert prod is not None
        prod *= tensor.vals[lo:hi, None]
        out = np.zeros((tensor.shape[mode], self.rank), dtype=VALUE_DTYPE)
        np.add.at(out, idx[:, mode], prod)
        return out

    def mttkrp(self, mode: int) -> np.ndarray:
        mode = check_mode(mode, self.tensor.ndim)
        if self.tensor.nnz == 0:
            return np.zeros(
                (self.tensor.shape[mode], self.rank), dtype=VALUE_DTYPE
            )
        # One kernel span per mode with the attrs the roofline attribution
        # pass prices (`repro.obs.roofline`): backend names the layout,
        # mode+nnz select the cost model's per-mode flop/word terms.
        with _trace.span("kernel", backend=self.name, mode=mode,
                         nnz=self.tensor.nnz):
            tasks = [
                (lambda lo=lo, hi=hi: self._partial(lo, hi, mode))
                for lo, hi in self.chunks
            ]
            partials = self.pool.run(tasks)
            out = partials[0]
            for p in partials[1:]:
                out += p
        return out
