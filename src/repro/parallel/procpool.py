"""Process-parallel sharded MTTKRP: true multicore past the GIL.

The thread tier (:mod:`repro.parallel.pool`) only scales where NumPy
releases the GIL; the interpreter sections between kernels serialize, and
E8 plateaus well below the core count.  This module adds the tier the
paper's multicore evaluation actually corresponds to: worker *processes*,
each owning a contiguous shard of the nonzero space.

Zero-copy data plane (:mod:`repro.parallel.shm`): the tensor's indices
(or its bit-packed ALTO codes), values, factor matrices, and the
per-shard partial accumulators all live in ``multiprocessing.shared_memory``
segments owned by the parent.  A dispatch pickles only segment *specs* and
shard bounds — a few hundred bytes per MTTKRP regardless of tensor size.
Factor updates are a parent-side ``copyto`` into the mapped segment.

Shard boundaries come from :func:`repro.kernels.alto.aligned_chunks`:
snapped to leading-mode linearization ranges, so mode-0 shards write
disjoint rows of a single shared output (conflict-free, no partials) and
other modes reduce per-shard slabs in fixed shard order — deterministic,
and bitwise-identical between the ``numpy`` and ``alto`` layouts (the
decoded coordinates are equal integers, so every float op sees identical
inputs in identical order).

Instrumentation keeps the thread tier's exact shape: one ``pool_task``
span per shard (``index`` / ``worker`` / ``queue_wait`` / ``source``,
lanes keyed by worker pid first-seen), the ``pool.imbalance`` gauge per
fan-out, and a structured ``repro-events/v1`` warning + automatic
thread-tier fallback when a worker process dies mid-shard
(:class:`ProcessMttkrp` never hangs on a broken pool).

When the parent is tracing, workers are no longer a telemetry black box:
each task runs under a worker-local scoped
:class:`~repro.obs.runctx.RunContext` whose tracer records the interior
``kernel`` / ``kernel_chunk`` / ``alto_decode`` spans, and the finished
spans (plus counters and precise task start/stop stamps) ride back to the
parent alongside the result.  The parent aligns them onto its own clock
via the wall-clock epochs of the two tracers, re-parents them under the
task's ``pool_task`` span with
:func:`repro.obs.trace.merge_subprocess_spans`, and marks the span
``source="measured"``.  If a worker reports no payload (capture off) the
parent falls back to the old synthesized span, marked
``source="synthesized"`` so downstream consumers
(:mod:`repro.obs.utilization`, the dashboard, E8) stay honest about what
was measured.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

import numpy as np

from ..baselines.base import MttkrpBackend
from ..core.coo import CooTensor
from ..core.dtypes import VALUE_DTYPE
from ..core.validate import check_mode
from ..kernels.alto import AltoEncoding, aligned_chunks, fits_alto
from ..obs import events as _events
from ..obs import profiler as _profiler
from ..obs import trace as _trace
from ..obs.metrics import registry as _metrics
from .pool import ParallelCooMttkrp, resolve_worker_count
from .shm import SharedArrayGroup, attach_array

__all__ = [
    "ProcessPool", "ProcessMttkrp", "AltoCooMttkrp",
    "default_start_method",
]


def default_start_method() -> str:
    """``REPRO_START_METHOD`` override, else ``fork`` where available.

    Fork keeps worker startup at milliseconds and inherits the parent's
    imports; spawn (the only option on Windows/macOS defaults) works too —
    everything workers touch arrives via shared memory, not inheritance.
    """
    raw = (os.environ.get("REPRO_START_METHOD") or "").strip().lower()
    methods = multiprocessing.get_all_start_methods()
    if raw:
        if raw not in methods:
            raise ValueError(
                f"REPRO_START_METHOD={raw!r} not in {methods}"
            )
        return raw
    return "fork" if "fork" in methods else methods[0]


def _timed_call(fn: Callable, args: tuple, capture: bool = False,
                profile_hz: float | None = None):
    """Worker-side wrapper: run one task, report wall time + pid (+ spans).

    With ``capture=False`` (parent not tracing) this is the old cheap
    path: ``(result, seconds, pid, None)``.  With ``capture=True`` the
    task runs under a fresh scoped run context whose tracer/metrics are
    local to this process and this task; the fourth element becomes a
    payload dict carrying the worker tracer's wall-clock epoch, the task's
    start/stop on that tracer's clock, and every interior span — enough
    for the parent to reconstruct the task on its own timeline.

    ``profile_hz`` (set when the parent is profiling) additionally gives
    the scoped context a private :class:`~repro.obs.profiler.ProfileStore`
    and keeps a worker-local sampler thread alive for the task, so the
    payload's ``profile`` snapshot carries the worker-interior folded
    stacks the parent's sampler can never see.
    """
    if not capture:
        t0 = time.perf_counter()
        result = fn(*args)
        return result, time.perf_counter() - t0, os.getpid(), None
    from ..obs import runctx as _runctx

    ctx = _runctx.RunContext.scoped(
        trace=True, events=False, mem=False,
        profile=profile_hz is not None, profile_hz=profile_hz,
    )
    with _runctx.using(ctx, register=False):
        tracer = ctx.tracer
        t0 = tracer.now()
        result = fn(*args)
        t1 = tracer.now()
    payload = {
        "wall_epoch": tracer.wall_epoch,
        "t0": t0,
        "t1": t1,
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "spans": [s.to_dict() for s in tracer.finished()],
        "counters": ctx.metrics.counters,
        "profile": (ctx.profiler.snapshot()
                    if ctx.profiler is not None else None),
    }
    return result, t1 - t0, os.getpid(), payload


class ProcessPool:
    """Persistent worker processes with ordered map semantics.

    The sibling of :class:`~repro.parallel.pool.WorkerPool`: same
    ``run``-a-list-of-tasks interface (tasks are ``(fn, args)`` pairs with
    a module-level picklable ``fn``), same inline degrade at one worker,
    same ``pool_task`` span shape — spans are synthesized in the parent
    from worker-reported durations, with ``queue_wait`` the gap between
    submission and the task's reconstructed start.  Worker counts resolve
    through :func:`~repro.parallel.pool.resolve_worker_count` with
    clamping on (a surplus *process* burns a core; set
    ``REPRO_ALLOW_OVERSUBSCRIBE=1`` or ``allow_oversubscribe=True`` for
    deliberate sweeps).
    """

    def __init__(self, n_workers: int | None = None, *,
                 allow_oversubscribe: bool | None = None,
                 start_method: str | None = None, capture: bool = True):
        self.n_workers = resolve_worker_count(
            n_workers, clamp=True, allow_oversubscribe=allow_oversubscribe,
            tier="process",
        )
        self.start_method = start_method or default_start_method()
        #: ship worker-interior spans back when the parent traces; set
        #: False to keep the pre-PR-7 synthesized spans (the overhead
        #: benchmark compares the two).
        self.capture = bool(capture)
        self._executor: ProcessPoolExecutor | None = None
        self._lanes: dict[int, int] = {}

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=multiprocessing.get_context(self.start_method),
            )
        return self._executor

    def _lane(self, pid: int) -> int:
        lane = self._lanes.get(pid)
        if lane is None:
            lane = self._lanes[pid] = len(self._lanes)
        return lane

    def run(self, calls: Sequence[tuple[Callable, tuple]]) -> list:
        """Execute ``(fn, args)`` pairs, results in submission order.

        Raises :class:`concurrent.futures.process.BrokenProcessPool` when
        a worker dies mid-task — callers decide the fallback policy.
        """
        if self.n_workers == 1 or len(calls) <= 1:
            results = []
            durations = []
            for i, (fn, args) in enumerate(calls):
                with _trace.span("pool_task", index=i, worker=0,
                                 queue_wait=0.0, source="measured") as rec:
                    results.append(fn(*args))
                if rec is not None:
                    durations.append(rec.duration)
            self._publish_imbalance(durations)
            return results
        executor = self._ensure_executor()
        traced = _trace.enabled()
        capture = traced and self.capture
        # Ship the parent's sampling rate to the workers only when both
        # capture and profiling are live; workers then sample themselves
        # for the task's duration and return the folded stacks.
        profile_hz = None
        if capture and _profiler.enabled():
            profile_hz = _profiler.active_hz() or _profiler.default_hz()
        tracer = _trace.get_tracer() if traced else None
        parent_span = _trace.current_span_id()
        submits = []
        futures = []
        for fn, args in calls:
            submits.append(tracer.now() if tracer is not None else 0.0)
            futures.append(executor.submit(_timed_call, fn, args, capture,
                                           profile_hz))
        results = []
        durations = []
        for i, future in enumerate(futures):
            result, dur, pid, payload = future.result()
            durations.append(dur)
            results.append(result)
            if tracer is None:
                continue
            if payload is not None:
                # Genuine worker-interior telemetry: align the worker
                # tracer's clock onto ours through the two wall-clock
                # epochs, record the task at its *measured* start/stop,
                # and merge the interior spans under it.
                offset = payload["wall_epoch"] - tracer.wall_epoch
                t0 = payload["t0"] + offset
                t1 = payload["t1"] + offset
                rec = _trace.record_span(
                    "pool_task", t0, t1, parent=parent_span,
                    index=i, worker=self._lane(pid),
                    queue_wait=max(t0 - submits[i], 0.0),
                    source="measured", pid=pid,
                )
                _trace.merge_subprocess_spans(
                    payload["spans"], offset=offset,
                    parent=rec.id if rec is not None else parent_span,
                    tid=pid,
                )
                counters = payload.get("counters")
                if counters is not None and any(counters.snapshot().values()):
                    _metrics.counters.add(counters)
                profile = payload.get("profile")
                if profile and profile.get("n_samples") \
                        and _profiler.enabled():
                    store = _profiler.get_store()
                    if store is not None:
                        # Same re-rooting as the spans above: worker
                        # stacks land under pool_task, one lane per pid.
                        store.merge_child(profile, lane=f"pid-{pid}")
            else:
                # No payload (worker ran without capture): synthesize the
                # span from the reported duration, as before PR 7, and
                # say so.
                t1 = tracer.now()
                _trace.record_span(
                    "pool_task", t1 - dur, t1, parent=parent_span,
                    index=i, worker=self._lane(pid),
                    queue_wait=max(t1 - dur - submits[i], 0.0),
                    source="synthesized", pid=pid,
                )
        self._publish_imbalance(durations)
        return results

    @staticmethod
    def _publish_imbalance(durations: list[float]) -> None:
        if len(durations) < 2:
            return
        mean = sum(durations) / len(durations)
        if mean > 0:
            _metrics.set_gauge("pool.imbalance", max(durations) / mean)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- worker-side shard kernel (module-level: picklable under spawn) ---------

def _shard_column(specs, layout, enc_meta, lo, hi, mode):
    """Mode ``mode``'s coordinates for nonzeros ``lo:hi`` (int64)."""
    if layout == "alto":
        with _trace.span("alto_decode", mode=mode, nnz=hi - lo):
            codes = attach_array(specs["codes"])[lo:hi]
            shifts, masks = enc_meta
            field = codes >> np.uint64(shifts[mode])
            if mode != 0:
                field &= np.uint64(masks[mode])
            return field.astype(np.int64, copy=False)
    return attach_array(specs["idx"])[lo:hi, mode]


def _mttkrp_shard(specs, layout, enc_meta, ndim, shape, mode,
                  lo, hi, shard):
    """One shard's partial MTTKRP, accumulated into shared memory.

    Float operation order mirrors
    :meth:`~repro.parallel.pool.ParallelCooMttkrp._partial` exactly.
    Mode 0 writes straight into the shared output — shards are aligned to
    leading-mode boundaries, so writes never overlap; other modes fill
    this shard's private slab for the parent's ordered reduction.
    """
    with _trace.span("kernel", backend=f"process-{layout}", mode=mode,
                     shard=shard, nnz=hi - lo):
        vals = attach_array(specs["vals"])
        factors = [attach_array(specs[f"factor{m}"]) for m in range(ndim)]
        with _trace.span("kernel_chunk", phase="gather_hadamard",
                         lo=lo, hi=hi):
            prod = None
            for m in range(ndim):
                if m == mode:
                    continue
                rows = factors[m][
                    _shard_column(specs, layout, enc_meta, lo, hi, m)
                ]
                if prod is None:
                    prod = rows.copy()
                else:
                    prod *= rows
            assert prod is not None
            prod *= vals[lo:hi, None]
        target = _shard_column(specs, layout, enc_meta, lo, hi, mode)
        with _trace.span("kernel_chunk", phase="scatter", lo=lo, hi=hi):
            if mode == 0:
                np.add.at(attach_array(specs["out0"]), target, prod)
            else:
                slab = attach_array(specs["partials"])[shard, : shape[mode]]
                slab.fill(0.0)
                np.add.at(slab, target, prod)
        return True


class ProcessMttkrp(MttkrpBackend):
    """Process-parallel sharded COO MTTKRP with shared-memory state.

    ``layout="numpy"`` shares the raw ``(nnz, N)`` index matrix;
    ``layout="alto"`` shares one packed ``uint64`` code per nonzero
    (``N``× smaller index traffic, two integer ops per recovered
    coordinate) — both layouts produce bitwise-identical results.  A
    worker-process death surfaces a ``repro-events/v1`` warning and the
    backend permanently falls back to an equivalent thread-tier engine
    sharing the same shard boundaries.  Usable as a context manager; all
    shared segments are unlinked on :meth:`close` (and by a finalizer if
    you forget).
    """

    name = "process-coo"

    def __init__(self, tensor: CooTensor, n_workers: int | None = None, *,
                 layout: str = "numpy", pool: ProcessPool | None = None,
                 allow_oversubscribe: bool | None = None):
        super().__init__(tensor)
        if layout not in ("numpy", "alto"):
            raise ValueError(
                f"layout must be 'numpy' or 'alto', got {layout!r}"
            )
        if layout == "alto" and not fits_alto(tensor.shape):
            raise ValueError(
                f"alto layout needs <= 63 index bits, shape {tensor.shape} "
                "does not fit; use layout='numpy'"
            )
        self.layout = layout
        self._own_pool = pool is None
        self.pool = pool or ProcessPool(
            n_workers, allow_oversubscribe=allow_oversubscribe
        )
        self._shm = SharedArrayGroup()
        self.chunks = (
            aligned_chunks(tensor.idx[:, 0], self.pool.n_workers)
            if tensor.nnz else []
        )
        self.encoding: AltoEncoding | None = None
        if layout == "alto":
            self.encoding = AltoEncoding.encode(tensor.idx, tensor.shape)
            self._shm.put("codes", self.encoding.codes)
            self._enc_meta = (self.encoding.shifts, self.encoding.masks)
        else:
            self._shm.put("idx", tensor.idx)
            self._enc_meta = None
        self._shm.put("vals", tensor.vals)
        self._fallback: ParallelCooMttkrp | None = None

    @property
    def index_nbytes(self) -> int:
        """Shared index bytes (the layout trade the cost model scores)."""
        key = "codes" if self.layout == "alto" else "idx"
        return int(self._shm.array(key).nbytes)

    def set_factors(self, factors) -> None:
        super().set_factors(factors)
        rank = self._rank
        if self._parallel and "partials" not in self._shm:
            self._shm.create(
                "partials",
                (len(self.chunks), max(self.tensor.shape), rank),
                VALUE_DTYPE,
            )
            self._shm.create("out0", (self.tensor.shape[0], rank), VALUE_DTYPE)
        for m, U in enumerate(self._factors):
            key = f"factor{m}"
            if key in self._shm:
                np.copyto(self._shm.array(key), U)
            else:
                self._shm.put(key, U)
            # Alias the backend's factor list to the mapped views: every
            # later update is a copy into shared memory, never a pickle.
            self._factors[m] = self._shm.array(key)
        if self._fallback is not None:
            self._fallback._factors = self._factors
            self._fallback._rank = rank

    def update_factor(self, mode: int, U: np.ndarray) -> None:
        mode = check_mode(mode, self.tensor.ndim)
        U = np.ascontiguousarray(U, dtype=VALUE_DTYPE)
        if U.shape != (self.tensor.shape[mode], self.rank):
            raise ValueError(
                f"factor for mode {mode} must be "
                f"{(self.tensor.shape[mode], self.rank)}, got {U.shape}"
            )
        np.copyto(self.factors[mode], U)

    @property
    def _parallel(self) -> bool:
        return self.pool.n_workers > 1 and len(self.chunks) > 1

    def mttkrp(self, mode: int) -> np.ndarray:
        mode = check_mode(mode, self.tensor.ndim)
        out_shape = (self.tensor.shape[mode], self.rank)
        if self.tensor.nnz == 0:
            return np.zeros(out_shape, dtype=VALUE_DTYPE)
        if self._fallback is not None:
            return self._fallback.mttkrp(mode)
        if not self._parallel:
            return self._inline(mode)
        specs = self._shm.specs()
        if mode == 0:
            self._shm.array("out0")[:] = 0.0
        calls = [
            (_mttkrp_shard, (specs, self.layout, self._enc_meta,
                             self.tensor.ndim, self.tensor.shape, mode,
                             lo, hi, shard))
            for shard, (lo, hi) in enumerate(self.chunks)
        ]
        try:
            self.pool.run(calls)
        except BrokenProcessPool as exc:
            self._activate_fallback(exc)
            return self._fallback.mttkrp(mode)
        if mode == 0:
            return self._shm.array("out0").copy()
        partials = self._shm.array("partials")
        rows = self.tensor.shape[mode]
        out = partials[0, :rows].copy()
        for shard in range(1, len(self.chunks)):
            out += partials[shard, :rows]
        return out

    def _inline(self, mode: int) -> np.ndarray:
        """Single-worker path: whole-range accumulation, no shm slabs."""
        tensor, factors = self.tensor, self.factors
        enc = self.encoding

        def col(m):
            return (enc.decode(m) if enc is not None else tensor.idx[:, m])

        prod = None
        for m in range(tensor.ndim):
            if m == mode:
                continue
            rows = factors[m][col(m)]
            if prod is None:
                prod = rows.copy()
            else:
                prod *= rows
        assert prod is not None
        prod *= tensor.vals[:, None]
        out = np.zeros((tensor.shape[mode], self.rank), dtype=VALUE_DTYPE)
        np.add.at(out, col(mode), prod)
        return out

    def _activate_fallback(self, exc: BaseException) -> None:
        """Worker death: warn (structured + Python), swap in threads."""
        message = (
            f"process-tier worker died mid-shard ({exc!r}); "
            f"falling back to the thread tier for the rest of the run"
        )
        warnings.warn(message, RuntimeWarning, stacklevel=3)
        if _events.enabled():
            _events.emit(
                "warning", message=message, tier="process",
                fallback="thread", layout=self.layout,
                n_workers=self.pool.n_workers,
            )
        _metrics.incr("procpool.broken")
        if self._own_pool:
            self.pool.close()
        fb = ParallelCooMttkrp(self.tensor, n_workers=self.pool.n_workers)
        # Same shard boundaries and the already-shared factor views: the
        # fallback reproduces the process tier's reduction order exactly.
        fb.chunks = list(self.chunks)
        fb._factors = self._factors
        fb._rank = self._rank
        self._fallback = fb

    def close(self) -> None:
        if self._fallback is not None:
            self._fallback.close()
            self._fallback = None
        if self._own_pool:
            self.pool.close()
        self._shm.close()

    def __enter__(self) -> "ProcessMttkrp":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AltoCooMttkrp(ParallelCooMttkrp):
    """Thread-tier nonzero-parallel MTTKRP over packed ALTO codes.

    Same chunking, float operation order, and reduction order as
    :class:`~repro.parallel.pool.ParallelCooMttkrp`; only the index
    *source* differs (one decoded uint64 field per coordinate instead of
    an int64 matrix column), so results are bitwise equal while index
    storage shrinks from ``N`` words per nonzero to one.
    """

    name = "alto-coo"

    def __init__(self, tensor: CooTensor, n_workers: int | None = None,
                 pool=None):
        super().__init__(tensor, n_workers, pool)
        self.encoding = AltoEncoding.encode(tensor.idx, tensor.shape)

    def _partial(self, lo: int, hi: int, mode: int) -> np.ndarray:
        tensor, factors = self.tensor, self.factors
        enc = self.encoding
        prod: np.ndarray | None = None
        for m in range(tensor.ndim):
            if m == mode:
                continue
            rows = factors[m][enc.decode(m, lo, hi)]
            if prod is None:
                prod = rows.copy()
            else:
                prod *= rows
        assert prod is not None
        prod *= tensor.vals[lo:hi, None]
        out = np.zeros((tensor.shape[mode], self.rank), dtype=VALUE_DTYPE)
        np.add.at(out, enc.decode(mode, lo, hi), prod)
        return out
