"""Shared-memory multicore runtime: partitioning, pools, scaling models."""

from .engine import ParallelMemoizedMttkrp
from .partition import (contiguous_chunks, greedy_partition,
                        partition_balance, partition_nonzeros,
                        partition_slices)
from .pool import (ParallelCooMttkrp, WorkerPool, default_workers,
                   resolve_worker_count)
from .procpool import AltoCooMttkrp, ProcessMttkrp, ProcessPool
from .shm import SharedArrayGroup, SharedArraySpec
from .slicepar import SliceParallelMttkrp
from .simulate import (ScalingParams, load_imbalance, simulate_parallel_time,
                       simulate_speedup_curve)

__all__ = [
    "ParallelMemoizedMttkrp",
    "contiguous_chunks",
    "greedy_partition",
    "partition_balance",
    "partition_nonzeros",
    "partition_slices",
    "AltoCooMttkrp",
    "ParallelCooMttkrp",
    "ProcessMttkrp",
    "ProcessPool",
    "SharedArrayGroup",
    "SharedArraySpec",
    "SliceParallelMttkrp",
    "WorkerPool",
    "default_workers",
    "resolve_worker_count",
    "ScalingParams",
    "load_imbalance",
    "simulate_parallel_time",
    "simulate_speedup_curve",
]
