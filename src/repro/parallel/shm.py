"""Shared-memory ndarrays for the process-parallel tier.

The process tier's whole point is that workers read factor matrices and
gather indices *in place*: the parent creates each array in a
:mod:`multiprocessing.shared_memory` segment, ships only the tiny
``(name, shape, dtype)`` spec through the task pickle, and workers map the
segment once and cache the view.  Nothing numeric crosses the pipe — per
MTTKRP dispatch the IPC payload is a few hundred bytes regardless of
tensor size.

Lifecycle rules (the part that goes wrong in practice):

* the **parent owns** every segment: it creates, and it alone unlinks.
  :class:`SharedArrayGroup` tracks every array it created and a
  ``weakref.finalize`` guarantees unlink-on-collection even when a test
  or a crashed run never calls :meth:`close` — no segment outlives the
  owning process.
* **worker attachments add no tracker state**.  On Python 3.13+
  :func:`attach_array` passes ``track=False``.  Before 3.13 every attach
  registers itself (cpython#82300) — but multiprocessing children *share*
  the parent's resource tracker (fork inherits its pipe, spawn passes it),
  whose per-name cache is a set: the child's duplicate registration
  dedupes to a no-op, and the parent's ``unlink`` clears the single entry.
  Crucially the child must **not** call ``unregister`` either — that would
  strip the parent's own registration from the shared tracker and make the
  parent's later unlink-unregister die with a ``KeyError`` inside the
  tracker process.  The CI smoke job asserts that worker runs produce no
  ``resource_tracker`` noise on stderr.
"""

from __future__ import annotations

import atexit
import weakref
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SharedArraySpec", "SharedArrayGroup", "attach_array",
    "detach_all", "n_attached",
]


class SharedArraySpec:
    """Picklable handle to one shared array: segment name, shape, dtype."""

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: tuple[int, ...], dtype: str):
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = str(dtype)

    def __getstate__(self):
        return (self.name, self.shape, self.dtype)

    def __setstate__(self, state):
        self.name, self.shape, self.dtype = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SharedArraySpec({self.name!r}, {self.shape}, {self.dtype!r})"


def _unlink_segments(segments: list) -> None:
    """Best-effort close+unlink of owned segments (finalizer-safe).

    ``close`` can raise ``BufferError`` when a caller still holds a view
    into the mapping; the unlink (the part that prevents a leak — on
    Linux the mapping itself dies with the process) is attempted anyway.
    """
    for seg in segments:
        try:
            seg.close()
        except (BufferError, OSError):
            pass
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):  # already gone: fine
            pass
    segments.clear()


class SharedArrayGroup:
    """All shared arrays owned by one parent-side object.

    ``create(key, shape, dtype)`` allocates a segment and returns the
    writable parent-side view; ``spec(key)`` returns the picklable handle
    workers attach with.  :meth:`close` (or garbage collection, via the
    registered finalizer) unlinks everything.
    """

    def __init__(self, tag: str = "repro"):
        self._tag = tag
        self._segments: list[shared_memory.SharedMemory] = []
        self._arrays: dict[str, np.ndarray] = {}
        self._specs: dict[str, SharedArraySpec] = {}
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._segments
        )

    def create(self, key: str, shape, dtype) -> np.ndarray:
        if key in self._arrays:
            raise ValueError(f"shared array {key!r} already exists")
        dt = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dt.itemsize)
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        self._segments.append(seg)
        arr = np.ndarray(shape, dtype=dt, buffer=seg.buf)
        self._arrays[key] = arr
        self._specs[key] = SharedArraySpec(seg.name, shape, dt.str)
        return arr

    def put(self, key: str, source: np.ndarray) -> np.ndarray:
        """Create (or reuse) a segment shaped like ``source`` and copy it in."""
        arr = self._arrays.get(key)
        if arr is None or arr.shape != source.shape or arr.dtype != source.dtype:
            if arr is not None:
                raise ValueError(
                    f"shared array {key!r} exists with shape {arr.shape}, "
                    f"cannot hold {source.shape}"
                )
            arr = self.create(key, source.shape, source.dtype)
        np.copyto(arr, source)
        return arr

    def array(self, key: str) -> np.ndarray:
        return self._arrays[key]

    def spec(self, key: str) -> SharedArraySpec:
        return self._specs[key]

    def specs(self) -> dict[str, SharedArraySpec]:
        return dict(self._specs)

    def __contains__(self, key: str) -> bool:
        return key in self._arrays

    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())

    def close(self) -> None:
        """Unlink every owned segment (idempotent)."""
        # Views into the buffers must die before close(): drop ours first.
        self._arrays.clear()
        self._specs.clear()
        _unlink_segments(self._segments)

    def __enter__(self) -> "SharedArrayGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- worker side -----------------------------------------------------------

#: per-process attachment cache: segment name -> (SharedMemory, ndarray).
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}

#: whether this Python exposes SharedMemory(track=...) (3.13+).
_HAS_TRACK = "track" in shared_memory.SharedMemory.__init__.__code__.co_varnames


def attach_array(spec: SharedArraySpec) -> np.ndarray:
    """Map ``spec``'s segment read-write, adding no tracker state.

    Cached per process: repeated attaches of the same segment (every
    MTTKRP dispatch) return the same view.  On 3.13+ the attach is
    untracked (``track=False``); before that the attach's registration
    dedupes inside the tracker the worker shares with the parent (see the
    module docstring — and never call ``unregister`` here, that would
    strip the parent's registration from the shared tracker).
    """
    cached = _ATTACHED.get(spec.name)
    if cached is not None:
        return cached[1]
    if _HAS_TRACK:  # pragma: no cover - python >= 3.13
        seg = shared_memory.SharedMemory(name=spec.name, track=False)
    else:
        seg = shared_memory.SharedMemory(name=spec.name)
    arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf)
    _ATTACHED[spec.name] = (seg, arr)
    return arr


def detach_all() -> int:
    """Drop every cached attachment in this process; returns the count."""
    n = len(_ATTACHED)
    for seg, _arr in list(_ATTACHED.values()):
        try:
            seg.close()
        except (BufferError, OSError):  # pragma: no cover - view still live
            pass
    _ATTACHED.clear()
    return n


def n_attached() -> int:
    """Number of segments currently mapped in this process."""
    return len(_ATTACHED)


atexit.register(detach_all)
