"""E4 — speedup over the non-memoized engine vs tensor order (figure).

Fixes nnz and rank while sweeping the order from 3 to 8 on the skewed
synthetic family, timing full-iteration MTTKRP work under the star (no
memoization, the SPLATT work bound) against the balanced memoization tree and
the planner's pick.  Expected shape: speedup increases with order — the
``(N-1)/log N`` operation-count argument plus index-overlap gains.
"""

from __future__ import annotations

from ..core.engine import MemoizedMttkrp
from ..core.strategy import balanced_binary, star
from ..model.calibrate import calibrate_machine
from ..model.planner import plan
from .common import (DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult,
                     iteration_seconds, load_scaled)

EXP_ID = "E4"
TITLE = "Per-iteration speedup over no-memoization vs tensor order"


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        orders=range(3, 9), family: str = "skew",
        repeats: int = 3) -> ExperimentResult:
    machine = calibrate_machine()
    rows = []
    speedups = {}
    for order in orders:
        tensor = load_scaled(f"{family}{order}d", scale)
        t_star = iteration_seconds(
            tensor, lambda t: MemoizedMttkrp(t, star(order)), rank,
            repeats=repeats,
        )
        t_bdt = iteration_seconds(
            tensor, lambda t: MemoizedMttkrp(t, balanced_binary(order)),
            rank, repeats=repeats,
        )
        chosen = plan(tensor, rank, machine=machine).best.strategy
        t_auto = iteration_seconds(
            tensor, lambda t: MemoizedMttkrp(t, chosen), rank,
            repeats=repeats,
        )
        speedups[order] = t_star / t_auto
        rows.append([
            order,
            round(t_star * 1e3, 3),
            round(t_bdt * 1e3, 3),
            round(t_auto * 1e3, 3),
            chosen.name,
            round(t_star / t_bdt, 2),
            round(speedups[order], 2),
        ])
    orders = list(orders)
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["order", "star ms", "bdt ms", "adaptive ms",
                 "chosen", "star/bdt", "star/adaptive"],
        rows=rows,
        expected_shape=(
            "Speedup over the non-memoized engine grows with order; "
            ">= ~1.3x at order 4 rising to several-x at order 8."
        ),
        observations={
            "speedup_by_order": speedups,
            "monotone_trend": speedups[orders[-1]] > speedups[orders[0]],
        },
    )
