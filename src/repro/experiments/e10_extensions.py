"""E10 — extension workloads on the memoized engine (beyond the paper).

The memoization framework claims to serve *any* MTTKRP-based algorithm.
Three measurements back that up:

* **E10a** — completion-gradient kernel: all ``N`` MTTKRPs with fixed
  factors, comparing the engine's single-tree-sweep (``mttkrp_all``) against
  per-mode recomputation without cross-mode reuse (star) and the plain COO
  baseline.
* **E10b** — restart amortization: wall time of ``k`` CP-ALS restarts with a
  shared symbolic tree vs rebuilding it per restart.
* **E10c** — nonnegative CP parity: per-iteration time of NCP-MU equals
  CP-ALS on the same backend (the MTTKRP dominates; the update rule is
  negligible), so memoization gains transfer 1:1.
"""

from __future__ import annotations

import time

import numpy as np

from ..algos.ncp import cp_nmu
from ..baselines.coo_mttkrp import CooMttkrp
from ..core.cpals import cp_als, initialize_factors
from ..core.engine import MemoizedMttkrp
from ..core.strategy import balanced_binary, star
from ..core.symbolic import SymbolicTree
from ..perf.timer import time_callable
from .common import (DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult,
                     load_scaled)

EXP_ID = "E10"


def run_gradient_kernel(
    scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
    names=("delicious", "enron"), repeats: int = 3,
) -> ExperimentResult:
    """E10a: all-modes MTTKRP (the completion gradient) per method."""
    from ..model.calibrate import calibrate_machine
    from ..model.planner import plan

    machine = calibrate_machine()
    rows = []
    sweep_speedup = {}
    for name in names:
        tensor = load_scaled(name, scale)
        factors = initialize_factors(tensor, rank, random_state=0)

        chosen = plan(tensor, rank, machine=machine).best.strategy
        bdt_engine = MemoizedMttkrp(tensor, chosen, factors)
        star_engine = MemoizedMttkrp(tensor, star(tensor.ndim), factors)
        coo = CooMttkrp(tensor)
        coo.set_factors(factors)

        def sweep():
            bdt_engine.invalidate_all()
            bdt_engine.mttkrp_all()

        def per_mode_star():
            star_engine.invalidate_all()
            star_engine.mttkrp_all()

        def per_mode_coo():
            for n in range(tensor.ndim):
                coo.mttkrp(n)

        t_sweep = time_callable(sweep, repeats=repeats)
        t_star = time_callable(per_mode_star, repeats=repeats)
        t_coo = time_callable(per_mode_coo, repeats=repeats)
        sweep_speedup[name] = t_star / t_sweep
        rows.append([
            name,
            round(t_coo * 1e3, 3),
            round(t_star * 1e3, 3),
            round(t_sweep * 1e3, 3),
            chosen.name,
            round(t_coo / t_sweep, 2),
            round(sweep_speedup[name], 2),
        ])
    return ExperimentResult(
        exp_id="E10a",
        title="Completion gradient: all-modes MTTKRP per evaluation (ms)",
        headers=["dataset", "coo per-mode", "engine star", "adaptive sweep",
                 "chosen", "vs coo", "vs star"],
        rows=rows,
        expected_shape=(
            "With fixed factors, the tree sweep shares every internal node "
            "across all N gradients, beating per-mode recomputation by more "
            "than the ALS-mode gain (no invalidation between modes)."
        ),
        observations={"sweep_speedup": sweep_speedup},
    )


def run_restart_amortization(
    scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
    name: str = "flickr", n_restarts: int = 4, n_iter: int = 3,
) -> ExperimentResult:
    """E10b: shared vs rebuilt symbolic trees across restarts."""
    tensor = load_scaled(name, scale)
    strategy = balanced_binary(tensor.ndim)

    t0 = time.perf_counter()
    shared = SymbolicTree(tensor, strategy)
    for seed in range(n_restarts):
        engine = MemoizedMttkrp(tensor, strategy, symbolic=shared)
        cp_als(tensor, rank, engine_factory=lambda t, e=engine: e,
               n_iter_max=n_iter, tol=0.0, random_state=seed)
    t_shared = time.perf_counter() - t0

    t0 = time.perf_counter()
    for seed in range(n_restarts):
        cp_als(tensor, rank, strategy=strategy, n_iter_max=n_iter, tol=0.0,
               random_state=seed)
    t_rebuilt = time.perf_counter() - t0

    saving = t_rebuilt / t_shared
    rows = [[name, n_restarts, n_iter, round(t_rebuilt, 3),
             round(t_shared, 3), round(saving, 2)]]
    return ExperimentResult(
        exp_id="E10b",
        title="Symbolic-tree sharing across CP-ALS restarts (seconds)",
        headers=["dataset", "restarts", "iters/run", "rebuilt", "shared",
                 "speedup"],
        rows=rows,
        expected_shape=(
            "Sharing the symbolic tree across restarts removes the "
            "preprocessing from all but the first run; the saving grows as "
            "runs get shorter (rank/restart searches)."
        ),
        observations={"restart_speedup": saving},
    )


def run_ncp_parity(
    scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
    name: str = "choa", n_iter: int = 5,
) -> ExperimentResult:
    """E10c: NCP-MU and CP-ALS per-iteration times on the same backend."""
    tensor = load_scaled(name, scale)
    t0 = time.perf_counter()
    als = cp_als(tensor, rank, strategy="bdt", n_iter_max=n_iter, tol=0.0,
                 random_state=0)
    t_als = (time.perf_counter() - t0) / n_iter
    t0 = time.perf_counter()
    nmu = cp_nmu(tensor, rank, strategy="bdt", n_iter_max=n_iter, tol=0.0,
                 random_state=0)
    t_nmu = (time.perf_counter() - t0) / n_iter
    ratio = t_nmu / t_als
    rows = [[name, round(t_als * 1e3, 3), round(t_nmu * 1e3, 3),
             round(ratio, 2), round(als.fit, 4), round(nmu.fit, 4)]]
    return ExperimentResult(
        exp_id="E10c",
        title="Nonnegative CP (MU) vs CP-ALS per-iteration time (ms)",
        headers=["dataset", "als ms/iter", "nmu ms/iter", "nmu/als",
                 "als fit", "nmu fit"],
        rows=rows,
        expected_shape=(
            "The update rule is a rounding error next to the MTTKRP: "
            "NCP-MU iteration time within ~1.3x of CP-ALS on the same "
            "memoized backend, so memoization speedups carry over."
        ),
        observations={"time_ratio": ratio},
    )


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        repeats: int = 3) -> list[ExperimentResult]:
    return [
        run_gradient_kernel(scale, rank, repeats=repeats),
        run_restart_amortization(scale, rank),
        run_ncp_parity(scale, rank),
    ]
