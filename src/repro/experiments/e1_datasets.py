"""E1 — dataset statistics table (paper's Table 1 analog).

Reports, per benchmark dataset: order, mode sizes, nonzeros, density, and the
mean index-overlap (compression) factor of two-mode projections — the
structural property that determines how much memoization can shrink
intermediates.
"""

from __future__ import annotations

import numpy as np

from ..model.overlap import DistinctCounter
from ..synth.datasets import dataset_names, get_spec
from .common import DEFAULT_SCALE, ExperimentResult, load_scaled

EXP_ID = "E1"
TITLE = "Dataset statistics (real-tensor analogs + synthetic sweeps)"


def two_mode_compression(tensor) -> float:
    """Mean nnz / distinct(projection) over adjacent two-mode projections."""
    counter = DistinctCounter(tensor)
    ratios = []
    for a in range(tensor.ndim - 1):
        distinct = counter.count([a, a + 1])
        ratios.append(tensor.nnz / max(distinct, 1))
    return float(np.mean(ratios))


def run(scale: float = DEFAULT_SCALE, names=None) -> ExperimentResult:
    names = list(names) if names is not None else dataset_names()
    rows = []
    compressions = {}
    for name in names:
        spec = get_spec(name)
        tensor = load_scaled(name, scale)
        comp = two_mode_compression(tensor)
        compressions[name] = comp
        rows.append([
            name,
            spec.analog_of or "synthetic",
            tensor.ndim,
            "x".join(str(s) for s in tensor.shape),
            tensor.nnz,
            tensor.density,
            round(comp, 3),
        ])
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["dataset", "analog of", "order", "shape", "nnz",
                 "density", "2-mode overlap"],
        rows=rows,
        expected_shape=(
            "Skewed real-tensor analogs show 2-mode overlap factors > 1 "
            "(contraction shrinks intermediates); uniform randNd tensors "
            "show overlap ~1 at these densities."
        ),
        observations={
            "max_overlap": max(compressions.values()),
            "skewed_mean_overlap": float(np.mean(
                [v for k, v in compressions.items() if k.startswith("skew")]
            )) if any(k.startswith("skew") for k in compressions) else None,
        },
    )
