"""E3 — sequential per-iteration CP-ALS time, adaptive vs baselines.

The paper's headline comparison: per-iteration time of the model-selected
memoized algorithm against SPLATT-style CSF (per-mode and single-tree), plain
COO, and Tensor-Toolbox-style TTV backends on every benchmark tensor.

Expected shape, matching the paper's claim structure: at 4th order and above
— where memoization has real headroom — the adaptive engine matches or beats
every baseline; at 3rd order it stays close to the best baseline (the gains
of memoization are structurally tiny at N=3, and CSF fiber compression /
column-resident TTV are substrate effects outside the strategy family — see
the result's notes).
"""

from __future__ import annotations

from ..core.engine import MemoizedMttkrp
from ..model.calibrate import calibrate_machine
from ..model.planner import plan
from ..synth.datasets import dataset_names
from .common import (DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult,
                     iteration_seconds, load_scaled)

EXP_ID = "E3"
TITLE = "Sequential per-iteration time (ms): adaptive vs baselines"

BASELINES = ["coo", "ttv", "splatt", "splatt1"]

#: win tolerance at order >= 4 (timer noise + near-tied candidates).
HIGH_ORDER_TOLERANCE = 1.10
#: allowed gap to the best baseline at order 3.
LOW_ORDER_TOLERANCE = 1.75


def default_names() -> list[str]:
    return dataset_names(analogs_only=True)


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        names=None, repeats: int = 3) -> ExperimentResult:
    names = list(names) if names is not None else default_names()
    machine = calibrate_machine()
    rows = []
    speedup_vs_splatt = {}
    ratio_to_best = {}
    order_of = {}
    for name in names:
        tensor = load_scaled(name, scale)
        report = plan(tensor, rank, machine=machine)
        chosen = report.best.strategy

        def adaptive_factory(t, chosen=chosen):
            return MemoizedMttkrp(t, chosen)

        times = {
            b: iteration_seconds(tensor, b, rank, repeats=repeats)
            for b in BASELINES
        }
        times["adaptive"] = iteration_seconds(
            tensor, adaptive_factory, rank, repeats=repeats
        )
        best_baseline = min(times[b] for b in BASELINES)
        ratio_to_best[name] = times["adaptive"] / best_baseline
        order_of[name] = tensor.ndim
        speedup_vs_splatt[name] = times["splatt"] / times["adaptive"]
        rows.append([
            name,
            tensor.ndim,
            round(times["coo"] * 1e3, 3),
            round(times["ttv"] * 1e3, 3),
            round(times["splatt"] * 1e3, 3),
            round(times["splatt1"] * 1e3, 3),
            round(times["adaptive"] * 1e3, 3),
            chosen.name,
            round(speedup_vs_splatt[name], 2),
        ])
    high = [n for n in names if order_of[n] >= 4]
    low = [n for n in names if order_of[n] == 3]
    high_wins = sum(
        1 for n in high if ratio_to_best[n] <= HIGH_ORDER_TOLERANCE
    )
    max_low_ratio = max((ratio_to_best[n] for n in low), default=1.0)
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["dataset", "order", "coo", "ttv", "splatt", "splatt1",
                 "adaptive", "chosen strategy", "speedup vs splatt"],
        rows=rows,
        expected_shape=(
            "Order >= 4: adaptive matches or beats every baseline (within "
            "10%). Order 3: adaptive within ~1.75x of the best baseline — "
            "memoization headroom is structurally tiny at N=3 and two "
            "substrate effects favour specific baselines there (see notes)."
        ),
        observations={
            "high_order_wins": high_wins,
            "n_high_order": len(high),
            "max_low_order_ratio": max_low_ratio,
            "ratio_to_best": ratio_to_best,
            "speedup_vs_splatt": speedup_vs_splatt,
        },
        notes=[
            "ttv (column-at-a-time) can win on 3rd-order tensors in this "
            "NumPy substrate: its working vectors are cache-resident, an "
            "effect the paper's C baselines do not show (MATLAB TTB is far "
            "slower than SPLATT there).",
            "splatt's fiber compression is partially outside the strategy "
            "family at N=3 (only one nontrivial grouping exists), so the "
            "planner cannot always reach the best 3rd-order kernel; at "
            "N>=4 the strategy space dominates it.",
            "Traced runs (--trace or REPRO_HEALTH=1) also record "
            "numerical-health columns (health.json): max κ(H) is the "
            "worst-mode Gram condition number (values approaching "
            "1/rcond = 1e12 mean the pseudoinverse fallback is about to "
            "truncate), congruence → 1 flags a swamp (near-collinear "
            "components), and the trajectory column separates honest "
            "convergence from stalls — timing comparisons are only "
            "meaningful between runs with comparable health profiles, "
            "since a swamped run burns iterations without progress.",
        ],
    )
