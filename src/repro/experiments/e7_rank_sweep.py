"""E7 — CP rank sweep (figure).

Per-iteration time of the adaptive engine vs the SPLATT-style baseline as the
CP rank grows (R in {8, 16, 32, 64}) on 4th-order analogs.  Expected shape:
both scale ~linearly in R (the value matrices are R wide), so the speedup is
roughly flat in R — memoization's advantage is structural, not rank-driven.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import MemoizedMttkrp
from ..model.calibrate import calibrate_machine
from ..model.planner import plan
from .common import (DEFAULT_SCALE, ExperimentResult, iteration_seconds,
                     load_scaled)

EXP_ID = "E7"
TITLE = "Per-iteration time vs CP rank (adaptive vs splatt)"

DEFAULT_RANKS = (8, 16, 32, 64)


def run(scale: float = DEFAULT_SCALE, ranks=DEFAULT_RANKS,
        names=("delicious", "flickr"), repeats: int = 3) -> ExperimentResult:
    machine = calibrate_machine()
    rows = []
    speedups: dict[str, dict[int, float]] = {}
    for name in names:
        tensor = load_scaled(name, scale)
        speedups[name] = {}
        for rank in ranks:
            chosen = plan(tensor, rank, machine=machine).best.strategy
            t_adaptive = iteration_seconds(
                tensor, lambda t: MemoizedMttkrp(t, chosen), rank,
                repeats=repeats,
            )
            t_splatt = iteration_seconds(tensor, "splatt", rank,
                                         repeats=repeats)
            speedups[name][rank] = t_splatt / t_adaptive
            rows.append([
                name,
                rank,
                round(t_splatt * 1e3, 3),
                round(t_adaptive * 1e3, 3),
                chosen.name,
                round(speedups[name][rank], 2),
            ])
    variation = {
        name: max(s.values()) / min(s.values()) for name, s in speedups.items()
    }
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["dataset", "rank", "splatt ms", "adaptive ms", "chosen",
                 "speedup"],
        rows=rows,
        expected_shape=(
            "Speedup over SPLATT-style roughly flat across ranks (both "
            "backends scale ~linearly in R); adaptive wins at every rank on "
            "these 4th-order tensors."
        ),
        observations={
            "speedup_by_rank": {k: dict(v) for k, v in speedups.items()},
            "speedup_variation_across_ranks": variation,
            "geomean_speedup": float(np.exp(np.mean([
                np.log(v) for s in speedups.values() for v in s.values()
            ]))),
        },
    )
