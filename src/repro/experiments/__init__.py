"""Reproduction experiments: one module per paper table/figure (E1-E9)."""

from .common import DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult

__all__ = ["DEFAULT_RANK", "DEFAULT_SCALE", "ExperimentResult"]
