"""E2 — MTTKRP operation counts vs tensor order (motivating figure).

The core asymptotic claim: per CP-ALS iteration, non-memoized MTTKRP costs
``N*(N-1)`` tensor contractions while a full memoization tree needs at most
``N*ceil(log2 N)`` — so the flop ratio grows roughly as ``(N-1)/log2(N)``.
Counts here are *measured* by the engine's operation counters (and the test
suite separately asserts they equal the model's predictions).
"""

from __future__ import annotations

import math

from ..core.cpals import initialize_factors
from ..core.engine import MemoizedMttkrp
from ..core.strategy import balanced_binary, chain, star
from ..perf.counters import counting
from .common import DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult, load_scaled

EXP_ID = "E2"
TITLE = "Measured MTTKRP flops per CP-ALS iteration vs tensor order"


def measured_iteration_flops(tensor, strategy, rank) -> int:
    engine = MemoizedMttkrp(
        tensor, strategy, initialize_factors(tensor, rank, random_state=0)
    )
    factors = engine.factors
    for _ in range(1):  # warm to steady state
        for n in engine.mode_order:
            engine.mttkrp(n)
            engine.update_factor(n, factors[n])
    with counting() as c:
        for n in engine.mode_order:
            engine.mttkrp(n)
            engine.update_factor(n, factors[n])
    return c.flops


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        orders=range(3, 9), family: str = "skew") -> ExperimentResult:
    rows = []
    speedups = {}
    for order in orders:
        tensor = load_scaled(f"{family}{order}d", scale)
        f_star = measured_iteration_flops(tensor, star(order), rank)
        f_chain = measured_iteration_flops(
            tensor, chain(order, order - 2), rank
        )
        f_bdt = measured_iteration_flops(tensor, balanced_binary(order), rank)
        ratio = f_star / f_bdt
        speedups[order] = ratio
        rows.append([
            order,
            tensor.nnz,
            f_star,
            f_chain,
            f_bdt,
            round(ratio, 2),
            round((order - 1) / math.ceil(math.log2(order)), 2),
        ])
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["order", "nnz", "star flops", "chain flops", "bdt flops",
                 "star/bdt", "(N-1)/ceil(log2 N)"],
        rows=rows,
        expected_shape=(
            "star/bdt flop ratio grows with order, at least as fast as "
            "(N-1)/ceil(log2 N) (faster when contraction shrinks "
            "intermediates); chain sits between star and bdt."
        ),
        observations={
            "flop_ratio_by_order": speedups,
            "ratio_grows": speedups[max(orders)] > speedups[min(orders)],
        },
    )
