"""E9 — ablations: symbolic amortization, skew sensitivity, planner value.

Three supporting analyses:

* **E9a** — the symbolic (preprocessing) phase is a one-time cost; report it
  against the per-iteration saving and the break-even iteration count.
* **E9b** — memoization gains grow with index skew: sweep the Zipf exponent
  at fixed order/nnz and report the star/bdt flop ratio.
* **E9c** — the planner vs every fixed strategy across all datasets: count
  how often each fixed choice loses to the adaptive pick (the reason a
  *model-driven* selection beats any hard-coded default).
"""

from __future__ import annotations

import time

from ..core.engine import MemoizedMttkrp
from ..core.strategy import balanced_binary, chain, star, two_way
from ..core.symbolic import SymbolicTree
from ..model.calibrate import calibrate_machine
from ..model.cost import cost_from_symbolic
from ..model.planner import plan
from ..synth.datasets import dataset_names
from ..synth.skewed import skewed_random_tensor
from .common import (DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult,
                     iteration_seconds, load_scaled)

EXP_ID = "E9"


def run_symbolic_amortization(
    scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK, names=None,
    repeats: int = 3,
) -> ExperimentResult:
    """E9a: symbolic-phase cost vs per-iteration saving."""
    names = list(names) if names is not None else dataset_names(analogs_only=True)
    rows = []
    breakevens = {}
    for name in names:
        tensor = load_scaled(name, scale)
        strategy = balanced_binary(tensor.ndim)
        t0 = time.perf_counter()
        SymbolicTree(tensor, strategy)
        symbolic = time.perf_counter() - t0
        t_star = iteration_seconds(
            tensor, lambda t: MemoizedMttkrp(t, star(tensor.ndim)), rank,
            repeats=repeats,
        )
        t_bdt = iteration_seconds(
            tensor, lambda t: MemoizedMttkrp(t, strategy), rank,
            repeats=repeats,
        )
        saving = t_star - t_bdt
        if saving > 0.05 * t_star:
            breakeven = symbolic / saving
            breakevens[name] = breakeven
            shown = round(breakeven, 1)
        else:
            # Memoization does not pay on this tensor (the planner would
            # pick the star here, which needs no symbolic tree at all).
            breakevens[name] = None
            shown = "n/a"
        rows.append([
            name,
            round(symbolic * 1e3, 3),
            round(t_star * 1e3, 3),
            round(t_bdt * 1e3, 3),
            shown,
        ])
    return ExperimentResult(
        exp_id="E9a",
        title="Symbolic-phase amortization (breakeven iterations)",
        headers=["dataset", "symbolic ms", "star ms/iter", "bdt ms/iter",
                 "breakeven iters"],
        rows=rows,
        expected_shape=(
            "Symbolic preprocessing amortizes within a small number of "
            "CP-ALS iterations (typical runs take tens of iterations and "
            "multiple restarts reuse the same symbolic tree)."
        ),
        observations={"breakeven_by_dataset": breakevens},
    )


def run_skew_sensitivity(
    nnz: int = 40_000, order: int = 4, dim: int = 300,
    exponents=(0.0, 0.5, 1.0, 1.25, 1.5), rank: int = DEFAULT_RANK,
) -> ExperimentResult:
    """E9b: memoization gain as a function of index skew."""
    rows = []
    ratios = {}
    for a in exponents:
        tensor = skewed_random_tensor(
            (dim,) * order, nnz, a, random_state=17
        )
        star_cost = cost_from_symbolic(
            SymbolicTree(tensor, star(order)), rank
        )
        bdt_sym = SymbolicTree(tensor, balanced_binary(order))
        bdt_cost = cost_from_symbolic(bdt_sym, rank)
        ratio = star_cost.flops_per_iteration / bdt_cost.flops_per_iteration
        ratios[a] = ratio
        mean_compression = sum(
            bdt_sym.compression_ratios().values()
        ) / max(len(bdt_sym.compression_ratios()), 1)
        rows.append([
            a,
            round(mean_compression, 3),
            star_cost.flops_per_iteration,
            bdt_cost.flops_per_iteration,
            round(ratio, 2),
        ])
    exps = list(exponents)
    return ExperimentResult(
        exp_id="E9b",
        title=f"Skew sensitivity (order={order}, nnz={nnz})",
        headers=["zipf exponent", "mean node compression", "star flops",
                 "bdt flops", "flop ratio"],
        rows=rows,
        expected_shape=(
            "Higher skew -> more index overlap -> intermediates shrink -> "
            "the star/bdt flop ratio grows monotonically with the exponent."
        ),
        observations={
            "ratio_by_exponent": ratios,
            "monotone": all(
                ratios[exps[i + 1]] >= ratios[exps[i]] - 0.05
                for i in range(len(exps) - 1)
            ),
        },
    )


def run_planner_vs_fixed(
    scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK, names=None,
    repeats: int = 3,
) -> ExperimentResult:
    """E9c: adaptive selection vs every fixed strategy."""
    names = list(names) if names is not None else dataset_names(analogs_only=True)
    machine = calibrate_machine()
    fixed = {"star": star, "two_way": two_way,
             "chain": lambda n: chain(n, n - 2), "bdt": balanced_binary}
    rows = []
    losses = {k: 0 for k in fixed}
    for name in names:
        tensor = load_scaled(name, scale)
        chosen = plan(tensor, rank, machine=machine).best.strategy
        t_auto = iteration_seconds(
            tensor, lambda t: MemoizedMttkrp(t, chosen), rank, repeats=repeats
        )
        times = {}
        for label, gen in fixed.items():
            strat = gen(tensor.ndim)
            times[label] = iteration_seconds(
                tensor, lambda t, s=strat: MemoizedMttkrp(t, s), rank,
                repeats=repeats,
            )
            if times[label] > t_auto * 1.05:
                losses[label] += 1
        rows.append([
            name,
            round(t_auto * 1e3, 3),
            *(round(times[k] * 1e3, 3) for k in fixed),
            chosen.name,
        ])
    return ExperimentResult(
        exp_id="E9c",
        title="Adaptive planner vs fixed strategies (ms/iter)",
        headers=["dataset", "adaptive", *fixed.keys(), "chosen"],
        rows=rows,
        expected_shape=(
            "No single fixed strategy wins everywhere; each loses clearly "
            "to the adaptive pick on at least one dataset, while the "
            "adaptive engine is never far from the per-dataset best."
        ),
        observations={"losses_by_fixed_strategy": losses,
                      "n_datasets": len(names)},
    )


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        repeats: int = 3) -> list[ExperimentResult]:
    """All three ablations."""
    return [
        run_symbolic_amortization(scale, rank, repeats=repeats),
        run_skew_sensitivity(rank=rank),
        run_planner_vs_fixed(scale, rank, repeats=repeats),
    ]
