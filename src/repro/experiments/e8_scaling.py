"""E8 — multicore strong scaling (figure).

Measures per-iteration time of the thread-parallel memoized engine at 1..P
workers, alongside the cost-model scaling projection.  The measured curve on
CPython under-reports what the paper's C/OpenMP code achieves (interpreter
sections serialize); the projection reproduces the paper's *shape* —
near-linear scaling until memory bandwidth saturates — from the same cost
numbers the sequential experiments validated.
"""

from __future__ import annotations

from ..core.strategy import balanced_binary
from ..core.symbolic import SymbolicTree
from ..model.calibrate import calibrate_machine
from ..model.cost import cost_from_symbolic
from ..parallel.engine import ParallelMemoizedMttkrp
from ..parallel.simulate import load_imbalance, simulate_speedup_curve
from .common import (DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult,
                     iteration_seconds, load_scaled)

EXP_ID = "E8"
TITLE = "Strong scaling: measured thread-pool + modeled speedup"

DEFAULT_WORKERS = (1, 2, 4, 8)


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        name: str = "delicious", workers=DEFAULT_WORKERS,
        repeats: int = 3) -> ExperimentResult:
    tensor = load_scaled(name, scale)
    strategy = balanced_binary(tensor.ndim)
    machine = calibrate_machine()
    cost = cost_from_symbolic(SymbolicTree(tensor, strategy), rank, machine)
    modeled = simulate_speedup_curve(
        cost, workers, machine=machine,
        imbalance=load_imbalance(tensor, max(workers)),
    )
    measured_times = {}
    for p in workers:
        measured_times[p] = iteration_seconds(
            tensor,
            lambda t, p=p: ParallelMemoizedMttkrp(t, strategy, n_workers=p),
            rank, repeats=repeats,
        )
    base = measured_times[workers[0]]
    rows = []
    measured_speedup = {}
    for p in workers:
        measured_speedup[p] = base / measured_times[p]
        rows.append([
            p,
            round(measured_times[p] * 1e3, 3),
            round(measured_speedup[p], 2),
            round(modeled[p], 2),
        ])
    return ExperimentResult(
        exp_id=EXP_ID,
        title=f"{TITLE} ({name}, strategy=bdt)",
        headers=["workers", "measured ms/iter", "measured speedup",
                 "modeled speedup"],
        rows=rows,
        expected_shape=(
            "Modeled speedup near-linear until the bandwidth knee; measured "
            "thread-pool speedup positive but below the model (GIL-bound "
            "sections), matching the known CPython gap."
        ),
        observations={
            "measured_speedup": {int(k): v for k, v in measured_speedup.items()},
            "modeled_speedup": {int(k): v for k, v in modeled.items()},
            "modeled_monotone": all(
                modeled[workers[i + 1]] >= modeled[workers[i]]
                for i in range(len(workers) - 2)
            ),
        },
    )
