"""E8 — multicore strong scaling (figure).

Measures per-iteration time of the thread-parallel memoized engine at 1..P
workers, alongside the cost-model scaling projection.  The measured curve on
CPython under-reports what the paper's C/OpenMP code achieves (interpreter
sections serialize); the projection reproduces the paper's *shape* —
near-linear scaling until memory bandwidth saturates — from the same cost
numbers the sequential experiments validated.

Each worker count also gets a *measured* load-imbalance column (max/mean
``pool_task`` seconds over one traced iteration, via
:mod:`repro.obs.utilization`) next to the nonzero-count imbalance the
scaling model assumes — the SPLATT-style diagnostic for why a speedup
curve flattens.  "-" means the engine never fanned out at that
configuration (rebuilds below the chunking threshold run sequentially).
"""

from __future__ import annotations

from ..core.cpals import initialize_factors
from ..core.strategy import balanced_binary
from ..core.symbolic import SymbolicTree
from ..model.calibrate import calibrate_machine
from ..model.cost import cost_from_symbolic
from ..parallel.engine import ParallelMemoizedMttkrp
from ..parallel.simulate import load_imbalance, simulate_speedup_curve
from .common import (DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult,
                     iteration_seconds, load_scaled)

EXP_ID = "E8"
TITLE = "Strong scaling: measured thread-pool + modeled speedup"

DEFAULT_WORKERS = (1, 2, 4, 8)


def _measured_imbalance(tensor, strategy, rank: int, p: int) -> float | None:
    """Max/mean ``pool_task`` seconds over one traced iteration.

    Slices only the spans this probe appends, so it composes with an
    already-active outer trace (``--trace`` runs) without clearing it.
    None when the engine never fanned out (no pool tasks).
    """
    from ..obs import trace as obs_trace
    from ..obs.metrics import registry as _metrics
    from ..obs.utilization import utilization_from_spans

    tracer = obs_trace.get_tracer()
    n_before = len(tracer)
    with obs_trace.tracing(clear=False):
        with ParallelMemoizedMttkrp(tensor, strategy, n_workers=p) as engine:
            factors = initialize_factors(tensor, rank, "random", 0)
            engine.set_factors(factors)
            for n in engine.mode_order:
                engine.mttkrp(n)
                engine.update_factor(n, factors[n])
    util = utilization_from_spans(tracer.finished()[n_before:])
    if util is None:
        return None
    _metrics.set_gauge(f"e8.imbalance.p{p}", util.mean_imbalance)
    return util.mean_imbalance


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        name: str = "delicious", workers=DEFAULT_WORKERS,
        repeats: int = 3) -> ExperimentResult:
    tensor = load_scaled(name, scale)
    strategy = balanced_binary(tensor.ndim)
    machine = calibrate_machine()
    cost = cost_from_symbolic(SymbolicTree(tensor, strategy), rank, machine)
    modeled = simulate_speedup_curve(
        cost, workers, machine=machine,
        imbalance=load_imbalance(tensor, max(workers)),
    )
    measured_times = {}
    measured_imbalance = {}
    for p in workers:
        measured_times[p] = iteration_seconds(
            tensor,
            lambda t, p=p: ParallelMemoizedMttkrp(t, strategy, n_workers=p),
            rank, repeats=repeats,
        )
        measured_imbalance[p] = _measured_imbalance(tensor, strategy, rank, p)
    base = measured_times[workers[0]]
    rows = []
    measured_speedup = {}
    for p in workers:
        measured_speedup[p] = base / measured_times[p]
        imb = measured_imbalance[p]
        rows.append([
            p,
            round(measured_times[p] * 1e3, 3),
            round(measured_speedup[p], 2),
            round(modeled[p], 2),
            round(imb, 3) if imb is not None else "-",
        ])
    return ExperimentResult(
        exp_id=EXP_ID,
        title=f"{TITLE} ({name}, strategy=bdt)",
        headers=["workers", "measured ms/iter", "measured speedup",
                 "modeled speedup", "measured imbalance"],
        rows=rows,
        expected_shape=(
            "Modeled speedup near-linear until the bandwidth knee; measured "
            "thread-pool speedup positive but below the model (GIL-bound "
            "sections), matching the known CPython gap.  Measured pool "
            "imbalance near 1.0 = balanced fan-outs; growth with workers "
            "explains curve flattening."
        ),
        observations={
            "measured_speedup": {int(k): v for k, v in measured_speedup.items()},
            "modeled_speedup": {int(k): v for k, v in modeled.items()},
            "measured_imbalance": {
                int(k): v for k, v in measured_imbalance.items()
            },
            "modeled_monotone": all(
                modeled[workers[i + 1]] >= modeled[workers[i]]
                for i in range(len(workers) - 2)
            ),
        },
    )
