"""E8 — multicore strong scaling (figure).

Measures per-iteration time of the thread-parallel memoized engine at 1..P
workers, alongside the cost-model scaling projection.  The measured curve on
CPython under-reports what the paper's C/OpenMP code achieves (interpreter
sections serialize); the projection reproduces the paper's *shape* —
near-linear scaling until memory bandwidth saturates — from the same cost
numbers the sequential experiments validated.

Since the process tier exists the sweep also measures the **process-parallel
COO backend** (:class:`~repro.parallel.procpool.ProcessMttkrp`) in both
index layouts — the raw COO matrix and ALTO packed codes — and models both
tiers with :func:`repro.model.cost.execution_candidates`.  The sweep
deliberately opts into oversubscription (the whole point is the 1..P curve
even on small machines); ``observations["host_cpus"]`` records how many
cores the numbers actually had, and the measured process-beats-thread claim
is only asserted where ``host_cpus`` can support it.  The two layouts are
checked bitwise-identical every run — that claim is machine-independent.

Each thread-tier worker count also gets a *measured* load-imbalance column
(max/mean ``pool_task`` seconds over one traced iteration, via
:mod:`repro.obs.utilization`) next to the nonzero-count imbalance the
scaling model assumes — the SPLATT-style diagnostic for why a speedup
curve flattens.  "-" means the engine never fanned out at that
configuration (rebuilds below the chunking threshold run sequentially).

A roofline column completes the diagnosis: each thread-tier time is
converted to achieved bandwidth (the cost model's words/iteration over
measured seconds) and reported as a fraction of the machine's measured
triad ceiling (:func:`repro.model.calibrate.calibrate_roofline`).  A
fraction that plateaus while workers increase is bandwidth saturation —
the paper's explanation for the knee in the strong-scaling figure.
"""

from __future__ import annotations

import os

import numpy as np

from ..core.cpals import initialize_factors
from ..core.strategy import balanced_binary
from ..core.symbolic import SymbolicTree
from ..core.dtypes import VALUE_ITEMSIZE
from ..model.calibrate import calibrate_machine, calibrate_roofline
from ..model.cost import cost_from_symbolic, execution_candidates
from ..parallel.engine import ParallelMemoizedMttkrp
from ..parallel.procpool import ProcessMttkrp
from ..parallel.simulate import load_imbalance, simulate_speedup_curve
from ..perf.timer import time_callable
from .common import (DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult,
                     iteration_seconds, load_scaled)

EXP_ID = "E8"
TITLE = "Strong scaling: measured thread+process tiers + modeled speedup"

DEFAULT_WORKERS = (1, 2, 4, 8)


def _measured_imbalance(
    tensor, strategy, rank: int, p: int,
) -> tuple[float, str] | None:
    """Max/mean ``pool_task`` seconds over one traced iteration, plus the
    provenance of the task timings (``measured``/``synthesized``/...).

    Slices only the spans this probe appends, so it composes with an
    already-active outer trace (``--trace`` runs) without clearing it.
    None when the engine never fanned out (no pool tasks).
    """
    from ..obs import trace as obs_trace
    from ..obs.metrics import registry as _metrics
    from ..obs.utilization import utilization_from_spans

    tracer = obs_trace.get_tracer()
    n_before = len(tracer)
    with obs_trace.tracing(clear=False):
        with ParallelMemoizedMttkrp(tensor, strategy, n_workers=p) as engine:
            factors = initialize_factors(tensor, rank, "random", 0)
            engine.set_factors(factors)
            for n in engine.mode_order:
                engine.mttkrp(n)
                engine.update_factor(n, factors[n])
    util = utilization_from_spans(tracer.finished()[n_before:])
    if util is None:
        return None
    _metrics.set_gauge(f"e8.imbalance.p{p}", util.mean_imbalance)
    return util.mean_imbalance, util.source


def _process_iteration_seconds(tensor, rank: int, p: int, layout: str,
                               repeats: int) -> float:
    """Best-of time of one full iteration on the process-tier backend."""
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        backend = ProcessMttkrp(
            tensor, p, layout=layout, allow_oversubscribe=True
        )
    try:
        factors = initialize_factors(tensor, rank, "random", 0)
        backend.set_factors(factors)

        def one_iteration():
            for n in backend.mode_order:
                backend.mttkrp(n)
                backend.update_factor(n, factors[n])

        return time_callable(one_iteration, repeats=repeats, warmup=1)
    finally:
        backend.close()


def _layouts_bitwise_identical(tensor, rank: int, p: int) -> bool:
    """Whether process-numpy and process-alto agree bit for bit."""
    import warnings

    factors = initialize_factors(tensor, rank, "random", 0)
    outs = {}
    for layout in ("numpy", "alto"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            backend = ProcessMttkrp(
                tensor, p, layout=layout, allow_oversubscribe=True
            )
        try:
            backend.set_factors(factors)
            outs[layout] = [backend.mttkrp(n) for n in backend.mode_order]
        finally:
            backend.close()
    return all(
        np.array_equal(a, b)
        for a, b in zip(outs["numpy"], outs["alto"])
    )


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        name: str = "delicious", workers=DEFAULT_WORKERS,
        repeats: int = 3) -> ExperimentResult:
    tensor = load_scaled(name, scale)
    strategy = balanced_binary(tensor.ndim)
    machine = calibrate_machine()
    # Quick roofline calibration (cached to the repro-machine/v1 artifact):
    # turns each measured thread-tier time into an achieved-bandwidth
    # fraction, so the table says *why* the curve flattens, not just that
    # it does.
    roofline = calibrate_roofline(quick=True)
    cost = cost_from_symbolic(SymbolicTree(tensor, strategy), rank, machine)
    modeled = simulate_speedup_curve(
        cost, workers, machine=machine,
        imbalance=load_imbalance(tensor, max(workers)),
    )
    # Tier/layout model at each worker count, with the serial thread price
    # as the common baseline for both modeled speedup curves.
    exec_by_p = {
        p: {(c.tier, c.layout): c for c in execution_candidates(
            tensor.shape, tensor.nnz, rank, p, machine)}
        for p in workers
    }
    serial = exec_by_p[workers[0]][("thread", "numpy")].predicted_seconds
    modeled_process = {
        p: serial / exec_by_p[p][("process", "numpy")].predicted_seconds
        for p in workers
    }
    modeled_thread_exec = {
        p: serial / exec_by_p[p][("thread", "numpy")].predicted_seconds
        for p in workers
    }
    measured_times = {}
    measured_imbalance = {}
    process_times = {}
    alto_times = {}
    for p in workers:
        measured_times[p] = iteration_seconds(
            tensor,
            lambda t, p=p: ParallelMemoizedMttkrp(t, strategy, n_workers=p),
            rank, repeats=repeats,
        )
        measured_imbalance[p] = _measured_imbalance(tensor, strategy, rank, p)
        process_times[p] = _process_iteration_seconds(
            tensor, rank, p, "numpy", repeats
        )
        alto_times[p] = _process_iteration_seconds(
            tensor, rank, p, "alto", repeats
        )
    base = measured_times[workers[0]]
    # Achieved bandwidth of the thread tier at each worker count: the cost
    # model's words/iteration over the measured wall seconds, as a fraction
    # of the measured triad ceiling.  A flat fraction across p is the
    # roofline explanation for a flat speedup curve.
    iter_bytes = cost.words_per_iteration * VALUE_ITEMSIZE
    rows = []
    measured_speedup = {}
    roofline_fraction = {}
    for p in workers:
        measured_speedup[p] = base / measured_times[p]
        achieved_gbs = iter_bytes / measured_times[p] / 1e9
        roofline_fraction[p] = achieved_gbs / roofline.peak_bandwidth_gbs
        probe = measured_imbalance[p]
        rows.append([
            p,
            round(measured_times[p] * 1e3, 3),
            round(measured_speedup[p], 2),
            round(modeled[p], 2),
            round(process_times[p] * 1e3, 3),
            round(alto_times[p] * 1e3, 3),
            round(modeled_process[p], 2),
            f"{roofline_fraction[p] * 100:.1f}%",
            (f"{probe[0]:.3f} ({probe[1]})" if probe is not None else "-"),
        ])
    host_cpus = os.cpu_count() or 1
    bitwise = _layouts_bitwise_identical(tensor, rank, max(workers))
    return ExperimentResult(
        exp_id=EXP_ID,
        title=f"{TITLE} ({name}, strategy=bdt)",
        headers=["workers", "thread ms/iter", "thread speedup",
                 "modeled thread", "process ms/iter", "alto ms/iter",
                 "modeled process", "roofline %",
                 "measured imbalance (timings)"],
        rows=rows,
        expected_shape=(
            "Modeled thread speedup near-linear until the bandwidth knee but "
            "capped by the GIL-serial fraction; modeled process speedup "
            "exceeds it from 2+ workers (no GIL term, IPC + reduction "
            "overheads only).  Measured columns follow the model's ordering "
            "when host_cpus covers the worker count; the two process-tier "
            "layouts are bitwise identical everywhere.  Measured pool "
            "imbalance near 1.0 = balanced fan-outs; growth with workers "
            "explains curve flattening.  The roofline column (modeled "
            "traffic over measured seconds vs the measured triad ceiling) "
            "stops growing once bandwidth saturates — workers past that "
            "point cannot help."
        ),
        observations={
            "host_cpus": host_cpus,
            "roofline_peak_bandwidth_gbs": roofline.peak_bandwidth_gbs,
            "roofline_saturation_workers": roofline.saturation_workers,
            "thread_roofline_fraction": {
                int(k): v for k, v in roofline_fraction.items()
            },
            "measured_speedup": {int(k): v for k, v in measured_speedup.items()},
            "modeled_speedup": {int(k): v for k, v in modeled.items()},
            "modeled_process_speedup": {
                int(k): v for k, v in modeled_process.items()
            },
            "process_seconds": {int(k): v for k, v in process_times.items()},
            "alto_seconds": {int(k): v for k, v in alto_times.items()},
            "measured_imbalance": {
                int(k): (v[0] if v is not None else None)
                for k, v in measured_imbalance.items()
            },
            "imbalance_timing_source": {
                int(k): (v[1] if v is not None else None)
                for k, v in measured_imbalance.items()
            },
            "modeled_monotone": all(
                modeled[workers[i + 1]] >= modeled[workers[i]]
                for i in range(len(workers) - 2)
            ),
            "modeled_thread_exec_speedup": {
                int(k): v for k, v in modeled_thread_exec.items()
            },
            # Both tiers priced by the same execution model: the process
            # curve must clear the GIL-capped thread curve at 4 workers.
            "modeled_process_beats_thread_at_4": (
                modeled_process.get(4, 0.0) > modeled_thread_exec.get(
                    4, float("inf"))
                if 4 in workers else None
            ),
            "layouts_bitwise_identical": bitwise,
        },
    )
