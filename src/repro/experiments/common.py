"""Shared infrastructure for the reproduction experiments (E1-E9).

Each experiment module exposes ``run(scale, rank, ...) -> ExperimentResult``.
``scale`` multiplies the registry datasets' nonzero counts so the full suite
can run anywhere from smoke-test size (``scale=0.02``) to the registry
reference size (``scale=1.0``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..baselines import make_backend
from ..core.coo import CooTensor
from ..core.cpals import initialize_factors
from ..model.report import format_table
from ..perf.timer import time_callable
from ..synth.datasets import load_dataset

#: Default dataset scale for experiment runs (reference size = 1.0).
DEFAULT_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: Default CP rank used throughout the evaluation (paper-typical).
DEFAULT_RANK = 16


@dataclass
class ExperimentResult:
    """One reproduced table/figure.

    ``headers``/``rows`` carry the artifact's data; ``expected_shape``
    states the qualitative claim being reproduced; ``observations`` holds
    machine-checkable summary numbers (used by the integration tests and
    EXPERIMENTS.md).
    """

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list]
    expected_shape: str
    observations: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def table(self) -> str:
        return format_table(
            self.headers, self.rows, title=f"{self.exp_id}: {self.title}"
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "exp_id": self.exp_id,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "expected_shape": self.expected_shape,
                "observations": self.observations,
                "notes": self.notes,
            },
            indent=2,
            default=_json_default,
        )


def _json_default(obj):
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj)}")


def load_scaled(name: str, scale: float) -> CooTensor:
    """Registry dataset at the experiment scale."""
    return load_dataset(name, scale=scale)


def iteration_seconds(
    tensor: CooTensor,
    backend_name_or_factory,
    rank: int,
    *,
    repeats: int = 3,
    random_state: int = 0,
) -> float:
    """Best-of wall time for one full CP-ALS iteration's MTTKRPs + updates.

    Timing covers the steady-state numeric work (the quantity the paper
    plots); setup (symbolic phase / CSF construction) is excluded here and
    measured separately by E9a.
    """
    if callable(backend_name_or_factory):
        backend = backend_name_or_factory(tensor)
    else:
        backend = make_backend(backend_name_or_factory, tensor)
    factors = initialize_factors(tensor, rank, "random", random_state)
    backend.set_factors(factors)
    mode_order = tuple(backend.mode_order)

    def one_iteration():
        for n in mode_order:
            backend.mttkrp(n)
            # Reinstalling the same factor exercises the true invalidation
            # path while keeping values numerically stable across repeats.
            backend.update_factor(n, factors[n])

    return time_callable(one_iteration, repeats=repeats, warmup=1)


def setup_seconds(tensor: CooTensor, backend_name: str, rank: int,
                  random_state: int = 0) -> float:
    """Wall time of backend construction + first factor installation.

    For the memoized engine this is the symbolic phase; for SPLATT the CSF
    builds (forced eagerly via one MTTKRP per mode).
    """
    import time

    t0 = time.perf_counter()
    backend = make_backend(backend_name, tensor)
    factors = initialize_factors(tensor, rank, "random", random_state)
    backend.set_factors(factors)
    if backend_name == "splatt":
        for n in range(tensor.ndim):
            backend.csf_for_mode(n)
    return time.perf_counter() - t0


def geometric_mean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    return float(np.exp(np.mean(np.log(values))))
