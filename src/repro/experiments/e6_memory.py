"""E6 — time/memory trade-off of memoization strategies (figure).

Memoization buys flops with memory.  For each order we report, per strategy:
predicted per-iteration work, peak memoized-value bytes, and symbolic index
bytes — the frontier the planner navigates when given a memory budget.
Counts are exact (symbolic-tree node sizes), so the predicted columns are
deterministic — and the **measured** column proves it: each strategy also
runs a short real CP-ALS under :mod:`repro.obs.memory`, and the tracker's
steady-state window peak must land on the prediction byte-for-byte
(``measured == pred`` in the table, ``measured_matches_predicted`` in the
observations).
"""

from __future__ import annotations

from ..core.cpals import cp_als
from ..core.strategy import balanced_binary, chain, star
from ..core.symbolic import SymbolicTree
from ..model.cost import cost_from_symbolic
from ..obs import memory as obs_memory
from .common import (DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult,
                     load_scaled)

EXP_ID = "E6"
TITLE = "Time/memory trade-off: peak memory vs per-iteration flops"

#: ALS iterations per measurement run; the tracker's steady-state peak is
#: read from the last window (the first may run from a cold cache).
MEASURE_ITERS = 2


def _measured_peak_bytes(tensor, strategy, rank: int) -> int:
    """Peak live memoized-value bytes from a real (short) CP-ALS run."""
    with obs_memory.tracking(clear=True) as tracker:
        result = cp_als(
            tensor, rank, strategy=strategy, n_iter_max=MEASURE_ITERS,
            tol=0.0, random_state=0,
        )
        readings = result.memory_readings or tracker.readings
    return readings[-1].measured_peak_bytes if readings else 0


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        orders=(3, 4, 6, 8), family: str = "skew") -> ExperimentResult:
    rows = []
    overheads = {}
    n_match = n_measured = 0
    for order in orders:
        tensor = load_scaled(f"{family}{order}d", scale)
        coo_bytes = tensor.nbytes()
        strategies = [star(order), chain(order, order - 2),
                      balanced_binary(order)]
        star_flops = None
        for strat in strategies:
            report = cost_from_symbolic(SymbolicTree(tensor, strat), rank)
            if star_flops is None:
                star_flops = report.flops_per_iteration
            mem_ratio = report.total_memory_bytes / coo_bytes
            overheads[(order, strat.name)] = mem_ratio
            measured = _measured_peak_bytes(tensor, strat, rank)
            n_measured += 1
            if measured == report.peak_value_bytes:
                n_match += 1
            rows.append([
                order,
                strat.name,
                report.flops_per_iteration,
                round(star_flops / report.flops_per_iteration, 2),
                round(report.peak_value_bytes / 1e6, 3),
                round(measured / 1e6, 3),
                "yes" if measured == report.peak_value_bytes else "NO",
                round(report.index_bytes / 1e6, 3),
                round(mem_ratio, 2),
            ])
    bdt_overheads = [v for (o, n), v in overheads.items() if n == "bdt"]
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["order", "strategy", "flops/iter", "flop reduction",
                 "peak values MB", "measured MB", "measured == pred",
                 "index MB", "total mem / coo mem"],
        rows=rows,
        expected_shape=(
            "Full memoization (bdt) costs O(log N) extra value matrices and "
            "<= (ceil(log N)+1)x index storage relative to the COO tensor, "
            "for an (N-1)/log N-and-better flop reduction; the star needs "
            "near-zero extra memory but maximal flops.  The measured column "
            "(live-byte tracker on a real run) must equal the symbolic "
            "prediction exactly."
        ),
        observations={
            "max_bdt_memory_ratio": max(bdt_overheads),
            "memory_ratio_by_strategy": {
                f"{o}:{n}": v for (o, n), v in overheads.items()
            },
            "measured_matches_predicted": n_match == n_measured,
            "n_measured": n_measured,
        },
    )
