"""E6 — time/memory trade-off of memoization strategies (figure).

Memoization buys flops with memory.  For each order we report, per strategy:
predicted per-iteration work, peak memoized-value bytes, and symbolic index
bytes — the frontier the planner navigates when given a memory budget.
Counts are exact (symbolic-tree node sizes), so this figure is deterministic.
"""

from __future__ import annotations

from ..core.strategy import balanced_binary, chain, star
from ..core.symbolic import SymbolicTree
from ..model.cost import cost_from_symbolic
from .common import (DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult,
                     load_scaled)

EXP_ID = "E6"
TITLE = "Time/memory trade-off: peak memory vs per-iteration flops"


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        orders=(3, 4, 6, 8), family: str = "skew") -> ExperimentResult:
    rows = []
    overheads = {}
    for order in orders:
        tensor = load_scaled(f"{family}{order}d", scale)
        coo_bytes = tensor.nbytes()
        strategies = [star(order), chain(order, order - 2),
                      balanced_binary(order)]
        star_flops = None
        for strat in strategies:
            report = cost_from_symbolic(SymbolicTree(tensor, strat), rank)
            if star_flops is None:
                star_flops = report.flops_per_iteration
            mem_ratio = report.total_memory_bytes / coo_bytes
            overheads[(order, strat.name)] = mem_ratio
            rows.append([
                order,
                strat.name,
                report.flops_per_iteration,
                round(star_flops / report.flops_per_iteration, 2),
                round(report.peak_value_bytes / 1e6, 3),
                round(report.index_bytes / 1e6, 3),
                round(mem_ratio, 2),
            ])
    bdt_overheads = [v for (o, n), v in overheads.items() if n == "bdt"]
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["order", "strategy", "flops/iter", "flop reduction",
                 "peak values MB", "index MB", "total mem / coo mem"],
        rows=rows,
        expected_shape=(
            "Full memoization (bdt) costs O(log N) extra value matrices and "
            "<= (ceil(log N)+1)x index storage relative to the COO tensor, "
            "for an (N-1)/log N-and-better flop reduction; the star needs "
            "near-zero extra memory but maximal flops."
        ),
        observations={
            "max_bdt_memory_ratio": max(bdt_overheads),
            "memory_ratio_by_strategy": {
                f"{o}:{n}": v for (o, n), v in overheads.items()
            },
        },
    )
