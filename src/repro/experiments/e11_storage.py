"""E11 — index-storage comparison across sparse formats (table).

Compares the index memory of the formats in play: plain COO, CSF-per-mode
(SPLATT's working set), the memoized engine's symbolic tree (balanced
binary), and HiCOO blocked storage — the storage side of the design space
this research line (SPLATT / AdaTM / HiCOO) explores.  All numbers are exact
byte counts of the structures as built.
"""

from __future__ import annotations

from ..core.strategy import balanced_binary
from ..core.symbolic import SymbolicTree
from ..formats.csf import CsfTensor, default_mode_order
from ..formats.hicoo import HicooTensor
from ..synth.datasets import dataset_names
from .common import DEFAULT_SCALE, ExperimentResult, load_scaled

EXP_ID = "E11"
TITLE = "Index storage (MB): COO vs CSF-per-mode vs memo tree vs HiCOO"


def run(scale: float = DEFAULT_SCALE, names=None,
        block_size: int = 128) -> ExperimentResult:
    names = list(names) if names is not None else dataset_names(
        analogs_only=True
    )
    rows = []
    tree_ratio = {}
    hicoo_ratio = {}
    for name in names:
        tensor = load_scaled(name, scale)
        coo_bytes = tensor.idx.nbytes
        csf_bytes = sum(
            CsfTensor(tensor, default_mode_order(m, tensor.ndim)).nbytes()
            - tensor.nnz * 8  # exclude values: index comparison only
            for m in range(tensor.ndim)
        )
        from ..baselines.splatt_one import storage_mode_order

        csf1_bytes = CsfTensor(
            tensor, storage_mode_order(tensor)
        ).nbytes() - tensor.nnz * 8
        tree_bytes = SymbolicTree(
            tensor, balanced_binary(tensor.ndim)
        ).index_nbytes()
        hicoo = HicooTensor(tensor, block_size=block_size)
        hicoo_bytes = hicoo.index_nbytes()
        tree_ratio[name] = tree_bytes / coo_bytes
        hicoo_ratio[name] = hicoo_bytes / coo_bytes
        rows.append([
            name,
            tensor.ndim,
            round(coo_bytes / 1e6, 3),
            round(csf_bytes / 1e6, 3),
            round(csf1_bytes / 1e6, 3),
            round(tree_bytes / 1e6, 3),
            round(hicoo_bytes / 1e6, 3),
            round(tree_ratio[name], 2),
            round(hicoo_ratio[name], 2),
        ])
    import math

    # Total symbolic storage = index blocks (bounded by ceil(log N)+1 copies
    # of the COO index) + reduction plans (about 2 more copies: one
    # permutation per node plus starts/group ids).  The sanity bound below
    # reflects both terms.
    max_order = max(row[1] for row in rows) if rows else 3
    bound = math.ceil(math.log2(max_order)) + 3
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["dataset", "order", "coo", "csf x N", "csf x 1", "memo tree",
                 "hicoo", "tree/coo", "hicoo/coo"],
        rows=rows,
        expected_shape=(
            "Memo-tree index storage stays within the (ceil(log N)+1) bound "
            "relative to COO and usually well below it (index overlap); "
            "CSF-per-mode pays ~N copies; HiCOO compresses below COO on "
            "clustered tensors."
        ),
        observations={
            "max_tree_ratio": max(tree_ratio.values()),
            "tree_ratio_by_dataset": tree_ratio,
            "hicoo_ratio_by_dataset": hicoo_ratio,
            "log_bound": bound,
        },
    )
