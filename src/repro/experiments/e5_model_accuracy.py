"""E5 — model accuracy: predicted-best vs empirically-best strategy (table).

The claim that makes the system "model-driven": selecting by predicted cost
gives (nearly) the performance of exhaustively timing every candidate.  For
each dataset we time a pool of candidate strategies, then report where the
planner's pick lands in the measured ordering and the time penalty of
trusting the model instead of measuring everything.
"""

from __future__ import annotations

from ..core.engine import MemoizedMttkrp
from ..core.strategy import (balanced_binary, chain, star, two_way)
from ..model.calibrate import calibrate_machine
from ..model.planner import plan
from ..synth.datasets import dataset_names
from .common import (DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult,
                     iteration_seconds, load_scaled)

EXP_ID = "E5"
TITLE = "Planner accuracy: predicted-best vs measured-best strategy"


def candidate_pool(order: int):
    pool = [star(order), balanced_binary(order), two_way(order)]
    for m in (1, order - 2):
        if 1 <= m <= order - 2:
            pool.append(chain(order, m))
    unique = {}
    for s in pool:
        unique.setdefault(s.signature(), s)
    return list(unique.values())


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        names=None, repeats: int = 3) -> ExperimentResult:
    names = list(names) if names is not None else dataset_names(analogs_only=True)
    machine = calibrate_machine()
    rows = []
    penalties = {}
    top2_hits = 0
    for name in names:
        tensor = load_scaled(name, scale)
        pool = candidate_pool(tensor.ndim)
        report = plan(tensor, rank, candidates=pool, machine=machine)
        predicted_best = report.best.strategy
        measured = {}
        for strat in pool:
            measured[strat.signature()] = iteration_seconds(
                tensor, lambda t, s=strat: MemoizedMttkrp(t, s), rank,
                repeats=repeats,
            )
        order_by_time = sorted(measured, key=measured.get)
        measured_rank = order_by_time.index(predicted_best.signature())
        penalty = measured[predicted_best.signature()] / measured[order_by_time[0]]
        penalties[name] = penalty
        if measured_rank <= 1:
            top2_hits += 1
        rows.append([
            name,
            len(pool),
            predicted_best.name,
            next(s.name for s in pool if s.signature() == order_by_time[0]),
            measured_rank + 1,
            round(penalty, 3),
        ])
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["dataset", "#candidates", "predicted best", "measured best",
                 "pred.'s measured rank", "time penalty"],
        rows=rows,
        expected_shape=(
            "Predicted-best lands in the measured top-2 on nearly every "
            "tensor; trusting the model costs only a few percent over "
            "exhaustive timing."
        ),
        observations={
            "top2_hits": top2_hits,
            "n_datasets": len(names),
            "max_penalty": max(penalties.values()),
            "penalty_by_dataset": penalties,
        },
    )
