"""E5 — model accuracy: predicted-best vs empirically-best strategy (table).

The claim that makes the system "model-driven": selecting by predicted cost
gives (nearly) the performance of exhaustively timing every candidate.  For
each dataset we time a pool of candidate strategies, then report where the
planner's pick lands in the measured ordering and the time penalty of
trusting the model instead of measuring everything.

The ``max node flop err`` column drills one level deeper: running the
predicted-best strategy under cost attribution
(:mod:`repro.obs.attribution`), it reports the worst per-tree-node
``|measured/predicted - 1|`` flop error.  The model's work terms are
exact by construction, so this must be 0 on the numpy backend — a nonzero
value localizes a model/engine misalignment to a specific node, where the
aggregate comparison would only show the symptom.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import MemoizedMttkrp
from ..core.strategy import (balanced_binary, chain, star, two_way)
from ..model.calibrate import calibrate_machine
from ..model.planner import plan
from ..obs import attribution as obs_attr
from ..synth.datasets import dataset_names
from .common import (DEFAULT_RANK, DEFAULT_SCALE, ExperimentResult,
                     iteration_seconds, load_scaled)

EXP_ID = "E5"
TITLE = "Planner accuracy: predicted-best vs measured-best strategy"


def candidate_pool(order: int):
    pool = [star(order), balanced_binary(order), two_way(order)]
    for m in (1, order - 2):
        if 1 <= m <= order - 2:
            pool.append(chain(order, m))
    unique = {}
    for s in pool:
        unique.setdefault(s.signature(), s)
    return list(unique.values())


def _max_node_flop_err(tensor, strategy, rank: int) -> float:
    """Worst per-node ``|measured/predicted - 1|`` flop error for a run.

    Drives two ALS-style sweeps (MTTKRP + factor reinstall per mode) under
    cost attribution and compares the second, steady-state iteration's
    per-node measured flops against :func:`repro.model.cost.node_cost_terms`.
    """
    from ..core.dtypes import VALUE_DTYPE

    with obs_attr.recording() as rec:
        engine = MemoizedMttkrp(tensor, strategy)
        rng = np.random.default_rng(0)
        factors = [
            rng.random((dim, rank), dtype=VALUE_DTYPE)
            for dim in tensor.shape
        ]
        engine.set_factors(factors)
        rec.register(strategy, engine.symbolic.node_nnz(), rank)
        reading = None
        for iteration in range(2):
            rec.begin_window()
            for n in engine.mode_order:
                engine.mttkrp(n)
                engine.update_factor(n, factors[n])
            reading = rec.observe_iteration(iteration)
    err = reading.max_node_err("flops") if reading is not None else None
    return float("nan") if err is None else err


def run(scale: float = DEFAULT_SCALE, rank: int = DEFAULT_RANK,
        names=None, repeats: int = 3) -> ExperimentResult:
    names = list(names) if names is not None else dataset_names(analogs_only=True)
    machine = calibrate_machine()
    rows = []
    penalties = {}
    node_errs = {}
    top2_hits = 0
    for name in names:
        tensor = load_scaled(name, scale)
        pool = candidate_pool(tensor.ndim)
        report = plan(tensor, rank, candidates=pool, machine=machine)
        predicted_best = report.best.strategy
        node_errs[name] = _max_node_flop_err(tensor, predicted_best, rank)
        measured = {}
        for strat in pool:
            measured[strat.signature()] = iteration_seconds(
                tensor, lambda t, s=strat: MemoizedMttkrp(t, s), rank,
                repeats=repeats,
            )
        order_by_time = sorted(measured, key=measured.get)
        measured_rank = order_by_time.index(predicted_best.signature())
        penalty = measured[predicted_best.signature()] / measured[order_by_time[0]]
        penalties[name] = penalty
        if measured_rank <= 1:
            top2_hits += 1
        rows.append([
            name,
            len(pool),
            predicted_best.name,
            next(s.name for s in pool if s.signature() == order_by_time[0]),
            measured_rank + 1,
            round(penalty, 3),
            round(node_errs[name], 6),
        ])
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        headers=["dataset", "#candidates", "predicted best", "measured best",
                 "pred.'s measured rank", "time penalty",
                 "max node flop err"],
        rows=rows,
        expected_shape=(
            "Predicted-best lands in the measured top-2 on nearly every "
            "tensor; trusting the model costs only a few percent over "
            "exhaustive timing.  Per-node attributed flops match the "
            "model exactly (max node flop err 0) on the numpy backend."
        ),
        observations={
            "top2_hits": top2_hits,
            "n_datasets": len(names),
            "max_penalty": max(penalties.values()),
            "penalty_by_dataset": penalties,
            "max_node_flop_err": max(node_errs.values()),
            "node_err_by_dataset": node_errs,
        },
    )
