"""Roofline telemetry: achieved throughput vs the machine's ceilings.

The cost model predicts flops and words; the tracer measures seconds.
This module joins the two against the host's *measured* ceilings
(:mod:`repro.model.calibrate`): every kernel configuration that left
spans in a trace gets an achieved GFLOP/s and GB/s, expressed as a
fraction of the calibrated compute and bandwidth rooflines — the number
that says whether a slow config is leaving the machine idle or is
already pinned against memory bandwidth (in which case more workers
cannot help, only traffic reductions can — the ALTO argument).

Three attribution sources, least to most exact:

* ``node_rebuild`` spans joined to the strategy's per-node model terms
  (:func:`repro.model.cost.node_cost_terms`) — the memoized tree
  engines, thread tier;
* worker-interior ``kernel`` spans from the process tier
  (``backend="process-<layout>"`` with per-shard ``mode``/``nnz``
  attrs) priced by :func:`repro.model.cost.coo_mode_work` — covers both
  the raw COO and ALTO layouts;
* the cost-attribution recorder's *measured* per-mode flop/word
  counters (``repro-attr/v1``), which need no model join at all.

Everything degrades gracefully: with no ``repro-machine/v1`` artifact
the report still lists achieved GB/s, marked ``uncalibrated`` instead
of a roofline fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.dtypes import VALUE_ITEMSIZE

__all__ = [
    "ROOFLINE_SCHEMA", "ConfigThroughput", "RooflineReport",
    "tree_node_terms", "throughput_from_spans",
    "throughput_from_attribution", "roofline_report",
    "report_from_trace_dir", "publish_roofline_gauges", "report_line",
]

#: payload schema tag for roofline-report artifacts (bump on change).
ROOFLINE_SCHEMA = "repro-roofline/v1"


@dataclass
class ConfigThroughput:
    """Achieved throughput of one kernel configuration.

    ``bytes_moved`` is the *model's* traffic term for the spans' work
    (measured counters where the attribution recorder ran), so ``gbs``
    is achieved effective bandwidth: model bytes over measured seconds.
    Fractions are ``None`` until a calibrated roofline scales them.
    """

    config: str
    spans: int
    seconds: float
    flops: float
    bytes_moved: float
    source: str
    bandwidth_fraction: float | None = None
    compute_fraction: float | None = None

    @property
    def gflops(self) -> float:
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0

    @property
    def gbs(self) -> float:
        return (self.bytes_moved / self.seconds / 1e9
                if self.seconds > 0 else 0.0)

    @property
    def bound(self) -> str:
        """Which roofline this config sits closer to."""
        if self.bandwidth_fraction is None or self.compute_fraction is None:
            return "unknown"
        return ("memory" if self.bandwidth_fraction >= self.compute_fraction
                else "compute")

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "spans": self.spans,
            "seconds": self.seconds,
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "gflops": self.gflops,
            "gbs": self.gbs,
            "bandwidth_fraction": self.bandwidth_fraction,
            "compute_fraction": self.compute_fraction,
            "bound": self.bound,
            "source": self.source,
        }


@dataclass
class RooflineReport:
    """Roofline ceilings + per-config achieved throughput + guidance."""

    roofline: object | None  # MachineRoofline (model layer) or None
    configs: list[ConfigThroughput] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def calibrated(self) -> bool:
        return self.roofline is not None

    def best(self) -> ConfigThroughput | None:
        """The config closest to the bandwidth roofline (or fastest GB/s)."""
        if not self.configs:
            return None
        return max(self.configs,
                   key=lambda c: (c.bandwidth_fraction
                                  if c.bandwidth_fraction is not None
                                  else c.gbs))

    def guidance(self) -> list[str]:
        """Saturation advice per config, the planner's phrasing."""
        if not self.calibrated:
            return []
        sat = self.roofline.saturation_workers
        lines = []
        for c in self.configs:
            if c.bandwidth_fraction is None:
                continue
            pct = c.bandwidth_fraction * 100.0
            if c.bound == "memory" and c.bandwidth_fraction >= 0.5:
                lines.append(
                    f"{c.config} achieves {pct:.0f}% of the bandwidth "
                    f"roofline; >{sat} workers cannot help — only traffic "
                    f"reductions can"
                )
            else:
                lines.append(
                    f"{c.config} achieves {pct:.0f}% of the bandwidth "
                    f"roofline ({c.compute_fraction * 100.0:.0f}% of "
                    f"compute) — headroom remains below the "
                    f"{sat}-worker saturation point"
                )
        return lines

    def to_dict(self) -> dict:
        """JSON-ready ``repro-roofline/v1`` payload."""
        return {
            "schema": ROOFLINE_SCHEMA,
            "calibrated": self.calibrated,
            "machine": (self.roofline.to_dict()
                        if self.calibrated else None),
            "configs": [c.to_dict() for c in self.configs],
            "guidance": self.guidance(),
            "notes": list(self.notes),
        }

    def summary(self) -> str:
        from ..model.report import format_table

        parts = []
        if self.calibrated:
            parts.append(self.roofline.summary())
        else:
            parts.append("roofline: uncalibrated — run 'repro roofline' to "
                         "measure this host's ceilings")
        if self.configs:
            rows = []
            for c in self.configs:
                rows.append([
                    c.config, c.spans, round(c.seconds * 1e3, 3),
                    round(c.gflops, 3), round(c.gbs, 3),
                    ("-" if c.bandwidth_fraction is None
                     else f"{c.bandwidth_fraction * 100.0:.1f}%"),
                    ("-" if c.compute_fraction is None
                     else f"{c.compute_fraction * 100.0:.1f}%"),
                    c.bound, c.source,
                ])
            parts.append(format_table(
                ["config", "spans", "ms", "GFLOP/s", "GB/s", "% bw roof",
                 "% comp roof", "bound", "source"],
                rows, title="achieved throughput per kernel config",
            ))
        for line in self.guidance():
            parts.append(f"  -> {line}")
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n\n".join(parts)


def tree_node_terms(strategy, node_nnz, rank: int) -> dict[int, dict]:
    """Per-node model terms shaped for the span join.

    Scatter words are excluded: ``node_rebuild`` spans cover the
    contraction only (the leaf scatter happens inside the enclosing
    ``mttkrp`` span), and the join must price exactly the work the span
    timed.
    """
    from ..model.cost import node_cost_terms

    return {
        t.node_id: {"flops": float(t.flops),
                    "words": float(t.words - t.scatter_words)}
        for t in node_cost_terms(strategy, node_nnz, rank)
    }


def throughput_from_spans(
    spans,
    *,
    shape=None,
    rank: int | None = None,
    node_terms: dict[int, dict] | None = None,
    params=None,
) -> list[ConfigThroughput]:
    """Join finished span seconds with model flop/byte terms.

    ``node_terms`` (from :func:`tree_node_terms`) enables the tree-engine
    join; ``shape``+``rank`` enable the process-tier per-shard join.
    Spans whose join inputs are missing are skipped, never guessed.
    """
    from ..model.cost import DEFAULT_EXECUTION, coo_mode_work

    params = params or DEFAULT_EXECUTION
    acc: dict[str, ConfigThroughput] = {}

    def bump(config: str, seconds: float, flops: float, words: float,
             source: str) -> None:
        row = acc.get(config)
        if row is None:
            row = acc[config] = ConfigThroughput(
                config=config, spans=0, seconds=0.0, flops=0.0,
                bytes_moved=0.0, source=source,
            )
        row.spans += 1
        row.seconds += seconds
        row.flops += flops
        row.bytes_moved += words * VALUE_ITEMSIZE

    for rec in spans:
        if rec.t1 is None:
            continue
        if (rec.kind == "node_rebuild" and node_terms is not None
                and "node" in rec.attrs):
            term = node_terms.get(int(rec.attrs["node"]))
            if term is None or term["flops"] <= 0:
                continue  # the root: materialized, never rebuilt
            bump("thread/tree", rec.duration, term["flops"], term["words"],
                 "spans+model")
        elif (rec.kind == "kernel" and shape is not None
                and rank is not None and "mode" in rec.attrs
                and "nnz" in rec.attrs):
            backend = str(rec.attrs.get("backend", ""))
            if backend.startswith("process-"):
                # worker-interior shard spans: nnz is the shard's share,
                # the output term full-size (each shard owns a partial)
                layout = backend.split("-", 1)[1]
                config = f"process/{layout}"
            elif backend in ("alto-coo", "parallel-coo"):
                # thread-tier COO backends: one span per whole-mode MTTKRP
                layout = "alto" if backend == "alto-coo" else "numpy"
                config = f"thread/{backend}"
            else:
                continue
            flops, words = coo_mode_work(
                shape, int(rec.attrs["nnz"]), rank,
                int(rec.attrs["mode"]), layout, params,
            )
            bump(config, rec.duration, flops, words, "spans+model")
    return sorted(acc.values(), key=lambda c: c.config)


def throughput_from_attribution(doc: dict) -> ConfigThroughput | None:
    """Achieved throughput from the recorder's measured per-mode counters.

    No model join: the ``repro-attr/v1`` mode rows carry *measured*
    flops/words next to measured seconds — the most exact source, but
    only the tree engines feed the recorder.
    """
    if not isinstance(doc, dict):
        return None
    modes = doc.get("modes") or []
    seconds = sum(float(m.get("seconds", 0.0)) for m in modes)
    flops = sum(float(m.get("measured_flops", 0)) for m in modes)
    words = sum(float(m.get("measured_words", 0)) for m in modes)
    if seconds <= 0 or (flops <= 0 and words <= 0):
        return None
    label = doc.get("strategy") or "tree"
    return ConfigThroughput(
        config=f"attr/{label}", spans=len(modes), seconds=seconds,
        flops=flops, bytes_moved=words * VALUE_ITEMSIZE,
        source="attribution",
    )


def roofline_report(
    configs,
    roofline=None,
    *,
    load: bool = True,
    notes=(),
) -> RooflineReport:
    """Scale achieved throughput against the calibrated ceilings.

    ``roofline=None`` with ``load=True`` loads the host artifact
    (:func:`repro.model.calibrate.load_roofline` — never measures); a
    missing artifact produces an explicitly uncalibrated report.
    """
    notes = list(notes)
    if roofline is None and load:
        from ..model.calibrate import load_roofline

        roofline = load_roofline()
    if roofline is None:
        notes.append("uncalibrated: no repro-machine/v1 artifact "
                     "(run 'repro roofline')")
    configs = list(configs)
    if roofline is not None:
        for c in configs:
            c.bandwidth_fraction = c.gbs / roofline.peak_bandwidth_gbs
            c.compute_fraction = c.gflops / roofline.peak_gflops
    return RooflineReport(roofline=roofline, configs=configs, notes=notes)


def report_from_trace_dir(trace_dir: str, roofline=None,
                          *, load: bool = True) -> RooflineReport:
    """Post-hoc roofline attribution over a saved ``repro trace`` dir.

    Process-tier spans are priced from the ``run_start`` event's
    shape/rank; the attribution artifact (when the recorder ran)
    contributes its measured-counter config.  Old trace dirs missing
    either input simply yield fewer configs — with none at all the
    report still renders the (possibly uncalibrated) ceilings.
    """
    import json
    import os

    from .export import read_jsonl

    notes = []
    if roofline is None:
        # Prefer the calibration the traced run itself snapshotted — a
        # trace copied off another host keeps that host's ceilings.
        from ..model.calibrate import load_roofline

        roofline = load_roofline(os.path.join(trace_dir, "machine.json"))
    spans = []
    trace_path = os.path.join(trace_dir, "trace.jsonl")
    if os.path.exists(trace_path):
        spans = read_jsonl(trace_path)
    else:
        notes.append(f"no trace.jsonl under {trace_dir}")
    shape = rank = None
    events_path = os.path.join(trace_dir, "events.jsonl")
    if os.path.exists(events_path):
        from .events import read_events

        for event in read_events(events_path):
            if event.get("kind") == "run_start":
                shape = tuple(event.get("shape") or ()) or None
                rank = event.get("rank")
                break
    if shape is None:
        notes.append("no run_start event: process-tier spans not priced")
    configs = throughput_from_spans(spans, shape=shape, rank=rank)
    attr_path = os.path.join(trace_dir, "attribution.json")
    if os.path.exists(attr_path):
        try:
            with open(attr_path) as fh:
                attributed = throughput_from_attribution(json.load(fh))
        except (OSError, ValueError):
            attributed = None
        if attributed is not None:
            configs.append(attributed)
    return roofline_report(configs, roofline, load=load, notes=notes)


def publish_roofline_gauges(roofline, configs=()) -> None:
    """Expose ceilings and achieved fractions on ``/metrics``.

    Gauge names are stable OpenMetrics families after the registry's
    dot-to-underscore mapping: ``repro_roofline_peak_bandwidth_gbs``,
    ``repro_roofline_fraction_<config>``, ...
    """
    from .metrics import registry

    if roofline is not None:
        registry.set_gauge("roofline.peak_bandwidth_gbs",
                           roofline.peak_bandwidth_gbs)
        registry.set_gauge("roofline.peak_gather_gbs",
                           roofline.peak_gather_gbs)
        registry.set_gauge("roofline.peak_gflops", roofline.peak_gflops)
        registry.set_gauge("roofline.saturation_workers",
                           float(roofline.saturation_workers))
        for point in roofline.bandwidth_points:
            registry.set_gauge(f"roofline.triad_gbs.t{point.threads}",
                               point.triad_gbs)
    for c in configs:
        key = c.config.replace("/", ".").replace("-", "_")
        registry.set_gauge(f"roofline.achieved_gbs.{key}", c.gbs)
        if c.bandwidth_fraction is not None:
            registry.set_gauge(f"roofline.fraction.{key}",
                               c.bandwidth_fraction)


def report_line(report: RooflineReport) -> str:
    """The one-line summary ``repro report`` prints."""
    if not report.calibrated:
        return "roofline: uncalibrated (run 'repro roofline')"
    best = report.best()
    if best is None:
        return (f"roofline: calibrated "
                f"({report.roofline.peak_bandwidth_gbs:.2f} GB/s, "
                f"{report.roofline.peak_gflops:.2f} GFLOP/s) — no "
                f"attributable kernel spans in this trace")
    return (f"roofline: best {best.config} at {best.gbs:.2f} GB/s = "
            f"{best.bandwidth_fraction * 100.0:.0f}% of the "
            f"{report.roofline.peak_bandwidth_gbs:.2f} GB/s ceiling "
            f"({best.gflops:.2f} GFLOP/s, {best.bound}-bound)")
