"""Sampling wall-clock stack profiler, joined to the span tracer.

The span tree (PR 2) says which *phase* spent each microsecond; the cost
attribution (PR 5) says which *tree node*; nothing so far says which
*Python frames* inside a span actually burn the time.  This module adds
the standard missing piece of a production telemetry stack: a background
sampler thread polls :func:`sys._current_frames` at a configurable rate
and folds every captured stack into ``(lane, span path, frame stack)``
buckets, where the span path comes from the tracer's live per-thread span
stack (a :func:`repro.obs.trace.set_span_observer` hook fed by the same
contextvar machinery spans already use).  Every sample is therefore
attributed to the run, the innermost open span, and the code — enough to
render a flamegraph per span kind.

Like every other instrument the profiler is **off by default** and
no-op-cheap when off: the only always-on cost is one ``None`` check per
span enter/exit in :mod:`repro.obs.trace`.  Enable with :func:`enable` /
:func:`profiling`, ``REPRO_PROFILE=1`` before import, ``repro profile
<cmd>``, or ``repro trace --profile``; ``REPRO_PROFILE_HZ`` overrides the
default sampling rate.

Both execution tiers are covered:

* **thread tier** — worker threads are sampled directly (one sampler
  sees every thread in the process); :class:`repro.parallel.pool.WorkerPool`
  labels its threads ``worker-<lane>`` so folded stacks carry the same
  lane ids as the ``pool_task`` spans.
* **process tier** — the parent's sampler cannot see worker processes,
  so ``ProcessPool._timed_call`` (the PR 7 capture path) runs a scoped
  sampler inside each worker: the task's
  :class:`~repro.obs.runctx.RunContext` owns a private
  :class:`ProfileStore`, the worker sampler runs for the task's duration,
  and the folded snapshot rides back with the spans.  The parent merges
  it via :meth:`ProfileStore.merge_child` under a ``pid-<pid>`` lane with
  the span paths prefixed ``pool_task`` — worker-interior stacks appear
  exactly where the merged worker spans do.

Samples carry an explicit *weight* (the sampling period in seconds), so
sampled seconds stay correct even if the rate changes mid-run; the folded
counts stay integers for flamegraph.pl / speedscope interop.  Persist
with :func:`write_profile` (``profile.json``, schema ``repro-profile/v1``
with a :func:`validate_profile_artifact` self-check, plus
``profile.folded`` collapsed-stack text).

Scoped run contexts (:meth:`repro.obs.runctx.RunContext.scoped` with
``profile=True``) each own a private store: two concurrent profiled runs
fold zero samples into each other's stores, because the span observer
resolves the store *at span-enter time* from the run context that opened
the span.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
import time
from contextlib import contextmanager

from . import _ctx
from . import trace as _trace

__all__ = [
    "PROFILE_SCHEMA", "DEFAULT_HZ", "ProfileStore", "default_hz",
    "enabled", "enable", "disable", "profiling", "get_store", "active_hz",
    "retain_sampler", "release_sampler", "label_thread",
    "bind_thread", "unbind_thread",
    "folded_lines", "profile_artifact", "validate_profile_artifact",
    "write_profile", "hotspots", "format_hotspots",
]

PROFILE_SCHEMA = "repro-profile/v1"

#: default sampling rate (Hz).  97 is prime on purpose: a round 100 Hz
#: phase-locks with 10 ms-periodic work and over/under-samples it; a
#: prime rate decorrelates (the same reason Linux perf defaults to 99).
DEFAULT_HZ = 97

#: frames deeper than this are truncated root-side (leaf frames are the
#: interesting end of a stack for hotspot attribution).
MAX_STACK_DEPTH = 64

_log = logging.getLogger("repro.obs.profiler")


def _truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in {"1", "true", "yes", "on"}


def default_hz() -> float:
    """``REPRO_PROFILE_HZ`` override (validated), else :data:`DEFAULT_HZ`."""
    raw = (os.environ.get("REPRO_PROFILE_HZ") or "").strip()
    if not raw:
        return float(DEFAULT_HZ)
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_PROFILE_HZ must be a positive number, got {raw!r}"
        ) from None
    if not value > 0:
        raise ValueError(f"REPRO_PROFILE_HZ must be > 0, got {value}")
    return value


#: stdlib modules whose leaf frame means "parked, not working": a thread
#: blocked in a lock/select/queue is spending wall time but no CPU, and
#: folding those stacks in would drown real hotspots in idle pool workers
#: and server threads.  Checked against the *leaf* frame only, so user
#: code that happens to call into these still attributes its own frames.
_IDLE_MODULES = frozenset({
    "threading", "selectors", "queue", "socket", "socketserver", "ssl",
    "time", "subprocess", "concurrent.futures.thread",
    "concurrent.futures.process", "multiprocessing.connection",
    "multiprocessing.queues", "multiprocessing.synchronize",
})


def _sanitize(name: str) -> str:
    """Folded-format-safe segment: no separators (';', ' ') or newlines."""
    return (str(name).replace(";", ",").replace(" ", "_")
            .replace("\n", "_"))


def _frame_name(frame) -> str:
    code = frame.f_code
    mod = frame.f_globals.get("__name__") or os.path.splitext(
        os.path.basename(code.co_filename))[0]
    return f"{mod}.{code.co_name}"


def _walk(frame, limit: int = MAX_STACK_DEPTH) -> tuple:
    """Leaf frame -> root-first tuple of ``module.function`` names."""
    out = []
    f = frame
    while f is not None and len(out) < limit:
        out.append(_frame_name(f))
        f = f.f_back
    out.reverse()
    return tuple(out)


def _is_idle(frame) -> bool:
    return frame.f_globals.get("__name__") in _IDLE_MODULES


class ProfileStore:
    """Thread-safe folded-sample accumulator.

    Keys are ``(lane, span path, frame stack)``; each bucket accumulates
    an integer sample count (for collapsed-stack text) and weighted
    seconds (count x sampling period at capture time, so seconds survive
    rate changes).  Per-span-kind self/total tables are maintained
    incrementally: *self* credits the innermost open span, *total* every
    distinct kind on the open-span path.
    """

    def __init__(self, hz: float | None = None):
        self.hz = float(hz) if hz else default_hz()
        self.wall_epoch = time.time()
        self._lock = threading.Lock()
        #: (lane, spans, frames) -> [count, seconds]
        self._folded: dict[tuple, list] = {}
        #: kind -> [count, seconds]
        self._span_self: dict[str, list] = {}
        self._span_total: dict[str, list] = {}
        self.n_samples = 0
        self.sampled_seconds = 0.0

    def add(self, lane: str, span_path: tuple, frames: tuple,
            weight: float, count: int = 1) -> None:
        with self._lock:
            self._add_locked(lane, span_path, frames, weight, count)

    def _add_locked(self, lane, span_path, frames, weight, count):
        slot = self._folded.setdefault(
            (lane, tuple(span_path), tuple(frames)), [0, 0.0]
        )
        slot[0] += count
        slot[1] += weight
        self.n_samples += count
        self.sampled_seconds += weight
        if span_path:
            leaf = self._span_self.setdefault(span_path[-1], [0, 0.0])
            leaf[0] += count
            leaf[1] += weight
            for kind in set(span_path):
                tot = self._span_total.setdefault(kind, [0, 0.0])
                tot[0] += count
                tot[1] += weight

    def merge_child(self, snapshot: dict, *, lane: str | None = None,
                    span_prefix: tuple = ("pool_task",)) -> int:
        """Fold a worker process's :meth:`snapshot` into this store.

        ``lane`` overrides the worker-local lane labels (pass
        ``pid-<pid>`` so each worker process gets its own lane) and
        ``span_prefix`` re-roots the worker's span paths — by default
        under ``pool_task``, mirroring how
        :func:`repro.obs.trace.merge_subprocess_spans` re-parents the
        worker's spans.  Returns the number of samples merged.
        """
        merged = 0
        with self._lock:
            for entry in snapshot.get("folded", []):
                count = int(entry.get("count", 0))
                if count < 1:
                    continue
                self._add_locked(
                    lane if lane is not None else entry.get("lane", "?"),
                    tuple(span_prefix) + tuple(entry.get("spans", ())),
                    tuple(entry.get("frames", ())),
                    float(entry.get("seconds", 0.0)),
                    count,
                )
                merged += count
        return merged

    def clear(self) -> None:
        with self._lock:
            self._folded.clear()
            self._span_self.clear()
            self._span_total.clear()
            self.n_samples = 0
            self.sampled_seconds = 0.0
            self.wall_epoch = time.time()

    def snapshot(self) -> dict:
        """JSON-friendly copy: folded entries (most samples first) plus
        the per-span-kind sample tables."""
        with self._lock:
            folded = [
                {"lane": lane, "spans": list(spans), "frames": list(frames),
                 "count": count, "seconds": seconds}
                for (lane, spans, frames), (count, seconds)
                in self._folded.items()
            ]
            span_samples = {
                kind: {
                    "self_samples": self._span_self.get(kind, [0, 0.0])[0],
                    "self_seconds": self._span_self.get(kind, [0, 0.0])[1],
                    "total_samples": total[0],
                    "total_seconds": total[1],
                }
                for kind, total in self._span_total.items()
            }
            n_samples = self.n_samples
            sampled_seconds = self.sampled_seconds
        folded.sort(key=lambda e: (-e["count"], e["lane"], e["frames"]))
        return {
            "hz": self.hz,
            "wall_epoch": self.wall_epoch,
            "n_samples": n_samples,
            "sampled_seconds": sampled_seconds,
            "folded": folded,
            "span_samples": span_samples,
        }

    def __len__(self) -> int:
        with self._lock:
            return self.n_samples


class _SpanObserver:
    """Live per-thread span stacks, maintained by trace enter/exit hooks.

    The tracer's contextvar span stack cannot be read from the sampler
    thread, so this observer mirrors it into a plain dict keyed by OS
    thread id.  The destination :class:`ProfileStore` is resolved at
    span-*enter* time from the run context that opened the span — two
    concurrent scoped runs therefore route their samples to their own
    stores with zero cross-talk, whatever thread the sampler runs on.
    """

    def __init__(self):
        self._lock = threading.Lock()
        #: tid -> list of (span id, kind, store) innermost-last
        self._stacks: dict[int, list] = {}

    def push(self, rec) -> None:
        store = _resolve_store()
        with self._lock:
            self._stacks.setdefault(rec.tid, []).append(
                (rec.id, rec.kind, store)
            )

    def pop(self, rec) -> None:
        with self._lock:
            stack = self._stacks.get(rec.tid)
            if not stack:
                return
            if stack[-1][0] == rec.id:
                stack.pop()
            else:
                # Observer installed mid-span, or exits out of order:
                # drop by id, never by position.
                stack[:] = [e for e in stack if e[0] != rec.id]
            if not stack:
                del self._stacks[rec.tid]

    def snapshot(self) -> dict:
        """tid -> (store of the innermost span, tuple of open span kinds)."""
        with self._lock:
            return {
                tid: (stack[-1][2], tuple(kind for _, kind, _s in stack))
                for tid, stack in self._stacks.items()
                if stack
            }

    def clear(self) -> None:
        with self._lock:
            self._stacks.clear()


def _resolve_store() -> ProfileStore | None:
    """The store samples should land in for the *current* context.

    A run context with a pinned ``profile_enabled`` wins (its private
    store, or None when the run opted out); otherwise the module-global
    store while :func:`enable`\\ d.
    """
    ctx = _ctx.current()
    if ctx is not None:
        pinned = getattr(ctx, "profile_enabled", None)
        if pinned is not None:
            return getattr(ctx, "profiler", None) if pinned else None
    return _store if _enabled else None


class _Sampler(threading.Thread):
    """Daemon thread: one :func:`sys._current_frames` sweep per period."""

    def __init__(self, hz: float):
        super().__init__(name="repro-profiler", daemon=True)
        self.hz = float(hz)
        self.interval = 1.0 / self.hz
        self._stop_event = threading.Event()

    def stop(self) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=2.0)

    def run(self) -> None:
        # Weight each sweep by the *measured* period, not the nominal
        # one: after Event.wait returns the sampler still queues for the
        # GIL behind the threads it is sampling, so the effective period
        # under load runs well past 1/hz and nominal weights would
        # undercount sampled seconds by the same factor.  Capped so one
        # pathological stall cannot dump its whole gap on a single stack.
        last = time.perf_counter()
        cap = 10.0 * self.interval
        while not self._stop_event.wait(self.interval):
            now = time.perf_counter()
            weight = min(now - last, cap)
            last = now
            try:
                _sample_once(self.ident, weight)
            except Exception:  # never take the host process down
                _log.warning("sample sweep failed", exc_info=True)


def _sample_once(own_ident, weight: float) -> None:
    frames = sys._current_frames()
    spans_by_tid = _observer.snapshot()
    main_ident = threading.main_thread().ident
    thread_names = {t.ident: t.name for t in threading.enumerate()}
    for tid, frame in frames.items():
        if tid == own_ident:
            continue
        entry = spans_by_tid.get(tid)
        if entry is not None:
            store, span_path = entry
        else:
            # No open span on this thread: a thread-level binding (a
            # profiled run context activated on it) wins over the
            # module-global store.  Explicit None checks — an empty
            # ProfileStore is falsy (``__len__`` is the sample count).
            store = _bound.get(tid)
            if store is None and _enabled:
                store = _store
            span_path = ()
        if store is None or _is_idle(frame):
            continue
        stack = _walk(frame)
        if not stack:
            continue
        lane = _labels.get(tid)
        if lane is None:
            lane = ("main" if tid == main_ident
                    else thread_names.get(tid) or f"thread-{tid}")
        store.add(lane, span_path, stack, weight)


# -- module lifecycle -------------------------------------------------------

_lock = threading.RLock()
_observer = _SpanObserver()
_store: ProfileStore | None = None
_sampler: _Sampler | None = None
_retain_count = 0
_enabled: bool = _truthy(os.environ.get("REPRO_PROFILE"))
#: tid -> explicit lane label (worker pools register their threads here).
_labels: dict[int, str] = {}
#: tid -> store for samples taken *outside* any span on that thread
#: (installed by :func:`repro.obs.runctx.using` for profiled contexts,
#: e.g. the process-tier worker thread running a task's scoped context).
_bound: dict[int, "ProfileStore"] = {}


def _after_fork_in_child() -> None:
    """Reset profiler state inherited across ``fork``.

    A forked worker inherits a dead sampler thread, the parent's live
    span stacks (under the *same* thread ident — the child's main thread
    keeps the forking thread's id, so a stale entry would silently route
    every worker sample into a discarded copy of the parent's store),
    and possibly mid-acquire locks.  Start from a clean slate; the
    child's own ``enable()`` / scoped-context retain rebuilds what it
    needs.
    """
    global _lock, _observer, _sampler, _retain_count, _store
    _lock = threading.RLock()
    _observer = _SpanObserver()
    _sampler = None
    _retain_count = 0
    _store = None
    _labels.clear()
    _bound.clear()
    _trace.set_span_observer(None)


os.register_at_fork(after_in_child=_after_fork_in_child)


def enabled() -> bool:
    """Whether profiling is on (run-context pin overrides the global)."""
    ctx = _ctx.current()
    if ctx is not None:
        pinned = getattr(ctx, "profile_enabled", None)
        if pinned is not None:
            return pinned
    return _enabled


def get_store() -> ProfileStore | None:
    """The active store: the run context's private one when installed,
    else the module-global store (kept after :func:`disable` so finished
    runs can still be exported)."""
    ctx = _ctx.current()
    if ctx is not None and getattr(ctx, "profiler", None) is not None:
        return ctx.profiler
    return _store


def active_hz() -> float | None:
    """The running sampler's rate, or None when no sampler is alive."""
    with _lock:
        if _sampler is not None and _sampler.is_alive():
            return _sampler.hz
    return None


def bind_thread(store: ProfileStore | None) -> tuple:
    """Route this thread's *outside-any-span* samples to ``store``.

    Span-interior samples already resolve their store through the span
    observer; this covers the gaps between spans (and runs with tracing
    off entirely).  Returns a token for :func:`unbind_thread`; bindings
    nest (the token restores the previous binding).
    """
    tid = threading.get_ident()
    prev = _bound.get(tid)
    if store is None:
        _bound.pop(tid, None)
    else:
        _bound[tid] = store
    return (tid, prev)


def unbind_thread(token: tuple) -> None:
    tid, prev = token
    if prev is None:
        _bound.pop(tid, None)
    else:
        _bound[tid] = prev


def label_thread(tid: int, label: str) -> None:
    """Pin a lane label for an OS thread id (e.g. ``worker-0``).

    Cheap enough to call unconditionally from pool worker registration —
    one dict store per thread, not per task.
    """
    _labels[tid] = str(label)


def _start_locked(hz: float) -> None:
    global _sampler
    if _sampler is not None and _sampler.is_alive():
        return
    # A forked child inherits a dead sampler object; always re-arm the
    # observer hook too (idempotent either way).
    _trace.set_span_observer(_observer)
    _sampler = _Sampler(hz)
    _sampler.start()


def _stop_locked() -> None:
    global _sampler
    sampler, _sampler = _sampler, None
    _trace.set_span_observer(None)
    _observer.clear()
    if sampler is not None:
        sampler.stop()


def retain_sampler(hz: float | None = None) -> None:
    """Keep the sampler running while a scoped profiled run is active.

    Refcounted: :func:`repro.obs.runctx.using` retains on entry and
    releases on exit, so the single process-wide sampler thread runs
    exactly while someone wants samples.  An already-running sampler
    keeps its rate (stores weight samples by the true period, so seconds
    stay correct regardless).
    """
    global _retain_count
    with _lock:
        _retain_count += 1
        _start_locked(hz or default_hz())


def release_sampler() -> None:
    global _retain_count
    with _lock:
        _retain_count = max(_retain_count - 1, 0)
        if _retain_count == 0 and not _enabled:
            _stop_locked()


def enable(hz: float | None = None, *, clear: bool = False) -> None:
    """Turn sampling on (module-global store); idempotent.

    ``clear=True`` drops previously collected samples; otherwise a
    re-enable keeps accumulating into the existing store.
    """
    global _enabled, _store
    with _lock:
        if _store is None or clear:
            _store = ProfileStore(hz=hz)
        elif hz:
            _store.hz = float(hz)
        _enabled = True
        _start_locked(hz or _store.hz)


def disable() -> None:
    """Stop sampling; collected samples are kept for export.  Idempotent
    (and a no-op for scoped runs still holding the sampler)."""
    global _enabled
    with _lock:
        _enabled = False
        if _retain_count == 0:
            _stop_locked()


@contextmanager
def profiling(hz: float | None = None, *, clear: bool = True):
    """Enable sampling for a block, restoring the previous state after::

        with profiler.profiling(hz=199) as store:
            engine.mttkrp(0)
        print(store.snapshot()["n_samples"])
    """
    was = _enabled
    enable(hz, clear=clear)
    try:
        yield _store
    finally:
        if not was:
            disable()


# -- artifact ---------------------------------------------------------------

def folded_lines(snapshot_or_doc: dict) -> list[str]:
    """Collapsed-stack text lines (flamegraph.pl / speedscope format).

    ``lane;span:<kind>;...;module.function;... <count>`` — span-path
    segments are prefixed ``span:`` so the rendered flamegraph visually
    separates the tracer's phases from the Python frames below them.
    """
    lines = []
    for entry in snapshot_or_doc.get("folded", []):
        path = [_sanitize(entry.get("lane", "?"))]
        path.extend(f"span:{_sanitize(s)}" for s in entry.get("spans", ()))
        path.extend(_sanitize(f) for f in entry.get("frames", ()))
        lines.append(";".join(path) + f" {int(entry['count'])}")
    return lines


def profile_artifact(snapshot: dict, *, run_id: str | None = None,
                     command: str | None = None,
                     duration_seconds: float | None = None) -> dict:
    """Wrap a :meth:`ProfileStore.snapshot` as a ``repro-profile/v1`` doc."""
    spans = [
        {"kind": kind,
         "self_samples": int(row["self_samples"]),
         "self_seconds": float(row["self_seconds"]),
         "total_samples": int(row["total_samples"]),
         "total_seconds": float(row["total_seconds"])}
        for kind, row in snapshot.get("span_samples", {}).items()
    ]
    spans.sort(key=lambda r: (-r["self_seconds"], r["kind"]))
    return {
        "schema": PROFILE_SCHEMA,
        "hz": float(snapshot.get("hz") or 0.0),
        "n_samples": int(snapshot.get("n_samples", 0)),
        "sampled_seconds": float(snapshot.get("sampled_seconds", 0.0)),
        "duration_seconds": duration_seconds,
        "wall_epoch": snapshot.get("wall_epoch"),
        "run_id": run_id,
        "command": command,
        "lanes": sorted({e.get("lane", "?")
                         for e in snapshot.get("folded", [])}),
        "spans": spans,
        "folded": snapshot.get("folded", []),
    }


def validate_profile_artifact(doc: dict) -> list[str]:
    """Schema/consistency problems (empty list = valid).

    Beyond the envelope tag this checks the invariants every consumer
    leans on: folded counts sum to ``n_samples``, folded seconds sum to
    ``sampled_seconds``, per-span self never exceeds total, and every
    folded segment survives the collapsed-stack text format.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["profile artifact must be a JSON object"]
    if doc.get("schema") != PROFILE_SCHEMA:
        errors.append(
            f"schema {doc.get('schema')!r} != {PROFILE_SCHEMA!r}"
        )
    hz = doc.get("hz")
    if not isinstance(hz, (int, float)) or not hz > 0:
        errors.append(f"hz must be > 0, got {hz!r}")
    folded = doc.get("folded")
    if not isinstance(folded, list):
        return errors + ["folded must be a list"]
    count_sum = 0
    seconds_sum = 0.0
    for i, entry in enumerate(folded):
        where = f"folded[{i}]"
        count = entry.get("count")
        if not isinstance(count, int) or count < 1:
            errors.append(f"{where}: count must be a positive int")
            continue
        count_sum += count
        seconds_sum += float(entry.get("seconds", 0.0))
        if not entry.get("frames"):
            errors.append(f"{where}: empty frame stack")
        for seg in list(entry.get("spans", ())) + list(
                entry.get("frames", ())):
            if ";" in str(seg) or " " in str(seg) or "\n" in str(seg):
                errors.append(f"{where}: segment {seg!r} breaks the "
                              "folded-stack format")
    if count_sum != int(doc.get("n_samples", -1)):
        errors.append(f"n_samples={doc.get('n_samples')} != folded count "
                      f"sum {count_sum}")
    declared = float(doc.get("sampled_seconds", 0.0))
    if abs(declared - seconds_sum) > max(1e-6, 1e-6 * abs(seconds_sum)):
        errors.append(f"sampled_seconds={declared} != folded seconds "
                      f"sum {seconds_sum}")
    for row in doc.get("spans", []):
        kind = row.get("kind")
        if row.get("self_samples", 0) > row.get("total_samples", 0):
            errors.append(f"span {kind!r}: self_samples > total_samples")
        if row.get("self_seconds", 0.0) > row.get("total_seconds", 0.0) \
                + 1e-9:
            errors.append(f"span {kind!r}: self_seconds > total_seconds")
    return errors


def write_profile(trace_dir: str, snapshot: dict | None = None, *,
                  run_id: str | None = None, command: str | None = None,
                  duration_seconds: float | None = None) -> tuple[str, str]:
    """Persist ``profile.json`` + ``profile.folded`` into ``trace_dir``.

    The artifact is self-checked with :func:`validate_profile_artifact`
    before anything touches disk; returns ``(json path, folded path)``.
    """
    if snapshot is None:
        store = get_store()
        if store is None:
            raise ValueError(
                "no profile samples to write (enable the profiler first)"
            )
        snapshot = store.snapshot()
    doc = profile_artifact(snapshot, run_id=run_id, command=command,
                           duration_seconds=duration_seconds)
    problems = validate_profile_artifact(doc)
    if problems:
        raise ValueError(f"refusing to write invalid profile artifact: "
                         f"{problems[0]}")
    os.makedirs(trace_dir, exist_ok=True)
    json_path = os.path.join(trace_dir, "profile.json")
    folded_path = os.path.join(trace_dir, "profile.folded")
    with open(json_path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    with open(folded_path, "w") as fh:
        for line in folded_lines(doc):
            fh.write(line + "\n")
    return json_path, folded_path


# -- hotspot reporting ------------------------------------------------------

def hotspots(doc: dict, top: int = 10) -> list[dict]:
    """Per-frame self/total seconds from the folded entries.

    *self* credits the leaf frame of each stack; *total* credits every
    distinct frame on the stack (a frame appearing twice through
    recursion is counted once per sample).
    """
    self_acc: dict[str, list] = {}
    total_acc: dict[str, list] = {}
    grand_total = 0.0
    for entry in doc.get("folded", []):
        frames = tuple(entry.get("frames", ()))
        if not frames:
            continue
        count = int(entry.get("count", 0))
        seconds = float(entry.get("seconds", 0.0))
        grand_total += seconds
        leaf = self_acc.setdefault(frames[-1], [0, 0.0])
        leaf[0] += count
        leaf[1] += seconds
        for frame in set(frames):
            tot = total_acc.setdefault(frame, [0, 0.0])
            tot[0] += count
            tot[1] += seconds
    rows = [
        {"frame": frame,
         "self_samples": self_acc.get(frame, [0, 0.0])[0],
         "self_seconds": self_acc.get(frame, [0, 0.0])[1],
         "total_seconds": total[1],
         "self_fraction": (self_acc.get(frame, [0, 0.0])[1] / grand_total
                           if grand_total else 0.0)}
        for frame, total in total_acc.items()
    ]
    rows.sort(key=lambda r: (-r["self_seconds"], -r["total_seconds"],
                             r["frame"]))
    return rows[:top]


def format_hotspots(doc: dict, top: int = 10) -> str:
    """Fixed-width "top hotspots" table (what ends ``repro report``)."""
    rows = hotspots(doc, top=top)
    if not rows:
        return "(no samples)"
    width = max([len(r["frame"]) for r in rows] + [len("frame")])
    header = (f"{'frame':<{width}}  {'self s':>8}  {'self %':>6}  "
              f"{'total s':>8}  {'samples':>7}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['frame']:<{width}}  {r['self_seconds']:>8.3f}  "
            f"{r['self_fraction'] * 100:>5.1f}%  "
            f"{r['total_seconds']:>8.3f}  {r['self_samples']:>7d}"
        )
    return "\n".join(lines)
