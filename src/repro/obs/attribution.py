"""Cost attribution: measured per-node / per-mode work, aligned to the model.

The drift watchdog (:mod:`repro.obs.watchdog`) compares one *aggregate*
number per iteration against the cost model; when it fires, nothing says
*which* tree node or mode diverged.  This module closes that gap: the
engines report every node rebuild (flops/words from the shared
:func:`repro.core.engine.contraction_work` convention, plus wall seconds)
and every MTTKRP scatter to a process-global :class:`AttributionRecorder`,
which aggregates them into per-tree-node and per-mode totals inside
per-ALS-iteration windows — aligned node-for-node with the model's
:func:`repro.model.cost.node_cost_terms` prediction when a strategy is
registered.

Because measured flops are recorded with the exact values the perf
counters receive, a window's per-node flop totals sum to the iteration's
counter totals and, on any backend, each node's measured/predicted flop
ratio is exactly 1.0 while the symbolic tree matches what the engine
executes — deviations localize a real bug or a stale model to one node.

Like the rest of the observability stack, attribution is **off by
default** and no-op-cheap when off: engines guard every hook with one
module-bool check (:func:`enabled`).  Enable with :func:`enable` /
:func:`recording`, or ``REPRO_ATTRIBUTION=1`` (``repro trace`` and
``repro explain --measure`` turn it on for you).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .metrics import registry as _metrics

__all__ = [
    "ATTRIBUTION_SCHEMA", "AttributionReading", "AttributionRecorder",
    "enabled", "enable", "disable", "recording", "get_recorder",
    "attribution_from_spans", "format_attribution",
]

ATTRIBUTION_SCHEMA = "repro-attr/v1"

#: measured per-node accumulator layout: [flops, words, seconds, rebuilds,
#: scatter_words] (plain lists keep the hot-path increment allocation-free).
_F, _W, _S, _R, _SC = range(5)
#: per-mode accumulator layout: [flops, words, seconds, mttkrps].
_MF, _MW, _MS, _MN = range(4)


@dataclass
class AttributionReading:
    """One ALS iteration's measured per-node / per-mode breakdown.

    ``nodes`` maps node id to ``{"flops", "words", "seconds", "rebuilds",
    "scatter_words"}``; ``modes`` maps mode to ``{"flops", "words",
    "seconds", "mttkrps"}``.  When the recorder has a registered strategy,
    ``node_rows`` / ``mode_rows`` carry the measured-vs-predicted
    comparison (one dict per non-root node / per mode, ratios included)
    and :meth:`blame` localizes a drift metric to its worst offender.
    """

    iteration: int
    nodes: dict[int, dict[str, float]]
    modes: dict[int, dict[str, float]]
    node_rows: list[dict] = field(default_factory=list)
    mode_rows: list[dict] = field(default_factory=list)

    @property
    def flops(self) -> int:
        return int(sum(n["flops"] for n in self.nodes.values()))

    @property
    def words(self) -> int:
        return int(sum(n["words"] for n in self.nodes.values()))

    @property
    def seconds(self) -> float:
        return float(sum(m["seconds"] for m in self.modes.values()))

    def max_node_err(self, metric: str = "flops") -> float | None:
        """Largest per-node ``|measured/predicted - 1|`` (None unaligned)."""
        errs = [
            abs(row[f"{metric}_ratio"] - 1.0)
            for row in self.node_rows
            if row.get(f"{metric}_ratio") is not None
        ]
        return max(errs) if errs else None

    def blame(self, metric: str) -> dict | None:
        """The node most responsible for a drift on ``metric``.

        For the exact work metrics (``flops`` / ``words``) the offender is
        the node with the largest measured/predicted ratio error.  For
        ``time`` — where no per-node prediction in seconds exists without
        machine constants — it is the node whose share of measured wall
        time most exceeds its share of predicted flops, in percentage
        points.  Returns the comparison row augmented with ``why``, or
        None when there is nothing aligned to blame.
        """
        if not self.node_rows:
            return None
        if metric in ("flops", "words"):
            key = f"{metric}_ratio"
            rows = [r for r in self.node_rows if r.get(key) is not None]
            if not rows:
                return None
            worst = max(rows, key=lambda r: abs(r[key] - 1.0))
            if worst[key] == 1.0:
                return None
            return {**worst, "why": (
                f"measured/predicted {metric} {worst[key]:.3f}"
            )}
        total_pred = sum(r["predicted_flops"] for r in self.node_rows)
        total_sec = sum(r["seconds"] for r in self.node_rows)
        if total_pred <= 0 or total_sec <= 0:
            return None

        def excess(row: dict) -> float:
            return (row["seconds"] / total_sec
                    - row["predicted_flops"] / total_pred)

        worst = max(self.node_rows, key=excess)
        return {**worst, "why": (
            f"time share {worst['seconds'] / total_sec:.0%} vs predicted "
            f"work share {worst['predicted_flops'] / total_pred:.0%}"
        )}

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "flops": self.flops,
            "words": self.words,
            "seconds": self.seconds,
            "max_node_flops_err": self.max_node_err("flops"),
            "nodes": {str(k): v for k, v in sorted(self.nodes.items())},
            "modes": {str(k): v for k, v in sorted(self.modes.items())},
        }


class AttributionRecorder:
    """Process-global aggregator of engine-reported rebuild/scatter events.

    Engines call :meth:`begin_mode` / :meth:`on_rebuild` / :meth:`end_mode`
    (guarded by :func:`enabled`); drivers call :meth:`register` once per
    run to align measurements with the model's per-node prediction, then
    :meth:`begin_window` / :meth:`observe_iteration` around each ALS
    iteration.  All mutation happens under one lock, so parallel-engine
    rebuilds and a live scrape thread cannot tear the totals.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock", threading.Lock()):
            self._nodes: dict[int, list] = {}
            self._modes: dict[int, list] = {}
            self._mode: int | None = None
            self._mode_t0 = 0.0
            self._window_nodes: dict[int, tuple] = {}
            self._window_modes: dict[int, tuple] = {}
            self.readings: list[AttributionReading] = []
            self.strategy_name: str | None = None
            self.rank: int | None = None
            self._pred_nodes: dict[int, dict] = {}
            self._pred_modes: dict[int, dict] = {}

    # ------------------------------------------------------------------
    # engine-facing hooks (hot path; every caller is behind enabled())
    # ------------------------------------------------------------------
    def begin_mode(self, mode: int) -> None:
        with self._lock:
            self._mode = mode
            self._mode_t0 = time.perf_counter()

    def on_rebuild(self, node_id: int, flops: int, words: int,
                   seconds: float) -> None:
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None:
                node = self._nodes[node_id] = [0, 0, 0.0, 0, 0]
            node[_F] += flops
            node[_W] += words
            node[_S] += seconds
            node[_R] += 1
            if self._mode is not None:
                m = self._modes.get(self._mode)
                if m is None:
                    m = self._modes[self._mode] = [0, 0, 0.0, 0]
                m[_MF] += flops
                m[_MW] += words

    def end_mode(self, mode: int, leaf_id: int, scatter_words: int) -> None:
        with self._lock:
            seconds = time.perf_counter() - self._mode_t0
            m = self._modes.get(mode)
            if m is None:
                m = self._modes[mode] = [0, 0, 0.0, 0]
            m[_MW] += scatter_words
            m[_MS] += seconds
            m[_MN] += 1
            node = self._nodes.get(leaf_id)
            if node is None:
                node = self._nodes[leaf_id] = [0, 0, 0.0, 0, 0]
            node[_W] += scatter_words
            node[_SC] += scatter_words
            self._mode = None

    # ------------------------------------------------------------------
    # driver-facing API
    # ------------------------------------------------------------------
    def register(self, strategy, node_nnz, rank: int) -> None:
        """Align this recorder with one run's strategy + model prediction.

        Computes the per-node / per-mode predicted cost terms
        (:func:`repro.model.cost.node_cost_terms`) and resets measured
        state, so subsequent windows compare node-for-node against the
        model.  Imported lazily: the model package depends on the engine
        this module instruments.
        """
        from ..model.cost import node_cost_terms, per_mode_cost

        terms = node_cost_terms(strategy, node_nnz, rank)
        modes = per_mode_cost(strategy, node_nnz, rank)
        self.reset()
        with self._lock:
            self.strategy_name = strategy.name
            self.rank = int(rank)
            self._pred_nodes = {
                t.node_id: {
                    "modes": t.modes, "rebuild_mode": t.rebuild_mode,
                    "nnz": t.nnz, "flops": t.flops, "words": t.words,
                }
                for t in terms if t.parent is not None
            }
            self._pred_modes = {int(m): dict(v) for m, v in modes.items()}

    def begin_window(self) -> None:
        with self._lock:
            self._window_nodes = {
                k: tuple(v) for k, v in self._nodes.items()
            }
            self._window_modes = {
                k: tuple(v) for k, v in self._modes.items()
            }

    def observe_iteration(self, iteration: int) -> AttributionReading:
        """Close the window: the iteration's per-node/per-mode breakdown.

        When a strategy is registered, the reading carries comparison rows
        and the per-mode prediction-error gauges
        (``attr.mode<m>.flops_ratio``, ``attr.max_node_flops_err``) are
        published to the metrics registry — and from there to
        ``/metrics``.
        """
        with self._lock:
            nodes = {}
            for nid, tot in self._nodes.items():
                base = self._window_nodes.get(nid, (0, 0, 0.0, 0, 0))
                delta = [tot[i] - base[i] for i in range(5)]
                if delta[_R] or delta[_W]:
                    nodes[nid] = {
                        "flops": delta[_F], "words": delta[_W],
                        "seconds": delta[_S], "rebuilds": delta[_R],
                        "scatter_words": delta[_SC],
                    }
            modes = {}
            for mode, tot in self._modes.items():
                base = self._window_modes.get(mode, (0, 0, 0.0, 0))
                delta = [tot[i] - base[i] for i in range(4)]
                if delta[_MN] or delta[_MF]:
                    modes[mode] = {
                        "flops": delta[_MF], "words": delta[_MW],
                        "seconds": delta[_MS], "mttkrps": delta[_MN],
                    }
        reading = AttributionReading(iteration=iteration, nodes=nodes,
                                     modes=modes)
        if self._pred_nodes:
            reading.node_rows = self._compare_nodes(nodes)
            reading.mode_rows = self._compare_modes(modes)
            for row in reading.mode_rows:
                if row["flops_ratio"] is not None:
                    _metrics.set_gauge(
                        f"attr.mode{row['mode']}.flops_ratio",
                        row["flops_ratio"],
                    )
            err = reading.max_node_err("flops")
            if err is not None:
                _metrics.set_gauge("attr.max_node_flops_err", err)
        self.readings.append(reading)
        return reading

    def _compare_nodes(self, measured: dict[int, dict]) -> list[dict]:
        rows = []
        for nid, pred in sorted(self._pred_nodes.items()):
            m = measured.get(nid, {"flops": 0, "words": 0, "seconds": 0.0,
                                   "rebuilds": 0, "scatter_words": 0})
            rows.append({
                "node": nid,
                "modes": list(pred["modes"]),
                "rebuild_mode": pred["rebuild_mode"],
                "nnz": pred["nnz"],
                "predicted_flops": pred["flops"],
                "measured_flops": int(m["flops"]),
                "flops_ratio": _ratio(m["flops"], pred["flops"]),
                "predicted_words": pred["words"],
                "measured_words": int(m["words"]),
                "words_ratio": _ratio(m["words"], pred["words"]),
                "seconds": float(m["seconds"]),
                "rebuilds": int(m["rebuilds"]),
            })
        return rows

    def _compare_modes(self, measured: dict[int, dict]) -> list[dict]:
        rows = []
        for mode, pred in sorted(self._pred_modes.items()):
            m = measured.get(mode, {"flops": 0, "words": 0, "seconds": 0.0,
                                    "mttkrps": 0})
            rows.append({
                "mode": mode,
                "predicted_flops": pred["flops"],
                "measured_flops": int(m["flops"]),
                "flops_ratio": _ratio(m["flops"], pred["flops"]),
                "predicted_words": pred["words"],
                "measured_words": int(m["words"]),
                "words_ratio": _ratio(m["words"], pred["words"]),
                "seconds": float(m["seconds"]),
                "mttkrps": int(m["mttkrps"]),
            })
        return rows

    def compare(self, reading: AttributionReading | None = None) -> list[dict]:
        """Measured-vs-predicted per-node rows (aligned by node id).

        Uses ``reading``'s window when given (the steady-state view);
        otherwise compares cumulative totals per observed window.
        """
        if reading is not None:
            if reading.node_rows:
                return reading.node_rows
            return self._compare_nodes(reading.nodes)
        n = max(len(self.readings), 1)
        with self._lock:
            cumulative = {
                nid: {"flops": tot[_F] / n, "words": tot[_W] / n,
                      "seconds": tot[_S] / n, "rebuilds": tot[_R] / n,
                      "scatter_words": tot[_SC] / n}
                for nid, tot in self._nodes.items()
            }
        return self._compare_nodes(cumulative)

    @property
    def has_data(self) -> bool:
        return bool(self._nodes)

    def snapshot(self) -> dict:
        """JSON-ready ``repro-attr/v1`` document (for ``attribution.json``)."""
        last = self.readings[-1] if self.readings else None
        modes_rows = (
            last.mode_rows if last is not None and last.mode_rows
            else self._compare_modes(last.modes) if last is not None
            else []
        )
        return {
            "schema": ATTRIBUTION_SCHEMA,
            "strategy": self.strategy_name,
            "rank": self.rank,
            "n_iterations": len(self.readings),
            "nodes": self.compare(last),
            "modes": modes_rows,
            "iterations": [
                {"iteration": r.iteration, "flops": r.flops,
                 "seconds": r.seconds,
                 "max_node_flops_err": r.max_node_err("flops")}
                for r in self.readings
            ],
        }


def _ratio(measured: float, predicted: float) -> float | None:
    if predicted <= 0:
        return None
    return measured / predicted


def attribution_from_spans(spans) -> dict | None:
    """Post-hoc per-node / per-mode *time* attribution from a saved trace.

    ``node_rebuild`` spans carry node id and duration, ``mttkrp`` spans
    carry mode and duration — enough to reconstruct where wall time went
    even when the recorder was not live.  Work counts need the recorder
    (the spans do not repeat flop terms).  Returns None when the trace has
    no rebuild spans.
    """
    nodes: dict[int, dict] = {}
    modes: dict[int, dict] = {}
    for rec in spans:
        if rec.t1 is None:
            continue
        if rec.kind == "node_rebuild" and "node" in rec.attrs:
            row = nodes.setdefault(
                int(rec.attrs["node"]),
                {"seconds": 0.0, "rebuilds": 0,
                 "nnz": int(rec.attrs.get("nnz", 0))},
            )
            row["seconds"] += rec.duration
            row["rebuilds"] += 1
        elif rec.kind == "mttkrp" and "mode" in rec.attrs:
            row = modes.setdefault(
                int(rec.attrs["mode"]), {"seconds": 0.0, "mttkrps": 0}
            )
            row["seconds"] += rec.duration
            row["mttkrps"] += 1
    if not nodes:
        return None
    return {
        "nodes": [{"node": k, **v} for k, v in sorted(nodes.items())],
        "modes": [{"mode": k, **v} for k, v in sorted(modes.items())],
    }


def format_attribution(doc: dict) -> str:
    """Render an attribution snapshot as measured-vs-predicted tables."""
    from ..model.report import format_table

    parts = []
    node_rows = doc.get("nodes") or []
    if node_rows and "predicted_flops" in node_rows[0]:
        rows = [
            [r["node"],
             ",".join(map(str, r.get("modes", []))),
             "-" if r.get("rebuild_mode") is None else r["rebuild_mode"],
             int(r["predicted_flops"]), int(r["measured_flops"]),
             "-" if r["flops_ratio"] is None else round(r["flops_ratio"], 4),
             round(r["seconds"] * 1e3, 3), int(r["rebuilds"])]
            for r in node_rows
        ]
        parts.append(format_table(
            ["node", "modes", "built in", "pred flops", "meas flops",
             "ratio", "ms", "rebuilds"],
            rows,
            title=(f"per-node cost attribution "
                   f"(strategy {doc.get('strategy')}, "
                   f"{doc.get('n_iterations', 0)} iterations)"),
        ))
    elif node_rows:
        rows = [
            [r["node"], r.get("nnz", 0),
             round(r["seconds"] * 1e3, 3), int(r["rebuilds"])]
            for r in node_rows
        ]
        parts.append(format_table(
            ["node", "nnz", "ms", "rebuilds"], rows,
            title="per-node time attribution (from spans)",
        ))
    mode_rows = doc.get("modes") or []
    if mode_rows and "predicted_flops" in mode_rows[0]:
        rows = [
            [r["mode"], int(r["predicted_flops"]), int(r["measured_flops"]),
             "-" if r["flops_ratio"] is None else round(r["flops_ratio"], 4),
             round(r["seconds"] * 1e3, 3)]
            for r in mode_rows
        ]
        parts.append(format_table(
            ["mode", "pred flops", "meas flops", "ratio", "ms"], rows,
            title="per-mode cost attribution",
        ))
    elif mode_rows:
        rows = [
            [r["mode"], round(r["seconds"] * 1e3, 3), int(r["mttkrps"])]
            for r in mode_rows
        ]
        parts.append(format_table(
            ["mode", "ms", "mttkrps"], rows,
            title="per-mode time attribution (from spans)",
        ))
    return "\n\n".join(parts)


def _truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in {"1", "true", "yes", "on"}


_recorder = AttributionRecorder()
_enabled: bool = _truthy(os.environ.get("REPRO_ATTRIBUTION"))


def enabled() -> bool:
    """Whether attribution is on (the engines' call-site guard)."""
    return _enabled


def enable(*, clear: bool = False) -> None:
    """Turn attribution on; ``clear=True`` resets accumulated state."""
    global _enabled
    if clear:
        _recorder.reset()
    _enabled = True


def disable() -> None:
    """Turn attribution off (accumulated state is kept until reset)."""
    global _enabled
    _enabled = False


def get_recorder() -> AttributionRecorder:
    """The process-global recorder the engines feed."""
    return _recorder


@contextmanager
def recording(*, clear: bool = True):
    """Enable attribution for a block, restoring prior state after.

    Usage::

        with attribution.recording() as rec:
            result = cp_als(X, rank=16, strategy="bdt")
        print(rec.snapshot()["nodes"])
    """
    was = _enabled
    enable(clear=clear)
    try:
        yield _recorder
    finally:
        if not was:
            disable()
