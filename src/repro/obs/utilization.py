"""Per-worker utilization from ``pool_task`` spans: busy, wait, imbalance.

The multicore scaling story (E8, and the paper's own evaluation) lives or
dies on *load balance*: a thread pool where one worker's chunk takes 2x
the mean caps speedup regardless of worker count — the same per-mode
imbalance argument SPLATT-style schedulers and dimension-tree work make.
This module derives the three numbers that tell that story from the spans
:class:`repro.parallel.pool.WorkerPool` records (each ``pool_task`` span
carries ``worker`` — a small stable lane id — and ``queue_wait``, the
seconds between submit and start):

* **busy fraction** per worker — task seconds over the observed window;
* **queue wait** — scheduling latency, per worker and in aggregate;
* **load imbalance** — max/mean task seconds per *fan-out* (one
  ``WorkerPool.run`` call, identified by the tasks' shared parent span),
  aggregated per ALS iteration by walking each task's parent chain to its
  enclosing ``als_iteration`` span.

Consumed by ``repro report`` (text tables), the HTML dashboard (worker
lanes), the ``pool.imbalance`` gauge on ``/metrics``, and the E8 scaling
experiment's imbalance column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .trace import SpanRecord

__all__ = [
    "WorkerStats", "FanoutStats", "IterationUtilization",
    "UtilizationReport", "utilization_from_spans", "format_utilization",
]


@dataclass
class WorkerStats:
    """One pool lane's totals over the analyzed span window."""

    worker: int
    n_tasks: int
    busy_seconds: float
    #: busy over the pool-active window (first task start .. last task end).
    busy_fraction: float
    queue_wait_seconds: float
    queue_wait_max: float
    #: provenance of this lane's timings: ``measured`` (span timed where
    #: the work ran — threads, or process workers with in-worker capture),
    #: ``synthesized`` (reconstructed parent-side from a reported
    #: duration), ``mixed``, or ``unknown`` (spans predate the marker).
    source: str = "unknown"

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "n_tasks": self.n_tasks,
            "busy_seconds": self.busy_seconds,
            "busy_fraction": self.busy_fraction,
            "queue_wait_seconds": self.queue_wait_seconds,
            "queue_wait_max": self.queue_wait_max,
            "source": self.source,
        }


@dataclass
class FanoutStats:
    """One ``WorkerPool.run`` fan-out (tasks sharing a parent span)."""

    parent_id: int | None
    iteration: int | None
    n_tasks: int
    mean_seconds: float
    max_seconds: float

    @property
    def imbalance(self) -> float:
        """max/mean task seconds — 1.0 is perfect balance."""
        return self.max_seconds / self.mean_seconds if self.mean_seconds else 1.0


@dataclass
class IterationUtilization:
    """Pool behaviour inside one ``als_iteration`` span."""

    iteration: int
    wall_seconds: float
    n_tasks: int
    n_fanouts: int
    busy_seconds: float
    queue_wait_seconds: float
    #: task-seconds-weighted mean of the iteration's fan-out imbalances.
    imbalance: float
    worst_imbalance: float

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "wall_seconds": self.wall_seconds,
            "n_tasks": self.n_tasks,
            "n_fanouts": self.n_fanouts,
            "busy_seconds": self.busy_seconds,
            "queue_wait_seconds": self.queue_wait_seconds,
            "imbalance": self.imbalance,
            "worst_imbalance": self.worst_imbalance,
        }


@dataclass
class UtilizationReport:
    """Everything derived from one trace's ``pool_task`` spans."""

    workers: list[WorkerStats]
    iterations: list[IterationUtilization]
    fanouts: list[FanoutStats]
    #: first task start .. last task end, in tracer seconds.
    window: tuple[float, float]
    n_tasks: int = 0
    #: aggregate provenance of the task timings/queue waits feeding this
    #: report — ``measured`` / ``synthesized`` / ``mixed`` / ``unknown``.
    source: str = "unknown"
    extra: dict = field(default_factory=dict)

    @property
    def window_seconds(self) -> float:
        return max(self.window[1] - self.window[0], 0.0)

    @property
    def busy_seconds(self) -> float:
        return sum(w.busy_seconds for w in self.workers)

    @property
    def mean_imbalance(self) -> float:
        """Task-seconds-weighted mean imbalance over all fan-outs."""
        weights = [f.mean_seconds * f.n_tasks for f in self.fanouts]
        total = sum(weights)
        if total <= 0:
            return 1.0
        return sum(f.imbalance * w for f, w in
                   zip(self.fanouts, weights)) / total

    def to_dict(self) -> dict:
        return {
            "workers": [w.to_dict() for w in self.workers],
            "iterations": [i.to_dict() for i in self.iterations],
            "n_tasks": self.n_tasks,
            "n_fanouts": len(self.fanouts),
            "window_seconds": self.window_seconds,
            "busy_seconds": self.busy_seconds,
            "mean_imbalance": self.mean_imbalance,
            "source": self.source,
        }


def _aggregate_source(tasks: Sequence[SpanRecord]) -> str:
    """Fold per-span ``source`` attrs into one provenance label."""
    sources = {str(rec.attrs.get("source", "unknown")) for rec in tasks}
    if len(sources) == 1:
        return sources.pop()
    return "mixed"


def _enclosing_iteration(rec: SpanRecord,
                         by_id: dict[int, SpanRecord]) -> int | None:
    """Walk the parent chain to the nearest ``als_iteration`` span."""
    seen = 0
    cur: SpanRecord | None = rec
    while cur is not None and seen < 64:
        if cur.kind == "als_iteration":
            return cur.attrs.get("iteration")
        cur = by_id.get(cur.parent) if cur.parent is not None else None
        seen += 1
    return None


def utilization_from_spans(
    spans: Iterable[SpanRecord],
) -> UtilizationReport | None:
    """Derive the utilization report; None when no ``pool_task`` spans."""
    spans = list(spans)
    by_id = {rec.id: rec for rec in spans}
    tasks = [rec for rec in spans
             if rec.kind == "pool_task" and rec.t1 is not None]
    if not tasks:
        return None

    # -- per-worker lanes ----------------------------------------------
    by_worker: dict[int, list[SpanRecord]] = {}
    for rec in tasks:
        by_worker.setdefault(int(rec.attrs.get("worker", 0)), []).append(rec)
    window = (min(rec.t0 for rec in tasks), max(rec.t1 for rec in tasks))
    window_seconds = max(window[1] - window[0], 0.0)
    workers = []
    for worker in sorted(by_worker):
        lane = by_worker[worker]
        busy = sum(rec.duration for rec in lane)
        waits = [float(rec.attrs.get("queue_wait", 0.0)) for rec in lane]
        workers.append(WorkerStats(
            worker=worker,
            n_tasks=len(lane),
            busy_seconds=busy,
            busy_fraction=(busy / window_seconds if window_seconds > 0
                           else 1.0),
            queue_wait_seconds=sum(waits),
            queue_wait_max=max(waits),
            source=_aggregate_source(lane),
        ))

    # -- per-fan-out imbalance -----------------------------------------
    by_parent: dict[int | None, list[SpanRecord]] = {}
    for rec in tasks:
        by_parent.setdefault(rec.parent, []).append(rec)
    fanouts = []
    for parent_id, group in by_parent.items():
        durs = [rec.duration for rec in group]
        mean = sum(durs) / len(durs)
        parent = by_id.get(parent_id) if parent_id is not None else None
        fanouts.append(FanoutStats(
            parent_id=parent_id,
            iteration=(_enclosing_iteration(parent, by_id)
                       if parent is not None else None),
            n_tasks=len(group),
            mean_seconds=mean,
            max_seconds=max(durs),
        ))
    fanouts.sort(key=lambda f: (f.iteration is None, f.iteration or 0))

    # -- per-iteration aggregation -------------------------------------
    iter_spans = {
        rec.attrs.get("iteration"): rec
        for rec in spans if rec.kind == "als_iteration"
    }
    by_iteration: dict[int, list[FanoutStats]] = {}
    for f in fanouts:
        if f.iteration is not None:
            by_iteration.setdefault(int(f.iteration), []).append(f)
    iteration_task_waits: dict[int, float] = {}
    for rec in tasks:
        it = _enclosing_iteration(rec, by_id)
        if it is not None:
            iteration_task_waits[int(it)] = (
                iteration_task_waits.get(int(it), 0.0)
                + float(rec.attrs.get("queue_wait", 0.0))
            )
    iterations = []
    for it in sorted(by_iteration):
        group = by_iteration[it]
        weights = [f.mean_seconds * f.n_tasks for f in group]
        total = sum(weights)
        imbalance = (
            sum(f.imbalance * w for f, w in zip(group, weights)) / total
            if total > 0 else 1.0
        )
        iter_span = iter_spans.get(it)
        iterations.append(IterationUtilization(
            iteration=it,
            wall_seconds=(iter_span.duration if iter_span is not None
                          else 0.0),
            n_tasks=sum(f.n_tasks for f in group),
            n_fanouts=len(group),
            busy_seconds=sum(f.mean_seconds * f.n_tasks for f in group),
            queue_wait_seconds=iteration_task_waits.get(it, 0.0),
            imbalance=imbalance,
            worst_imbalance=max(f.imbalance for f in group),
        ))

    return UtilizationReport(
        workers=workers,
        iterations=iterations,
        fanouts=fanouts,
        window=window,
        n_tasks=len(tasks),
        source=_aggregate_source(tasks),
    )


def format_utilization(report: UtilizationReport) -> str:
    """Text rendering for ``repro report``: worker and iteration tables."""
    lines = [
        f"pool utilization: {report.n_tasks} tasks over "
        f"{report.window_seconds * 1e3:.2f} ms window, "
        f"mean imbalance {report.mean_imbalance:.3f} "
        f"(timings {report.source})",
        "",
        f"{'worker':>6s} {'tasks':>6s} {'busy ms':>9s} {'busy %':>7s} "
        f"{'wait ms':>8s} {'max wait':>9s}",
    ]
    for w in report.workers:
        lines.append(
            f"{w.worker:>6d} {w.n_tasks:>6d} {w.busy_seconds * 1e3:>9.2f} "
            f"{w.busy_fraction * 100:>6.1f}% "
            f"{w.queue_wait_seconds * 1e3:>8.2f} "
            f"{w.queue_wait_max * 1e3:>9.3f}"
        )
    if report.iterations:
        lines.append("")
        lines.append(
            f"{'iter':>5s} {'wall ms':>9s} {'tasks':>6s} {'busy ms':>9s} "
            f"{'wait ms':>8s} {'imbalance':>10s} {'worst':>7s}"
        )
        for it in report.iterations:
            lines.append(
                f"{it.iteration:>5d} {it.wall_seconds * 1e3:>9.2f} "
                f"{it.n_tasks:>6d} {it.busy_seconds * 1e3:>9.2f} "
                f"{it.queue_wait_seconds * 1e3:>8.2f} "
                f"{it.imbalance:>10.3f} {it.worst_imbalance:>7.3f}"
            )
    return "\n".join(lines)
