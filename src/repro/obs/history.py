"""Benchmark history store + noise-aware regression comparator.

Benchmark artifacts used to be write-once JSON: every run overwrote the
last, so the repo had no perf *trajectory* and no way to notice a
regression short of a human re-reading numbers.  This module adds both
halves of the measurement loop:

* :class:`BenchHistory` — an append-only JSONL store
  (``benchmarks/history/history.jsonl`` by convention).  Each line is one
  :class:`BenchEntry`: a bench id, a scalar value (lower is better —
  seconds per iteration, bytes, ...), a UTC timestamp, the git revision,
  a ``run_id`` grouping entries recorded by one process, and the kernel
  knobs in effect.  Entries are never rewritten, so the file *is* the
  perf trajectory.
* :func:`compare` — a noise-aware comparator.  Timings jitter, so a naive
  "current > last" check cries wolf; instead the baseline is the **min of
  the last k** matching history entries (the noise floor — min-of-k is
  the standard estimator for best-case wall time) and the current value
  must leave a configurable relative band around it before anything is
  flagged.  Entries only match when bench id *and* knob signature agree:
  a numba run is never compared against a numpy baseline.

``repro bench-diff`` exposes the comparator on the command line and CI
runs it as a soft-fail gate; ``repro dashboard`` renders the history as
sparklines.  See ``docs/benchmarking.md``.
"""

from __future__ import annotations

import json
import logging
import os
import uuid
from dataclasses import dataclass, field
from datetime import datetime, timezone

__all__ = [
    "HISTORY_SCHEMA", "BenchEntry", "BenchHistory", "DiffResult",
    "compare", "format_diff_table", "default_knobs",
]

#: schema tag on every history line (bump on layout change).
HISTORY_SCHEMA = "repro-bench-history/v1"

#: groups all entries recorded by this process into one run.
_RUN_ID = uuid.uuid4().hex[:12]


def default_knobs() -> dict:
    """The kernel knobs that make two measurements comparable."""
    return {
        "kernel_backend": os.environ.get("REPRO_KERNEL", "numpy"),
        "block_rows": os.environ.get("REPRO_KERNEL_BLOCK"),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE"),
    }


@dataclass
class BenchEntry:
    """One benchmark measurement (one JSONL line)."""

    bench_id: str
    #: the measured scalar; lower is better (seconds, bytes, ...).
    value: float
    unit: str = "seconds"
    timestamp: str = ""
    git_rev: str = "unknown"
    run_id: str = ""
    knobs: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def signature(self) -> tuple:
        """Comparability key: only same-signature entries are compared."""
        return (self.bench_id, self.unit,
                tuple(sorted((k, str(v)) for k, v in self.knobs.items())))

    def to_dict(self) -> dict:
        return {
            "schema": HISTORY_SCHEMA,
            "bench_id": self.bench_id,
            "value": self.value,
            "unit": self.unit,
            "timestamp": self.timestamp,
            "git_rev": self.git_rev,
            "run_id": self.run_id,
            "knobs": self.knobs,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BenchEntry":
        return cls(
            bench_id=str(d["bench_id"]),
            value=float(d["value"]),
            unit=str(d.get("unit", "seconds")),
            timestamp=str(d.get("timestamp", "")),
            git_rev=str(d.get("git_rev", "unknown")),
            run_id=str(d.get("run_id", "")),
            knobs=dict(d.get("knobs", {})),
            extra=dict(d.get("extra", {})),
        )


def make_entry(bench_id: str, value: float, *, unit: str = "seconds",
               **extra) -> BenchEntry:
    """A fully-stamped entry: UTC timestamp, git rev, run id, knobs."""
    from .buildinfo import git_revision

    return BenchEntry(
        bench_id=bench_id,
        value=float(value),
        unit=unit,
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        git_rev=git_revision(),
        run_id=_RUN_ID,
        knobs=default_knobs(),
        extra=extra,
    )


class BenchHistory:
    """Append-only JSONL store of :class:`BenchEntry` lines."""

    def __init__(self, path: str):
        self.path = str(path)
        #: malformed lines skipped by the last :meth:`entries` call (e.g.
        #: the truncated final line of a killed run).
        self.n_skipped = 0

    def append(self, entry: BenchEntry) -> BenchEntry:
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(entry.to_dict()) + "\n")
        return entry

    def record(self, bench_id: str, value: float, *,
               unit: str = "seconds", **extra) -> BenchEntry:
        """Stamp and append a measurement in one call."""
        return self.append(make_entry(bench_id, value, unit=unit, **extra))

    def entries(self) -> list[BenchEntry]:
        """All stored entries in file (= chronological append) order.

        Malformed lines — most commonly the truncated last line of a run
        that was killed mid-append — are skipped with a logged warning
        rather than poisoning every consumer of the whole file; the skip
        count is kept on :attr:`n_skipped`.
        """
        self.n_skipped = 0
        if not os.path.exists(self.path):
            return []
        out: list[BenchEntry] = []
        with open(self.path) as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(BenchEntry.from_dict(json.loads(line)))
                except (ValueError, KeyError, TypeError) as exc:
                    self.n_skipped += 1
                    logging.getLogger("repro.obs.history").warning(
                        "skipping malformed history line %s:%d (%s)",
                        self.path, lineno, exc,
                    )
        return out

    def bench_ids(self) -> list[str]:
        seen: dict[str, None] = {}
        for e in self.entries():
            seen.setdefault(e.bench_id, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.entries())


@dataclass
class DiffResult:
    """Verdict for one bench id: current run versus the stored baseline."""

    bench_id: str
    #: "ok" | "regression" | "improvement" | "no-baseline"
    status: str
    current: float | None
    baseline: float | None
    #: current / baseline (None without a baseline).
    ratio: float | None
    rel_band: float
    n_baseline: int
    unit: str = "seconds"

    @property
    def ok(self) -> bool:
        return self.status != "regression"

    def to_dict(self) -> dict:
        return {
            "bench_id": self.bench_id,
            "status": self.status,
            "current": self.current,
            "baseline": self.baseline,
            "ratio": self.ratio,
            "rel_band": self.rel_band,
            "n_baseline": self.n_baseline,
            "unit": self.unit,
        }


def compare(current: list[BenchEntry], history: list[BenchEntry], *,
            rel_band: float = 0.10, k: int = 5) -> list[DiffResult]:
    """Compare a run's entries against stored history, noise-aware.

    Per bench id (and knob signature): the current value is the **min**
    over the run's samples, the baseline the **min of the last k**
    matching history entries.  ``regression`` when
    ``current > baseline * (1 + rel_band)``, ``improvement`` when
    ``current < baseline * (1 - rel_band)``, ``ok`` inside the band,
    ``no-baseline`` when history has nothing comparable (first run of a
    new bench — never a failure).
    """
    if rel_band < 0:
        raise ValueError(f"rel_band must be >= 0, got {rel_band}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    current_run_ids = {e.run_id for e in current}
    by_sig: dict[tuple, list[BenchEntry]] = {}
    for e in history:
        # A pre-merged history file may already contain this run's lines;
        # they must not serve as their own baseline.
        if e.run_id and e.run_id in current_run_ids:
            continue
        by_sig.setdefault(e.signature(), []).append(e)

    results: list[DiffResult] = []
    seen: set[tuple] = set()
    for e in current:
        sig = e.signature()
        if sig in seen:
            continue
        seen.add(sig)
        cur = min(c.value for c in current if c.signature() == sig)
        base_entries = by_sig.get(sig, [])[-k:]
        if not base_entries:
            results.append(DiffResult(
                bench_id=e.bench_id, status="no-baseline", current=cur,
                baseline=None, ratio=None, rel_band=rel_band,
                n_baseline=0, unit=e.unit,
            ))
            continue
        base = min(b.value for b in base_entries)
        ratio = cur / base if base > 0 else float("inf")
        if cur > base * (1.0 + rel_band):
            status = "regression"
        elif cur < base * (1.0 - rel_band):
            status = "improvement"
        else:
            status = "ok"
        results.append(DiffResult(
            bench_id=e.bench_id, status=status, current=cur, baseline=base,
            ratio=ratio, rel_band=rel_band, n_baseline=len(base_entries),
            unit=e.unit,
        ))
    return sorted(results, key=lambda r: r.bench_id)


def format_diff_table(results: list[DiffResult]) -> str:
    """Human-readable comparator report for ``repro bench-diff``."""
    lines = [
        f"{'bench':<34s} {'current':>12s} {'baseline':>12s} "
        f"{'ratio':>7s} {'status':<12s}"
    ]
    for r in results:
        cur = f"{r.current:.6g}" if r.current is not None else "-"
        base = f"{r.baseline:.6g}" if r.baseline is not None else "-"
        ratio = f"{r.ratio:.3f}" if r.ratio is not None else "-"
        flag = {"regression": " <-- REGRESSION",
                "improvement": " (improved)"}.get(r.status, "")
        lines.append(
            f"{r.bench_id:<34s} {cur:>12s} {base:>12s} {ratio:>7s} "
            f"{r.status:<12s}{flag}"
        )
    n_reg = sum(1 for r in results if r.status == "regression")
    lines.append(
        f"\n{len(results)} benches compared, {n_reg} regression(s) "
        f"(band ±{results[0].rel_band:.0%})" if results else "(no entries)"
    )
    return "\n".join(lines)
