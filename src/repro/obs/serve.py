"""OpenMetrics/Prometheus endpoint over the live metrics registry.

Production systems are *scraped*, not inspected after exit.  This module
turns the process-wide observability state — span histograms from
:mod:`repro.obs.metrics`, live memoized-value bytes from
:mod:`repro.obs.memory`, the current-run fold from
:mod:`repro.obs.events` — into a tiny stdlib :mod:`http.server` exporter:

* ``/metrics`` — OpenMetrics text (Prometheus-compatible): every counter
  and gauge in the registry, per-kind span latency histograms (the log2
  buckets rendered as cumulative ``le`` buckets), the memory tracker's
  live bytes, and the current-run gauges (iteration, fit, ETA);
* ``/healthz`` — liveness probe, always ``ok``;
* ``/runz`` — JSON snapshot of the current CP-ALS run (iteration, fit,
  trailing rate, ETA) plus the most recent events and, under ``runs``,
  every run context the :data:`~repro.obs.runctx.run_registry` knows
  about (concurrent scoped runs each appear with their own ``run_id``).

Scoped run contexts (see :mod:`repro.obs.runctx`) also show up on
``/metrics``: their private registries render as ``run_id``-labelled
samples grouped into the same metric families as the process-global
(unlabelled) series.

Two ways to use it: **live**, started by ``repro serve --port P <cmd>``
or ``python -m repro.experiments --serve`` next to a running
decomposition; or **replay**, where :func:`load_trace_dir` reconstructs
registry/event/run state from a ``repro trace`` artifact directory so a
finished run can still be scraped (CI smoke-tests the endpoint this way).

No dependencies beyond the standard library; the server threads only ever
*read* snapshots, so scraping never blocks the numeric work.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from . import events as _events
from . import memory as _memory
from .metrics import registry as _registry
from .runctx import run_registry

__all__ = [
    "OPENMETRICS_CONTENT_TYPE", "render_openmetrics",
    "validate_openmetrics", "ObsServer", "load_trace_dir",
]

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_BUCKET_KEY = re.compile(r"^<=2\^(-?\d+)s$")
#: one sample line: name{labels} value  (labels optional, value a float).
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+( \d+(\.\d+)?)?$"
)


def _metric_name(name: str) -> str:
    """Registry name -> OpenMetrics name: ``mem.peak_bytes`` ->
    ``repro_mem_peak_bytes``."""
    return "repro_" + _NAME_OK.sub("_", name)


def _fmt(value) -> str:
    """Sample-value rendering: integers stay integral, floats use repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(value, "NaN")
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Families:
    """Order-preserving family accumulator: one TYPE line per family.

    OpenMetrics requires every sample of a family grouped under a single
    ``# TYPE`` declaration — which is exactly what breaks if the global
    registry and N per-run registries each render their own copy of, say,
    ``repro_pool_imbalance``.  Samples are collected per family here and
    emitted grouped, so ``run_id``-labelled samples ride under the same
    declaration as the unlabelled global ones.
    """

    def __init__(self):
        self._fams: dict[str, list] = {}
        self._order: list[str] = []

    def sample(self, name: str, mtype: str, line: str,
               help_: str | None = None) -> None:
        fam = self._fams.get(name)
        if fam is None:
            fam = self._fams[name] = [mtype, help_, []]
            self._order.append(name)
        fam[2].append(line)

    def render(self) -> str:
        out: list[str] = []
        for name in self._order:
            mtype, help_, samples = self._fams[name]
            out.append(f"# TYPE {name} {mtype}")
            if help_:
                out.append(f"# HELP {name} {help_}")
            out.extend(samples)
        out.append("# EOF")
        return "\n".join(out) + "\n"


def _label_str(extra: dict | None, **pairs) -> str:
    """``{k="v",...}`` rendering of merged label pairs ('' when none)."""
    merged = dict(pairs)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in merged.items()
    )
    return "{" + inner + "}"


def _render_span_histograms(spans: dict, fam: _Families,
                            labels: dict | None = None) -> None:
    """SpanStats snapshots -> the labelled OpenMetrics histogram family.

    ``log2_buckets`` keys are ``<=2^{exp}s`` counts per bucket (the last
    exponent is the overflow bucket); OpenMetrics wants *cumulative*
    counts with explicit ``le`` upper bounds ending at ``+Inf``.
    """
    name = "repro_span_duration_seconds"
    help_ = "wall time per span kind"
    for kind in sorted(spans or {}):
        stats = spans[kind]
        buckets = []
        for key, n in stats.get("log2_buckets", {}).items():
            m = _BUCKET_KEY.match(key)
            if m:
                buckets.append((int(m.group(1)), int(n)))
        buckets.sort()
        cum = 0
        for exp, n in buckets:
            cum += n
            label = _label_str(labels, kind=kind, le=_fmt(2.0 ** exp))
            fam.sample(name, "histogram", f"{name}_bucket{label} {cum}",
                       help_)
        count = int(stats.get("count", cum))
        label = _label_str(labels, kind=kind, le="+Inf")
        fam.sample(name, "histogram", f"{name}_bucket{label} {count}", help_)
        label = _label_str(labels, kind=kind)
        fam.sample(name, "histogram", f"{name}_count{label} {count}", help_)
        fam.sample(
            name, "histogram",
            f"{name}_sum{label} "
            f"{_fmt(float(stats.get('total_seconds', 0.0)))}",
            help_,
        )


def _render_registry(fam: _Families, snapshot: dict, run: dict | None,
                     live_bytes: int | None,
                     labels: dict | None = None) -> None:
    """One registry snapshot (+ run fold + live bytes) into the families."""
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(f"counter.{name}")
        fam.sample(metric, "counter",
                   f"{metric}_total{_label_str(labels)} {_fmt(value)}")
    for name, value in sorted(snapshot.get("events", {}).items()):
        metric = _metric_name(name)
        fam.sample(metric, "counter",
                   f"{metric}_total{_label_str(labels)} {_fmt(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(name)
        fam.sample(metric, "gauge",
                   f"{metric}{_label_str(labels)} {_fmt(value)}")

    if live_bytes is not None:
        fam.sample(
            "repro_memtracker_live_bytes", "gauge",
            f"repro_memtracker_live_bytes{_label_str(labels)} "
            f"{_fmt(int(live_bytes))}",
            "live memoized-value bytes",
        )

    if run is not None:
        run_gauges = {
            "repro_run_active": 1 if run.get("active") else 0,
            "repro_run_iteration": run.get("iteration"),
            "repro_run_fit": run.get("fit"),
            "repro_run_seconds_per_iteration":
                run.get("seconds_per_iteration"),
            "repro_run_eta_seconds": run.get("eta_seconds"),
        }
        for metric, value in run_gauges.items():
            if value is None:
                continue
            fam.sample(metric, "gauge",
                       f"{metric}{_label_str(labels)} {_fmt(value)}")

    _render_span_histograms(snapshot.get("spans", {}), fam, labels)


def render_openmetrics(snapshot: dict | None = None,
                       run: dict | None = None,
                       live_bytes: int | None = None,
                       include_runs: bool = True) -> str:
    """Render the registry (+ run state + mem tracker) as OpenMetrics text.

    All arguments default to the live process-global state; pass explicit
    snapshots to render saved artifacts.  With ``include_runs=True``
    (default) every *scoped* run context in the
    :data:`~repro.obs.runctx.run_registry` additionally contributes its
    own registry/run-state samples labelled ``run_id="..."`` — grouped
    into the same metric families, so two concurrent decompositions scrape
    as distinct series instead of interleaving.
    """
    if snapshot is None:
        snapshot = _registry.snapshot()
    if run is None:
        run = _events.get_log().run.to_dict()
    if live_bytes is None:
        live_bytes = _memory.get_tracker().live_bytes

    fam = _Families()
    _render_registry(fam, snapshot, run, live_bytes)
    if include_runs:
        for ctx in run_registry.runs():
            if not ctx.owns_telemetry:
                continue
            _render_registry(
                fam,
                ctx.metrics.snapshot(),
                ctx.events.run.to_dict() if ctx.events is not None else None,
                ctx.memory.live_bytes if ctx.memory is not None else None,
                labels={"run_id": ctx.run_id},
            )
    return fam.render()


def validate_openmetrics(text: str) -> list[str]:
    """Format errors (empty = valid) for an OpenMetrics exposition.

    Checks the structural rules a scraper relies on: a final ``# EOF``,
    a ``# TYPE`` declaration (exactly one) preceding every sample of a
    family, sample lines that parse, counter samples using the ``_total``
    suffix, and histograms ending their bucket series at ``le="+Inf"``.
    """
    errors: list[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        errors.append("missing terminal '# EOF' line")
    types: dict[str, str] = {}
    histogram_inf: dict[str, bool] = {}
    for i, line in enumerate(lines):
        where = f"line {i + 1}"
        if not line:
            errors.append(f"{where}: empty line")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"{where}: malformed TYPE line")
                    continue
                name, mtype = parts[2], parts[3]
                if name in types:
                    errors.append(f"{where}: duplicate TYPE for {name}")
                types[name] = mtype
                if mtype == "histogram":
                    histogram_inf[name] = False
            continue
        if not _SAMPLE_LINE.match(line):
            errors.append(f"{where}: unparseable sample: {line!r}")
            continue
        sample = line.split("{", 1)[0].split(" ", 1)[0]
        family = sample
        for suffix in ("_total", "_bucket", "_count", "_sum", "_created"):
            if sample.endswith(suffix) and sample[: -len(suffix)] in types:
                family = sample[: -len(suffix)]
                break
        mtype = types.get(family)
        if mtype is None:
            errors.append(f"{where}: sample {sample!r} has no TYPE")
            continue
        if mtype == "counter" and not sample.endswith(
                ("_total", "_created")):
            errors.append(f"{where}: counter sample {sample!r} "
                          "missing _total suffix")
        if mtype == "histogram" and sample.endswith("_bucket") \
                and 'le="+Inf"' in line:
            histogram_inf[family] = True
    for name, seen in histogram_inf.items():
        if not seen:
            errors.append(f"histogram {name} has no le=\"+Inf\" bucket")
    return errors


class _Handler(BaseHTTPRequestHandler):
    """Routes: /metrics (OpenMetrics), /healthz, /runz (JSON)."""

    server_version = "repro-obs/1"

    def do_GET(self):  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_openmetrics().encode()
            self._reply(200, OPENMETRICS_CONTENT_TYPE, body)
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        elif path == "/runz":
            log = _events.get_log()
            doc = {
                "run": log.run.to_dict(),
                "events": {
                    "buffered": len(log),
                    "dropped": log.n_dropped,
                    "sink": log.sink_path,
                },
                "last_events": log.tail(20),
                "runs": run_registry.describe(),
            }
            body = (json.dumps(doc, indent=2) + "\n").encode()
            self._reply(200, "application/json; charset=utf-8", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, status: int, ctype: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # quiet by default
        import logging

        logging.getLogger("repro.obs.serve").debug(
            "%s %s", self.address_string(), fmt % args
        )


class ObsServer:
    """Threaded HTTP exporter; binds at construction (raising ``OSError``
    immediately on an occupied port), serves from a daemon thread."""

    def __init__(self, port: int = 9464, host: str = "127.0.0.1"):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-obs-serve", daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (Ctrl-C to stop)."""
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self._httpd.server_close()

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def load_trace_dir(trace_dir: str) -> dict:
    """Reconstruct live state from a ``repro trace`` artifact directory.

    Replays ``trace.jsonl`` spans into the registry's span histograms (and
    derives the pool utilization gauges), restores ``metrics.json`` gauges
    / counters / event counts, and feeds ``events.jsonl`` back into the
    event log so ``/runz`` reflects the recorded run.  Artifact reading
    goes through :class:`~repro.obs.artifacts.TraceArtifacts`, so missing
    files are simply skipped and malformed ones warn instead of aborting
    the replay.  Returns a summary of what was loaded; raises
    ``FileNotFoundError`` when the directory has none of the expected
    artifacts.
    """
    import os

    from .artifacts import TraceArtifacts
    from .utilization import utilization_from_spans

    loaded = {"spans": 0, "events": 0, "gauges": 0, "counters": 0}
    found = False
    arts = TraceArtifacts(trace_dir)

    spans = arts.spans()
    if spans is not None:
        found = True
        for rec in spans:
            if rec.t1 is not None:
                _registry.observe_span(rec.kind, rec.duration)
        loaded["spans"] = len(spans)
        util = utilization_from_spans(spans)
        if util is not None:
            _registry.set_gauge("pool.imbalance", util.mean_imbalance)
            _registry.set_gauge("pool.busy_seconds", util.busy_seconds)
            _registry.set_gauge("pool.n_workers", len(util.workers))

    metrics_doc = arts.metrics()
    if metrics_doc is not None:
        found = True
        snap = metrics_doc.get("metrics", {})
        for name, value in snap.get("gauges", {}).items():
            _registry.set_gauge(name, value)
            loaded["gauges"] += 1
        for name, value in snap.get("events", {}).items():
            _registry.incr(name, int(value))
        counters = _registry.counters
        for name, value in snap.get("counters", {}).items():
            if hasattr(counters, name) and name != "extra":
                setattr(counters, name, value)
            else:
                counters.extra[name] = value
            loaded["counters"] += 1

    events = arts.events()
    if events is not None:
        found = True
        log = _events.get_log()
        loaded["events"] = log.replay(events)

    # Per-mode prediction-error gauges from a recorded attribution doc, so
    # a replayed /metrics carries the same attr.* series as a live run.
    attr_doc = arts.attribution()
    if attr_doc is not None:
        found = True
        max_err = None
        for row in attr_doc.get("modes", []):
            ratio = row.get("flops_ratio")
            if ratio is not None:
                _registry.set_gauge(
                    f"attr.mode{row['mode']}.flops_ratio", ratio
                )
                loaded["gauges"] += 1
        for row in attr_doc.get("nodes", []):
            ratio = row.get("flops_ratio")
            if ratio is not None:
                err = abs(ratio - 1.0)
                max_err = err if max_err is None else max(max_err, err)
        if max_err is not None:
            _registry.set_gauge("attr.max_node_flops_err", max_err)
            loaded["gauges"] += 1

    # Roofline gauges: the trace dir snapshots the calibration it ran
    # under (machine.json), so a replayed /metrics serves the same
    # repro_roofline_* families as the original host — ceilings plus the
    # achieved fractions recomputed from the replayed spans.
    machine_path = os.path.join(trace_dir, "machine.json")
    if os.path.exists(machine_path):
        from .roofline import publish_roofline_gauges, report_from_trace_dir

        report = report_from_trace_dir(trace_dir, load=False)
        if report.calibrated:
            found = True
            publish_roofline_gauges(report.roofline, report.configs)
            loaded["gauges"] += 4 + len(report.roofline.bandwidth_points)

    # Sampling-profiler gauges from profile.json: overall sample stats
    # plus per-span-kind self seconds for the hottest kinds, so a
    # replayed /metrics answers "where did the time go" without the
    # artifact in hand.
    profile_doc = arts.profile()
    if profile_doc is not None:
        found = True
        _registry.set_gauge("profile.n_samples",
                            int(profile_doc.get("n_samples", 0)))
        _registry.set_gauge("profile.hz",
                            float(profile_doc.get("hz", 0.0)))
        _registry.set_gauge("profile.sampled_seconds",
                            float(profile_doc.get("sampled_seconds", 0.0)))
        loaded["gauges"] += 3
        for row in profile_doc.get("spans", [])[:8]:
            _registry.set_gauge(
                f"profile.span.{row['kind']}.self_seconds",
                float(row.get("self_seconds", 0.0)),
            )
            loaded["gauges"] += 1

    # Numerical-health gauges from health.json: the final iteration's
    # conditioning/congruence state plus run totals, so a replayed
    # /metrics carries the same repro_health_* families as a live run.
    health_doc = arts.health()
    if health_doc is not None:
        from .health import TRAJECTORY_CODES

        found = True
        readings = health_doc.get("readings", [])
        if readings:
            last = readings[-1]
            conds = [c for c in last.get("condition_numbers", [])
                     if c is not None]
            if conds:
                _registry.set_gauge("health.max_condition_number",
                                    max(conds))
                loaded["gauges"] += 1
            deltas = [d for d in last.get("factor_deltas", [])
                      if d is not None]
            if deltas:
                _registry.set_gauge("health.max_factor_delta", max(deltas))
                loaded["gauges"] += 1
            if last.get("congruence") is not None:
                _registry.set_gauge("health.congruence",
                                    float(last["congruence"]))
                loaded["gauges"] += 1
            code = TRAJECTORY_CODES.get(last.get("trajectory"))
            if code is not None:
                _registry.set_gauge("health.trajectory_code", code)
                loaded["gauges"] += 1
        _registry.set_gauge(
            "health.total_pinv_fallbacks",
            int(health_doc.get("total_pinv_fallbacks", 0)))
        _registry.set_gauge(
            "health.total_truncated_eigenvalues",
            int(health_doc.get("total_truncated_eigenvalues", 0)))
        loaded["gauges"] += 2

    if not found:
        raise FileNotFoundError(
            f"no trace artifacts (trace.jsonl / metrics.json / "
            f"events.jsonl) in {trace_dir!r}"
        )
    return loaded
