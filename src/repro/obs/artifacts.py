"""Shared loader for ``repro trace`` artifact directories.

Three consumers read trace directories — ``repro report``, ``repro
dashboard``, and ``repro serve``'s replay mode — and before this module
each had its own ad-hoc ``os.path.exists`` + ``json.load`` block with
its own (inconsistent) failure behavior.  :class:`TraceArtifacts` gives
them one policy, the same one ``repro bench-diff`` applies to history
files: a **missing** artifact is simply absent (``None``, no noise — old
trace dirs predate newer artifacts by design), while a **malformed** one
is skipped with a warning naming the file and the parse error, never an
exception.  Accessors are lazy and cached, so a consumer that only wants
``metrics.json`` never touches the other files.
"""

from __future__ import annotations

import json
import logging
import os

__all__ = ["TraceArtifacts"]

_log = logging.getLogger("repro.obs.artifacts")

#: artifact filename per accessor (also the sniff list for ``is_empty``).
FILENAMES = {
    "spans": "trace.jsonl",
    "events": "events.jsonl",
    "metrics": "metrics.json",
    "memory": "memory.json",
    "attribution": "attribution.json",
    "profile": "profile.json",
    "machine": "machine.json",
    "health": "health.json",
}

_MISSING = object()


class TraceArtifacts:
    """Lazy, warn-don't-raise view over one trace directory.

    Every accessor returns the parsed artifact or ``None`` — missing
    files silently (a pre-profiler trace dir is a valid trace dir),
    malformed files with a logged warning and an entry in
    :attr:`skipped` so callers can surface what was dropped.
    """

    def __init__(self, trace_dir: str):
        self.trace_dir = trace_dir
        #: (filename, reason) for every artifact skipped as malformed.
        self.skipped: list[tuple[str, str]] = []
        self._cache: dict[str, object] = {}

    # -- plumbing ------------------------------------------------------
    def path(self, name: str) -> str:
        return os.path.join(self.trace_dir, FILENAMES[name])

    def exists(self, name: str) -> bool:
        return os.path.exists(self.path(name))

    @property
    def is_empty(self) -> bool:
        """True when none of the known artifacts exist."""
        return not any(self.exists(name) for name in FILENAMES)

    def _skip(self, name: str, exc: Exception):
        self.skipped.append((FILENAMES[name], str(exc)))
        _log.warning("skipping malformed %s in %s: %s",
                     FILENAMES[name], self.trace_dir, exc)
        return None

    def _load(self, name: str, loader):
        value = self._cache.get(name, _MISSING)
        if value is _MISSING:
            if not self.exists(name):
                value = None
            else:
                try:
                    value = loader(self.path(name))
                except (OSError, ValueError, KeyError, TypeError) as exc:
                    value = self._skip(name, exc)
            self._cache[name] = value
        return value

    @staticmethod
    def _load_json(path: str):
        with open(path) as fh:
            return json.load(fh)

    # -- accessors -----------------------------------------------------
    def spans(self):
        """``trace.jsonl`` as :class:`~repro.obs.trace.SpanRecord` list."""
        from .export import read_jsonl

        return self._load("spans", read_jsonl)

    def events(self) -> list[dict] | None:
        """``events.jsonl`` as raw event dicts."""
        from .events import read_events

        return self._load("events", read_events)

    def metrics(self) -> dict | None:
        """The full ``metrics.json`` document (build + metrics snapshot)."""
        return self._load("metrics", self._load_json)

    def memory_readings(self) -> list[dict] | None:
        """The readings list from ``memory.json``."""
        from .dashboard import load_memory_json

        return self._load("memory", load_memory_json)

    def attribution(self) -> dict | None:
        """The ``repro-attr/v1`` document, if the run recorded one."""
        return self._load("attribution", self._load_json)

    def profile(self) -> dict | None:
        """The ``repro-profile/v1`` document, if the run was profiled.

        A present-but-invalid profile (wrong schema tag) is treated as
        malformed: skipped with a warning, like any other parse failure.
        """
        doc = self._load("profile", self._load_json)
        if doc is not None:
            from .profiler import PROFILE_SCHEMA

            schema = doc.get("schema") if isinstance(doc, dict) else None
            if schema != PROFILE_SCHEMA:
                self._cache["profile"] = None
                return self._skip(
                    "profile",
                    ValueError(f"schema {schema!r} != {PROFILE_SCHEMA!r}"),
                )
        return doc

    def machine(self) -> dict | None:
        """The ``repro-machine/v1`` calibration snapshot."""
        return self._load("machine", self._load_json)

    def health(self) -> dict | None:
        """The ``repro-health/v1`` document, if the run recorded one.

        Pre-health trace dirs simply lack the file (``None``); a
        present-but-wrong schema tag is treated as malformed and skipped
        with a warning, like any other parse failure.
        """
        doc = self._load("health", self._load_json)
        if doc is not None:
            from .health import HEALTH_SCHEMA

            schema = doc.get("schema") if isinstance(doc, dict) else None
            if schema != HEALTH_SCHEMA:
                self._cache["health"] = None
                return self._skip(
                    "health",
                    ValueError(f"schema {schema!r} != {HEALTH_SCHEMA!r}"),
                )
        return doc
