"""Trace exporters: Chrome ``trace_event`` JSON, JSONL, and a text tree.

The Chrome format loads directly in ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev): each span becomes one complete (``"ph": "X"``)
event with microsecond timestamps, and per-thread metadata events name the
engine thread and pool workers.  :func:`validate_chrome_trace` checks a
document against the exporter's own schema — the CI trace job and the
round-trip tests both use it, so a malformed export fails loudly rather
than silently producing a trace the viewer rejects.

JSONL (:func:`write_jsonl` / :func:`read_jsonl`) is the lossless format:
one span per line, exactly :meth:`SpanRecord.to_dict`, suitable for
``repro report`` and offline analysis.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from .trace import SpanRecord, Tracer, get_tracer

__all__ = [
    "to_chrome_trace", "write_chrome_trace", "write_jsonl", "read_jsonl",
    "tree_summary", "kind_table", "validate_chrome_trace",
    "validate_span_tree",
]

#: schema tag stamped into exported Chrome traces (bump on layout change).
CHROME_SCHEMA = "repro-trace/v1"


def _span_name(rec: SpanRecord) -> str:
    """Display name: the kind plus its most distinguishing attribute."""
    for key in ("mode", "node", "iteration", "index"):
        if key in rec.attrs:
            return f"{rec.kind}[{key}={rec.attrs[key]}]"
    return rec.kind


def to_chrome_trace(
    spans: Sequence[SpanRecord] | None = None,
    tracer: Tracer | None = None,
    mem_samples: Sequence | None = None,
) -> dict:
    """Spans as a Chrome ``trace_event`` JSON object (dict, not string).

    ``mem_samples`` (e.g. ``repro.obs.memory.get_tracker().samples``) adds
    a counter track (``"ph": "C"``) of total live memoized-value bytes, so
    the memory profile renders as a graph under the span timeline in
    ``chrome://tracing`` / Perfetto.
    """
    tracer = tracer or get_tracer()
    if spans is None:
        spans = tracer.finished()
    pid = os.getpid()
    # Small stable per-thread display ids: engine thread first-seen = 1.
    tid_map: dict[int, int] = {}
    events: list[dict] = []
    for rec in spans:
        tid = tid_map.setdefault(rec.tid, len(tid_map) + 1)
        events.append({
            "name": _span_name(rec),
            "cat": rec.kind,
            "ph": "X",
            "ts": rec.t0 * 1e6,
            "dur": rec.duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {"kind": rec.kind, "id": rec.id,
                     "parent": rec.parent, **rec.attrs},
        })
    for os_tid, tid in tid_map.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "ts": 0.0,
            "pid": pid,
            "tid": tid,
            "args": {"name": "engine" if tid == 1 else f"worker-{tid - 1}"},
        })
    for sample in mem_samples or ():
        events.append({
            "name": "memoized_value_bytes",
            "ph": "C",
            "ts": sample.t * 1e6,
            "pid": pid,
            "tid": 0,
            "args": {"live_bytes": sample.live_bytes},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": CHROME_SCHEMA,
            "wall_epoch": tracer.wall_epoch,
            "span_count": len(spans),
        },
    }


def write_chrome_trace(path: str, spans: Sequence[SpanRecord] | None = None,
                       tracer: Tracer | None = None,
                       mem_samples: Sequence | None = None) -> dict:
    """Write the Chrome trace JSON to ``path``; returns the document."""
    doc = to_chrome_trace(spans, tracer, mem_samples)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def validate_chrome_trace(doc: object) -> list[str]:
    """Errors (empty = valid) for a Chrome trace produced by this exporter.

    Checks the structural contract the viewers rely on — required keys,
    event phases, non-negative microsecond times — plus this exporter's own
    invariants (schema tag, ``args.kind`` on every span event).
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("traceEvents must be a list")
        events = []
    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != CHROME_SCHEMA:
        errors.append(f"otherData.schema must be {CHROME_SCHEMA!r}")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                errors.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "M", "i", "C"):
            errors.append(f"{where}: unknown phase {ph!r}")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            errors.append(f"{where}: counter event needs args")
        for key in ("ts", "dur"):
            if key in ev and (
                not isinstance(ev[key], (int, float)) or ev[key] < 0
            ):
                errors.append(f"{where}: {key} must be a number >= 0")
        if ph == "X":
            if "dur" not in ev:
                errors.append(f"{where}: complete event missing 'dur'")
            args = ev.get("args")
            if not isinstance(args, dict) or "kind" not in args:
                errors.append(f"{where}: span event needs args.kind")
    return errors


def validate_span_tree(spans: Sequence[SpanRecord] | None = None, *,
                       epsilon: float = 1e-3) -> list[str]:
    """Structural errors (empty = valid) for a batch of span records.

    The self-check the merged (cross-process) trace must pass: unique span
    ids, parent links that resolve within the batch, ``t0 <= t1`` on every
    closed span, and children contained in their parent's window.  The
    containment check allows ``epsilon`` seconds of slack — worker spans
    are aligned onto the parent clock through two wall-clock epochs, so
    sub-millisecond skew between ``time.time`` and ``perf_counter`` deltas
    is expected; structural breakage (a child outside its parent by more
    than the skew budget) is not.
    """
    if spans is None:
        spans = get_tracer().finished()
    errors: list[str] = []
    by_id: dict[int, SpanRecord] = {}
    for rec in spans:
        if rec.id in by_id:
            errors.append(f"span id {rec.id} duplicated")
        by_id[rec.id] = rec
    for rec in spans:
        where = f"span {rec.id} ({rec.kind})"
        if rec.t1 is not None and rec.t1 < rec.t0:
            errors.append(f"{where}: t1 {rec.t1} < t0 {rec.t0}")
        if rec.parent is None:
            continue
        parent = by_id.get(rec.parent)
        if parent is None:
            errors.append(f"{where}: parent {rec.parent} not in batch")
            continue
        if parent.t0 - rec.t0 > epsilon:
            errors.append(
                f"{where}: starts {parent.t0 - rec.t0:.6f}s before "
                f"parent {parent.id} ({parent.kind})"
            )
        if (rec.t1 is not None and parent.t1 is not None
                and rec.t1 - parent.t1 > epsilon):
            errors.append(
                f"{where}: ends {rec.t1 - parent.t1:.6f}s after "
                f"parent {parent.id} ({parent.kind})"
            )
    return errors


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def write_jsonl(path: str, spans: Sequence[SpanRecord] | None = None) -> int:
    """One span per line (lossless); returns the number written."""
    if spans is None:
        spans = get_tracer().finished()
    with open(path, "w") as fh:
        for rec in spans:
            fh.write(json.dumps(rec.to_dict()) + "\n")
    return len(spans)


def read_jsonl(path: str) -> list[SpanRecord]:
    """Parse a JSONL trace back into :class:`SpanRecord` objects."""
    spans: list[SpanRecord] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(SpanRecord.from_dict(json.loads(line)))
    return spans


# ---------------------------------------------------------------------------
# human-readable summaries
# ---------------------------------------------------------------------------

def tree_summary(spans: Iterable[SpanRecord] | None = None, *,
                 max_children: int = 12) -> str:
    """Indented span tree with durations, roots in start order.

    Sibling lists longer than ``max_children`` are elided in the middle —
    a 50-iteration ALS run stays readable while first/last iterations (the
    usual outliers: cold caches, convergence) remain visible.
    """
    if spans is None:
        spans = get_tracer().finished()
    spans = sorted(spans, key=lambda r: r.t0)
    by_parent: dict[int | None, list[SpanRecord]] = {}
    ids = {rec.id for rec in spans}
    for rec in spans:
        parent = rec.parent if rec.parent in ids else None
        by_parent.setdefault(parent, []).append(rec)

    lines: list[str] = []

    def walk(rec: SpanRecord, depth: int) -> None:
        attrs = " ".join(
            f"{k}={v}" for k, v in rec.attrs.items() if k != "kind"
        )
        lines.append(
            f"{'  ' * depth}{rec.kind:<14s} {rec.duration * 1e3:9.3f} ms"
            + (f"  {attrs}" if attrs else "")
        )
        children = by_parent.get(rec.id, [])
        if len(children) > max_children:
            head = children[: max_children // 2]
            tail = children[-(max_children - len(head)):]
            for child in head:
                walk(child, depth + 1)
            lines.append(
                f"{'  ' * (depth + 1)}... {len(children) - len(head) - len(tail)} "
                "more siblings elided ..."
            )
            children = tail
        else:
            head = []
        for child in children:
            walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


def kind_table(spans: Iterable[SpanRecord] | None = None) -> str:
    """Per-kind aggregate table: count, total, mean, min, max."""
    if spans is None:
        spans = get_tracer().finished()
    agg: dict[str, list[float]] = {}
    for rec in spans:
        agg.setdefault(rec.kind, []).append(rec.duration)
    lines = [
        f"{'kind':<16s} {'count':>7s} {'total ms':>10s} {'mean ms':>9s} "
        f"{'min ms':>9s} {'max ms':>9s}"
    ]
    for kind in sorted(agg, key=lambda k: -sum(agg[k])):
        durs = agg[kind]
        lines.append(
            f"{kind:<16s} {len(durs):>7d} {sum(durs) * 1e3:>10.2f} "
            f"{sum(durs) / len(durs) * 1e3:>9.3f} {min(durs) * 1e3:>9.3f} "
            f"{max(durs) * 1e3:>9.3f}"
        )
    return "\n".join(lines)
