"""Structured run-event log: JSON-lines telemetry for *live* observation.

The tracer answers "where did the time go" after a run exits; this module
answers "what is the run doing *right now*".  Instrumented call sites
(:func:`repro.core.cpals.cp_als`, the engines' node rebuilds, the drift
watchdog) emit small structured events — run start/stop, one ``iteration``
event per ALS iteration carrying fit/delta/drift/memory readings, node
rebuilds, warnings — into a process-global :class:`EventLog`:

* a bounded **ring buffer** (the last ``maxlen`` events, cheap to snapshot)
  that feeds the ``/runz`` endpoint of :mod:`repro.obs.serve` and
  ``repro tail``;
* an optional **file sink**: one JSON object per line (schema
  ``repro-events/v1``), append-only and flushed per event so
  ``repro tail --follow <events.jsonl>`` and log shippers see events as
  they happen, not at exit.

Like the tracer, events are **off by default** and no-op-cheap when off:
hot call sites guard on :func:`enabled` (one module-bool check).  Enable
with :func:`enable`, the :func:`logging_events` context manager, or the
``REPRO_EVENTS`` environment variable — ``REPRO_EVENTS=1`` turns on the
ring buffer only, ``REPRO_EVENTS=/path/events.jsonl`` additionally opens
that file as the sink.

The log also folds ``run_start`` / ``iteration`` / ``run_stop`` events
into a :class:`RunState` — current iteration, fit, trailing per-iteration
rate and the ETA derived from it — which is what ``/runz`` serves.
"""

from __future__ import annotations

import collections
import json
import os
import threading
import time

from . import _ctx

__all__ = [
    "EVENTS_SCHEMA", "EVENT_KINDS", "EventLog", "RunState",
    "enabled", "enable", "disable", "emit", "get_log", "logging_events",
    "read_events", "validate_events", "format_event",
]

#: schema tag stamped on every event line (bump on layout change).
EVENTS_SCHEMA = "repro-events/v1"

#: event kinds the instrumented stack emits, with their required fields
#: (beyond the envelope ``schema``/``seq``/``t``/``kind``).
EVENT_KINDS: dict[str, tuple[str, ...]] = {
    "run_start": ("shape", "nnz", "rank", "strategy", "n_iter_max"),
    "iteration": ("iteration", "fit", "seconds"),
    "run_stop": ("n_iterations", "converged", "fit", "total_seconds"),
    "node_rebuild": ("node", "nnz", "seconds"),
    "warning": ("message",),
}


class RunState:
    """Live view of the most recent CP-ALS run, folded from events.

    ``eta_seconds`` extrapolates from the trailing per-iteration rate
    (mean of the last few ``iteration`` events) to the iteration cap —
    an upper bound, since convergence may stop the run earlier.
    """

    _TRAILING = 8

    def __init__(self):
        self.lock = threading.Lock()
        self._reset_locked()

    def reset(self) -> None:
        with self.lock:
            self._reset_locked()

    def observe(self, event: dict) -> None:
        kind = event.get("kind")
        with self.lock:
            if kind == "run_start":
                self._reset_locked()
                self.active = True
                self.started_at = event.get("t")
                self.shape = event.get("shape")
                self.nnz = event.get("nnz")
                self.rank = event.get("rank")
                self.strategy = event.get("strategy")
                self.n_iter_max = event.get("n_iter_max")
            elif kind == "iteration":
                self.iteration = event.get("iteration")
                self.fit = event.get("fit")
                self.delta = event.get("delta")
                seconds = event.get("seconds")
                if isinstance(seconds, (int, float)):
                    self._iter_seconds.append(float(seconds))
            elif kind == "run_stop":
                self.active = False
                self.finished_at = event.get("t")
                self.converged = event.get("converged")
                self.fit = event.get("fit", self.fit)

    def _reset_locked(self) -> None:
        """Reset run fields without re-taking the (held) lock."""
        self.active = False
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.shape: list[int] | None = None
        self.nnz: int | None = None
        self.rank: int | None = None
        self.strategy: str | None = None
        self.n_iter_max: int | None = None
        self.iteration: int | None = None
        self.fit: float | None = None
        self.delta: float | None = None
        self.converged: bool | None = None
        self._iter_seconds: collections.deque[float] = collections.deque(
            maxlen=self._TRAILING
        )

    def rate_seconds_per_iteration(self) -> float | None:
        """Trailing mean seconds per ALS iteration (None before the first)."""
        with self.lock:
            if not self._iter_seconds:
                return None
            return sum(self._iter_seconds) / len(self._iter_seconds)

    def eta_seconds(self) -> float | None:
        """Projected seconds to the iteration cap (None when unknown/done)."""
        rate = self.rate_seconds_per_iteration()
        with self.lock:
            if (not self.active or rate is None
                    or self.n_iter_max is None or self.iteration is None):
                return None
            remaining = self.n_iter_max - self.iteration - 1
            return max(remaining, 0) * rate

    def to_dict(self) -> dict:
        rate = self.rate_seconds_per_iteration()
        eta = self.eta_seconds()
        with self.lock:
            return {
                "active": self.active,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "shape": self.shape,
                "nnz": self.nnz,
                "rank": self.rank,
                "strategy": self.strategy,
                "n_iter_max": self.n_iter_max,
                "iteration": self.iteration,
                "fit": self.fit,
                "delta": self.delta,
                "converged": self.converged,
                "seconds_per_iteration": rate,
                "eta_seconds": eta,
            }


class EventLog:
    """Ring buffer + optional JSONL file sink for structured events.

    Thread-safe: engines emit from pool workers while the HTTP exporter
    snapshots concurrently.  The sink is flushed per event (events are
    rare — per iteration / per rebuild — so the syscall cost is noise
    next to the numeric work they describe).
    """

    def __init__(self, maxlen: int = 4096, sink_path: str | None = None):
        self._lock = threading.Lock()
        self._ring: collections.deque[dict] = collections.deque(maxlen=maxlen)
        self._seq = 0
        self._sink = None
        self._sink_path: str | None = None
        self.n_dropped = 0
        self.run = RunState()
        if sink_path:
            self.open_sink(sink_path)

    # -- sink management -----------------------------------------------
    def open_sink(self, path: str) -> None:
        """Append events to ``path`` (JSONL) from now on."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._sink = open(path, "a")
            self._sink_path = path

    def close_sink(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None
                self._sink_path = None

    @property
    def sink_path(self) -> str | None:
        return self._sink_path

    # -- emit / read ---------------------------------------------------
    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the stamped event dict."""
        event = {"schema": EVENTS_SCHEMA, "kind": kind, "t": time.time()}
        event.update(fields)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            if len(self._ring) == self._ring.maxlen:
                self.n_dropped += 1
            self._ring.append(event)
            if self._sink is not None:
                self._sink.write(json.dumps(event) + "\n")
                self._sink.flush()
            # Fold into the run state while still holding the log lock, so
            # the RunState sees events in exactly the seq order the ring
            # recorded them.  (Folding outside the lock let two concurrent
            # emitters race run_start past a later iteration event.)
            # RunState.lock nests inside EventLog._lock, never the reverse.
            self.run.observe(event)
        return event

    def tail(self, n: int | None = None) -> list[dict]:
        """The last ``n`` events (all buffered events when ``n`` is None)."""
        with self._lock:
            events = list(self._ring)
        return events if n is None else events[-n:]

    def write_jsonl(self, path: str) -> int:
        """Dump the buffered events to ``path``; returns the count written.

        Complements the live sink: ``repro trace`` uses this to leave an
        ``events.jsonl`` artifact even when no sink was configured.
        """
        events = self.tail()
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")
        return len(events)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._seq = 0
            self.n_dropped = 0
        self.run.reset()

    def replay(self, events) -> int:
        """Feed previously recorded events back into ring + run state.

        Used by ``repro serve`` (artifact mode) to reconstruct ``/runz``
        from an ``events.jsonl`` written by an earlier process.  Events
        keep their original stamps; the sink is not re-written.
        """
        n = 0
        for event in events:
            with self._lock:
                self._ring.append(event)
                self._seq = max(self._seq, int(event.get("seq", 0)))
                self.run.observe(event)
            n += 1
        return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def _truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in {"1", "true", "yes", "on"}


def _init_from_env() -> tuple[bool, str | None]:
    raw = (os.environ.get("REPRO_EVENTS") or "").strip()
    if not raw or raw.lower() in {"0", "false", "no", "off"}:
        return False, None
    if _truthy(raw):
        return True, None
    # Any other value is a sink path: REPRO_EVENTS=out/events.jsonl.
    return True, raw


_on, _sink_path = _init_from_env()
_log = EventLog(sink_path=_sink_path)
_enabled: bool = _on
del _on, _sink_path


def enabled() -> bool:
    """Whether event logging is on (the call-site guard).

    A run context with an explicit ``events_enabled`` overrides the
    module global, so concurrent runs control their own logging.
    """
    ctx = _ctx.current()
    if ctx is not None and ctx.events_enabled is not None:
        return ctx.events_enabled
    return _enabled


def enable(*, clear: bool = False, sink_path: str | None = None) -> None:
    """Turn event logging on; optionally reset state / open a file sink."""
    global _enabled
    if clear:
        _log.clear()
    if sink_path is not None:
        _log.open_sink(sink_path)
    _enabled = True


def disable() -> None:
    """Turn event logging off (buffered events are kept until clear)."""
    global _enabled
    _enabled = False


def get_log() -> EventLog:
    """The active event log: the run context's when one carries its own,
    else the process-global log."""
    ctx = _ctx.current()
    if ctx is not None and ctx.events is not None:
        return ctx.events
    return _log


def emit(kind: str, **fields) -> dict | None:
    """Emit an event if logging is enabled (None otherwise).

    When a run context is active the event lands in *its* log and is
    stamped with the context's ``run_id``, so interleaved runs stay
    separable in a shared sink and on ``/runz``.
    """
    ctx = _ctx.current()
    if ctx is None:
        if not _enabled:
            return None
        return _log.emit(kind, **fields)
    on = ctx.events_enabled if ctx.events_enabled is not None else _enabled
    if not on:
        return None
    log = ctx.events if ctx.events is not None else _log
    if ctx.run_id is not None:
        fields.setdefault("run_id", ctx.run_id)
    return log.emit(kind, **fields)


class logging_events:
    """Context manager enabling events for a block, restoring state after."""

    def __init__(self, *, clear: bool = True, sink_path: str | None = None):
        self._clear = clear
        self._sink_path = sink_path

    def __enter__(self) -> EventLog:
        self._was = _enabled
        enable(clear=self._clear, sink_path=self._sink_path)
        return _log

    def __exit__(self, *exc) -> bool:
        if not self._was:
            disable()
        if self._sink_path is not None:
            _log.close_sink()
        return False


# ---------------------------------------------------------------------------
# file I/O + validation
# ---------------------------------------------------------------------------

def read_events(path: str) -> list[dict]:
    """Parse an ``events.jsonl`` file back into event dicts."""
    events: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def validate_events(events) -> list[str]:
    """Schema errors (empty = valid) for a sequence of event dicts.

    Checks the ``repro-events/v1`` envelope (schema tag, monotonically
    increasing ``seq``, numeric ``t``, known-or-namespaced ``kind``) and
    the per-kind required fields of :data:`EVENT_KINDS`.
    """
    errors: list[str] = []
    last_seq = 0
    for i, event in enumerate(events):
        where = f"events[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        if event.get("schema") != EVENTS_SCHEMA:
            errors.append(f"{where}: schema must be {EVENTS_SCHEMA!r}, "
                          f"got {event.get('schema')!r}")
        kind = event.get("kind")
        if not isinstance(kind, str) or not kind:
            errors.append(f"{where}: missing kind")
            continue
        if not isinstance(event.get("t"), (int, float)):
            errors.append(f"{where}: t must be a number")
        seq = event.get("seq")
        if not isinstance(seq, int) or seq <= 0:
            errors.append(f"{where}: seq must be a positive integer")
        elif seq <= last_seq:
            errors.append(f"{where}: seq {seq} not increasing "
                          f"(previous {last_seq})")
        else:
            last_seq = seq
        required = EVENT_KINDS.get(kind)
        if required is not None:
            for field in required:
                if field not in event:
                    errors.append(f"{where}: {kind!r} event missing "
                                  f"{field!r}")
    return errors


def format_event(event: dict) -> str:
    """One-line human rendering for ``repro tail``."""
    kind = event.get("kind", "?")
    t = event.get("t")
    stamp = (time.strftime("%H:%M:%S", time.localtime(t))
             if isinstance(t, (int, float)) else "--:--:--")
    skip = {"schema", "kind", "t", "seq"}
    parts = []
    for key, value in event.items():
        if key in skip or value is None:
            continue
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        else:
            parts.append(f"{key}={value}")
    return f"{stamp} {kind:<13s} {' '.join(parts)}"
