"""Build identification: version, git revision, toolchain versions.

Used by ``repro --version``, the benchmark JSON envelope (so BENCH_*.json
artifacts are comparable across commits), and trace metadata.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from functools import lru_cache


@lru_cache(maxsize=1)
def git_revision() -> str:
    """Short git revision of the source tree, or ``"unknown"``.

    Resolved from the package's own directory so it works from any CWD;
    installed (non-checkout) copies report ``"unknown"``.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def build_info() -> dict:
    """Version + environment facts as a flat dict."""
    from .. import __version__
    import numpy

    return {
        "version": __version__,
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "executable": sys.executable,
    }


#: schema tag for benchmark/experiment JSON artifacts (bump on change).
ARTIFACT_SCHEMA = "repro-bench/v1"


def artifact_envelope(artifact_id: str, payload, **meta) -> dict:
    """Wrap a result payload in the shared benchmark-artifact schema.

    Every ``benchmarks/results/*.json`` file carries the same envelope —
    timestamp, git revision, toolchain, and the kernel knobs in effect —
    so artifacts from different commits and machines are directly
    comparable.  Extra keyword arguments land in ``meta``.
    """
    from datetime import datetime, timezone

    return {
        "schema": ARTIFACT_SCHEMA,
        "artifact_id": artifact_id,
        "meta": {
            "timestamp": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "kernel_backend": os.environ.get("REPRO_KERNEL", "numpy"),
            "block_rows": os.environ.get("REPRO_KERNEL_BLOCK"),
            "bench_scale": os.environ.get("REPRO_BENCH_SCALE"),
            **build_info(),
            **meta,
        },
        "result": payload,
    }


def version_string() -> str:
    """One-line build description for ``repro --version``."""
    info = build_info()
    return (
        f"repro {info['version']} (git {info['git_rev']}, "
        f"python {info['python']}, numpy {info['numpy']})"
    )
