"""Self-contained HTML dashboard: bench history, memory series, traces.

``repro dashboard`` stitches the three observability artifacts into one
file a reviewer can open without a server, a JS bundle, or network access:

* **bench history sparklines** — one row per bench id from the
  :mod:`repro.obs.history` JSONL store, inline-SVG trend line, latest
  value, and the comparator verdict against the stored baseline;
* **memory measured-vs-predicted series** — the per-ALS-iteration
  :class:`repro.obs.memory.MemReading` list (from a ``memory.json``
  written by ``repro trace`` or passed in directly), plotted as two
  direct-labeled lines plus the full data table;
* **worker utilization lanes** — one horizontal lane per pool worker,
  each ``pool_task`` span a rectangle on the shared time axis (rectangles
  alternate color per fan-out), plus the busy/wait/imbalance tables from
  :mod:`repro.obs.utilization`;
* **per-node cost attribution** — the measured-vs-predicted per-tree-node
  flop table from an ``attribution.json`` (``repro-attr/v1``, written by
  ``repro trace`` when a run had attribution live), with out-of-band
  ratios flagged, plus the per-mode breakdown;
* **roofline panel** — the calibrated bandwidth-saturation curve (triad
  GB/s vs threads from the ``repro-machine/v1`` artifact) and each kernel
  config's achieved throughput as a horizontal bar against the ceiling,
  from a ``repro-roofline/v1`` report dict;
* **sampling-profiler panel** — an icicle chart (root at top, width
  proportional to sample count) over the folded ``lane → span path →
  frames`` stacks of a ``repro-profile/v1`` document, plus the top
  hotspots table; trace dirs recorded before the profiler existed get an
  explicit "no profile captured" note instead of a broken section;
* **numerical-health panel** — per-iteration worst-mode condition number
  on a log axis with Cholesky&rarr;pinv fallback markers, the component
  congruence sparkline (swamp indicator), and the trajectory/fallback
  summary table from a ``repro-health/v1`` document (``health.json``);
* **trace summaries** — the per-kind aggregate table and span tree of a
  saved JSONL trace.

Everything is inline SVG + CSS (light/dark via ``prefers-color-scheme``);
numbers always also appear as text tables, so nothing is color-alone.
"""

from __future__ import annotations

import html
import json
import math
import os

from .buildinfo import build_info
from .history import BenchEntry, DiffResult
from .utilization import UtilizationReport

__all__ = ["render_dashboard", "write_dashboard", "load_memory_json"]

# Palette: categorical slots 1-2 (blue/orange) for the two data series,
# the reserved status red for regressions; light/dark pairs throughout.
_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 2rem auto; max-width: 68rem; padding: 0 1rem;
  font: 14px/1.5 system-ui, sans-serif;
  background: #fcfcfb; color: #0b0b0b;
}
h1, h2 { font-weight: 600; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2.2rem; }
.meta { color: #52514e; font-size: 0.85rem; }
table { border-collapse: collapse; margin: 0.8rem 0; width: 100%; }
th, td { text-align: right; padding: 0.25rem 0.7rem; }
th { color: #52514e; font-weight: 600; border-bottom: 1px solid #e8e6e3; }
td:first-child, th:first-child { text-align: left; }
tr + tr td { border-top: 1px solid #f0efec; }
.num { font-variant-numeric: tabular-nums; }
.status-regression { color: #e34948; font-weight: 600; }
.status-ok, .status-improvement { color: #52514e; }
.spark line, .spark polyline { stroke-linecap: round; }
pre {
  background: #f5f4f2; padding: 0.8rem; overflow-x: auto;
  font-size: 12px; border-radius: 6px;
}
.legend { color: #52514e; font-size: 0.85rem; margin: 0.3rem 0; }
.swatch {
  display: inline-block; width: 10px; height: 10px; border-radius: 3px;
  margin: 0 0.35rem 0 0.9rem; vertical-align: baseline;
}
@media (prefers-color-scheme: dark) {
  body { background: #1a1a19; color: #ffffff; }
  .meta, .legend, th, .status-ok, .status-improvement { color: #c3c2b7; }
  th { border-bottom-color: #383835; }
  tr + tr td { border-top-color: #2a2a28; }
  pre { background: #222220; }
  .status-regression { color: #e66767; }
}
"""

#: (light, dark) hex per role; SVG uses light + a CSS class override.
_SERIES_1 = "#2a78d6"   # measured / sparkline
_SERIES_2 = "#eb6834"   # predicted
_GRID = "#e8e6e3"


def _fmt_bytes(n: float | None) -> str:
    if n is None:
        return "-"
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n:.0f} B"
        n /= 1024
    return f"{n:.1f} GB"


def _sparkline(values: list[float], *, width: int = 220,
               height: int = 36, color: str = _SERIES_1) -> str:
    """Inline-SVG trend line (2px stroke, 8px end marker, no axes)."""
    if not values:
        return ""
    pad = 4
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)

    def xy(i: int, v: float) -> tuple[float, float]:
        x = pad + (width - 2 * pad) * (i / max(n - 1, 1))
        y = pad + (height - 2 * pad) * (1.0 - (v - lo) / span)
        return x, y

    pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in
                   (xy(i, v) for i, v in enumerate(values)))
    ex, ey = xy(n - 1, values[-1])
    title = html.escape(
        f"{n} runs, min {min(values):.4g}, last {values[-1]:.4g}"
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" aria-label="{title}">'
        f"<title>{title}</title>"
        f'<polyline points="{pts}" fill="none" stroke="{color}" '
        f'stroke-width="2"/>'
        f'<circle cx="{ex:.1f}" cy="{ey:.1f}" r="4" fill="{color}"/>'
        "</svg>"
    )


def _history_section(entries: list[BenchEntry],
                     diffs: list[DiffResult] | None) -> str:
    if not entries:
        return "<p class='meta'>(no bench history recorded yet)</p>"
    by_id: dict[str, list[BenchEntry]] = {}
    for e in entries:
        by_id.setdefault(e.bench_id, []).append(e)
    verdict = {d.bench_id: d for d in diffs or []}
    rows = []
    for bench_id in sorted(by_id):
        series = by_id[bench_id]
        values = [e.value for e in series]
        last = series[-1]
        d = verdict.get(bench_id)
        if d is not None:
            mark = {"regression": "&#9650; regression",
                    "improvement": "&#9660; improvement",
                    "no-baseline": "new bench"}.get(d.status, "ok")
            status = (f'<span class="status-{html.escape(d.status)}">'
                      f"{mark}</span>")
        else:
            status = '<span class="status-ok">-</span>'
        rows.append(
            "<tr>"
            f"<td>{html.escape(bench_id)}</td>"
            f"<td>{_sparkline(values)}</td>"
            f'<td class="num">{last.value:.6g} {html.escape(last.unit)}</td>'
            f'<td class="num">{min(values):.6g}</td>'
            f'<td class="num">{len(values)}</td>'
            f"<td>{html.escape(last.git_rev)}</td>"
            f"<td>{status}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>bench</th><th>trend (older &rarr; newer)</th>"
        "<th>latest</th><th>best</th><th>runs</th><th>rev</th>"
        "<th>vs baseline</th></tr></thead><tbody>"
        + "".join(rows) + "</tbody></table>"
    )


def _memory_chart(readings: list[dict]) -> str:
    """Measured vs predicted peak bytes per ALS iteration, two lines."""
    measured = [r.get("measured_peak_bytes") for r in readings]
    predicted = [r.get("predicted_peak_bytes") for r in readings]
    if not readings or not any(v for v in measured):
        return ""
    width, height, pad = 640, 200, 36
    finite = [v for v in measured + predicted if v]
    hi = max(finite) * 1.08
    n = len(readings)

    def xy(i: int, v: float) -> tuple[float, float]:
        x = pad + (width - 2 * pad) * (i / max(n - 1, 1))
        y = (height - pad) - (height - 2 * pad) * (v / hi)
        return x, y

    def line(vals, color, label):
        pts = [(i, v) for i, v in enumerate(vals) if v]
        if not pts:
            return ""
        poly = " ".join(f"{x:.1f},{y:.1f}" for x, y in
                        (xy(i, v) for i, v in pts))
        lx, ly = xy(*pts[-1])
        dots = "".join(
            f'<circle cx="{xy(i, v)[0]:.1f}" cy="{xy(i, v)[1]:.1f}" r="4" '
            f'fill="{color}"><title>iter {readings[i].get("iteration", i)}: '
            f"{html.escape(label)} {_fmt_bytes(v)}</title></circle>"
            for i, v in pts
        )
        return (
            f'<polyline points="{poly}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>{dots}'
            f'<text x="{min(lx + 8, width - 4):.1f}" y="{ly + 4:.1f}" '
            f'fill="{color}" font-size="11">{html.escape(label)}</text>'
        )

    gridlines = "".join(
        f'<line x1="{pad}" y1="{(height - pad) - (height - 2 * pad) * f:.1f}" '
        f'x2="{width - pad}" y2="{(height - pad) - (height - 2 * pad) * f:.1f}" '
        f'stroke="{_GRID}" stroke-width="1"/>'
        f'<text x="{pad - 6}" y="{(height - pad) - (height - 2 * pad) * f + 4:.1f}" '
        f'text-anchor="end" font-size="10" fill="#52514e">'
        f"{_fmt_bytes(hi * f)}</text>"
        for f in (0.0, 0.5, 1.0)
    )
    chart = (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="peak memoized-value bytes per ALS iteration">'
        + gridlines
        + line(predicted, _SERIES_2, "predicted")
        + line(measured, _SERIES_1, "measured")
        + f'<text x="{width // 2}" y="{height - 6}" text-anchor="middle" '
        f'font-size="10" fill="#52514e">ALS iteration</text>'
        "</svg>"
    )
    legend = (
        '<p class="legend">peak memoized-value bytes per iteration &mdash;'
        f'<span class="swatch" style="background:{_SERIES_1}"></span>measured'
        f'<span class="swatch" style="background:{_SERIES_2}"></span>'
        "predicted (cost model)</p>"
    )
    return legend + chart


def _memory_table(readings: list[dict]) -> str:
    if not readings:
        return "<p class='meta'>(no memory readings; run under " \
               "<code>repro trace</code> or enable repro.obs.memory)</p>"
    rows = []
    for r in readings:
        ratio = r.get("ratio")
        ratio_cell = f"{ratio:.4f}" if ratio is not None else "-"
        rows.append(
            "<tr>"
            f'<td class="num">{r.get("iteration", "-")}</td>'
            f'<td class="num">{_fmt_bytes(r.get("measured_peak_bytes"))}</td>'
            f'<td class="num">{_fmt_bytes(r.get("predicted_peak_bytes"))}</td>'
            f'<td class="num">{ratio_cell}</td>'
            f'<td class="num">{_fmt_bytes(r.get("workspace_bytes"))}</td>'
            f'<td class="num">{_fmt_bytes(r.get("factor_bytes"))}</td>'
            f'<td class="num">{_fmt_bytes(r.get("traced_peak_bytes"))}</td>'
            "</tr>"
        )
    return (
        "<table><thead><tr><th>iter</th><th>measured peak</th>"
        "<th>predicted peak</th><th>ratio</th><th>workspace</th>"
        "<th>factors</th><th>tracemalloc peak</th></tr></thead><tbody>"
        + "".join(rows) + "</tbody></table>"
    )


def _worker_lanes(tasks: list[dict]) -> str:
    """SVG strip: one lane per pool worker, one rect per ``pool_task``.

    ``tasks`` rows carry ``worker``/``t0``/``t1`` (tracer seconds) and
    optionally ``queue_wait``/``parent``; rectangles alternate between the
    two series colors per fan-out (shared ``parent``) so the eye can
    separate consecutive ``WorkerPool.run`` calls inside a lane.
    """
    tasks = [t for t in tasks if t.get("t1") is not None]
    if not tasks:
        return ""
    t_lo = min(t["t0"] for t in tasks)
    t_hi = max(t["t1"] for t in tasks)
    span = (t_hi - t_lo) or 1.0
    workers = sorted({int(t.get("worker", 0)) for t in tasks})
    width, pad_l, pad_r = 640, 64, 8
    lane_h, gap, pad_t = 16, 6, 4
    height = pad_t + len(workers) * (lane_h + gap) + 16
    lane_y = {w: pad_t + i * (lane_h + gap) for i, w in enumerate(workers)}

    def x(t: float) -> float:
        return pad_l + (width - pad_l - pad_r) * (t - t_lo) / span

    parts = []
    for w in workers:
        y = lane_y[w]
        parts.append(
            f'<text x="{pad_l - 8}" y="{y + lane_h - 4}" text-anchor="end" '
            f'font-size="11" fill="#52514e">worker {w}</text>'
            f'<rect x="{pad_l}" y="{y}" width="{width - pad_l - pad_r}" '
            f'height="{lane_h}" fill="{_GRID}" fill-opacity="0.45"/>'
        )
    # Stable color index per fan-out, in time order of first task.
    fanout_idx: dict = {}
    for t in sorted(tasks, key=lambda t: t["t0"]):
        fanout_idx.setdefault(t.get("parent"), len(fanout_idx))
    for t in tasks:
        y = lane_y[int(t.get("worker", 0))]
        x0 = x(t["t0"])
        w_px = max(x(t["t1"]) - x0, 1.0)
        color = (_SERIES_1, _SERIES_2)[fanout_idx.get(t.get("parent"), 0) % 2]
        ms = (t["t1"] - t["t0"]) * 1e3
        wait_ms = float(t.get("queue_wait", 0.0)) * 1e3
        title = (f'worker {t.get("worker", 0)}: {ms:.3f} ms busy, '
                 f"{wait_ms:.3f} ms queued")
        parts.append(
            f'<rect x="{x0:.1f}" y="{y + 1}" width="{w_px:.1f}" '
            f'height="{lane_h - 2}" rx="2" fill="{color}">'
            f"<title>{html.escape(title)}</title></rect>"
        )
    parts.append(
        f'<text x="{width - pad_r}" y="{height - 3}" text-anchor="end" '
        f'font-size="10" fill="#52514e">'
        f"{span * 1e3:.1f} ms window &middot; {len(tasks)} tasks</text>"
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="per-worker pool task timeline">' + "".join(parts)
        + "</svg>"
    )


def _utilization_tables(report: UtilizationReport) -> str:
    """Worker + iteration tables mirroring ``format_utilization``."""
    rows = []
    for w in report.workers:
        rows.append(
            "<tr>"
            f'<td class="num">{w.worker}</td>'
            f'<td class="num">{w.n_tasks}</td>'
            f'<td class="num">{w.busy_seconds * 1e3:.2f}</td>'
            f'<td class="num">{w.busy_fraction * 100:.1f}%</td>'
            f'<td class="num">{w.queue_wait_seconds * 1e3:.2f}</td>'
            f'<td class="num">{w.queue_wait_max * 1e3:.3f}</td>'
            f"<td>{w.source}</td>"
            "</tr>"
        )
    out = (
        f"<p class='meta'>{report.n_tasks} pool tasks over "
        f"{report.window_seconds * 1e3:.2f} ms window &middot; "
        f"mean imbalance {report.mean_imbalance:.3f} (max/mean task "
        "seconds per fan-out; 1.0 = perfectly balanced) &middot; "
        f"timings <b>{report.source}</b> (measured = spans timed where "
        "the work ran; synthesized = reconstructed parent-side)</p>"
        "<table><thead><tr><th>worker</th><th>tasks</th><th>busy ms</th>"
        "<th>busy %</th><th>wait ms</th><th>max wait ms</th>"
        "<th>timings</th></tr></thead>"
        "<tbody>" + "".join(rows) + "</tbody></table>"
    )
    if report.iterations:
        rows = []
        for it in report.iterations:
            rows.append(
                "<tr>"
                f'<td class="num">{it.iteration}</td>'
                f'<td class="num">{it.wall_seconds * 1e3:.2f}</td>'
                f'<td class="num">{it.n_tasks}</td>'
                f'<td class="num">{it.busy_seconds * 1e3:.2f}</td>'
                f'<td class="num">{it.queue_wait_seconds * 1e3:.2f}</td>'
                f'<td class="num">{it.imbalance:.3f}</td>'
                f'<td class="num">{it.worst_imbalance:.3f}</td>'
                "</tr>"
            )
        out += (
            "<table><thead><tr><th>iter</th><th>wall ms</th><th>tasks</th>"
            "<th>busy ms</th><th>wait ms</th><th>imbalance</th>"
            "<th>worst</th></tr></thead><tbody>"
            + "".join(rows) + "</tbody></table>"
        )
    return out


def _attribution_section(doc: dict) -> str:
    """Per-node predicted-vs-measured tables from a ``repro-attr/v1`` doc."""
    node_rows = doc.get("nodes") or []
    if not node_rows:
        return "<p class='meta'>(no attribution data)</p>"
    header = (
        f"<p class='meta'>strategy {html.escape(str(doc.get('strategy')))} "
        f"&middot; rank {doc.get('rank')} &middot; "
        f"{doc.get('n_iterations', 0)} iterations &middot; ratios are "
        "measured/predicted for the last full iteration; anything other "
        "than 1.0000 on the flop column is a model-alignment bug</p>"
    )
    rows = []
    for r in node_rows:
        ratio = r.get("flops_ratio")
        flagged = ratio is not None and abs(ratio - 1.0) > 1e-9
        ratio_cell = (
            f'<span class="status-regression">{ratio:.4f}</span>'
            if flagged else (f"{ratio:.4f}" if ratio is not None else "-")
        )
        modes = ",".join(str(m) for m in r.get("modes", []))
        rebuild = r.get("rebuild_mode")
        rows.append(
            "<tr>"
            f'<td class="num">{r.get("node")}</td>'
            f"<td>{html.escape(modes)}</td>"
            f'<td class="num">{"-" if rebuild is None else rebuild}</td>'
            f'<td class="num">{r.get("predicted_flops", 0):,}</td>'
            f'<td class="num">{r.get("measured_flops", 0):,}</td>'
            f'<td class="num">{ratio_cell}</td>'
            f'<td class="num">{r.get("seconds", 0.0) * 1e3:.3f}</td>'
            f'<td class="num">{r.get("rebuilds", 0)}</td>'
            "</tr>"
        )
    out = header + (
        "<table><thead><tr><th>node</th><th>modes</th><th>built in</th>"
        "<th>predicted flops</th><th>measured flops</th><th>ratio</th>"
        "<th>ms</th><th>rebuilds</th></tr></thead><tbody>"
        + "".join(rows) + "</tbody></table>"
    )
    mode_rows = doc.get("modes") or []
    if mode_rows:
        rows = []
        for r in mode_rows:
            ratio = r.get("flops_ratio")
            ratio_cell = f"{ratio:.4f}" if ratio is not None else "-"
            rows.append(
                "<tr>"
                f'<td class="num">{r.get("mode")}</td>'
                f'<td class="num">{r.get("predicted_flops", 0):,}</td>'
                f'<td class="num">{r.get("measured_flops", 0):,}</td>'
                f'<td class="num">{ratio_cell}</td>'
                f'<td class="num">{r.get("seconds", 0.0) * 1e3:.3f}</td>'
                f'<td class="num">{r.get("mttkrps", 0)}</td>'
                "</tr>"
            )
        out += (
            "<table><thead><tr><th>mode</th><th>predicted flops</th>"
            "<th>measured flops</th><th>ratio</th><th>ms</th>"
            "<th>mttkrps</th></tr></thead><tbody>"
            + "".join(rows) + "</tbody></table>"
        )
    return out


def _roofline_curve(machine: dict) -> str:
    """Bandwidth-vs-threads saturation curve from a machine payload."""
    points = machine.get("bandwidth_points") or []
    if not points:
        return ""
    width, height, pad = 420, 170, 36
    peak = machine.get("peak_bandwidth_gbs") or max(
        p["triad_gbs"] for p in points
    )
    hi = peak * 1.15
    n = len(points)
    sat = machine.get("saturation_workers")

    def xy(i: int, v: float) -> tuple[float, float]:
        x = pad + (width - 2 * pad) * (i / max(n - 1, 1))
        y = (height - pad) - (height - 2 * pad) * (v / hi)
        return x, y

    ceiling_y = (height - pad) - (height - 2 * pad) * (peak / hi)
    parts = [
        f'<line x1="{pad}" y1="{ceiling_y:.1f}" x2="{width - pad}" '
        f'y2="{ceiling_y:.1f}" stroke="{_GRID}" stroke-width="1" '
        f'stroke-dasharray="4 3"/>'
        f'<text x="{width - pad}" y="{ceiling_y - 4:.1f}" text-anchor="end" '
        f'font-size="10" fill="#52514e">ceiling {peak:.2f} GB/s</text>'
    ]
    for series, color, label in (
        ("triad_gbs", _SERIES_1, "triad"),
        ("gather_gbs", _SERIES_2, "gather"),
    ):
        vals = [float(p.get(series, 0.0)) for p in points]
        poly = " ".join(
            f"{x:.1f},{y:.1f}" for x, y in
            (xy(i, v) for i, v in enumerate(vals))
        )
        dots = "".join(
            f'<circle cx="{xy(i, v)[0]:.1f}" cy="{xy(i, v)[1]:.1f}" r="4" '
            f'fill="{color}"><title>{points[i]["threads"]} thread(s): '
            f"{label} {v:.2f} GB/s</title></circle>"
            for i, v in enumerate(vals)
        )
        lx, ly = xy(n - 1, vals[-1])
        parts.append(
            f'<polyline points="{poly}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>{dots}'
            f'<text x="{min(lx + 8, width - 4):.1f}" y="{ly + 4:.1f}" '
            f'fill="{color}" font-size="11">{html.escape(label)}</text>'
        )
    for i, p in enumerate(points):
        x, _ = xy(i, 0.0)
        mark = " &#9650;" if p.get("threads") == sat else ""
        parts.append(
            f'<text x="{x:.1f}" y="{height - pad + 14}" text-anchor="middle" '
            f'font-size="10" fill="#52514e">{p["threads"]}{mark}</text>'
        )
    parts.append(
        f'<text x="{width // 2}" y="{height - 4}" text-anchor="middle" '
        f'font-size="10" fill="#52514e">threads '
        f"(&#9650; = saturation at {sat})</text>"
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="memory bandwidth vs thread count">'
        + "".join(parts) + "</svg>"
    )


def _roofline_section(doc: dict) -> str:
    """Panel from a ``repro-roofline/v1`` report dict.

    Renders whatever is present: the saturation curve needs a calibrated
    machine payload, the config table only needs spans; an uncalibrated
    report shows achieved GB/s with "-" fractions plus the note saying
    how to calibrate.
    """
    parts = []
    machine = doc.get("machine")
    if machine:
        parts.append(
            "<p class='meta'>measured ceilings: bandwidth "
            f"{machine.get('peak_bandwidth_gbs', 0.0):.2f} GB/s (gather "
            f"{machine.get('peak_gather_gbs', 0.0):.2f} GB/s), compute "
            f"{machine.get('peak_gflops', 0.0):.2f} GFLOP/s &middot; "
            f"saturates at {machine.get('saturation_workers')} worker(s) "
            f"&middot; {machine.get('host_cpus')} cpus"
            + (" &middot; quick calibration" if machine.get("quick") else "")
            + "</p>"
        )
        parts.append(_roofline_curve(machine))
    configs = doc.get("configs") or []
    if configs:
        peak = (machine or {}).get("peak_bandwidth_gbs")
        rows = []
        for c in configs:
            frac = c.get("bandwidth_fraction")
            if frac is not None:
                bar_w = max(min(frac, 1.0) * 160, 1.0)
                bar = (
                    f'<svg width="166" height="12" viewBox="0 0 166 12">'
                    f'<rect x="0" y="0" width="160" height="12" rx="3" '
                    f'fill="{_GRID}" fill-opacity="0.6"/>'
                    f'<rect x="0" y="0" width="{bar_w:.1f}" height="12" '
                    f'rx="3" fill="{_SERIES_1}">'
                    f"<title>{frac * 100:.1f}% of {peak:.2f} GB/s</title>"
                    f"</rect></svg> "
                    f'<span class="num">{frac * 100:.1f}%</span>'
                )
            else:
                bar = "-"
            comp = c.get("compute_fraction")
            rows.append(
                "<tr>"
                f"<td>{html.escape(str(c.get('config')))}</td>"
                f'<td class="num">{c.get("spans", 0)}</td>'
                f'<td class="num">{c.get("seconds", 0.0) * 1e3:.3f}</td>'
                f'<td class="num">{c.get("gbs", 0.0):.3f}</td>'
                f'<td class="num">{c.get("gflops", 0.0):.3f}</td>'
                f"<td>{bar}</td>"
                f'<td class="num">'
                f"{'-' if comp is None else f'{comp * 100:.1f}%'}</td>"
                f"<td>{html.escape(str(c.get('bound', 'unknown')))}</td>"
                "</tr>"
            )
        parts.append(
            "<table><thead><tr><th>config</th><th>spans</th><th>ms</th>"
            "<th>GB/s</th><th>GFLOP/s</th><th>% of bandwidth roofline</th>"
            "<th>% compute</th><th>bound</th></tr></thead><tbody>"
            + "".join(rows) + "</tbody></table>"
        )
    elif machine:
        parts.append("<p class='meta'>(no attributable kernel spans in "
                     "this trace)</p>")
    for line in doc.get("guidance") or []:
        parts.append(f"<p class='meta'>&rarr; {html.escape(line)}</p>")
    for note in doc.get("notes") or []:
        parts.append(f"<p class='meta'>note: {html.escape(note)}</p>")
    if not parts:
        return "<p class='meta'>(no roofline data)</p>"
    return "".join(parts)


def _profile_icicle(doc: dict, *, width: int = 640, row_h: int = 18,
                    max_depth: int = 14) -> str:
    """Icicle chart over folded profiler stacks (root row at the top).

    Each folded entry contributes its count along the path ``lane →
    span:<kind>... → frames...``; rectangle width is proportional to the
    sample count, rows are depth, colors alternate between the two
    series colors per depth.  Sub-pixel rectangles are dropped (their
    width still offsets siblings, so proportions stay honest).
    """
    folded = doc.get("folded") or []
    total = sum(int(e.get("count", 0)) for e in folded)
    if not total:
        return ""
    root: dict = {}
    for e in folded:
        path = ([str(e.get("lane", "?"))]
                + [f"span:{s}" for s in e.get("spans", [])]
                + [str(f) for f in e.get("frames", [])])[:max_depth]
        node = root
        for seg in path:
            slot = node.setdefault(seg, [0, {}])
            slot[0] += int(e.get("count", 0))
            node = slot[1]
    scale = (width - 2) / total
    parts: list[str] = []
    deepest = [1]

    def emit(node: dict, depth: int, x0: float) -> None:
        if depth >= max_depth:
            return
        x = x0
        for name, (count, children) in sorted(
                node.items(), key=lambda kv: (-kv[1][0], kv[0])):
            w = count * scale
            if w < 0.8:
                x += w
                continue
            deepest[0] = max(deepest[0], depth + 1)
            color = (_SERIES_1, _SERIES_2)[depth % 2]
            pct = 100.0 * count / total
            title = html.escape(f"{name}: {count} samples ({pct:.1f}%)")
            y = depth * row_h
            parts.append(
                f'<rect x="{x + 1:.1f}" y="{y + 1}" '
                f'width="{max(w - 1.0, 0.8):.1f}" height="{row_h - 2}" '
                f'rx="2" fill="{color}" '
                f'fill-opacity="{"0.9" if depth % 2 == 0 else "0.75"}">'
                f"<title>{title}</title></rect>"
            )
            if w > 60:
                room = max(int(w / 7) - 1, 1)
                label = name if len(name) <= room else name[:room] + "…"
                parts.append(
                    f'<text x="{x + 5:.1f}" y="{y + row_h - 6}" '
                    f'font-size="10" fill="#ffffff">'
                    f"{html.escape(label)}</text>"
                )
            emit(children, depth + 1, x)
            x += w

    emit(root, 0, 0.0)
    height = deepest[0] * row_h + 2
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="sampled stack icicle, root lane at top, '
        f'width proportional to samples">' + "".join(parts) + "</svg>"
    )


def _profile_section(doc: dict) -> str:
    """Panel from a ``repro-profile/v1`` document."""
    from .profiler import hotspots

    n = int(doc.get("n_samples", 0))
    if not n:
        return ("<p class='meta'>(profile recorded but holds no samples "
                "— the run was too short for the sampling rate; raise "
                "--hz)</p>")
    lanes = ", ".join(doc.get("lanes") or []) or "-"
    parts = [
        f"<p class='meta'>{n} samples @ {doc.get('hz', 0):g} Hz &middot; "
        f"{float(doc.get('sampled_seconds', 0.0)):.2f}s sampled &middot; "
        f"lanes: {html.escape(lanes)}</p>",
        '<p class="legend">icicle: lane &rarr; open spans &rarr; frames, '
        "top to bottom; width &prop; samples; hover for counts</p>",
        _profile_icicle(doc),
    ]
    rows = []
    for r in hotspots(doc, top=10):
        rows.append(
            "<tr>"
            f"<td>{html.escape(r['frame'])}</td>"
            f'<td class="num">{r["self_seconds"]:.3f}</td>'
            f'<td class="num">{r["self_fraction"] * 100:.1f}%</td>'
            f'<td class="num">{r["total_seconds"]:.3f}</td>'
            f'<td class="num">{r["self_samples"]}</td>'
            "</tr>"
        )
    if rows:
        parts.append(
            "<table><thead><tr><th>frame</th><th>self s</th><th>self %</th>"
            "<th>total s</th><th>samples</th></tr></thead><tbody>"
            + "".join(rows) + "</tbody></table>"
        )
    return "".join(parts)


def _condition_chart(readings: list[dict], *, width: int = 640,
                     height: int = 160) -> str:
    """Log-scale worst-mode κ(H) per iteration, pinv fallbacks marked.

    Iterations whose worst mode was outright singular (condition number
    serialized as null) are drawn as markers pinned to the top edge.
    """
    points: list[tuple[int, float | None]] = []
    fallback_iters: set[int] = set()
    for row in readings:
        conds = [c for c in row.get("condition_numbers", [])
                 if isinstance(c, (int, float)) and c > 0]
        points.append((int(row.get("iteration", len(points))),
                       max(conds) if conds else None))
        if int(row.get("pinv_fallbacks", 0) or 0) > 0:
            fallback_iters.add(int(row.get("iteration", len(points) - 1)))
    finite = [v for _, v in points if v is not None]
    if not finite:
        return ""
    pad = 28
    logs = [math.log10(v) for v in finite]
    lo = min(min(logs), 0.0)
    hi = max(max(logs), lo + 1.0)
    span = hi - lo
    n = len(points)

    def xy(i: int, v: float | None) -> tuple[float, float]:
        x = pad + (width - 2 * pad) * (i / max(n - 1, 1))
        if v is None:  # singular: pin to the top edge
            return x, pad
        y = pad + (height - 2 * pad) * (1.0 - (math.log10(v) - lo) / span)
        return x, y

    parts = []
    # Decade gridlines with 10^k labels.
    for k in range(int(math.floor(lo)), int(math.ceil(hi)) + 1):
        if not lo <= k <= hi:
            continue
        y = pad + (height - 2 * pad) * (1.0 - (k - lo) / span)
        parts.append(
            f'<line x1="{pad}" y1="{y:.1f}" x2="{width - pad}" '
            f'y2="{y:.1f}" stroke="{_GRID}" stroke-width="1"/>'
            f'<text x="2" y="{y + 4:.1f}" font-size="10" '
            f'fill="currentColor">1e{k}</text>'
        )
    pts = " ".join(
        f"{x:.1f},{y:.1f}"
        for x, y in (xy(i, v) for i, (_, v) in enumerate(points))
    )
    parts.append(
        f'<polyline points="{pts}" fill="none" stroke="{_SERIES_1}" '
        'stroke-width="2"/>'
    )
    for i, (iteration, v) in enumerate(points):
        x, y = xy(i, v)
        if v is None:
            parts.append(
                f'<text x="{x - 4:.1f}" y="{y:.1f}" font-size="11" '
                f'fill="{_SERIES_2}"><title>iteration {iteration}: '
                'singular Gram</title>&#215;</text>'
            )
        if iteration in fallback_iters:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
                f'fill="{_SERIES_2}"><title>iteration {iteration}: '
                'Cholesky&rarr;pinv fallback</title></circle>'
            )
    title = (f"worst-mode condition number per iteration (log scale), "
             f"{len(fallback_iters)} iterations with pinv fallbacks")
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{html.escape(title)}">'
        f"<title>{html.escape(title)}</title>" + "".join(parts) + "</svg>"
    )


def _health_section(doc: dict) -> str:
    """Panel from a ``repro-health/v1`` document."""
    readings = doc.get("readings", [])
    if not readings:
        return "<p class='meta'>(health artifact holds no readings)</p>"
    last = readings[-1]
    parts = [
        f"<p class='meta'>{doc.get('n_iterations', 0)} iterations &middot; "
        f"final trajectory: <strong>"
        f"{html.escape(str(doc.get('final_trajectory') or 'n/a'))}</strong> "
        f"&middot; {doc.get('total_pinv_fallbacks', 0)} pinv fallbacks "
        f"&middot; {doc.get('total_truncated_eigenvalues', 0)} truncated "
        f"eigenvalues (rcond {doc.get('rcond', 0):g})</p>",
    ]
    chart = _condition_chart(readings)
    if chart:
        parts.append(
            '<p class="legend">worst-mode &kappa;(H) per iteration, log '
            f'axis; <span class="swatch" style="background:{_SERIES_2}">'
            "</span>marks iterations with Cholesky&rarr;pinv fallbacks"
            "</p>"
        )
        parts.append(chart)
    congruences = [r.get("congruence") for r in readings]
    congruences = [c for c in congruences if isinstance(c, (int, float))]
    if congruences:
        parts.append(
            f"<p class='legend'>component congruence (&rarr;1 signals a "
            f"swamp): last {congruences[-1]:.4f} "
            + _sparkline(congruences) + "</p>"
        )
    rows = []
    for row in readings[-10:]:
        conds = [c for c in row.get("condition_numbers", [])
                 if isinstance(c, (int, float))]
        deltas = [d for d in row.get("factor_deltas", [])
                  if isinstance(d, (int, float))]
        congruence = row.get("congruence")
        rows.append(
            "<tr>"
            f'<td class="num">{row.get("iteration")}</td>'
            + (f'<td class="num">{max(conds):.3e}</td>' if conds
               else '<td class="num">singular</td>')
            + f'<td class="num">'
              f'{sum(int(t) for t in row.get("truncated_eigenvalues", []))}'
              "</td>"
            + (f'<td class="num">{max(deltas):.3e}</td>' if deltas
               else '<td class="num">-</td>')
            + (f'<td class="num">{congruence:.4f}</td>'
               if isinstance(congruence, (int, float))
               else '<td class="num">-</td>')
            + f'<td class="num">{row.get("pinv_fallbacks", 0)}</td>'
            f"<td>{html.escape(str(row.get('trajectory', '?')))}</td></tr>"
        )
    parts.append(
        "<table><thead><tr><th>iter</th><th>max &kappa;(H)</th>"
        "<th>trunc</th><th>max &Delta;U/U</th><th>congruence</th>"
        "<th>pinv</th><th>trajectory</th></tr></thead><tbody>"
        + "".join(rows) + "</tbody></table>"
    )
    if last.get("congruence_pair"):
        pair = last["congruence_pair"]
        parts.append(
            f"<p class='meta'>most congruent component pair at the final "
            f"iteration: ({pair[0]}, {pair[1]})</p>"
        )
    return "".join(parts)


def render_dashboard(*, history_entries: list[BenchEntry] | None = None,
                     diffs: list[DiffResult] | None = None,
                     memory_readings: list[dict] | None = None,
                     utilization: UtilizationReport | None = None,
                     pool_tasks: list[dict] | None = None,
                     trace_summary: str | None = None,
                     kind_table_text: str | None = None,
                     attribution: dict | None = None,
                     roofline: dict | None = None,
                     profile: dict | None = None,
                     health: dict | None = None,
                     title: str = "repro dashboard") -> str:
    """Assemble the full self-contained HTML document (returns the string)."""
    info = build_info()
    parts = [
        "<!doctype html><html lang='en'><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p class='meta'>repro {html.escape(str(info['version']))} "
        f"&middot; git {html.escape(str(info['git_rev']))} &middot; "
        f"python {html.escape(str(info['python']))} / "
        f"numpy {html.escape(str(info['numpy']))}</p>",
        "<h2>Benchmark history</h2>",
        _history_section(history_entries or [], diffs),
    ]
    parts.append("<h2>Memory: measured vs predicted</h2>")
    parts.append(_memory_chart(memory_readings or []))
    parts.append(_memory_table(memory_readings or []))
    if utilization is not None or pool_tasks:
        parts.append("<h2>Worker utilization</h2>")
        lanes = _worker_lanes(pool_tasks or [])
        if lanes:
            parts.append(
                '<p class="legend">pool task timeline, one lane per '
                "worker &mdash; rectangle color alternates per fan-out"
                "</p>"
            )
            parts.append(lanes)
        if utilization is not None:
            parts.append(_utilization_tables(utilization))
    if attribution is not None:
        parts.append("<h2>Cost attribution: predicted vs measured "
                     "per tree node</h2>")
        parts.append(_attribution_section(attribution))
    if roofline is not None:
        parts.append("<h2>Roofline: achieved throughput vs machine "
                     "ceilings</h2>")
        parts.append(_roofline_section(roofline))
    if health is not None:
        parts.append("<h2>Numerical health: conditioning, congruence, "
                     "trajectory</h2>")
        parts.append(_health_section(health))
    if profile is not None:
        parts.append("<h2>Sampling profiler: span-joined icicle</h2>")
        parts.append(_profile_section(profile))
    elif kind_table_text or trace_summary:
        # A trace was rendered but no profile artifact exists (e.g. a
        # pre-profiler trace dir): say so instead of silently omitting.
        parts.append("<h2>Sampling profiler</h2>")
        parts.append(
            "<p class='meta'>no profile captured — record one with "
            "<code>repro profile &lt;cmd&gt;</code> or "
            "<code>repro trace --profile</code></p>"
        )
    if kind_table_text:
        parts.append("<h2>Trace: per-kind aggregates</h2>")
        parts.append(f"<pre>{html.escape(kind_table_text)}</pre>")
    if trace_summary:
        parts.append("<h2>Trace: span tree</h2>")
        parts.append(f"<pre>{html.escape(trace_summary)}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_dashboard(path: str, **kwargs) -> str:
    """Render and write the dashboard; returns the output path."""
    doc = render_dashboard(**kwargs)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(doc)
    return path


def load_memory_json(path: str) -> list[dict]:
    """Read the ``memory.json`` written by ``repro trace`` (readings list)."""
    with open(path) as fh:
        doc = json.load(fh)
    if isinstance(doc, dict):
        return list(doc.get("readings", []))
    return list(doc)
