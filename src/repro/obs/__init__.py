"""Observability: span tracing, metrics export, and model-drift detection.

Zero-dependency instrumentation for the engine/kernel/parallel stack:

* :mod:`repro.obs.trace` — span-based tracer with contextvar propagation
  (worker-thread spans nest under their engine span); off by default,
  no-op-cheap when off, enabled via :func:`enable` or ``REPRO_TRACE=1``.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (load in
  ``chrome://tracing`` / Perfetto), JSONL, and human-readable summaries.
* :mod:`repro.obs.metrics` — per-span-kind wall-time histograms, the
  engine's operation counters, and gauges, snapshotted by :func:`metrics`.
* :mod:`repro.obs.watchdog` — per-iteration comparison of model-predicted
  cost against measured counters/time, warning on drift.  (Imported
  lazily: it depends on :mod:`repro.model`, which depends on the engine
  this package instruments.)
* :mod:`repro.obs.memory` — memoized-value memory tracker fed by engine
  node lifecycle events; pairs measured peak bytes with the cost model's
  prediction per ALS iteration.  Enabled via :func:`memory.enable`,
  ``REPRO_TRACE=1``, or ``REPRO_MEMTRACK=1``.
* :mod:`repro.obs.history` — append-only benchmark history (JSONL) and
  the noise-aware regression comparator behind ``repro bench-diff``.
* :mod:`repro.obs.dashboard` — self-contained HTML dashboard (bench
  sparklines, measured-vs-predicted memory series, trace summaries,
  worker-utilization lanes).
* :mod:`repro.obs.events` — structured JSON-lines run-event log
  (``repro-events/v1``): run start/stop, per-iteration fit/drift/memory,
  node rebuilds, warnings; ring buffer + optional file sink, enabled via
  :func:`events.enable` or ``REPRO_EVENTS``.
* :mod:`repro.obs.serve` — stdlib HTTP OpenMetrics exporter
  (``/metrics``, ``/healthz``, ``/runz``) over the live registry, event
  log, and memory tracker; behind ``repro serve``.
* :mod:`repro.obs.utilization` — per-worker busy/queue-wait/imbalance
  stats derived from ``pool_task`` spans, surfaced by ``repro report``,
  the dashboard, and the E8 scaling experiment.
* :mod:`repro.obs.runctx` — run-scoped telemetry contexts: a
  :class:`RunContext` bundles a ``run_id`` with (optionally) private
  tracer/event-log/metrics/memory instruments so concurrent runs in one
  process keep fully separated telemetry; the :data:`run_registry`
  feeds ``/runz`` and the ``run_id``-labelled ``/metrics`` families.
* :mod:`repro.obs.explain` — planner explainability: the complete
  candidate search with per-node/per-mode predicted cost terms as a
  versioned ``repro-plan/v1`` artifact (``repro explain``).  Imported
  lazily, like the watchdog.
* :mod:`repro.obs.attribution` — measured per-tree-node / per-mode cost
  attribution during real runs, aligned node-for-node with the model's
  prediction; feeds the watchdog's node/mode blame and the
  ``attr.mode*.flops_ratio`` gauges.  Enabled via
  :func:`attribution.enable` or ``REPRO_ATTRIBUTION=1``.
* :mod:`repro.obs.profiler` — sampling wall-clock stack profiler joined
  to the span tree: folded ``lane → span path → frames`` stacks across
  the thread *and* process execution tiers, persisted as a
  ``repro-profile/v1`` artifact (``profile.json`` + ``profile.folded``
  for flamegraph.pl / speedscope).  Enabled via :func:`profiler.enable`,
  ``REPRO_PROFILE=1``, or ``repro profile <cmd>``.
* :mod:`repro.obs.artifacts` — one shared loader for ``repro trace``
  artifact directories (:class:`TraceArtifacts`): missing files are
  absent, malformed files warn and are skipped, consistently across
  ``report`` / ``dashboard`` / ``serve`` replay.
* :mod:`repro.obs.health` — per-iteration numerical-health telemetry:
  Gram conditioning (condition number + truncated eigenvalues per
  mode), relative factor deltas, cross-mode column congruence
  (swamp detection), and a converging/stalled/swamped fit-trajectory
  classifier, persisted as a ``repro-health/v1`` artifact
  (``health.json``).  Enabled via :func:`health.enable`,
  ``REPRO_TRACE=1``, or ``REPRO_HEALTH=1``.

Quickstart::

    from repro import obs

    with obs.trace.tracing():
        repro.cp_als(X, rank=16, strategy="auto")
    obs.export.write_chrome_trace("trace.json")
    print(obs.export.tree_summary())
    print(obs.metrics()["spans"]["mttkrp"])

or, from the shell, ``repro trace decompose data.tns --rank 16``.
"""

from __future__ import annotations

from . import artifacts, attribution, dashboard, events, export, history
from . import health, memory, profiler, runctx, serve, trace, utilization
from .artifacts import TraceArtifacts
from .attribution import AttributionReading, AttributionRecorder
from .buildinfo import build_info, git_revision, version_string
from .events import EventLog, RunState
from .health import (FactorDeltaTracker, HealthCollector, HealthReading,
                     validate_health_artifact, write_health)
from .history import BenchEntry, BenchHistory, DiffResult, compare
from .memory import MemReading, MemTracker
from .metrics import MetricsRegistry, metrics, registry
from .profiler import ProfileStore, validate_profile_artifact, write_profile
from .runctx import RunContext, RunRegistry, run_registry
from .serve import ObsServer
from .trace import (SpanRecord, Tracer, disable, enable, enabled,
                    get_tracer, span, tracing)
from .utilization import UtilizationReport, utilization_from_spans

__all__ = [
    "export", "trace", "watchdog", "memory", "history", "dashboard",
    "events", "serve", "utilization", "attribution", "explain", "runctx",
    "profiler", "artifacts", "health",
    "TraceArtifacts",
    "ProfileStore", "validate_profile_artifact", "write_profile",
    "HealthCollector", "HealthReading", "FactorDeltaTracker",
    "validate_health_artifact", "write_health",
    "RunContext", "RunRegistry", "run_registry",
    "AttributionReading", "AttributionRecorder",
    "PlanExplanation", "explain_plan", "validate_plan_artifact",
    "SpanRecord", "Tracer", "span", "enabled", "enable", "disable",
    "tracing", "get_tracer",
    "MetricsRegistry", "metrics", "registry",
    "MemReading", "MemTracker",
    "EventLog", "RunState", "ObsServer",
    "UtilizationReport", "utilization_from_spans",
    "BenchEntry", "BenchHistory", "DiffResult", "compare",
    "build_info", "git_revision", "version_string",
    "ModelDriftWarning", "DriftWatchdog",
]


def __getattr__(name):
    # Lazy: repro.obs.watchdog -> repro.model -> repro.core.engine -> here.
    if name in ("watchdog", "DriftWatchdog", "ModelDriftWarning", "DriftReading"):
        from . import watchdog

        if name == "watchdog":
            return watchdog
        return getattr(watchdog, name)
    # Lazy for the same reason: explain drives repro.model.planner.
    if name in ("explain", "PlanExplanation", "explain_plan",
                "validate_plan_artifact"):
        from . import explain

        if name == "explain":
            return explain
        return getattr(explain, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
