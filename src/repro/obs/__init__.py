"""Observability: span tracing, metrics export, and model-drift detection.

Zero-dependency instrumentation for the engine/kernel/parallel stack:

* :mod:`repro.obs.trace` — span-based tracer with contextvar propagation
  (worker-thread spans nest under their engine span); off by default,
  no-op-cheap when off, enabled via :func:`enable` or ``REPRO_TRACE=1``.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (load in
  ``chrome://tracing`` / Perfetto), JSONL, and human-readable summaries.
* :mod:`repro.obs.metrics` — per-span-kind wall-time histograms, the
  engine's operation counters, and gauges, snapshotted by :func:`metrics`.
* :mod:`repro.obs.watchdog` — per-iteration comparison of model-predicted
  cost against measured counters/time, warning on drift.  (Imported
  lazily: it depends on :mod:`repro.model`, which depends on the engine
  this package instruments.)

Quickstart::

    from repro import obs

    with obs.trace.tracing():
        repro.cp_als(X, rank=16, strategy="auto")
    obs.export.write_chrome_trace("trace.json")
    print(obs.export.tree_summary())
    print(obs.metrics()["spans"]["mttkrp"])

or, from the shell, ``repro trace decompose data.tns --rank 16``.
"""

from __future__ import annotations

from . import export, trace
from .buildinfo import build_info, git_revision, version_string
from .metrics import MetricsRegistry, metrics, registry
from .trace import (SpanRecord, Tracer, disable, enable, enabled,
                    get_tracer, span, tracing)

__all__ = [
    "export", "trace", "watchdog",
    "SpanRecord", "Tracer", "span", "enabled", "enable", "disable",
    "tracing", "get_tracer",
    "MetricsRegistry", "metrics", "registry",
    "build_info", "git_revision", "version_string",
    "ModelDriftWarning", "DriftWatchdog",
]


def __getattr__(name):
    # Lazy: repro.obs.watchdog -> repro.model -> repro.core.engine -> here.
    if name in ("watchdog", "DriftWatchdog", "ModelDriftWarning", "DriftReading"):
        from . import watchdog

        if name == "watchdog":
            return watchdog
        return getattr(watchdog, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
