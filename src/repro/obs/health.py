"""Numerical-health telemetry: conditioning, factor deltas, swamps/stalls.

The rest of the observability stack watches the *performance* predictions
of the cost model; this module watches the *numerics* of CP-ALS itself.
The normal-equation matrices ``H^(n)`` are frequently ill-conditioned near
convergence (see :mod:`repro.linalg.solve`), the Cholesky→pseudoinverse
fallback used to fire silently, and swamps — long plateaus caused by
near-collinear rank-one components cancelling each other — burn iterations
without any visible signal.  The :class:`HealthCollector` closes that gap
with four cheap per-iteration readings:

* **Gram conditioning** — an ``R x R`` ``eigh`` on the Hadamard Gram the
  solver already holds gives the per-mode condition number ``κ(H^(n))``
  and the count of eigenvalues the :data:`~repro.linalg.solve.PINV_RCOND`
  cutoff would truncate.
* **Factor deltas** — per-mode relative change ``‖ΔU‖_F / ‖U‖_F`` via
  :class:`FactorDeltaTracker`, a public API kept deliberately standalone:
  Ma & Solomonik's pairwise-perturbation scheme gates its approximate
  updates on exactly this quantity (ROADMAP item 4).
* **Congruence / swamp detection** — the maximum cross-mode column
  congruence of the rank-one components (product over modes of the
  normalized factor Grams).  Values near 1 are the classic signature of
  degenerate two-component cancellation.
* **Fit trajectory** — :class:`FitTrajectory` classifies the trailing fit
  series as ``converging`` / ``stalled`` / ``swamped`` with a trailing
  convergence-rate estimate (the decay ratio of successive fit
  increments).

Like the other instruments, collection is **off by default** and
no-op-cheap when off (one :func:`enabled` check at the call site), is
run-context aware (``RunContext.scoped(health=True)`` gives a run its own
private collector), and is **bitwise-neutral**: every reading is computed
from freshly derived arrays, never by mutating or reordering the numeric
path, so factor outputs are bit-identical with telemetry on or off (a
tested invariant).  Enable with :func:`enable`, the :func:`collecting`
context manager, ``REPRO_TRACE=1``, or ``REPRO_HEALTH=1``.

Readings land on :attr:`repro.core.cpals.CPResult.health_readings`,
stream as extended ``repro-events/v1`` iteration fields, persist as a
versioned ``repro-health/v1`` artifact (``health.json``,
:func:`write_health`), and feed the drift watchdog's numerical band, the
``repro report`` health section, the dashboard panel, and the
``repro_health_*`` gauge family.
"""

from __future__ import annotations

import contextvars
import json
import math
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..linalg.solve import PINV_RCOND
from . import _ctx
from .metrics import registry as _metrics

__all__ = [
    "HEALTH_SCHEMA", "TRAJECTORY_CODES",
    "HealthReading", "FactorDeltaTracker", "FitTrajectory",
    "HealthCollector",
    "rel_delta", "gram_conditioning", "congruence_from_grams",
    "congruence_from_factors",
    "enabled", "enable", "disable", "get_collector", "collecting",
    "set_site", "clear_site", "current_site", "record_fallback",
    "health_artifact", "validate_health_artifact", "write_health",
    "format_health",
]

#: schema tag of the ``health.json`` artifact (bump on layout change).
HEALTH_SCHEMA = "repro-health/v1"

#: fit-trajectory labels, and the numeric codes the gauge family uses.
TRAJECTORY_WARMUP = "warmup"
TRAJECTORY_CONVERGING = "converging"
TRAJECTORY_STALLED = "stalled"
TRAJECTORY_SWAMPED = "swamped"
TRAJECTORY_CODES = {
    TRAJECTORY_WARMUP: 0,
    TRAJECTORY_CONVERGING: 1,
    TRAJECTORY_STALLED: 2,
    TRAJECTORY_SWAMPED: 3,
}


def _finite(value) -> float | None:
    """JSON-safe float: None for non-finite / non-numeric values."""
    if isinstance(value, (int, float)) and math.isfinite(value):
        return float(value)
    return None


@dataclass
class HealthReading:
    """One ALS iteration's numerical-health snapshot."""

    iteration: int
    #: per-mode condition number ``κ(H^(n))`` (``inf`` when singular).
    condition_numbers: list[float]
    #: per-mode count of eigenvalues under the ``rcond`` truncation cutoff.
    truncated_eigenvalues: list[int]
    #: per-mode relative factor change ``‖ΔU‖_F / ‖U‖_F``.
    factor_deltas: list[float]
    #: max cross-mode column congruence over component pairs (0 when R < 2).
    congruence: float
    #: the component pair achieving :attr:`congruence`, or None.
    congruence_pair: tuple[int, int] | None
    #: Cholesky→pinv fallbacks recorded during this iteration's solves.
    pinv_fallbacks: int
    fit: float | None
    fit_delta: float | None
    #: ``warmup`` / ``converging`` / ``stalled`` / ``swamped``.
    trajectory: str
    #: trailing decay ratio of fit increments (None until estimable).
    convergence_rate: float | None

    @property
    def max_condition_number(self) -> float:
        """Worst per-mode condition number (``inf`` when any is singular)."""
        return max(self.condition_numbers, default=float("nan"))

    @property
    def worst_mode(self) -> int | None:
        """Mode with the largest condition number, None without readings."""
        if not self.condition_numbers:
            return None
        return int(np.argmax(self.condition_numbers))

    @property
    def n_truncated(self) -> int:
        """Total truncated eigenvalues across modes this iteration."""
        return int(sum(self.truncated_eigenvalues))

    @property
    def max_factor_delta(self) -> float:
        return max(self.factor_deltas, default=float("nan"))

    def to_dict(self) -> dict:
        """JSON-friendly form (non-finite floats become None)."""
        return {
            "iteration": self.iteration,
            "condition_numbers": [_finite(c) for c in self.condition_numbers],
            "truncated_eigenvalues": [int(t)
                                      for t in self.truncated_eigenvalues],
            "factor_deltas": [_finite(d) for d in self.factor_deltas],
            "congruence": _finite(self.congruence),
            "congruence_pair": (list(self.congruence_pair)
                                if self.congruence_pair is not None else None),
            "pinv_fallbacks": int(self.pinv_fallbacks),
            "fit": _finite(self.fit),
            "fit_delta": _finite(self.fit_delta),
            "trajectory": self.trajectory,
            "convergence_rate": _finite(self.convergence_rate),
        }


# ---------------------------------------------------------------------------
# primitive readings
# ---------------------------------------------------------------------------

def rel_delta(U: np.ndarray, previous: np.ndarray | None) -> float:
    """Relative Frobenius change ``‖U - previous‖_F / ‖previous‖_F``.

    ``inf`` with no baseline (first observation, shape change, or a zero
    baseline with a nonzero update) — the "everything changed" convention
    a pairwise-perturbation gate wants for forcing a full update.
    """
    U = np.asarray(U)
    if previous is None or np.shape(previous) != U.shape:
        return float("inf")
    denom = float(np.linalg.norm(previous))
    num = float(np.linalg.norm(U - previous))
    if denom == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / denom


def gram_conditioning(H: np.ndarray,
                      rcond: float = PINV_RCOND) -> tuple[float, int]:
    """``(condition number, truncated eigenvalue count)`` of a PSD ``H``.

    The truncation count uses the same symmetrized ``eigh`` + relative
    cutoff as :func:`repro.linalg.solve.psd_pinv`, so it counts exactly
    the eigenvalues the pseudoinverse fallback would zero out.  ``H`` is
    read, never modified.
    """
    w = np.linalg.eigvalsh((np.asarray(H) + np.asarray(H).T) * 0.5)
    w_max = max(float(w[-1]), 0.0)
    cutoff = rcond * w_max
    n_truncated = int(w.size - np.count_nonzero(w > cutoff))
    w_min = float(w[0])
    if w_min <= 0.0 or w_max == 0.0:
        return float("inf"), n_truncated
    return w_max / w_min, n_truncated


def congruence_from_grams(grams) -> tuple[float, tuple[int, int] | None]:
    """Max cross-mode column congruence from per-mode factor Grams.

    For components ``r != s`` the congruence is the product over modes of
    ``G[r, s] / sqrt(G[r, r] G[s, s])`` — the cosine between the
    vectorized rank-one terms.  ``|congruence| -> 1`` flags the degenerate
    two-component cancellation behind CP swamps.  Returns
    ``(max |congruence|, (r, s))``; ``(0.0, None)`` for rank < 2.
    """
    C: np.ndarray | None = None
    for G in grams:
        G = np.asarray(G)
        d = np.sqrt(np.clip(np.diag(G), 0.0, None))
        denom = np.outer(d, d)
        with np.errstate(divide="ignore", invalid="ignore"):
            normalized = np.where(denom > 0.0, G / denom, 0.0)
        C = normalized if C is None else C * normalized
    if C is None or C.shape[0] < 2:
        return 0.0, None
    off = np.abs(C)
    np.fill_diagonal(off, 0.0)
    r, s = np.unravel_index(int(np.argmax(off)), off.shape)
    return float(off[r, s]), (int(min(r, s)), int(max(r, s)))


def congruence_from_factors(factors) -> tuple[float, tuple[int, int] | None]:
    """:func:`congruence_from_grams` computed from raw factor matrices."""
    return congruence_from_grams(
        np.asarray(U).T @ np.asarray(U) for U in factors
    )


class FactorDeltaTracker:
    """Per-mode relative factor change between updates.

    A deliberately standalone public API: pairwise-perturbation CP-ALS
    (ROADMAP item 4) gates approximate MTTKRP updates on exactly this
    per-mode ``‖ΔU‖_F / ‖U‖_F`` signal, keeping its *own* snapshot of the
    last fully-updated factor.  Two usage styles:

    * ``update(mode, U)`` — compare against (and refresh) the tracker's
      stored snapshot: the pairwise-perturbation style.
    * ``update(mode, U, previous=U_old)`` — compare against a
      caller-supplied baseline without retaining any snapshot: the
      zero-copy style the :class:`HealthCollector` uses inside ``cp_als``.

    The first observation of a mode reports ``inf`` ("everything
    changed"), matching :func:`rel_delta`.
    """

    def __init__(self, n_modes: int = 0):
        self._prev: list[np.ndarray | None] = []
        self._deltas: list[float] = []
        self._ensure(n_modes - 1)

    def _ensure(self, mode: int) -> None:
        while len(self._prev) <= mode:
            self._prev.append(None)
            self._deltas.append(float("inf"))

    @property
    def n_modes(self) -> int:
        return len(self._prev)

    def update(self, mode: int, U: np.ndarray, *,
               previous: np.ndarray | None = None) -> float:
        """Record mode ``mode``'s new factor; returns the relative change.

        With ``previous`` given, the comparison baseline is the caller's
        and no snapshot is stored (the caller owns history); otherwise
        the stored snapshot is compared against and replaced by a copy of
        ``U``.
        """
        self._ensure(mode)
        U = np.asarray(U)
        if previous is not None:
            delta = rel_delta(U, np.asarray(previous))
        else:
            delta = rel_delta(U, self._prev[mode])
            self._prev[mode] = np.array(U, copy=True)
        self._deltas[mode] = delta
        return delta

    def peek(self, mode: int, U: np.ndarray) -> float:
        """The relative change ``U`` *would* record, without recording."""
        if mode >= len(self._prev):
            return float("inf")
        return rel_delta(U, self._prev[mode])

    def delta(self, mode: int) -> float:
        """Last recorded relative change of ``mode`` (``inf`` if never)."""
        if mode >= len(self._deltas):
            return float("inf")
        return self._deltas[mode]

    def deltas(self) -> list[float]:
        """All per-mode last deltas."""
        return list(self._deltas)

    def reset(self) -> None:
        self._prev = [None] * len(self._prev)
        self._deltas = [float("inf")] * len(self._deltas)


class FitTrajectory:
    """Classify the trailing fit series: converging / stalled / swamped.

    Per observation the classifier sees the new fit plus (optionally) the
    current component congruence and returns ``(label, rate)``:

    * ``warmup`` — fewer than three fits seen: nothing to say yet.
    * ``converging`` — recent fit increments are above ``stall_tol``
      without the swamp signature.
    * ``stalled`` — every increment in the trailing ``window`` is below
      ``stall_tol`` (the fit has flat-lined) with components not
      degenerate.
    * ``swamped`` — the congruence is at/above ``swamp_congruence``
      (near-collinear rank-one components) *and* progress is effectively
      gone: either stalled outright or decaying with a trailing rate at or
      above ``swamp_rate`` — the slow crawl that distinguishes a swamp
      from honest convergence.

    ``rate`` is the trailing convergence-rate estimate: the median ratio
    of successive absolute fit increments over the window (≈ the linear
    convergence factor ρ; None until two increments exist).
    """

    def __init__(self, *, window: int = 5, stall_tol: float = 1e-6,
                 swamp_congruence: float = 0.97,
                 swamp_rate: float = 0.95):
        self.window = max(int(window), 2)
        self.stall_tol = float(stall_tol)
        self.swamp_congruence = float(swamp_congruence)
        self.swamp_rate = float(swamp_rate)
        self._fits: list[float] = []
        self.label: str = TRAJECTORY_WARMUP
        self.rate: float | None = None

    def observe(self, fit: float,
                congruence: float | None = None) -> tuple[str, float | None]:
        """Fold one fit (and optional congruence) into the classification."""
        self._fits.append(float(fit))
        deltas = [b - a for a, b in zip(self._fits[:-1], self._fits[1:])]
        trailing = deltas[-self.window:]
        self.rate = self._trailing_rate(trailing)
        if len(self._fits) < 3:
            self.label = TRAJECTORY_WARMUP
            return self.label, self.rate
        stalled = all(abs(d) < self.stall_tol for d in trailing)
        degenerate = (congruence is not None
                      and congruence >= self.swamp_congruence)
        slow = self.rate is not None and self.rate >= self.swamp_rate
        if degenerate and (stalled or slow):
            self.label = TRAJECTORY_SWAMPED
        elif stalled:
            self.label = TRAJECTORY_STALLED
        else:
            self.label = TRAJECTORY_CONVERGING
        return self.label, self.rate

    @staticmethod
    def _trailing_rate(deltas: list[float]) -> float | None:
        ratios = [
            abs(b) / abs(a)
            for a, b in zip(deltas[:-1], deltas[1:])
            if abs(a) > 0.0
        ]
        if not ratios:
            return None
        ordered = sorted(ratios)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    def reset(self) -> None:
        self._fits.clear()
        self.label = TRAJECTORY_WARMUP
        self.rate = None


# ---------------------------------------------------------------------------
# the collector
# ---------------------------------------------------------------------------

class HealthCollector:
    """Per-iteration numerical-health readings for a CP-ALS run.

    Driven by :func:`repro.core.cpals.cp_als` exactly like the memory
    tracker: ``start_run`` once, ``begin_iteration`` /
    per-mode ``observe_mode`` / ``observe_iteration`` per ALS iteration.
    All state mutation happens under one lock (solver fallbacks can be
    reported from pool threads); all inputs are *read*, never modified,
    so collection is bitwise-neutral to the factors.

    Readings accumulate in :attr:`readings` across runs (like
    ``MemTracker.readings``); per-run isolation comes from scoped run
    contexts (``RunContext.scoped(health=True)``).
    """

    def __init__(self, *, window: int = 5, stall_tol: float = 1e-6,
                 swamp_congruence: float = 0.97,
                 rcond: float = PINV_RCOND):
        self._lock = threading.Lock()
        self.window = int(window)
        self.stall_tol = float(stall_tol)
        self.swamp_congruence = float(swamp_congruence)
        self.rcond = float(rcond)
        self.readings: list[HealthReading] = []
        self.delta_tracker = FactorDeltaTracker()
        self.trajectory = FitTrajectory(
            window=window, stall_tol=stall_tol,
            swamp_congruence=swamp_congruence,
        )
        self.total_pinv_fallbacks = 0
        self.total_truncated_eigenvalues = 0
        #: (iteration, mode) sites of recorded fallbacks (bounded).
        self.fallback_sites: list[tuple[int | None, int | None]] = []
        self._n_modes = 0
        self._mode_condition: dict[int, float] = {}
        self._mode_truncated: dict[int, int] = {}
        self._mode_delta: dict[int, float] = {}
        self._iter_fallbacks = 0

    @property
    def has_data(self) -> bool:
        return bool(self.readings)

    # -- run / iteration lifecycle -------------------------------------
    def start_run(self, n_modes: int, rank: int | None = None) -> None:
        """Reset per-run state (trajectory, deltas) for a fresh run."""
        with self._lock:
            self._n_modes = int(n_modes)
            self.delta_tracker = FactorDeltaTracker(n_modes)
            self.trajectory.reset()
            self._clear_scratch_locked()

    def begin_iteration(self, iteration: int) -> None:
        """Open one ALS iteration's collection window."""
        with self._lock:
            self._clear_scratch_locked()

    def _clear_scratch_locked(self) -> None:
        self._mode_condition.clear()
        self._mode_truncated.clear()
        self._mode_delta.clear()
        self._iter_fallbacks = 0

    def observe_mode(self, mode: int, H: np.ndarray,
                     U_prev: np.ndarray, U_new: np.ndarray) -> None:
        """One mode's solve: Gram conditioning + factor delta.

        ``H`` is the Hadamard Gram the solver just used (already
        materialized by :class:`~repro.linalg.gram.GramCache`, so the only
        added cost is one ``R x R`` ``eigh``); ``U_prev`` / ``U_new`` are
        the factor before and after the update (post-normalization).
        """
        cond, n_truncated = gram_conditioning(H, self.rcond)
        delta = self.delta_tracker.update(mode, U_new, previous=U_prev)
        with self._lock:
            self._n_modes = max(self._n_modes, mode + 1)
            self._mode_condition[mode] = cond
            self._mode_truncated[mode] = n_truncated
            self._mode_delta[mode] = delta
            self.total_truncated_eigenvalues += n_truncated

    def record_fallback(self, n_truncated: int, *,
                        mode: int | None = None,
                        iteration: int | None = None) -> None:
        """A Cholesky→pinv fallback fired (reported by the solver)."""
        with self._lock:
            self._iter_fallbacks += 1
            self.total_pinv_fallbacks += 1
            if len(self.fallback_sites) < 4096:
                self.fallback_sites.append((iteration, mode))
        _metrics.incr("health.pinv_fallbacks")

    def observe_iteration(self, iteration: int, *, grams=None,
                          fit: float | None = None) -> HealthReading:
        """Close the iteration into a :class:`HealthReading`.

        ``grams`` is an indexable of per-mode factor Grams (a
        :class:`~repro.linalg.gram.GramCache` works directly) for the
        congruence reading; ``fit`` feeds the trajectory classifier.
        Publishes the ``health.*`` gauges the live ``/metrics`` endpoint
        renders as ``repro_health_*``.
        """
        congruence, pair = 0.0, None
        if grams is not None:
            congruence, pair = congruence_from_grams(
                grams[i] for i in range(len(grams))
            )
        if fit is not None:
            label, rate = self.trajectory.observe(fit, congruence)
        else:
            label, rate = self.trajectory.label, self.trajectory.rate
        with self._lock:
            n_modes = max(
                self._n_modes,
                max(self._mode_condition, default=-1) + 1,
            )
            reading = HealthReading(
                iteration=int(iteration),
                condition_numbers=[
                    self._mode_condition.get(m, float("nan"))
                    for m in range(n_modes)
                ],
                truncated_eigenvalues=[
                    self._mode_truncated.get(m, 0) for m in range(n_modes)
                ],
                factor_deltas=[
                    self._mode_delta.get(m, float("nan"))
                    for m in range(n_modes)
                ],
                congruence=congruence,
                congruence_pair=pair,
                pinv_fallbacks=self._iter_fallbacks,
                fit=fit,
                fit_delta=(
                    self.trajectory._fits[-1] - self.trajectory._fits[-2]
                    if len(self.trajectory._fits) > 1 else None
                ),
                trajectory=label,
                convergence_rate=rate,
            )
            self.readings.append(reading)
            self._clear_scratch_locked()
        max_cond = reading.max_condition_number
        if math.isfinite(max_cond):
            _metrics.set_gauge("health.max_condition_number", max_cond)
        max_delta = reading.max_factor_delta
        if math.isfinite(max_delta):
            _metrics.set_gauge("health.max_factor_delta", max_delta)
        _metrics.set_gauge("health.congruence", reading.congruence)
        _metrics.set_gauge("health.truncated_eigenvalues",
                           reading.n_truncated)
        _metrics.set_gauge("health.trajectory_code",
                           TRAJECTORY_CODES.get(label, -1))
        return reading

    # -- reads ---------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-friendly summary plus the full per-iteration series."""
        with self._lock:
            return {
                "rcond": self.rcond,
                "total_pinv_fallbacks": self.total_pinv_fallbacks,
                "total_truncated_eigenvalues":
                    self.total_truncated_eigenvalues,
                "fallback_sites": [list(site)
                                   for site in self.fallback_sites],
                "n_readings": len(self.readings),
                "readings": [r.to_dict() for r in self.readings],
            }

    def reset(self) -> None:
        with self._lock:
            self.readings.clear()
            self.delta_tracker = FactorDeltaTracker()
            self.trajectory.reset()
            self.total_pinv_fallbacks = 0
            self.total_truncated_eigenvalues = 0
            self.fallback_sites.clear()
            self._n_modes = 0
            self._clear_scratch_locked()

    def __repr__(self) -> str:
        return (
            f"HealthCollector(readings={len(self.readings)}, "
            f"fallbacks={self.total_pinv_fallbacks}, "
            f"trajectory={self.trajectory.label!r})"
        )


# ---------------------------------------------------------------------------
# module switch + solver site attribution
# ---------------------------------------------------------------------------

def _truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in {"1", "true", "yes", "on"}


_collector = HealthCollector()
# REPRO_TRACE turns on the whole observability stack; REPRO_HEALTH can
# enable just the numerical-health side.
_enabled: bool = _truthy(os.environ.get("REPRO_TRACE")) or _truthy(
    os.environ.get("REPRO_HEALTH")
)

#: the in-flight (iteration, mode) a normal-equation solve belongs to —
#: set by the cp_als loop so the solver's fallback telemetry can name its
#: trigger site; (None, None) outside an instrumented run.
_site: contextvars.ContextVar[tuple[int | None, int | None]] = \
    contextvars.ContextVar("repro_health_site", default=(None, None))


def enabled() -> bool:
    """Whether health collection is on (the cp_als call-site guard).

    A run context with an explicit ``health_enabled`` overrides the
    module global, mirroring the tracer/memory/event guards.
    """
    ctx = _ctx.current()
    if ctx is not None and ctx.health_enabled is not None:
        return ctx.health_enabled
    return _enabled


def enable(*, clear: bool = False) -> None:
    """Turn health collection on; ``clear=True`` resets accumulated state."""
    global _enabled
    if clear:
        _collector.reset()
    _enabled = True


def disable() -> None:
    """Turn health collection off (readings are kept until reset)."""
    global _enabled
    _enabled = False


def get_collector() -> HealthCollector:
    """The active collector: the run context's when one carries its own,
    else the process-global collector."""
    ctx = _ctx.current()
    if ctx is not None and ctx.health is not None:
        return ctx.health
    return _collector


@contextmanager
def collecting(*, clear: bool = True):
    """Enable health collection for a block, restoring prior state after.

    Usage::

        with health.collecting() as hc:
            cp_als(X, rank=16, strategy="bdt")
        print(hc.readings[-1].trajectory)
    """
    was = _enabled
    enable(clear=clear)
    try:
        yield _collector
    finally:
        if not was:
            disable()


def set_site(iteration: int | None, mode: int | None) -> None:
    """Mark the (iteration, mode) the next normal-equation solve serves."""
    _site.set((iteration, mode))


def clear_site() -> None:
    _site.set((None, None))


def current_site() -> tuple[int | None, int | None]:
    """The in-flight (iteration, mode) solve site, or (None, None)."""
    return _site.get()


def record_fallback(n_truncated: int) -> None:
    """Solver hook: count a Cholesky→pinv fallback on the active collector,
    attributed to the in-flight solve site (no-op when collection is off)."""
    if not enabled():
        return
    iteration, mode = _site.get()
    get_collector().record_fallback(
        n_truncated, mode=mode, iteration=iteration
    )


# ---------------------------------------------------------------------------
# the repro-health/v1 artifact
# ---------------------------------------------------------------------------

def health_artifact(readings, *, run_id: str | None = None,
                    rank: int | None = None,
                    strategy: str | None = None,
                    rcond: float = PINV_RCOND) -> dict:
    """Wrap per-iteration readings as a ``repro-health/v1`` document."""
    rows = [
        r.to_dict() if isinstance(r, HealthReading) else dict(r)
        for r in readings
    ]
    conds = [
        c for row in rows for c in row.get("condition_numbers", [])
        if isinstance(c, (int, float))
    ]
    return {
        "schema": HEALTH_SCHEMA,
        "run_id": run_id,
        "rank": rank,
        "strategy": strategy,
        "rcond": float(rcond),
        "n_iterations": len(rows),
        "total_pinv_fallbacks": sum(
            int(row.get("pinv_fallbacks", 0)) for row in rows
        ),
        "total_truncated_eigenvalues": sum(
            sum(int(t) for t in row.get("truncated_eigenvalues", []))
            for row in rows
        ),
        "max_condition_number": max(conds) if conds else None,
        "final_trajectory": rows[-1].get("trajectory") if rows else None,
        "readings": rows,
    }


def validate_health_artifact(doc) -> list[str]:
    """Schema/consistency problems (empty list = valid).

    Beyond the envelope tag this checks the invariants consumers lean on:
    iterations strictly increasing, per-mode lists of one consistent
    length, condition numbers ``>= 1`` (or None for singular systems),
    congruence in ``[0, 1]`` (plus rounding slack), known trajectory
    labels, and run-level totals matching the per-iteration sums.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["health artifact must be a JSON object"]
    if doc.get("schema") != HEALTH_SCHEMA:
        errors.append(f"schema {doc.get('schema')!r} != {HEALTH_SCHEMA!r}")
    rcond = doc.get("rcond")
    if not isinstance(rcond, (int, float)) or not rcond > 0:
        errors.append(f"rcond must be > 0, got {rcond!r}")
    readings = doc.get("readings")
    if not isinstance(readings, list):
        return errors + ["readings must be a list"]
    if doc.get("n_iterations") != len(readings):
        errors.append(f"n_iterations={doc.get('n_iterations')} != "
                      f"len(readings)={len(readings)}")
    last_iteration = None
    n_modes = None
    fallback_sum = 0
    truncated_sum = 0
    for i, row in enumerate(readings):
        where = f"readings[{i}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        iteration = row.get("iteration")
        if not isinstance(iteration, int) or iteration < 0:
            errors.append(f"{where}: iteration must be a non-negative int")
        elif last_iteration is not None and iteration <= last_iteration:
            errors.append(f"{where}: iteration {iteration} not increasing "
                          f"(previous {last_iteration})")
        else:
            last_iteration = iteration
        conds = row.get("condition_numbers")
        truncs = row.get("truncated_eigenvalues")
        deltas = row.get("factor_deltas")
        for name, val in (("condition_numbers", conds),
                          ("truncated_eigenvalues", truncs),
                          ("factor_deltas", deltas)):
            if not isinstance(val, list):
                errors.append(f"{where}: {name} must be a list")
        if not all(isinstance(v, list) for v in (conds, truncs, deltas)):
            continue
        if not len(conds) == len(truncs) == len(deltas):
            errors.append(f"{where}: per-mode lists disagree on length")
        if n_modes is None:
            n_modes = len(conds)
        elif len(conds) != n_modes:
            errors.append(f"{where}: {len(conds)} modes, expected {n_modes}")
        for c in conds:
            if c is not None and (not isinstance(c, (int, float))
                                  or c < 1.0 - 1e-9):
                errors.append(f"{where}: condition number {c!r} < 1")
        for t in truncs:
            if not isinstance(t, int) or t < 0:
                errors.append(f"{where}: truncated count {t!r} invalid")
        congruence = row.get("congruence")
        if congruence is not None and (
                not isinstance(congruence, (int, float))
                or not -1e-9 <= congruence <= 1.0 + 1e-6):
            errors.append(f"{where}: congruence {congruence!r} outside "
                          "[0, 1]")
        trajectory = row.get("trajectory")
        if trajectory not in TRAJECTORY_CODES:
            errors.append(f"{where}: unknown trajectory {trajectory!r}")
        fallbacks = row.get("pinv_fallbacks", 0)
        if not isinstance(fallbacks, int) or fallbacks < 0:
            errors.append(f"{where}: pinv_fallbacks {fallbacks!r} invalid")
        else:
            fallback_sum += fallbacks
        truncated_sum += sum(t for t in truncs if isinstance(t, int))
    if doc.get("total_pinv_fallbacks") != fallback_sum:
        errors.append(f"total_pinv_fallbacks="
                      f"{doc.get('total_pinv_fallbacks')} != per-iteration "
                      f"sum {fallback_sum}")
    if doc.get("total_truncated_eigenvalues") != truncated_sum:
        errors.append(f"total_truncated_eigenvalues="
                      f"{doc.get('total_truncated_eigenvalues')} != "
                      f"per-iteration sum {truncated_sum}")
    return errors


def write_health(trace_dir: str, readings=None, *,
                 run_id: str | None = None, rank: int | None = None,
                 strategy: str | None = None,
                 rcond: float | None = None) -> str:
    """Persist ``health.json`` into ``trace_dir`` (validated before write).

    ``readings`` defaults to the active collector's accumulated series.
    """
    collector = None
    if readings is None:
        collector = get_collector()
        readings = collector.readings
    doc = health_artifact(
        readings, run_id=run_id, rank=rank, strategy=strategy,
        rcond=(rcond if rcond is not None
               else (collector.rcond if collector is not None
                     else PINV_RCOND)),
    )
    problems = validate_health_artifact(doc)
    if problems:
        raise ValueError(
            f"refusing to write invalid health artifact: {problems[0]}"
        )
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, "health.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return path


def format_health(doc: dict, *, max_rows: int = 12) -> str:
    """Human-readable table of a ``repro-health/v1`` document.

    Shows the last ``max_rows`` iterations (the interesting end of the
    trajectory) plus a run-level summary line.
    """
    from ..model.report import format_table

    readings = doc.get("readings", [])
    shown = readings[-max_rows:]
    rows = []
    for row in shown:
        conds = [c for c in row.get("condition_numbers", [])
                 if isinstance(c, (int, float))]
        deltas = [d for d in row.get("factor_deltas", [])
                  if isinstance(d, (int, float))]
        rows.append([
            row.get("iteration"),
            f"{max(conds):.3e}" if conds else "singular",
            sum(int(t) for t in row.get("truncated_eigenvalues", [])),
            f"{max(deltas):.3e}" if deltas else "-",
            (f"{row['congruence']:.4f}"
             if isinstance(row.get("congruence"), (int, float)) else "-"),
            row.get("pinv_fallbacks", 0),
            row.get("trajectory", "?"),
        ])
    table = format_table(
        ["iter", "max κ(H)", "trunc", "max ‖ΔU‖/‖U‖", "congruence",
         "pinv", "trajectory"],
        rows,
    )
    skipped = len(readings) - len(shown)
    head = f"(… {skipped} earlier iterations)\n" if skipped > 0 else ""
    summary = (
        f"{doc.get('n_iterations', 0)} iterations, "
        f"{doc.get('total_pinv_fallbacks', 0)} pinv fallbacks, "
        f"{doc.get('total_truncated_eigenvalues', 0)} truncated "
        f"eigenvalues, final trajectory: "
        f"{doc.get('final_trajectory') or 'n/a'}"
    )
    return head + table + "\n" + summary
