"""Memory telemetry: measured memoized-value bytes, fed by engine events.

The cost model *predicts* peak memoized-value memory
(:func:`repro.model.cost.simulate_peak_value_bytes`) and the planner trades
flops against that prediction — but a prediction nobody measures is a
prediction nobody can trust.  This module closes the loop: the engines
report every node-value store and free to a process-global
:class:`MemTracker`, which maintains exact live/peak byte accounting
(per node and in total), per-ALS-iteration windows for comparison against
the model's symbolic prediction, and optional :mod:`tracemalloc` samples
that capture what the allocator *actually* holds on top of the symbolic
count.

Like the tracer, tracking is **off by default** and must be no-op-cheap
when off: engines guard every event with a single module-bool check
(:func:`enabled`).  Enable with :func:`enable` / the :func:`tracking`
context manager, or ``REPRO_TRACE=1`` (the tracer env var turns both on,
so ``repro trace`` gets memory telemetry for free).

Byte accounting is *exact by construction*: a node value matrix is a dense
``nnz_t x R`` float64 array, so ``value.nbytes`` equals the model's
``nnz_t * R * 8`` term and measured-vs-predicted ratios of 1.0 are the
tested invariant, not a tolerance.  The tracemalloc series is the only
place allocator overhead appears, and it gets a tolerance band in the
drift watchdog rather than an exact one.
"""

from __future__ import annotations

import os
import threading
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field

from . import _ctx
from .metrics import registry as _metrics

__all__ = [
    "MemReading", "MemTracker", "enabled", "enable", "disable",
    "tracking", "get_tracker",
]


@dataclass
class MemReading:
    """One ALS iteration's measured-vs-predicted memory comparison."""

    iteration: int
    #: max simultaneously-live memoized-value bytes inside the window.
    measured_peak_bytes: int
    #: the cost model's :attr:`CostReport.peak_value_bytes` (0 if unknown).
    predicted_peak_bytes: int
    #: live memoized-value bytes when the window closed.
    live_bytes: int
    #: kernel workspace arena bytes when the window closed.
    workspace_bytes: int
    #: factor-matrix bytes (dense, constant per run).
    factor_bytes: int
    #: tracemalloc (current, peak) bytes at window close, if sampling.
    traced_current_bytes: int | None = None
    traced_peak_bytes: int | None = None

    @property
    def ratio(self) -> float | None:
        """measured/predicted peak, None when there is no prediction."""
        if self.predicted_peak_bytes <= 0:
            return None
        return self.measured_peak_bytes / self.predicted_peak_bytes

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "measured_peak_bytes": self.measured_peak_bytes,
            "predicted_peak_bytes": self.predicted_peak_bytes,
            "ratio": self.ratio,
            "live_bytes": self.live_bytes,
            "workspace_bytes": self.workspace_bytes,
            "factor_bytes": self.factor_bytes,
            "traced_current_bytes": self.traced_current_bytes,
            "traced_peak_bytes": self.traced_peak_bytes,
        }


@dataclass
class _Sample:
    """A time-stamped total-live-bytes sample (for trace counter tracks)."""

    t: float
    live_bytes: int


class MemTracker:
    """Exact live/peak accounting of memoized-value bytes.

    Engines report node-value lifecycle events keyed by
    ``(id(engine), node_id)`` so multiple engines can share one tracker
    without id collisions.  All mutation happens under one lock: the
    store/free, the running total, and the peak update are atomic, which is
    what makes peak accounting correct when pool workers rebuild
    concurrently.

    Parameters
    ----------
    sample_tracemalloc:
        also record :func:`tracemalloc.get_traced_memory` at iteration
        boundaries (starts tracemalloc if it is not already tracing).
        Symbolic byte counts are exact; this is the allocator-overhead
        view the watchdog's tolerance band watches.
    keep_samples:
        retain up to this many time-stamped total-live samples for the
        Chrome-trace memory counter track (0 disables the series).
    """

    def __init__(self, *, sample_tracemalloc: bool = False,
                 keep_samples: int = 100_000):
        self._lock = threading.Lock()
        self._live: dict[tuple[int, int], int] = {}
        self.live_bytes = 0
        self.peak_bytes = 0
        self._window_peak = 0
        self.n_stores = 0
        self.n_frees = 0
        #: stores whose byte size disagreed with the registered prediction.
        self.n_mismatches = 0
        self._expected: dict[int, list[int]] = {}
        self.readings: list[MemReading] = []
        self.samples: list[_Sample] = []
        self._keep_samples = int(keep_samples)
        self.sample_tracemalloc = bool(sample_tracemalloc)
        self._own_tracemalloc = False
        if self.sample_tracemalloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._own_tracemalloc = True

    # -- engine feeds --------------------------------------------------
    def register_expected(self, engine_key: int,
                          node_bytes: list[int]) -> None:
        """Install the model's per-node byte prediction for one engine.

        Subsequent :meth:`on_store` events from that engine are checked
        against the prediction; disagreements count in ``n_mismatches``
        and the ``mem.node_mismatch`` metric.
        """
        with self._lock:
            self._expected[engine_key] = list(node_bytes)

    def on_store(self, engine_key: int, node_id: int, nbytes: int) -> None:
        """A node value matrix of ``nbytes`` was cached."""
        key = (engine_key, node_id)
        with self._lock:
            prev = self._live.pop(key, 0)
            self._live[key] = nbytes
            self.live_bytes += nbytes - prev
            if self.live_bytes > self.peak_bytes:
                self.peak_bytes = self.live_bytes
            if self.live_bytes > self._window_peak:
                self._window_peak = self.live_bytes
            self.n_stores += 1
            expected = self._expected.get(engine_key)
            if (expected is not None and node_id < len(expected)
                    and expected[node_id] != nbytes):
                self.n_mismatches += 1
                _metrics.incr("mem.node_mismatch")
            self._sample_locked()

    def on_free(self, engine_key: int, node_id: int) -> None:
        """A cached node value was dropped (invalidation or eager free)."""
        key = (engine_key, node_id)
        with self._lock:
            nbytes = self._live.pop(key, None)
            if nbytes is None:
                return
            self.live_bytes -= nbytes
            self.n_frees += 1
            self._sample_locked()

    def release_engine(self, engine_key: int) -> None:
        """Drop every entry of one engine (its values are gone)."""
        with self._lock:
            for key in [k for k in self._live if k[0] == engine_key]:
                self.live_bytes -= self._live.pop(key)
            self._expected.pop(engine_key, None)

    def _sample_locked(self) -> None:
        if len(self.samples) < self._keep_samples:
            from .trace import get_tracer

            self.samples.append(_Sample(get_tracer().now(), self.live_bytes))

    # -- iteration windows ---------------------------------------------
    def begin_window(self) -> None:
        """Start a peak-measurement window (an ALS iteration)."""
        with self._lock:
            self._window_peak = self.live_bytes

    def window_peak(self) -> int:
        """Max total live bytes observed since :meth:`begin_window`."""
        with self._lock:
            return self._window_peak

    def observe_iteration(self, iteration: int, *,
                          predicted_peak_bytes: int = 0,
                          workspace_bytes: int = 0,
                          factor_bytes: int = 0) -> MemReading:
        """Close the current window into a :class:`MemReading`.

        Publishes ``mem.*`` gauges so ``repro trace`` metrics snapshots
        carry the latest reading, and appends to :attr:`readings` — the
        measured-vs-predicted series the dashboard plots.
        """
        traced_current = traced_peak = None
        if self.sample_tracemalloc and tracemalloc.is_tracing():
            traced_current, traced_peak = tracemalloc.get_traced_memory()
        with self._lock:
            reading = MemReading(
                iteration=iteration,
                measured_peak_bytes=self._window_peak,
                predicted_peak_bytes=predicted_peak_bytes,
                live_bytes=self.live_bytes,
                workspace_bytes=workspace_bytes,
                factor_bytes=factor_bytes,
                traced_current_bytes=traced_current,
                traced_peak_bytes=traced_peak,
            )
            self.readings.append(reading)
        _metrics.set_gauge("mem.iter_peak_bytes", reading.measured_peak_bytes)
        _metrics.set_max_gauge("mem.peak_bytes", self.peak_bytes)
        if predicted_peak_bytes > 0:
            _metrics.set_gauge("mem.predicted_peak_bytes",
                               predicted_peak_bytes)
        if traced_peak is not None:
            _metrics.set_max_gauge("mem.tracemalloc_peak_bytes", traced_peak)
        return reading

    # -- reads ---------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-friendly summary + the full per-iteration series."""
        with self._lock:
            return {
                "live_bytes": self.live_bytes,
                "peak_bytes": self.peak_bytes,
                "n_stores": self.n_stores,
                "n_frees": self.n_frees,
                "n_mismatches": self.n_mismatches,
                "n_live_nodes": len(self._live),
                "tracemalloc": self.sample_tracemalloc,
                "readings": [r.to_dict() for r in self.readings],
            }

    def reset(self) -> None:
        with self._lock:
            self._live.clear()
            self._expected.clear()
            self.live_bytes = 0
            self.peak_bytes = 0
            self._window_peak = 0
            self.n_stores = 0
            self.n_frees = 0
            self.n_mismatches = 0
            self.readings.clear()
            self.samples.clear()

    def close(self) -> None:
        """Stop tracemalloc if this tracker started it."""
        if self._own_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._own_tracemalloc = False

    def __repr__(self) -> str:
        return (
            f"MemTracker(live={self.live_bytes}, peak={self.peak_bytes}, "
            f"stores={self.n_stores}, frees={self.n_frees})"
        )


def _truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in {"1", "true", "yes", "on"}


_tracker = MemTracker()
# REPRO_TRACE turns on the whole observability stack; REPRO_MEMTRACK can
# enable just the memory side (e.g. for memory-only profiling runs).
_enabled: bool = _truthy(os.environ.get("REPRO_TRACE")) or _truthy(
    os.environ.get("REPRO_MEMTRACK")
)


def enabled() -> bool:
    """Whether memory tracking is on (the engines' call-site guard).

    A run context with an explicit ``mem_enabled`` overrides the module
    global, mirroring the tracer/event guards.
    """
    ctx = _ctx.current()
    if ctx is not None and ctx.mem_enabled is not None:
        return ctx.mem_enabled
    return _enabled


def enable(*, clear: bool = False, sample_tracemalloc: bool | None = None) -> None:
    """Turn memory tracking on; ``clear=True`` resets accumulated state."""
    global _enabled
    if clear:
        _tracker.reset()
    if sample_tracemalloc is not None:
        _tracker.sample_tracemalloc = bool(sample_tracemalloc)
        if (_tracker.sample_tracemalloc
                and not tracemalloc.is_tracing()):
            tracemalloc.start()
            _tracker._own_tracemalloc = True
    _enabled = True


def disable() -> None:
    """Turn memory tracking off (accumulated state is kept until reset)."""
    global _enabled
    _enabled = False


def get_tracker() -> MemTracker:
    """The active tracker: the run context's when one carries its own,
    else the process-global tracker the engines feed."""
    ctx = _ctx.current()
    if ctx is not None and ctx.memory is not None:
        return ctx.memory
    return _tracker


@contextmanager
def tracking(*, clear: bool = True, sample_tracemalloc: bool = False):
    """Enable memory tracking for a block, restoring prior state after.

    Usage::

        with memory.tracking() as mt:
            cp_als(X, rank=16, strategy="bdt")
        print(mt.peak_bytes, mt.readings)
    """
    was = _enabled
    enable(clear=clear, sample_tracemalloc=sample_tracemalloc or None)
    try:
        yield _tracker
    finally:
        if not was:
            disable()
        _tracker.close()
