"""Metrics registry: span wall-time histograms + counters + gauges.

One process-global :class:`MetricsRegistry` aggregates three kinds of
observation:

* **span stats** — per span kind, a count / total / min / max accumulator
  plus a coarse log2 latency histogram, fed by the tracer on span exit;
* **counters** — a :class:`repro.perf.counters.Counters` instance owned by
  the registry; install it with ``perf.counting(registry.counters)`` (the
  CLI ``repro trace`` command and the experiment runner do) and the
  engine's measured flops/words flow in;
* **gauges / event counts** — last-value and monotonically increasing
  scalars (the drift watchdog's ``drift.*`` readings, kernel-registry
  resolution counts).

:func:`repro.obs.metrics` snapshots everything into one JSON-friendly dict.
"""

from __future__ import annotations

import math
import threading

from ..perf.counters import Counters
from . import _ctx

__all__ = ["SpanStats", "MetricsRegistry", "registry", "metrics"]

#: log2 bucket edges (seconds) for span latency histograms: 1us .. 4s.
_BUCKET_MIN_EXP = -20  # 2**-20 s ~ 0.95 us
_BUCKET_MAX_EXP = 2    # 2**2 s = 4 s


class SpanStats:
    """Streaming wall-time statistics for one span kind."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self.buckets = [0] * (_BUCKET_MAX_EXP - _BUCKET_MIN_EXP + 2)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        if seconds <= 0:
            exp = _BUCKET_MIN_EXP
        else:
            exp = min(max(math.frexp(seconds)[1], _BUCKET_MIN_EXP),
                      _BUCKET_MAX_EXP + 1)
        self.buckets[exp - _BUCKET_MIN_EXP] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
            "log2_buckets": {
                f"<=2^{exp}s": n
                for exp, n in zip(
                    range(_BUCKET_MIN_EXP, _BUCKET_MAX_EXP + 2), self.buckets
                )
                if n
            },
        }


class MetricsRegistry:
    """Thread-safe aggregation point for spans, counters, and gauges."""

    def __init__(self):
        self._lock = threading.Lock()
        self.span_stats: dict[str, SpanStats] = {}
        self.counters = Counters()
        self._gauges: dict[str, float] = {}
        self._events: dict[str, int] = {}

    # -- feeds ---------------------------------------------------------
    def observe_span(self, kind: str, seconds: float) -> None:
        with self._lock:
            stats = self.span_stats.get(kind)
            if stats is None:
                stats = self.span_stats[kind] = SpanStats()
            stats.observe(seconds)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def set_max_gauge(self, name: str, value: float) -> None:
        """High-watermark gauge: keeps the maximum value ever set.

        Used for peaks (``mem.peak_bytes``) where the last value is less
        interesting than the worst one.
        """
        value = float(value)
        with self._lock:
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = value

    def incr(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._events[name] = self._events.get(name, 0) + value

    # -- reads ---------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": self.counters.snapshot(),
                "spans": {
                    kind: stats.snapshot()
                    for kind, stats in sorted(self.span_stats.items())
                },
                "gauges": dict(self._gauges),
                "events": dict(self._events),
            }

    def reset(self) -> None:
        with self._lock:
            self.span_stats.clear()
            self.counters.reset()
            self._gauges.clear()
            self._events.clear()


class _DispatchingRegistry:
    """Call-time dispatching facade over the metrics registry.

    The module-level ``registry`` is imported *by value* all over the
    stack (``from .metrics import registry as _metrics``), so run scoping
    cannot simply rebind the name.  Instead the shared object resolves its
    target on every call: the active :class:`repro.obs.runctx.RunContext`'s
    registry when one with its own metrics is installed, the process-global
    :class:`MetricsRegistry` otherwise.  With no run context active this is
    one extra contextvar read per observation — cheap enough that the
    tracing-off overhead budget (<2%) is unaffected, and the tracing-on
    cost is dominated by the observation itself.
    """

    __slots__ = ("_global",)

    def __init__(self):
        self._global = MetricsRegistry()

    def _target(self) -> MetricsRegistry:
        ctx = _ctx.current()
        if ctx is not None and ctx.metrics is not None:
            return ctx.metrics
        return self._global

    # -- feeds (forwarded) ---------------------------------------------
    def observe_span(self, kind: str, seconds: float) -> None:
        self._target().observe_span(kind, seconds)

    def set_gauge(self, name: str, value: float) -> None:
        self._target().set_gauge(name, value)

    def set_max_gauge(self, name: str, value: float) -> None:
        self._target().set_max_gauge(name, value)

    def incr(self, name: str, value: int = 1) -> None:
        self._target().incr(name, value)

    # -- reads (forwarded) ---------------------------------------------
    @property
    def counters(self) -> Counters:
        return self._target().counters

    @property
    def span_stats(self) -> dict[str, SpanStats]:
        return self._target().span_stats

    def snapshot(self) -> dict:
        return self._target().snapshot()

    def reset(self) -> None:
        self._target().reset()


#: the process-global registry (the tracer and watchdog feed this one);
#: a dispatching facade so run-scoped contexts transparently capture the
#: same call sites.
registry = _DispatchingRegistry()


def metrics() -> dict:
    """Snapshot of the active registry (counters, span stats, gauges)."""
    return registry.snapshot()
