"""Span-based tracer: nested wall-time attribution for the whole stack.

A *span* is a named, timed region (an ALS iteration, one mode's MTTKRP, a
node rebuild, a kernel pass, a pool task).  Spans nest: the tracer keeps the
current span in a :mod:`contextvars` context variable, so a span opened
inside another becomes its child — including across threads, because
:class:`~repro.parallel.pool.WorkerPool` runs each task in a copy of the
submitting thread's context.  The result is a tree that attributes every
microsecond of an engine run to the phase that spent it.

Tracing is **off by default** and must be no-op-cheap when off: ``span()``
returns a shared null context manager without allocating, and hot call
sites additionally guard on :func:`enabled`.  Enable with
:func:`enable` / the :func:`tracing` context manager, or set the
``REPRO_TRACE`` environment variable before import::

    REPRO_TRACE=1 python -m repro decompose nips --scale 0.05

Finished spans accumulate in a process-global :class:`Tracer`; export them
with :mod:`repro.obs.export` (Chrome ``trace_event`` JSON, JSONL, or a
human-readable tree).
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from contextlib import contextmanager

from . import _ctx
from .metrics import registry as _metrics

__all__ = [
    "SpanRecord", "Tracer", "span", "record_span", "enabled", "enable",
    "disable", "tracing", "get_tracer", "current_span_id",
    "merge_subprocess_spans", "set_span_observer",
]


class SpanRecord:
    """One finished (or in-flight) span.

    Times are seconds relative to the owning tracer's epoch, taken from
    ``time.perf_counter_ns``; ``tid`` is the OS thread identifier of the
    thread that opened the span.
    """

    __slots__ = ("id", "parent", "kind", "t0", "t1", "tid", "attrs")

    def __init__(self, id: int, parent: int | None, kind: str, t0: float,
                 tid: int, attrs: dict, t1: float | None = None):
        self.id = id
        self.parent = parent
        self.kind = kind
        self.t0 = t0
        self.t1 = t1
        self.tid = tid
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "parent": self.parent,
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SpanRecord":
        return cls(
            id=int(d["id"]),
            parent=None if d.get("parent") is None else int(d["parent"]),
            kind=str(d["kind"]),
            t0=float(d["t0"]),
            tid=int(d.get("tid", 0)),
            attrs=dict(d.get("attrs", {})),
            t1=None if d.get("t1") is None else float(d["t1"]),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, SpanRecord):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"SpanRecord(id={self.id}, kind={self.kind!r}, "
            f"parent={self.parent}, dur={self.duration * 1e3:.3f}ms)"
        )


class Tracer:
    """Collects finished spans (thread-safe append, snapshot reads)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self.epoch_ns = time.perf_counter_ns()
        #: wall-clock time of the epoch, for correlating traces with logs.
        self.wall_epoch = time.time()

    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return (time.perf_counter_ns() - self.epoch_ns) * 1e-9

    def record(self, rec: SpanRecord) -> None:
        with self._lock:
            self._spans.append(rec)

    def finished(self) -> list[SpanRecord]:
        """Snapshot of all recorded spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
        self.epoch_ns = time.perf_counter_ns()
        self.wall_epoch = time.time()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_ids = itertools.count(1)
_current: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_current_span", default=None
)
_tracer = Tracer()


def _truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in {"1", "true", "yes", "on"}


_enabled: bool = _truthy(os.environ.get("REPRO_TRACE"))


def enabled() -> bool:
    """Whether tracing is currently on (the call-site guard).

    A run context with an explicit ``trace_enabled`` overrides the module
    global, so a scoped run can trace while the process default is off —
    and vice versa — without touching shared state.
    """
    ctx = _ctx.current()
    if ctx is not None and ctx.trace_enabled is not None:
        return ctx.trace_enabled
    return _enabled


def enable(*, clear: bool = False) -> None:
    """Turn tracing on; ``clear=True`` also drops previously recorded spans."""
    global _enabled
    if clear:
        _tracer.clear()
    _enabled = True


def disable() -> None:
    """Turn tracing off (recorded spans are kept until :meth:`Tracer.clear`)."""
    global _enabled
    _enabled = False


def get_tracer() -> Tracer:
    """The active tracer: the run context's when one is installed, else
    the process-global one holding recorded spans."""
    ctx = _ctx.current()
    if ctx is not None and ctx.tracer is not None:
        return ctx.tracer
    return _tracer


def current_span_id() -> int | None:
    """Id of the innermost open span in this context, if any."""
    return _current.get()


class _NullSpan:
    """Reusable no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()

#: optional span lifecycle hook (the sampling profiler's live span-stack
#: mirror).  Kept as a raw module global so the off cost is one load and
#: a None check per span enter/exit — no indirection, no list.
_span_observer = None


def set_span_observer(observer) -> None:
    """Install (or clear, with ``None``) the span lifecycle observer.

    The observer sees every ``push(rec)`` at span enter and ``pop(rec)``
    at span exit, on the thread that runs the span.  One observer at a
    time; :mod:`repro.obs.profiler` owns it while sampling is on.
    """
    global _span_observer
    _span_observer = observer


class _Span:
    __slots__ = ("kind", "attrs", "rec", "_token", "_tracer")

    def __init__(self, kind: str, attrs: dict):
        self.kind = kind
        self.attrs = attrs

    def __enter__(self) -> SpanRecord:
        tracer = get_tracer()
        rec = SpanRecord(
            id=next(_ids),
            parent=_current.get(),
            kind=self.kind,
            t0=tracer.now(),
            tid=threading.get_ident(),
            attrs=self.attrs,
        )
        self.rec = rec
        self._tracer = tracer
        self._token = _current.set(rec.id)
        observer = _span_observer
        if observer is not None:
            observer.push(rec)
        return rec

    def __exit__(self, *exc) -> bool:
        observer = _span_observer
        if observer is not None:
            observer.pop(self.rec)
        _current.reset(self._token)
        rec = self.rec
        rec.t1 = self._tracer.now()
        self._tracer.record(rec)
        _metrics.observe_span(rec.kind, rec.t1 - rec.t0)
        return False


def span(kind: str, **attrs):
    """Context manager timing one region as a span of ``kind``.

    While tracing is disabled this returns a shared null context manager —
    the only cost is the call itself and the keyword dict.  Truly hot call
    sites should guard with ``if trace.enabled():`` and skip even that.
    """
    if not enabled():
        return _NULL_SPAN
    return _Span(kind, attrs)


def record_span(kind: str, t0: float, t1: float, *,
                parent: int | None = None, tid: int | None = None,
                **attrs) -> SpanRecord | None:
    """Record an already-measured region as a finished span.

    For work that happened where the context-manager API cannot reach —
    e.g. inside a worker *process*, whose duration is reported back to the
    parent after the fact.  The span gets a fresh id, the caller's current
    span as parent (unless ``parent`` is given), and feeds the same metrics
    histogram as :func:`span`.  No-op (returns None) while tracing is off.
    """
    if not enabled():
        return None
    tracer = get_tracer()
    rec = SpanRecord(
        id=next(_ids),
        parent=parent if parent is not None else _current.get(),
        kind=kind,
        t0=t0,
        tid=tid if tid is not None else threading.get_ident(),
        attrs=attrs,
        t1=t1,
    )
    tracer.record(rec)
    _metrics.observe_span(kind, rec.duration)
    return rec


def merge_subprocess_spans(span_dicts, *, offset: float,
                           parent: int | None = None,
                           tid: int | None = None) -> list[SpanRecord]:
    """Merge spans recorded inside a worker process into the active tracer.

    ``span_dicts`` is a batch of :meth:`SpanRecord.to_dict` payloads from a
    worker-local tracer whose times are relative to *its* epoch; ``offset``
    (seconds, typically ``worker.wall_epoch - parent.wall_epoch``) shifts
    them onto this tracer's clock.  Every span gets a fresh id from the
    shared counter; intra-batch parent links are remapped, and batch roots
    (spans whose parent is not in the batch) are re-parented to ``parent``
    — normally the ``pool_task`` span the parent process recorded for the
    same task.  ``tid`` overrides the thread lane (pass the worker pid so
    each worker process renders as its own lane).  Each merged span also
    feeds the metrics histograms, exactly as if it had closed locally.

    Returns the merged records (empty while tracing is off).
    """
    if not enabled() or not span_dicts:
        return []
    tracer = get_tracer()
    id_map = {int(d["id"]): next(_ids) for d in span_dicts}
    merged: list[SpanRecord] = []
    for d in span_dicts:
        old_parent = d.get("parent")
        new_parent = (id_map.get(int(old_parent), parent)
                      if old_parent is not None else parent)
        rec = SpanRecord(
            id=id_map[int(d["id"])],
            parent=new_parent,
            kind=str(d["kind"]),
            t0=float(d["t0"]) + offset,
            tid=tid if tid is not None else int(d.get("tid", 0)),
            attrs=dict(d.get("attrs", {})),
            t1=None if d.get("t1") is None else float(d["t1"]) + offset,
        )
        tracer.record(rec)
        if rec.t1 is not None:
            _metrics.observe_span(rec.kind, rec.duration)
        merged.append(rec)
    return merged


@contextmanager
def tracing(*, clear: bool = True):
    """Enable tracing for a block, restoring the previous state after.

    Usage::

        with tracing():
            engine.mttkrp(0)
        spans = get_tracer().finished()
    """
    was = _enabled
    enable(clear=clear)
    try:
        yield _tracer
    finally:
        if not was:
            disable()
