"""Model-drift watchdog: does the cost model still describe reality?

The planner picks a memoization strategy because the analytic model
(:mod:`repro.model.cost`) *predicted* it cheapest — a prediction made once,
before the first iteration.  The watchdog closes the loop at runtime, per
CP-ALS iteration, along two axes:

* **work drift** — measured counter events (flops, words) versus the
  model's per-iteration prediction.  These are equal by construction when
  the model is calibrated (a tested invariant), so the band is tight:
  any excursion means the model's node sizes or conventions no longer
  match what the engine executed (stale symbolic tree, perturbed
  calibration, a bug).
* **time drift** — measured wall time versus the machine model's
  ``alpha*flops + beta*words`` prediction.  Machine constants are only
  ever approximate (a few x off is routine without
  :func:`repro.model.calibrate.calibrate_machine`), so the watchdog
  self-calibrates: the first ``time_warmup`` iterations establish a
  baseline measured/predicted ratio, and later iterations fire only when
  the ratio diverges from that baseline by more than the band.  Short
  predictions (where timer noise dominates) are skipped.
* **numerical health** — the worst per-mode Gram condition number from a
  :class:`repro.obs.health.HealthReading`, expressed as a *truncation
  margin* ``κ(H) * PINV_RCOND`` (1.0 means the pseudoinverse fallback is
  already discarding eigenvalues).  The band fires when a run's normal
  equations drift toward the singular regime, with the worst-conditioned
  mode named as the blame — the numerical analogue of the node blame the
  cost-attribution axis provides.
* **memory drift** — measured peak memoized-value bytes (a
  :class:`repro.obs.memory.MemReading` from the engine-fed tracker)
  versus the model's ``peak_value_bytes``.  Symbolic byte counts are
  exact by construction, so the band is *exact* (ratio must be 1.0);
  cold-start iterations, where the cache has not yet reached the steady
  schedule, are skipped via ``mem_warmup``.  The tracemalloc series —
  what the allocator actually holds, including index structures and
  workspace — only gets a wide tolerance band against the model's total
  memory: it fires on runaway allocator overhead, not on noise.

A reading outside its band emits a structured :class:`ModelDriftWarning`
(fields, not just a string), a ``repro.obs.watchdog`` log record, and
``drift.*`` gauges in the metrics registry — the runtime analogue of the
E5 model-accuracy experiment.
"""

from __future__ import annotations

import logging
import math
import warnings
from dataclasses import dataclass, field

from ..linalg.solve import PINV_RCOND
from ..model.cost import CostReport
from ..perf.counters import Counters
from . import events as _events
from .metrics import registry as _metrics

__all__ = ["ModelDriftWarning", "DriftReading", "DriftWatchdog"]

logger = logging.getLogger("repro.obs.watchdog")


class ModelDriftWarning(UserWarning):
    """Structured warning: one drift metric left its calibrated band.

    When cost attribution was live for the iteration
    (:mod:`repro.obs.attribution`), ``node`` / ``mode`` / ``detail`` name
    the tree node most responsible for the excursion — otherwise they are
    None and the warning describes the aggregate only.
    """

    def __init__(self, metric: str, ratio: float, band: tuple[float, float],
                 iteration: int, strategy: str,
                 node: int | None = None, mode: int | None = None,
                 detail: str | None = None):
        self.metric = metric
        self.ratio = ratio
        self.band = band
        self.iteration = iteration
        self.strategy = strategy
        self.node = node
        self.mode = mode
        self.detail = detail
        msg = (
            f"model drift on {metric!r}: measured/predicted ratio "
            f"{ratio:.3f} outside band [{band[0]:.2f}, {band[1]:.2f}] "
            f"at iteration {iteration} (strategy {strategy!r})"
        )
        if node is not None:
            msg += (
                f"; worst offender node {node}"
                + (f" (rebuilt in mode {mode})" if mode is not None else "")
                + (f": {detail}" if detail else "")
            )
        elif mode is not None:
            msg += (
                f"; worst mode {mode}"
                + (f": {detail}" if detail else "")
            )
        super().__init__(msg)


@dataclass
class DriftReading:
    """One iteration's measured-vs-predicted comparison."""

    iteration: int
    flops_ratio: float
    words_ratio: float
    #: raw measured/predicted wall-time ratio (None in the noise regime).
    time_ratio: float | None
    #: ``time_ratio`` relative to the warmup baseline (None until calibrated).
    time_rel: float | None
    measured_seconds: float
    predicted_seconds: float
    fired: list[str] = field(default_factory=list)
    #: measured/predicted peak memoized-value bytes (None without a tracker
    #: or during the cold-start ``mem_warmup`` iterations).
    mem_ratio: float | None = None
    #: tracemalloc peak / model total memory (None without sampling).
    mem_traced_ratio: float | None = None
    measured_peak_bytes: int | None = None
    predicted_peak_bytes: int | None = None
    #: worst Gram condition number times ``PINV_RCOND``, clamped to 1.0
    #: (None without a health reading).  1.0 = singular / truncating.
    condition_margin: float | None = None

    @property
    def ok(self) -> bool:
        return not self.fired


class DriftWatchdog:
    """Per-iteration comparator between a :class:`CostReport` and reality.

    Parameters
    ----------
    cost:
        the active strategy's predicted per-iteration cost (e.g.
        :func:`repro.model.cost.cost_from_symbolic` on the engine's tree).
    work_band:
        allowed measured/predicted ratio for flops and words.  Tight by
        default (±10%): counters and model share conventions exactly.
    time_band:
        allowed drift of the wall-time ratio *relative to the warmup
        baseline* — (0.33, 3.0) means "fire when an iteration runs 3x
        slower or faster than the calibrated expectation".
    time_warmup:
        iterations used to establish the baseline time ratio (their
        median); time drift never fires during warmup.
    min_predicted_seconds:
        skip the time comparison entirely when the model predicts less
        than this (timer noise regime).
    mem_band:
        allowed measured/predicted ratio for peak memoized-value bytes.
        *Exact* by default — symbolic byte counts are deterministic
        integers, so any deviation is a real accounting bug.
    mem_warmup:
        iterations skipped before the memory comparison starts: the first
        iteration builds the cache from cold, so its peak legitimately
        undershoots the steady-state prediction.
    mem_traced_band:
        tolerance band for the tracemalloc peak relative to the model's
        ``total_memory_bytes`` (values + index structures).  Wide by
        default: tracemalloc sees every allocation in the process, so
        this only flags runaway allocator overhead.
    condition_band:
        allowed truncation margin ``κ(H) * PINV_RCOND`` of the worst-mode
        Gram system, checked when a health reading accompanies the
        iteration.  The default upper bound 1e-2 fires once the condition
        number comes within two decades of the pseudoinverse cutoff
        (κ >= 1e10 at the default rcond) — close enough to the singular
        regime that factor updates are numerically suspect.
    warn:
        emit :class:`ModelDriftWarning` + log records on excursions
        (metrics gauges are recorded either way).
    """

    def __init__(self, cost: CostReport, *,
                 work_band: tuple[float, float] = (0.9, 1.1),
                 time_band: tuple[float, float] = (0.33, 3.0),
                 time_warmup: int = 2,
                 min_predicted_seconds: float = 1e-4,
                 mem_band: tuple[float, float] = (1.0, 1.0),
                 mem_warmup: int = 1,
                 mem_traced_band: tuple[float, float] = (0.0, 8.0),
                 condition_band: tuple[float, float] = (0.0, 1e-2),
                 warn: bool = True):
        self.cost = cost
        self.work_band = work_band
        self.time_band = time_band
        self.time_warmup = max(int(time_warmup), 1)
        self.min_predicted_seconds = min_predicted_seconds
        self.mem_band = mem_band
        self.mem_warmup = max(int(mem_warmup), 0)
        self.mem_traced_band = mem_traced_band
        self.condition_band = condition_band
        self.warn = warn
        self.readings: list[DriftReading] = []
        self._warmup_ratios: list[float] = []
        self.time_baseline: float | None = None

    def observe(self, iteration: int, counters: Counters,
                seconds: float, mem=None, attribution=None,
                health=None) -> DriftReading:
        """Compare one iteration's measurements against the model.

        ``mem`` is an optional :class:`repro.obs.memory.MemReading` for
        the same iteration; when given (and past ``mem_warmup``) the
        measured peak joins the banded checks.  ``attribution`` is an
        optional :class:`repro.obs.attribution.AttributionReading` for the
        iteration; when given, work/time excursions are localized to the
        worst-offending tree node and its rebuild mode instead of flagging
        the whole iteration.  ``health`` is an optional
        :class:`repro.obs.health.HealthReading`; when given, the worst
        per-mode Gram condition number joins the banded checks as a
        truncation margin, blaming the worst-conditioned mode.
        """
        cost = self.cost
        flops_ratio = _ratio(counters.flops, cost.flops_per_iteration)
        words_ratio = _ratio(counters.words, cost.words_per_iteration)
        time_ratio = time_rel = None
        if cost.predicted_seconds >= self.min_predicted_seconds:
            time_ratio = _ratio(seconds, cost.predicted_seconds)
            if self.time_baseline is None:
                self._warmup_ratios.append(time_ratio)
                if len(self._warmup_ratios) >= self.time_warmup:
                    self.time_baseline = _median(self._warmup_ratios)
            else:
                time_rel = time_ratio / self.time_baseline
        condition_margin = None
        if health is not None:
            max_cond = health.max_condition_number
            if isinstance(max_cond, (int, float)) and not math.isnan(
                    max_cond):
                # A singular Gram (inf) clamps to margin 1.0: "the
                # pseudoinverse is already truncating".
                condition_margin = min(max_cond * PINV_RCOND, 1.0)
        mem_ratio = mem_traced_ratio = None
        if mem is not None and iteration >= self.mem_warmup:
            if cost.peak_value_bytes > 0:
                mem_ratio = _ratio(mem.measured_peak_bytes,
                                   cost.peak_value_bytes)
            if (mem.traced_peak_bytes is not None
                    and cost.total_memory_bytes > 0):
                mem_traced_ratio = _ratio(mem.traced_peak_bytes,
                                          cost.total_memory_bytes)
        reading = DriftReading(
            iteration=iteration,
            flops_ratio=flops_ratio,
            words_ratio=words_ratio,
            time_ratio=time_ratio,
            time_rel=time_rel,
            measured_seconds=seconds,
            predicted_seconds=cost.predicted_seconds,
            mem_ratio=mem_ratio,
            mem_traced_ratio=mem_traced_ratio,
            measured_peak_bytes=(
                mem.measured_peak_bytes if mem is not None else None
            ),
            predicted_peak_bytes=cost.peak_value_bytes,
            condition_margin=condition_margin,
        )
        checks = [
            ("flops", flops_ratio, self.work_band),
            ("words", words_ratio, self.work_band),
        ]
        if time_ratio is not None:
            _metrics.set_gauge("drift.time_ratio", time_ratio)
        if time_rel is not None:
            checks.append(("time", time_rel, self.time_band))
        if mem_ratio is not None:
            checks.append(("mem", mem_ratio, self.mem_band))
        if mem_traced_ratio is not None:
            checks.append(("mem_traced", mem_traced_ratio,
                           self.mem_traced_band))
        if condition_margin is not None:
            checks.append(("condition", condition_margin,
                           self.condition_band))
        _GAUGE_NAMES = {"time": "drift.time_rel",
                        "condition": "drift.condition_margin"}
        for metric, ratio, band in checks:
            _metrics.set_gauge(
                _GAUGE_NAMES.get(metric, f"drift.{metric}_ratio"), ratio
            )
            if not band[0] <= ratio <= band[1]:
                reading.fired.append(metric)
                _metrics.incr("drift.warnings")
                blame = None
                if attribution is not None and metric in ("flops", "words",
                                                          "time"):
                    blame = attribution.blame(metric)
                node = blame.get("node") if blame else None
                mode = blame.get("rebuild_mode") if blame else None
                detail = blame.get("why") if blame else None
                if metric == "condition" and health is not None:
                    mode = health.worst_mode
                    detail = (
                        f"condition number {health.max_condition_number:.3e}"
                        f" (rcond {PINV_RCOND:g})"
                    )
                message = (
                    f"model drift on {metric!r}: ratio {ratio:.3f} "
                    f"outside band [{band[0]:.2f}, {band[1]:.2f}]"
                )
                if node is not None:
                    message += (
                        f"; worst offender node {node}"
                        + (f" (mode {mode})" if mode is not None else "")
                        + (f": {detail}" if detail else "")
                    )
                elif mode is not None:
                    message += (
                        f"; worst mode {mode}"
                        + (f": {detail}" if detail else "")
                    )
                _events.emit(
                    "warning",
                    message=message,
                    metric=metric, ratio=ratio, iteration=iteration,
                    strategy=cost.strategy.name,
                    node=node, mode=mode,
                )
                if self.warn:
                    w = ModelDriftWarning(
                        metric, ratio, band, iteration,
                        cost.strategy.name,
                        node=node, mode=mode, detail=detail,
                    )
                    warnings.warn(w, stacklevel=3)
                    logger.warning(
                        "model drift: metric=%s ratio=%.3f band=[%.2f, %.2f] "
                        "iteration=%d strategy=%s node=%s mode=%s",
                        metric, ratio, band[0], band[1], iteration,
                        cost.strategy.name, node, mode,
                    )
        self.readings.append(reading)
        return reading

    def n_fired(self) -> int:
        """Total out-of-band readings so far."""
        return sum(len(r.fired) for r in self.readings)


def _ratio(measured: float, predicted: float) -> float:
    if predicted <= 0:
        return float("inf") if measured > 0 else 1.0
    return measured / predicted


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])
