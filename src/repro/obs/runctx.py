"""Run-scoped telemetry contexts and the registry of concurrent runs.

Until PR 7 the observability stack hung off process-global singletons —
one :class:`~repro.obs.trace.Tracer`, one
:class:`~repro.obs.events.EventLog`, one
:class:`~repro.obs.metrics.MetricsRegistry`, one
:class:`~repro.obs.memory.MemTracker` — which is exactly one concurrent
run short of the decomposition-as-a-service roadmap.  A
:class:`RunContext` bundles a ``run_id`` with a full set of instruments
and rides a :mod:`contextvars` variable (:mod:`repro.obs._ctx`) that the
instrument modules consult on every guarded call, so the *call sites*
(engines, pools, kernels) did not change at all — the globals became
thin compatibility shims that defer to the active context.

Two flavors:

* :meth:`RunContext.ambient` — no instruments of its own; everything
  still lands in the global singletons, but events are stamped with the
  ``run_id`` and the run shows up on ``/runz``.  This is what a bare
  ``cp_als`` call gets, and it behaves byte-for-byte like the pre-context
  stack.
* :meth:`RunContext.scoped` — fresh private instruments with explicit
  enable flags.  Two scoped runs in one process (threads or interleaved)
  keep fully separated spans/events/metrics/memory with zero cross-talk,
  and ``/metrics`` labels each run's families with its ``run_id``.

The process-wide :data:`run_registry` tracks every context that has been
activated (finished runs are kept, bounded, for post-hoc inspection);
``repro serve`` renders it on ``/runz``.
"""

from __future__ import annotations

import collections
import threading
import time
import uuid
from contextlib import contextmanager

from . import _ctx
from . import events as _events_mod
from . import health as _health_mod
from . import memory as _memory_mod
from . import profiler as _profiler_mod
from . import trace as _trace_mod
from .metrics import MetricsRegistry

__all__ = [
    "RunContext", "RunRegistry", "run_registry", "new_run_id",
    "current", "using",
]


def new_run_id() -> str:
    """A short unique run identifier (``run-<8 hex chars>``)."""
    return f"run-{uuid.uuid4().hex[:8]}"


class RunContext:
    """One run's identity plus (optionally) its own telemetry instruments.

    Instrument fields left as ``None`` defer to the process-global
    singleton; enable flags left as ``None`` defer to the module-global
    on/off switches.  :meth:`ambient` leaves everything deferred;
    :meth:`scoped` pins all of it.
    """

    __slots__ = ("run_id", "tracer", "events", "metrics", "memory",
                 "profiler", "health", "trace_enabled", "events_enabled",
                 "mem_enabled", "profile_enabled", "health_enabled",
                 "created_at", "finished_at", "status", "meta")

    def __init__(self, run_id: str | None = None, *,
                 tracer=None, events=None, metrics=None, memory=None,
                 profiler=None, health=None,
                 trace_enabled: bool | None = None,
                 events_enabled: bool | None = None,
                 mem_enabled: bool | None = None,
                 profile_enabled: bool | None = None,
                 health_enabled: bool | None = None,
                 meta: dict | None = None):
        self.run_id = run_id or new_run_id()
        self.tracer = tracer
        self.events = events
        self.metrics = metrics
        self.memory = memory
        self.profiler = profiler
        self.health = health
        self.trace_enabled = trace_enabled
        self.events_enabled = events_enabled
        self.mem_enabled = mem_enabled
        self.profile_enabled = profile_enabled
        self.health_enabled = health_enabled
        self.created_at = time.time()
        self.finished_at: float | None = None
        self.status = "created"
        self.meta = dict(meta or {})

    # -- constructors --------------------------------------------------
    @classmethod
    def ambient(cls, run_id: str | None = None, **meta) -> "RunContext":
        """A context that aliases the global singletons (legacy behavior
        plus a run_id stamp on events and a ``/runz`` entry)."""
        return cls(run_id, meta=meta)

    @classmethod
    def scoped(cls, run_id: str | None = None, *,
               trace: bool = False, events: bool = True, mem: bool = False,
               profile: bool = False, health: bool = False,
               profile_hz: float | None = None,
               sink_path: str | None = None, events_maxlen: int = 4096,
               **meta) -> "RunContext":
        """A context with fresh, fully isolated instruments.

        The enable flags are pinned (not deferred), so a scoped run is
        unaffected by — and does not affect — the module-global switches.
        With ``profile=True`` the context owns a private
        :class:`~repro.obs.profiler.ProfileStore`; :func:`using` keeps
        the process-wide sampler thread alive for the activation.
        """
        return cls(
            run_id,
            tracer=_trace_mod.Tracer(),
            events=_events_mod.EventLog(maxlen=events_maxlen,
                                        sink_path=sink_path),
            metrics=MetricsRegistry(),
            memory=_memory_mod.MemTracker(),
            profiler=(_profiler_mod.ProfileStore(hz=profile_hz)
                      if profile else None),
            health=_health_mod.HealthCollector(),
            trace_enabled=trace,
            events_enabled=events,
            mem_enabled=mem,
            profile_enabled=profile,
            health_enabled=health,
            meta=meta,
        )

    # -- introspection -------------------------------------------------
    @property
    def owns_telemetry(self) -> bool:
        """True for scoped contexts (private instruments), False for
        ambient ones riding the global singletons."""
        return self.metrics is not None

    def describe(self) -> dict:
        """JSON-friendly summary for ``/runz``."""
        out = {
            "run_id": self.run_id,
            "status": self.status,
            "scoped": self.owns_telemetry,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "trace_enabled": self.trace_enabled,
            "events_enabled": self.events_enabled,
            "mem_enabled": self.mem_enabled,
            "profile_enabled": self.profile_enabled,
            "health_enabled": self.health_enabled,
            "meta": self.meta,
        }
        if self.events is not None:
            out["n_events"] = len(self.events)
            out["run"] = self.events.run.to_dict()
        if self.tracer is not None:
            out["n_spans"] = len(self.tracer)
        if self.profiler is not None:
            out["n_profile_samples"] = self.profiler.n_samples
        return out

    def __repr__(self) -> str:
        kind = "scoped" if self.owns_telemetry else "ambient"
        return f"RunContext({self.run_id!r}, {kind}, status={self.status!r})"


class RunRegistry:
    """Thread-safe registry of run contexts, past and present.

    Bounded: once more than ``keep_finished`` non-active runs accumulate,
    the oldest finished ones are evicted (active runs are never evicted).
    """

    def __init__(self, keep_finished: int = 64):
        self._lock = threading.Lock()
        self._runs: collections.OrderedDict[str, RunContext] = \
            collections.OrderedDict()
        self.keep_finished = int(keep_finished)

    def register(self, ctx: RunContext) -> RunContext:
        with self._lock:
            self._runs[ctx.run_id] = ctx
            self._runs.move_to_end(ctx.run_id)
            finished = [rid for rid, c in self._runs.items()
                        if c.status != "running"]
            for rid in finished[:max(len(finished) - self.keep_finished, 0)]:
                del self._runs[rid]
        return ctx

    def unregister(self, run_id: str) -> None:
        with self._lock:
            self._runs.pop(run_id, None)

    def get(self, run_id: str) -> RunContext | None:
        with self._lock:
            return self._runs.get(run_id)

    def runs(self) -> list[RunContext]:
        """All registered contexts, oldest first."""
        with self._lock:
            return list(self._runs.values())

    def active(self) -> list[RunContext]:
        return [c for c in self.runs() if c.status == "running"]

    def describe(self) -> list[dict]:
        return [c.describe() for c in self.runs()]

    def clear(self) -> None:
        with self._lock:
            self._runs.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._runs)


#: the process-wide registry that ``/runz`` serves.
run_registry = RunRegistry()


def current() -> RunContext | None:
    """The active run context in this execution context, if any."""
    return _ctx.current()


@contextmanager
def using(ctx: RunContext, *, register: bool = True):
    """Activate ``ctx`` for a block (and register it for ``/runz``).

    The context stays in the registry after the block — finished, not
    gone — so a completed run's telemetry remains inspectable until the
    registry evicts it.
    """
    if register:
        run_registry.register(ctx)
    ctx.status = "running"
    profiled = bool(ctx.profile_enabled)
    bind_token = None
    if profiled:
        _profiler_mod.retain_sampler(
            ctx.profiler.hz if ctx.profiler is not None else None
        )
        # Samples on this thread taken outside any span (or with tracing
        # off entirely) still belong to this run's store.
        bind_token = _profiler_mod.bind_thread(ctx.profiler)
    token = _ctx.activate(ctx)
    try:
        yield ctx
    except BaseException:
        ctx.status = "failed"
        raise
    else:
        ctx.status = "finished"
    finally:
        ctx.finished_at = time.time()
        _ctx.deactivate(token)
        if profiled:
            if bind_token is not None:
                _profiler_mod.unbind_thread(bind_token)
            _profiler_mod.release_sampler()
