"""Planner explainability: the full candidate search as a data artifact.

``repro plan`` prints a ranking table and throws the search away; this
module keeps it.  :func:`explain_plan` runs the ordinary planner
(:func:`repro.model.planner.plan`) and decomposes every scored candidate
into the terms the decision was actually made from: tree shape, per-node
and per-mode predicted flop/word/byte terms
(:func:`repro.model.cost.node_cost_terms`), the alpha/beta split of the
time prediction, the dominating cost term, and each runner-up's margin
over the winner.  The result serializes as a versioned ``repro-plan/v1``
payload inside the shared ``repro-bench/v1`` artifact envelope, so plan
decisions are diffable across commits like any other benchmark artifact.

Imported lazily from :mod:`repro.obs` (like the watchdog): it depends on
:mod:`repro.model`, which depends on the engine this package instruments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .buildinfo import ARTIFACT_SCHEMA, artifact_envelope

__all__ = [
    "PLAN_SCHEMA", "CandidateExplanation", "PlanExplanation",
    "explain_plan", "validate_plan_artifact",
]

#: payload schema tag for plan-explanation artifacts (bump on change).
PLAN_SCHEMA = "repro-plan/v1"


@dataclass
class CandidateExplanation:
    """One candidate's complete predicted-cost decomposition.

    ``nodes`` holds one dict per tree node (root included) with the
    per-node flop/word/byte addends; their sums reproduce the iteration
    totals exactly.  ``margin_vs_best_seconds`` is this candidate's
    predicted slowdown over the winner (0.0 for the winner itself) and
    ``margin_dominant_term`` names which term — ``"flops"`` or
    ``"words"`` — contributes most of that margin.
    """

    name: str
    signature: str
    spec: object
    rank_position: int
    feasible: bool
    depth: int
    n_nodes: int
    predicted_seconds: float
    flops_per_iteration: int
    words_per_iteration: int
    peak_value_bytes: int
    index_bytes: int
    total_memory_bytes: int
    seconds_from_flops: float
    seconds_from_words: float
    dominant_term: str
    margin_vs_best_seconds: float
    margin_dominant_term: str | None
    nodes: list[dict] = field(default_factory=list)
    per_mode: dict[int, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "signature": self.signature,
            "spec": _spec_to_json(self.spec),
            "rank_position": self.rank_position,
            "feasible": self.feasible,
            "depth": self.depth,
            "n_nodes": self.n_nodes,
            "predicted_seconds": self.predicted_seconds,
            "flops_per_iteration": self.flops_per_iteration,
            "words_per_iteration": self.words_per_iteration,
            "peak_value_bytes": self.peak_value_bytes,
            "index_bytes": self.index_bytes,
            "total_memory_bytes": self.total_memory_bytes,
            "seconds_from_flops": self.seconds_from_flops,
            "seconds_from_words": self.seconds_from_words,
            "dominant_term": self.dominant_term,
            "margin_vs_best_seconds": self.margin_vs_best_seconds,
            "margin_dominant_term": self.margin_dominant_term,
            "nodes": self.nodes,
            "per_mode": {str(m): v for m, v in sorted(self.per_mode.items())},
        }


@dataclass
class PlanExplanation:
    """The planner's full decision trace for one (tensor, rank) problem.

    ``candidates`` preserves the planner's predicted order (winner first).
    ``report`` keeps the live :class:`~repro.model.planner.PlannerReport`
    for callers that go on to run the winner (``repro explain
    --measure``); it is not serialized.
    """

    tensor_shape: tuple[int, ...]
    tensor_nnz: int
    rank: int
    machine: dict
    memory_budget: int | None
    count_method: str
    best: str
    candidates: list[CandidateExplanation]
    notes: list[str]
    report: object = field(repr=False, compare=False, default=None)
    #: execution tier/layout decision (repro.model.cost.execution_candidates):
    #: {"n_workers", "recommended": {...}, "candidates": [...]} or None.
    execution: dict | None = None

    def to_dict(self) -> dict:
        """The ``repro-plan/v1`` payload."""
        return {
            "schema": PLAN_SCHEMA,
            "tensor": {
                "shape": list(self.tensor_shape),
                "nnz": self.tensor_nnz,
                "order": len(self.tensor_shape),
            },
            "rank": self.rank,
            "machine": self.machine,
            "memory_budget": self.memory_budget,
            "count_method": self.count_method,
            "best": self.best,
            "n_candidates": len(self.candidates),
            "candidates": [c.to_dict() for c in self.candidates],
            "notes": list(self.notes),
            "execution": self.execution,
        }

    def to_artifact(self, **meta) -> dict:
        """The payload wrapped in the shared ``repro-bench/v1`` envelope."""
        return artifact_envelope(
            "plan-explain", self.to_dict(),
            rank=self.rank, memory_budget=self.memory_budget,
            count_method=self.count_method, **meta,
        )

    def summary(self, top: int = 8) -> str:
        """Human-readable explanation: ranking plus the winner's tree."""
        from ..model.report import format_table

        rows = []
        for c in self.candidates[:top]:
            rows.append([
                c.rank_position, c.name, "yes" if c.feasible else "NO",
                round(c.predicted_seconds * 1e3, 3),
                c.dominant_term,
                ("-" if c.margin_vs_best_seconds is None
                 else round(c.margin_vs_best_seconds * 1e3, 3)),
                c.margin_dominant_term or "-",
                round(c.total_memory_bytes / 1e6, 2),
            ])
        parts = [format_table(
            ["#", "candidate", "feasible", "pred ms", "dominant",
             "margin ms", "margin from", "mem MB"],
            rows,
            title=(f"plan explanation: {len(self.candidates)} candidates, "
                   f"machine={self.machine.get('name')}, "
                   f"best={self.best}"),
        )]
        best = self.candidates[0]
        node_rows = [
            [n["node"], ",".join(map(str, n["modes"])),
             "-" if n["parent"] is None else n["parent"],
             "-" if n["rebuild_mode"] is None else n["rebuild_mode"],
             n["nnz"], n["flops"], n["words"],
             round(n["value_bytes"] / 1e6, 3)]
            for n in best.nodes
        ]
        parts.append(format_table(
            ["node", "modes", "parent", "built in", "nnz", "flops/iter",
             "words/iter", "value MB"],
            node_rows,
            title=f"winner {best.name!r}: per-node predicted cost terms",
        ))
        if self.execution:
            rec = self.execution.get("recommended") or {}
            exec_rows = []
            for c in self.execution.get("candidates", []):
                terms = c.get("terms", {})
                overhead = (
                    terms.get("gil_seconds", 0.0)
                    + terms.get("sync_seconds", 0.0)
                    + terms.get("ipc_seconds", 0.0)
                    + terms.get("reduction_seconds", 0.0)
                )
                exec_rows.append([
                    c["tier"], c["layout"],
                    "yes" if c["feasible"] else "NO",
                    ("-" if not c["feasible"]
                     else round(c["predicted_seconds"] * 1e3, 3)),
                    ("-" if not c["feasible"]
                     else round(c["index_bytes"] / 1e6, 3)),
                    ("-" if not c["feasible"]
                     else round(overhead * 1e3, 3)),
                    ("<-" if (c["tier"] == rec.get("tier")
                              and c["layout"] == rec.get("layout")) else ""),
                ])
            parts.append(format_table(
                ["tier", "layout", "feasible", "pred ms", "index MB",
                 "overhead ms", "pick"],
                exec_rows,
                title=(f"execution decision at "
                       f"{self.execution.get('n_workers')} workers: "
                       f"{rec.get('tier')}/{rec.get('layout')}"),
            ))
            bw = self.execution.get("bandwidth_workers")
            bw_source = self.execution.get("bandwidth_workers_source")
            roofline = self.execution.get("roofline") or {}
            if roofline.get("calibrated"):
                io_bytes = rec.get("terms", {}).get("io_lower_bound_bytes")
                pred = rec.get("predicted_seconds")
                peak = roofline["peak_bandwidth_gbs"]
                sat = roofline["saturation_workers"]
                line = (f"roofline: bandwidth_workers={bw} ({bw_source}); "
                        f"ceiling {peak:.2f} GB/s saturates at {sat} "
                        f"worker(s)")
                if io_bytes and pred:
                    floor = io_bytes / 1e9 / peak
                    frac = min(1.0, floor / pred)
                    line += (
                        f"; {rec.get('tier')}/{rec.get('layout')} must move "
                        f">={io_bytes / 1e6:.3f} MB/iter -> floor "
                        f"{floor * 1e3:.3f} ms, {frac * 100.0:.0f}% of the "
                        f"bandwidth roofline at the predicted time"
                    )
                    if frac >= 0.5:
                        line += f"; >{sat} workers cannot help"
                parts.append(line)
            else:
                parts.append(
                    f"roofline: uncalibrated — bandwidth_workers={bw} "
                    f"({bw_source}); run 'repro roofline' to measure this "
                    f"host's ceilings"
                )
        return "\n\n".join(parts)


def _spec_to_json(spec) -> object:
    """Nested tuple spec -> nested lists (JSON has no tuples)."""
    if isinstance(spec, tuple):
        return [_spec_to_json(s) for s in spec]
    return spec


def explain_plan(
    tensor,
    rank: int,
    *,
    candidates: Sequence | None = None,
    memory_budget: int | None = None,
    machine=None,
    count_method: str = "exact",
    sample_size: int = 100_000,
    random_state=0,
    n_workers: int | None = None,
) -> PlanExplanation:
    """Run the planner and keep the complete decision trace.

    Identical inputs and candidate search to
    :func:`repro.model.planner.plan` — the explanation is built from the
    planner's own :class:`~repro.model.cost.CostReport` per candidate
    (including its ``node_nnz``), so no distinct-counting is repeated and
    the artifact reflects exactly the numbers the decision used.  When
    ``n_workers`` is given the explanation also carries the execution
    tier/layout decision ({thread, process} x {numpy, alto}) priced with
    the same machine model.
    """
    from ..model.cost import (execution_candidates, node_cost_terms,
                              per_mode_cost, recommend_execution)
    from ..model.planner import plan

    report = plan(
        tensor, rank, candidates=candidates, memory_budget=memory_budget,
        machine=machine, count_method=count_method, sample_size=sample_size,
        random_state=random_state,
    )
    machine_model = report.machine
    best = report.best
    explained: list[CandidateExplanation] = []
    for pos, scored in enumerate(report.scored, start=1):
        cost = scored.cost
        strat = scored.strategy
        terms = node_cost_terms(strat, cost.node_nnz, rank)
        sec_flops = machine_model.alpha_per_flop * cost.flops_per_iteration
        sec_words = machine_model.beta_per_word * cost.words_per_iteration
        margin = scored.predicted_seconds - best.predicted_seconds
        if scored is best:
            margin = None
            margin_term = None
        else:
            d_flops = machine_model.alpha_per_flop * (
                cost.flops_per_iteration - best.cost.flops_per_iteration
            )
            d_words = machine_model.beta_per_word * (
                cost.words_per_iteration - best.cost.words_per_iteration
            )
            margin_term = "flops" if abs(d_flops) >= abs(d_words) else "words"
        explained.append(CandidateExplanation(
            name=strat.name,
            signature=strat.signature(),
            spec=strat.to_nested(),
            rank_position=pos,
            feasible=scored.feasible,
            depth=strat.depth(),
            n_nodes=len(strat.nodes),
            predicted_seconds=scored.predicted_seconds,
            flops_per_iteration=cost.flops_per_iteration,
            words_per_iteration=cost.words_per_iteration,
            peak_value_bytes=cost.peak_value_bytes,
            index_bytes=cost.index_bytes,
            total_memory_bytes=cost.total_memory_bytes,
            seconds_from_flops=sec_flops,
            seconds_from_words=sec_words,
            dominant_term="flops" if sec_flops >= sec_words else "words",
            margin_vs_best_seconds=margin,
            margin_dominant_term=margin_term,
            nodes=[
                {
                    "node": t.node_id,
                    "modes": list(t.modes),
                    "parent": t.parent,
                    "delta": list(t.delta),
                    "nnz": t.nnz,
                    "flops": t.flops,
                    "words": t.words,
                    "scatter_words": t.scatter_words,
                    "value_bytes": t.value_bytes,
                    "index_bytes": t.index_bytes,
                    "rebuild_mode": t.rebuild_mode,
                }
                for t in terms
            ],
            per_mode=per_mode_cost(strat, cost.node_nnz, rank),
        ))
    execution = None
    if n_workers is not None:
        from ..model.calibrate import load_roofline
        from ..model.cost import resolve_bandwidth_workers

        exec_cands = execution_candidates(
            tensor.shape, tensor.nnz, rank, n_workers, machine_model
        )
        bw_workers, bw_source = resolve_bandwidth_workers()
        roofline = load_roofline()
        execution = {
            "n_workers": int(n_workers),
            "recommended": recommend_execution(
                tensor.shape, tensor.nnz, rank, n_workers, machine_model
            ).to_dict(),
            "candidates": [c.to_dict() for c in exec_cands],
            # which bandwidth-saturation figure priced the candidates: a
            # measured roofline knee or the pre-calibration default.
            "bandwidth_workers": bw_workers,
            "bandwidth_workers_source": bw_source,
            "roofline": (
                {"calibrated": False} if roofline is None else {
                    "calibrated": True,
                    "peak_bandwidth_gbs": roofline.peak_bandwidth_gbs,
                    "peak_gflops": roofline.peak_gflops,
                    "saturation_workers": roofline.saturation_workers,
                }
            ),
        }
    return PlanExplanation(
        tensor_shape=tuple(tensor.shape),
        tensor_nnz=tensor.nnz,
        rank=rank,
        machine={
            "name": machine_model.name,
            "alpha_per_flop": machine_model.alpha_per_flop,
            "beta_per_word": machine_model.beta_per_word,
        },
        memory_budget=memory_budget,
        count_method=count_method,
        best=best.strategy.name,
        candidates=explained,
        notes=list(report.notes),
        report=report,
        execution=execution,
    )


def validate_plan_artifact(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a sound plan artifact.

    Checks the envelope (``repro-bench/v1``) and payload (``repro-plan/v1``)
    schema tags, that candidates exist and the winner is among them, and —
    the substantive invariant — that every candidate's per-node flop/word
    terms sum exactly to its iteration totals.
    """
    if not isinstance(doc, dict):
        raise ValueError("plan artifact must be a JSON object")
    if doc.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"envelope schema {doc.get('schema')!r} != {ARTIFACT_SCHEMA!r}"
        )
    payload = doc.get("result")
    if not isinstance(payload, dict):
        raise ValueError("plan artifact has no result payload")
    if payload.get("schema") != PLAN_SCHEMA:
        raise ValueError(
            f"payload schema {payload.get('schema')!r} != {PLAN_SCHEMA!r}"
        )
    candidates = payload.get("candidates")
    if not candidates:
        raise ValueError("plan artifact lists no candidates")
    if payload.get("n_candidates") != len(candidates):
        raise ValueError("n_candidates does not match candidate list")
    names = [c.get("name") for c in candidates]
    if payload.get("best") not in names:
        raise ValueError(
            f"best {payload.get('best')!r} not among candidates {names}"
        )
    for c in candidates:
        for key in ("name", "signature", "spec", "predicted_seconds",
                    "flops_per_iteration", "words_per_iteration",
                    "total_memory_bytes", "nodes", "per_mode"):
            if key not in c:
                raise ValueError(
                    f"candidate {c.get('name')!r} missing {key!r}"
                )
        node_flops = sum(n["flops"] for n in c["nodes"])
        node_words = sum(n["words"] for n in c["nodes"])
        if node_flops != c["flops_per_iteration"]:
            raise ValueError(
                f"candidate {c['name']!r}: per-node flops sum {node_flops} "
                f"!= iteration total {c['flops_per_iteration']}"
            )
        if node_words != c["words_per_iteration"]:
            raise ValueError(
                f"candidate {c['name']!r}: per-node words sum {node_words} "
                f"!= iteration total {c['words_per_iteration']}"
            )
        mode_flops = sum(
            int(v["flops"]) for v in c["per_mode"].values()
        )
        if mode_flops != c["flops_per_iteration"]:
            raise ValueError(
                f"candidate {c['name']!r}: per-mode flops sum {mode_flops} "
                f"!= iteration total {c['flops_per_iteration']}"
            )
    # Additive since the execution-tier model: absent/None in older
    # artifacts is fine; when present, the pick must be a feasible
    # candidate and no feasible candidate may beat it.
    execution = payload.get("execution")
    if execution is not None:
        rec = execution.get("recommended")
        exec_cands = execution.get("candidates")
        if not isinstance(rec, dict) or not exec_cands:
            raise ValueError(
                "execution section needs 'recommended' and 'candidates'"
            )
        feasible = [c for c in exec_cands if c.get("feasible")]
        if not feasible:
            raise ValueError("execution section has no feasible candidate")
        keys = {(c["tier"], c["layout"]) for c in feasible}
        if (rec.get("tier"), rec.get("layout")) not in keys:
            raise ValueError(
                f"recommended execution {rec.get('tier')}/{rec.get('layout')} "
                f"is not a feasible candidate"
            )
        best_sec = min(c["predicted_seconds"] for c in feasible)
        if rec["predicted_seconds"] > best_sec:
            raise ValueError(
                "recommended execution is not the cheapest feasible candidate"
            )
        # Additive since roofline calibration: older artifacts omit the
        # bandwidth-source bookkeeping entirely; when present it must be
        # coherent.
        source = execution.get("bandwidth_workers_source")
        if source is not None:
            if source not in ("explicit", "calibrated", "default"):
                raise ValueError(
                    f"unknown bandwidth_workers_source {source!r}"
                )
            bw = execution.get("bandwidth_workers")
            if not (isinstance(bw, int) and bw >= 1):
                raise ValueError(
                    f"bandwidth_workers {bw!r} must be a positive int"
                )
            roofline = execution.get("roofline")
            if source == "calibrated" and not (
                isinstance(roofline, dict) and roofline.get("calibrated")
            ):
                raise ValueError(
                    "bandwidth_workers_source is 'calibrated' but the "
                    "execution section carries no calibrated roofline"
                )
