"""Ambient run-context holder (dependency-free on purpose).

This tiny module breaks an import cycle: the instrument modules
(:mod:`repro.obs.trace`, :mod:`repro.obs.events`,
:mod:`repro.obs.metrics`, :mod:`repro.obs.memory`) consult the active
:class:`repro.obs.runctx.RunContext` on every guarded call, while
``runctx`` constructs its instruments *from* those same modules.  Both
sides import only this holder, which knows nothing about either.

The context variable propagates the way span parents already do: into
pool threads via the context copy :class:`repro.parallel.pool.WorkerPool`
takes per task, and (explicitly, by value) across the process boundary in
:mod:`repro.parallel.procpool`.
"""

from __future__ import annotations

import contextvars

__all__ = ["current", "activate", "deactivate"]

_current: contextvars.ContextVar = contextvars.ContextVar(
    "repro_run_context", default=None
)


def current():
    """The active RunContext, or None when running on the global singletons."""
    return _current.get()


def activate(ctx):
    """Install ``ctx`` as the ambient run context; returns a reset token."""
    return _current.set(ctx)


def deactivate(token) -> None:
    """Restore the state captured by :func:`activate`'s token."""
    _current.reset(token)
