"""Plain COO MTTKRP: no memoization, no fiber compression.

For each mode the kernel gathers all ``N-1`` other factor rows per nonzero,
Hadamard-multiplies them with the values, and segment-sums into output rows.
Work per iteration: ``N * (N-1) * R * nnz`` multiply events — the reference
cost that memoization strategies are measured against.
"""

from __future__ import annotations

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import VALUE_DTYPE
from ..core.segreduce import SegmentPlan
from ..core.validate import check_mode
from ..perf import counters as perf
from .base import MttkrpBackend


class CooMttkrp(MttkrpBackend):
    """COO-based MTTKRP backend with per-mode segment plans built lazily."""

    name = "coo"

    def __init__(self, tensor: CooTensor):
        super().__init__(tensor)
        self._plans: dict[int, SegmentPlan] = {}

    def _plan(self, mode: int) -> SegmentPlan:
        if mode not in self._plans:
            self._plans[mode] = self.tensor.mode_plan(mode)
        return self._plans[mode]

    def mttkrp(self, mode: int) -> np.ndarray:
        mode = check_mode(mode, self.tensor.ndim)
        tensor, factors, rank = self.tensor, self.factors, self.rank
        out = np.zeros((tensor.shape[mode], rank), dtype=VALUE_DTYPE)
        if tensor.nnz == 0:
            perf.record(mttkrps=1)
            return out
        prod: np.ndarray | None = None
        for m in range(tensor.ndim):
            if m == mode:
                continue
            rows = factors[m][tensor.idx[:, m]]
            if prod is None:
                prod = rows.copy()
            else:
                prod *= rows
        assert prod is not None
        prod *= tensor.vals[:, None]
        plan = self._plan(mode)
        out[plan.group_ids] = plan.reduce(prod)
        n_other = tensor.ndim - 1
        perf.record(
            mttkrps=1,
            contractions=n_other,
            flops=tensor.nnz * rank * (n_other + 1),
            words=tensor.nnz * rank * (n_other + 2),
        )
        return out


def coo_mttkrp(tensor: CooTensor, factors, mode: int) -> np.ndarray:
    """One-shot functional form of :class:`CooMttkrp`."""
    backend = CooMttkrp(tensor)
    backend.set_factors(factors)
    return backend.mttkrp(mode)
