"""Common backend interface for MTTKRP implementations.

Every MTTKRP provider — the memoized engine and each baseline — satisfies the
same small protocol (``set_factors`` / ``update_factor`` / ``mttkrp`` /
``mode_order`` / ``factors``) so the CP-ALS driver and the benchmark harness
can swap them freely.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import VALUE_DTYPE
from ..core.validate import check_factor_matrices, check_mode


class MttkrpBackend:
    """Base class holding a tensor plus the current factor matrices."""

    #: human-readable backend name (overridden by subclasses).
    name = "abstract"

    def __init__(self, tensor: CooTensor):
        self.tensor = tensor
        self._factors: list[np.ndarray] | None = None
        self._rank: int | None = None

    @property
    def mode_order(self) -> tuple[int, ...]:
        """Baselines update modes in natural order."""
        return tuple(range(self.tensor.ndim))

    @property
    def factors(self) -> list[np.ndarray]:
        if self._factors is None:
            raise RuntimeError("factors have not been set")
        return self._factors

    @property
    def rank(self) -> int:
        if self._rank is None:
            raise RuntimeError("factors have not been set")
        return self._rank

    def set_factors(self, factors: Sequence[np.ndarray]) -> None:
        self._rank = check_factor_matrices(factors, self.tensor.shape)
        self._factors = [
            np.ascontiguousarray(U, dtype=VALUE_DTYPE) for U in factors
        ]

    def update_factor(self, mode: int, U: np.ndarray) -> None:
        mode = check_mode(mode, self.tensor.ndim)
        U = np.ascontiguousarray(U, dtype=VALUE_DTYPE)
        if U.shape != (self.tensor.shape[mode], self.rank):
            raise ValueError(
                f"factor for mode {mode} must be "
                f"{(self.tensor.shape[mode], self.rank)}, got {U.shape}"
            )
        self.factors[mode] = U

    def mttkrp(self, mode: int) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(nnz={self.tensor.nnz}, rank={self._rank})"
