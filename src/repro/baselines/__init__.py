"""Baseline MTTKRP implementations the paper compares against."""

from .base import MttkrpBackend
from .coo_mttkrp import CooMttkrp, coo_mttkrp
from .registry import backend_names, make_backend
from .splatt import SplattMttkrp, splatt_mttkrp
from .splatt_one import SplattOneMttkrp, storage_mode_order
from .ttv import TtvMttkrp, ttv_chain

__all__ = [
    "MttkrpBackend",
    "CooMttkrp",
    "coo_mttkrp",
    "backend_names",
    "make_backend",
    "SplattMttkrp",
    "SplattOneMttkrp",
    "storage_mode_order",
    "splatt_mttkrp",
    "TtvMttkrp",
    "ttv_chain",
]
