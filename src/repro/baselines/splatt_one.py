"""SPLATT-one: all-mode MTTKRP from a single CSF tree.

The memory-lean SPLATT configuration: one CSF serves every mode via the
level-targeted push-down/pull-up kernel (:meth:`CsfTensor.mttkrp_level`),
trading some per-mode speed (non-root modes pay top- and bottom-partial
passes) for an ``N``-fold reduction in index storage versus
:class:`~repro.baselines.splatt.SplattMttkrp` (CSF-per-mode).
"""

from __future__ import annotations

import numpy as np

from ..core.coo import CooTensor
from ..core.validate import check_mode
from ..formats.csf import CsfTensor
from .base import MttkrpBackend


def storage_mode_order(tensor: CooTensor) -> tuple[int, ...]:
    """SPLATT's default single-tree ordering: modes sorted by size ascending.

    Small modes near the root maximize fiber compression at the expensive
    upper levels.
    """
    return tuple(int(m) for m in np.argsort(tensor.shape, kind="stable"))


class SplattOneMttkrp(MttkrpBackend):
    """Single-CSF MTTKRP backend (SPLATT-one)."""

    name = "splatt1"

    def __init__(self, tensor: CooTensor, mode_order_hint=None):
        super().__init__(tensor)
        order = (
            tuple(mode_order_hint)
            if mode_order_hint is not None
            else storage_mode_order(tensor)
        )
        self.csf = CsfTensor(tensor, order)
        self._level_of_mode = {m: l for l, m in enumerate(order)}

    def mttkrp(self, mode: int) -> np.ndarray:
        mode = check_mode(mode, self.tensor.ndim)
        return self.csf.mttkrp_level(self.factors, self._level_of_mode[mode])

    def index_nbytes(self) -> int:
        """Bytes of the single CSF tree (compare SplattMttkrp.index_nbytes)."""
        return self.csf.nbytes()
