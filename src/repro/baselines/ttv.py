"""Tensor-Toolbox-style MTTKRP: one column at a time via TTV chains.

Computes ``M^(n)`` column by column — for each rank component ``r``, a chain
of ``N-1`` tensor-times-vector multiplies collapses the tensor to a length
``I_n`` vector.  Same asymptotic flop count as the plain COO kernel but with
``R`` separate passes over the nonzeros (poor locality), matching the
behaviour of MATLAB Tensor Toolbox's sparse ``mttkrp``.
"""

from __future__ import annotations

import numpy as np

from ..core.coo import CooTensor
from ..core.dtypes import VALUE_DTYPE
from ..core.validate import check_mode
from ..perf import counters as perf
from .base import MttkrpBackend


class TtvMttkrp(MttkrpBackend):
    """Column-by-column MTTKRP backend."""

    name = "ttv"

    def mttkrp(self, mode: int) -> np.ndarray:
        mode = check_mode(mode, self.tensor.ndim)
        tensor, factors, rank = self.tensor, self.factors, self.rank
        out = np.zeros((tensor.shape[mode], rank), dtype=VALUE_DTYPE)
        if tensor.nnz == 0:
            perf.record(mttkrps=1)
            return out
        target_rows = tensor.idx[:, mode]
        for r in range(rank):
            w = tensor.vals.copy()
            for m in range(tensor.ndim):
                if m == mode:
                    continue
                w *= factors[m][tensor.idx[:, m], r]
            out[:, r] = np.bincount(
                target_rows, weights=w, minlength=tensor.shape[mode]
            )
        n_other = tensor.ndim - 1
        perf.record(
            mttkrps=1,
            contractions=n_other * rank,
            flops=tensor.nnz * rank * (n_other + 1),
            words=tensor.nnz * rank * (n_other + 2),
        )
        return out


def ttv_chain(tensor: CooTensor, vectors: dict[int, np.ndarray]) -> np.ndarray:
    """Contract ``tensor`` with one vector per mode in ``vectors``.

    ``vectors`` maps mode -> length ``I_mode`` vector.  Returns a dense array
    over the remaining modes (must be few).  Exposed as a reference TTV for
    tests of the distributive property.
    """
    remaining = [m for m in range(tensor.ndim) if m not in vectors]
    w = tensor.vals.copy()
    for m, v in vectors.items():
        v = np.asarray(v, dtype=VALUE_DTYPE)
        if v.shape != (tensor.shape[m],):
            raise ValueError(
                f"vector for mode {m} must have length {tensor.shape[m]}"
            )
        w *= v[tensor.idx[:, m]]
    if not remaining:
        return np.array(w.sum())
    shape = tuple(tensor.shape[m] for m in remaining)
    out = np.zeros(shape, dtype=VALUE_DTYPE)
    np.add.at(out, tuple(tensor.idx[:, m] for m in remaining), w)
    return out
