"""SPLATT-style MTTKRP backend: one CSF tree per mode.

This is the "allmode" SPLATT configuration: each mode gets its own CSF
representation rooted at that mode, trading ``N``-fold index storage for the
simplest and fastest per-mode kernel.  Per CP-ALS iteration the work is
``N * (N-1)`` level contractions with fiber compression but *no* cross-mode
memoization — the state-of-the-art baseline the paper compares against.
"""

from __future__ import annotations

import numpy as np

from ..core.coo import CooTensor
from ..core.validate import check_mode
from ..formats.csf import CsfTensor, default_mode_order
from .base import MttkrpBackend


class SplattMttkrp(MttkrpBackend):
    """CSF-per-mode MTTKRP backend (SPLATT-allmode)."""

    name = "splatt"

    def __init__(self, tensor: CooTensor, *, eager: bool = False):
        super().__init__(tensor)
        self._csf: dict[int, CsfTensor] = {}
        if eager:
            for mode in range(tensor.ndim):
                self._build(mode)

    def _build(self, mode: int) -> CsfTensor:
        if mode not in self._csf:
            self._csf[mode] = CsfTensor(
                self.tensor, default_mode_order(mode, self.tensor.ndim)
            )
        return self._csf[mode]

    def csf_for_mode(self, mode: int) -> CsfTensor:
        """The CSF tree rooted at ``mode`` (built on first use)."""
        mode = check_mode(mode, self.tensor.ndim)
        return self._build(mode)

    def mttkrp(self, mode: int) -> np.ndarray:
        mode = check_mode(mode, self.tensor.ndim)
        return self._build(mode).mttkrp_root(self.factors)

    def index_nbytes(self) -> int:
        """Bytes across all built CSF trees."""
        return sum(c.nbytes() for c in self._csf.values())


def splatt_mttkrp(tensor: CooTensor, factors, mode: int) -> np.ndarray:
    """One-shot functional form of :class:`SplattMttkrp`."""
    backend = SplattMttkrp(tensor)
    backend.set_factors(factors)
    return backend.mttkrp(mode)
