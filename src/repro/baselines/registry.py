"""Named registry of MTTKRP backends for the benchmark harness.

``make_backend('splatt', tensor)`` and friends give the benchmark scripts a
uniform way to instantiate comparators; ``'memoized'`` variants carry a
strategy spec after a colon, e.g. ``'memoized:bdt'`` or ``'memoized:star'``.
"""

from __future__ import annotations

from typing import Callable

from ..core.coo import CooTensor
from ..core.engine import MemoizedMttkrp
from .coo_mttkrp import CooMttkrp
from .splatt import SplattMttkrp
from .splatt_one import SplattOneMttkrp
from .ttv import TtvMttkrp

_BASELINES: dict[str, Callable[[CooTensor], object]] = {
    "coo": CooMttkrp,
    "ttv": TtvMttkrp,
    "splatt": SplattMttkrp,
    "splatt1": SplattOneMttkrp,
}


def backend_names() -> list[str]:
    """Names accepted by :func:`make_backend` (memoized variants excluded)."""
    return sorted(_BASELINES)


def make_backend(name: str, tensor: CooTensor):
    """Instantiate a backend by name.

    ``'memoized:<strategy>'`` builds the memoization engine with the named
    strategy (see :func:`repro.core.strategy.resolve_strategy`);
    ``'memoized'`` alone uses the balanced binary tree.
    """
    key = name.lower()
    if key in _BASELINES:
        return _BASELINES[key](tensor)
    if key == "memoized" or key.startswith("memoized:"):
        _, _, spec = key.partition(":")
        engine = MemoizedMttkrp(tensor, spec or "bdt")
        engine.name = f"memoized:{engine.strategy.name}"  # type: ignore[attr-defined]
        return engine
    raise ValueError(
        f"unknown backend {name!r}; choose from {backend_names()} or "
        "'memoized[:<strategy>]'"
    )
