"""Semi-sparse tensors: sparse coordinates with dense ``R``-wide values.

A semi-sparse tensor is the result of contracting a sparse tensor with one
column each from several factor matrices, done simultaneously for all ``R``
columns: the coordinate pattern is shared across the ``R`` contractions (they
differ only in the multiplying vectors), so a node stores *one* index block
and an ``nnz x R`` value matrix.  This is the memoized intermediate object of
the paper.
"""

from __future__ import annotations

import numpy as np

from .dtypes import INDEX_DTYPE, VALUE_DTYPE, as_index_array, as_value_array


class SemiSparseTensor:
    """An intermediate contraction result.

    Parameters
    ----------
    modes:
        the tensor modes that remain sparse (sorted tuple of original mode
        ids).
    idx:
        ``nnz x len(modes)`` coordinate block over those modes, in
        lexicographic order with unique rows.
    vals:
        ``nnz x R`` dense value matrix: column ``r`` holds the values of the
        ``r``-th simultaneous contraction.
    mode_sizes:
        sizes of the kept modes, aligned with ``modes``.
    """

    __slots__ = ("modes", "idx", "vals", "mode_sizes")

    def __init__(self, modes, idx, vals, mode_sizes, *, copy: bool = False):
        self.modes = tuple(int(m) for m in modes)
        self.idx = as_index_array(idx, copy=copy)
        self.vals = as_value_array(vals, copy=copy)
        self.mode_sizes = tuple(int(s) for s in mode_sizes)
        if self.idx.ndim != 2 or self.idx.shape[1] != len(self.modes):
            raise ValueError(
                f"idx must be nnz x {len(self.modes)}, got shape {self.idx.shape}"
            )
        if self.vals.ndim != 2 or self.vals.shape[0] != self.idx.shape[0]:
            raise ValueError(
                f"vals must be nnz x R with nnz={self.idx.shape[0]}, got "
                f"shape {self.vals.shape}"
            )
        if len(self.mode_sizes) != len(self.modes):
            raise ValueError("mode_sizes must align with modes")

    @property
    def nnz(self) -> int:
        return int(self.idx.shape[0])

    @property
    def rank(self) -> int:
        return int(self.vals.shape[1])

    def nbytes(self) -> int:
        return int(self.idx.nbytes + self.vals.nbytes)

    def to_matrix(self, size: int | None = None) -> np.ndarray:
        """For a single-mode tensor, scatter values into an ``I x R`` matrix.

        This is the MTTKRP output when the node is a strategy leaf.
        """
        if len(self.modes) != 1:
            raise ValueError(
                f"to_matrix requires exactly one kept mode, have {self.modes}"
            )
        size = self.mode_sizes[0] if size is None else int(size)
        out = np.zeros((size, self.rank), dtype=VALUE_DTYPE)
        out[self.idx[:, 0]] = self.vals
        return out

    def to_dense_stack(self) -> np.ndarray:
        """Densify as an array of shape ``mode_sizes + (R,)`` (tests only)."""
        total = self.rank
        for s in self.mode_sizes:
            total *= s
        if total > 50_000_000:
            raise MemoryError("refusing to densify a large semi-sparse tensor")
        out = np.zeros(self.mode_sizes + (self.rank,), dtype=VALUE_DTYPE)
        if self.nnz:
            out[tuple(self.idx.T)] = self.vals
        return out

    def __repr__(self) -> str:
        return (
            f"SemiSparseTensor(modes={self.modes}, nnz={self.nnz}, "
            f"rank={self.rank})"
        )
