"""Coordinate-format (COO) sparse tensors.

``CooTensor`` is the library's canonical input representation: an ``nnz x N``
coordinate block plus an ``nnz`` value vector, kept in *canonical form*
(lexicographically sorted coordinates, duplicates summed, explicit zeros
allowed).  Canonical form makes structural equality, matricization, and the
symbolic contraction phase deterministic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import rowcodes
from .dtypes import (INDEX_DTYPE, INDEX_ITEMSIZE, VALUE_DTYPE, VALUE_ITEMSIZE,
                     as_index_array, as_value_array)
from .segreduce import SegmentPlan
from .validate import check_indices_in_bounds, check_mode, check_shape


class CooTensor:
    """An order-``N`` sparse tensor in coordinate format.

    Parameters
    ----------
    idx:
        ``nnz x N`` integer coordinate array.
    vals:
        length-``nnz`` value vector.
    shape:
        mode sizes.
    canonical:
        if True, the caller guarantees ``idx`` is lexicographically sorted
        with no duplicate rows; validation of that claim is skipped.
    copy:
        copy the input arrays (default) rather than aliasing them.
    """

    __slots__ = ("idx", "vals", "shape", "_norm_cache")

    def __init__(self, idx, vals, shape, *, canonical: bool = False,
                 copy: bool = True):
        shape = check_shape(shape)
        idx = as_index_array(idx, copy=copy)
        vals = as_value_array(vals, copy=copy)
        if idx.ndim == 1:
            idx = idx.reshape(-1, len(shape)) if idx.size else idx.reshape(0, len(shape))
        if vals.ndim != 1:
            raise ValueError(f"vals must be 1-D, got ndim={vals.ndim}")
        if idx.shape[0] != vals.shape[0]:
            raise ValueError(
                f"idx has {idx.shape[0]} rows but vals has {vals.shape[0]} entries"
            )
        check_indices_in_bounds(idx, shape)
        self.shape = shape
        if canonical:
            self.idx, self.vals = idx, vals
        else:
            self.idx, self.vals = _canonicalize(idx, vals, shape)
        self._norm_cache: float | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape) -> "CooTensor":
        """An all-zero tensor of the given shape."""
        shape = check_shape(shape)
        return cls(
            np.zeros((0, len(shape)), dtype=INDEX_DTYPE),
            np.zeros(0, dtype=VALUE_DTYPE),
            shape,
            canonical=True,
            copy=False,
        )

    @classmethod
    def from_dense(cls, array, *, tol: float = 0.0) -> "CooTensor":
        """Build from a dense ndarray, keeping entries with ``|x| > tol``."""
        array = np.asarray(array, dtype=VALUE_DTYPE)
        mask = np.abs(array) > tol
        idx = np.argwhere(mask).astype(INDEX_DTYPE)
        vals = array[mask].astype(VALUE_DTYPE)
        return cls(idx, vals, array.shape, canonical=True, copy=False)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Tensor order (number of modes)."""
        return len(self.shape)

    order = ndim

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.vals.shape[0])

    @property
    def density(self) -> float:
        """nnz divided by the number of cells (may underflow to 0.0)."""
        total = 1.0
        for s in self.shape:
            total *= float(s)
        return self.nnz / total

    def nbytes(self) -> int:
        """Memory held by the coordinate and value arrays."""
        return int(self.idx.nbytes + self.vals.nbytes)

    def __repr__(self) -> str:
        return (
            f"CooTensor(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3e})"
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ndarray (small tensors only)."""
        total = 1
        for s in self.shape:
            total *= s
        if total > 50_000_000:
            raise MemoryError(
                f"refusing to densify a tensor with {total} cells"
            )
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        if self.nnz:
            np.add.at(out, tuple(self.idx.T), self.vals)
        return out

    def matricize(self, mode: int):
        """Mode-``n`` matricization as a ``scipy.sparse.csr_matrix``.

        Row ``i`` collects the mode-``n`` slice ``i``; columns enumerate the
        remaining modes in increasing mode order, row-major.
        """
        from scipy import sparse

        mode = check_mode(mode, self.ndim)
        rest = [m for m in range(self.ndim) if m != mode]
        rest_dims = [self.shape[m] for m in rest]
        ncols = 1
        for d in rest_dims:
            ncols *= d
        if not rowcodes.fits_int64(rest_dims):
            raise OverflowError("matricized column space exceeds int64")
        cols = rowcodes.encode_rows(self.idx[:, rest], rest_dims)
        rows = self.idx[:, mode]
        mat = sparse.coo_matrix(
            (self.vals, (rows, cols)), shape=(self.shape[mode], ncols)
        )
        return mat.tocsr()

    # ------------------------------------------------------------------
    # numeric queries
    # ------------------------------------------------------------------
    def norm(self) -> float:
        """Frobenius norm; cached (entries are immutable by convention)."""
        if self._norm_cache is None:
            self._norm_cache = float(np.sqrt(np.dot(self.vals, self.vals)))
        return self._norm_cache

    def values_at(self, coords: np.ndarray) -> np.ndarray:
        """Stored values at each coordinate row of ``coords`` (0 if absent)."""
        coords = as_index_array(coords)
        if coords.ndim != 2 or coords.shape[1] != self.ndim:
            raise ValueError("coords must be q x N")
        check_indices_in_bounds(coords, self.shape)
        if self.nnz == 0 or coords.shape[0] == 0:
            return np.zeros(coords.shape[0], dtype=VALUE_DTYPE)
        if rowcodes.fits_int64(self.shape):
            keys = rowcodes.encode_rows(self.idx, self.shape)
            queries = rowcodes.encode_rows(coords, self.shape)
            pos = np.searchsorted(keys, queries)
            pos = np.minimum(pos, keys.shape[0] - 1)
            hit = keys[pos] == queries
            out = np.zeros(coords.shape[0], dtype=VALUE_DTYPE)
            out[hit] = self.vals[pos[hit]]
            return out
        # Rare huge-key-space fallback: dictionary lookup.
        table = {tuple(row): v for row, v in zip(self.idx.tolist(), self.vals)}
        return np.array(
            [table.get(tuple(row), 0.0) for row in coords.tolist()],
            dtype=VALUE_DTYPE,
        )

    def slice_nnz(self, mode: int) -> np.ndarray:
        """Per-slice nonzero counts along ``mode`` (length ``shape[mode]``)."""
        mode = check_mode(mode, self.ndim)
        return np.bincount(self.idx[:, mode], minlength=self.shape[mode]).astype(
            INDEX_DTYPE
        )

    def mode_plan(self, mode: int) -> SegmentPlan:
        """Segment plan grouping nonzeros by their mode-``n`` index."""
        mode = check_mode(mode, self.ndim)
        return SegmentPlan(self.idx[:, mode])

    # ------------------------------------------------------------------
    # structural transforms
    # ------------------------------------------------------------------
    def permute_modes(self, perm: Sequence[int]) -> "CooTensor":
        """Reorder modes; returns a new canonical tensor."""
        perm = list(perm)
        if sorted(perm) != list(range(self.ndim)):
            raise ValueError(f"perm must be a permutation of 0..{self.ndim - 1}")
        new_shape = tuple(self.shape[p] for p in perm)
        return CooTensor(self.idx[:, perm], self.vals, new_shape, copy=False)

    def remove_empty_slices(self) -> tuple["CooTensor", list[np.ndarray]]:
        """Compact each mode to its used indices.

        Returns ``(compacted, maps)`` where ``maps[n]`` lists, for each new
        index along mode ``n``, the original index it came from.  Empty-slice
        removal is the standard preprocessing step before building
        memoization structures (leaf index arrays become dense ranges).
        """
        maps: list[np.ndarray] = []
        new_idx = self.idx.copy()
        new_shape = []
        for n in range(self.ndim):
            used, inverse = np.unique(self.idx[:, n], return_inverse=True)
            maps.append(used.astype(INDEX_DTYPE))
            if self.nnz:
                new_idx[:, n] = inverse
            new_shape.append(max(int(used.shape[0]), 1))
        compacted = CooTensor(
            new_idx, self.vals, tuple(new_shape), canonical=True, copy=False
        )
        return compacted, maps

    def scale(self, alpha: float) -> "CooTensor":
        """Return ``alpha * self`` (same sparsity pattern)."""
        return CooTensor(
            self.idx, self.vals * float(alpha), self.shape,
            canonical=True, copy=False,
        )

    def split_nonzeros(self, n_parts: int) -> list["CooTensor"]:
        """Partition nonzeros into ``n_parts`` contiguous chunks.

        The chunks sum (as tensors) to ``self`` — the distributive-TTV
        property that underlies nonzero-parallel MTTKRP.
        """
        if n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        bounds = np.linspace(0, self.nnz, n_parts + 1).astype(int)
        parts = []
        for k in range(n_parts):
            lo, hi = bounds[k], bounds[k + 1]
            parts.append(
                CooTensor(
                    self.idx[lo:hi], self.vals[lo:hi], self.shape,
                    canonical=True, copy=True,
                )
            )
        return parts

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def allclose(self, other: "CooTensor", *, rtol: float = 1e-12,
                 atol: float = 1e-12) -> bool:
        """Numeric equality as tensors (patterns may differ by zeros)."""
        if not isinstance(other, CooTensor) or self.shape != other.shape:
            return False
        diff = self - other
        scale = max(self.norm(), other.norm(), 1.0)
        if diff.nnz == 0:
            return True
        return bool(np.abs(diff.vals).max() <= atol + rtol * scale)

    def __add__(self, other: "CooTensor") -> "CooTensor":
        if not isinstance(other, CooTensor):
            return NotImplemented
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        idx = np.concatenate([self.idx, other.idx], axis=0)
        vals = np.concatenate([self.vals, other.vals])
        return CooTensor(idx, vals, self.shape, copy=False)

    def __sub__(self, other: "CooTensor") -> "CooTensor":
        if not isinstance(other, CooTensor):
            return NotImplemented
        return self + other.scale(-1.0)


def _canonicalize(idx: np.ndarray, vals: np.ndarray, shape) -> tuple:
    """Sort lexicographically and merge duplicate coordinates (summing)."""
    if idx.shape[0] == 0:
        return idx, vals
    unique_rows, inverse = rowcodes.group_rows(idx, shape)
    if unique_rows.shape[0] == idx.shape[0]:
        # No duplicates: just sort.  group_rows returned rows in lex order;
        # recover the permutation from the inverse map.
        perm = np.empty(idx.shape[0], dtype=np.intp)
        perm[inverse] = np.arange(idx.shape[0])
        return idx[perm], vals[perm]
    summed = np.bincount(inverse, weights=vals, minlength=unique_rows.shape[0])
    return (
        np.ascontiguousarray(unique_rows, dtype=INDEX_DTYPE),
        summed.astype(VALUE_DTYPE, copy=False),
    )


def coo_nbytes(nnz: int, ndim: int) -> int:
    """Memory footprint of an ``nnz`` x ``ndim`` COO block (model helper)."""
    return nnz * (ndim * INDEX_ITEMSIZE + VALUE_ITEMSIZE)
