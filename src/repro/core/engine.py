"""The memoized MTTKRP engine: numeric phase over a symbolic tree.

Given a tensor, a memoization strategy, and current factor matrices, the
engine produces MTTKRP results per mode while caching intermediate
semi-sparse tensors and invalidating exactly those that depend on an updated
factor.  All numeric work is three vectorized passes per node rebuild:
factor-row gather, Hadamard product, segmented sum.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

import time

from ..kernels import RebuildContext, WorkspaceArena, get_kernel
from ..obs import attribution as _attr
from ..obs import events as _events
from ..obs import memory as _mem
from ..obs import trace as _trace
from ..obs.metrics import registry as _metrics
from ..perf import counters as perf
from .coo import CooTensor
from .dtypes import VALUE_DTYPE
from .semisparse import SemiSparseTensor
from .strategy import MemoStrategy, resolve_strategy
from .symbolic import SymbolicTree
from .validate import check_factor_matrices, check_mode


def contraction_work(parent_nnz: int, rank: int, n_delta: int) -> tuple[int, int]:
    """(flops, words) convention for rebuilding a node from its parent.

    flops: ``parent_nnz * R * (n_delta + 1)`` — ``n_delta`` Hadamard
    multiplies per element-row plus one add into the segment reduction.
    words: gathered factor rows (``parent_nnz * R`` per delta mode), the
    parent value read, and the node value write.
    """
    flops = parent_nnz * rank * (n_delta + 1)
    words = parent_nnz * rank * (n_delta + 2)
    return flops, words


class MemoizedMttkrp:
    """Stateful MTTKRP provider for one tensor + strategy.

    Parameters
    ----------
    tensor:
        input sparse tensor.
    strategy:
        a :class:`MemoStrategy`, nested-tuple spec, or strategy name.
    factors:
        optional initial factor matrices (may also be installed later with
        :meth:`set_factors`).
    symbolic:
        a prebuilt :class:`SymbolicTree` to reuse (skips the symbolic phase).
    kernel:
        kernel backend executing node rebuilds: a name from
        :func:`repro.kernels.available_kernels`, a
        :class:`~repro.kernels.KernelBackend` instance, or ``None`` to
        resolve from the ``REPRO_KERNEL`` environment variable (default
        ``"numpy"``).  Backends differ only in execution; every backend
        produces the same values and identical perf counters.
    """

    def __init__(self, tensor: CooTensor, strategy, factors=None, *,
                 symbolic: SymbolicTree | None = None, kernel=None):
        self.tensor = tensor
        self.strategy: MemoStrategy = resolve_strategy(strategy, tensor.ndim)
        if symbolic is not None:
            if symbolic.strategy is not self.strategy and (
                symbolic.strategy.signature() != self.strategy.signature()
            ):
                raise ValueError("prebuilt symbolic tree uses a different strategy")
            if symbolic.tensor is not tensor:
                raise ValueError("prebuilt symbolic tree is for a different tensor")
            self.symbolic = symbolic
        else:
            with _trace.span("symbolic_build", strategy=self.strategy.name,
                             nnz=tensor.nnz):
                self.symbolic = SymbolicTree(tensor, self.strategy)
        self._values: list[np.ndarray | None] = [None] * len(self.strategy.nodes)
        self._factors: list[np.ndarray] | None = None
        self._rank: int | None = None
        self._root_vals: np.ndarray = tensor.vals
        self._kernel = get_kernel(kernel)
        self._arena = WorkspaceArena()
        if factors is not None:
            self.set_factors(factors)

    @property
    def kernel(self):
        """The kernel backend executing this engine's node rebuilds."""
        return self._kernel

    @property
    def mode_order(self) -> tuple[int, ...]:
        """Mode update order under which each node rebuilds once/iteration."""
        return self.strategy.mode_order

    # ------------------------------------------------------------------
    # factor management
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        if self._rank is None:
            raise RuntimeError("factors have not been set")
        return self._rank

    @property
    def factors(self) -> list[np.ndarray]:
        if self._factors is None:
            raise RuntimeError("factors have not been set")
        return self._factors

    def set_factors(self, factors: Sequence[np.ndarray]) -> None:
        """Install a full set of factor matrices; drops every cached node."""
        rank = check_factor_matrices(factors, self.tensor.shape)
        self._factors = [
            np.ascontiguousarray(U, dtype=VALUE_DTYPE) for U in factors
        ]
        self._rank = rank
        self.invalidate_all()

    def update_factor(self, mode: int, U: np.ndarray) -> None:
        """Replace one factor; invalidates nodes contracted with ``mode``."""
        mode = check_mode(mode, self.tensor.ndim)
        U = np.ascontiguousarray(U, dtype=VALUE_DTYPE)
        if U.shape != (self.tensor.shape[mode], self.rank):
            raise ValueError(
                f"factor for mode {mode} must be "
                f"{(self.tensor.shape[mode], self.rank)}, got {U.shape}"
            )
        self.factors[mode] = U
        tracker = _mem.get_tracker() if _mem.enabled() else None
        for nid in self.strategy.invalidated_by(mode):
            if tracker is not None and self._values[nid] is not None:
                tracker.on_free(id(self), nid)
            self._values[nid] = None

    def invalidate_all(self) -> None:
        tracker = _mem.get_tracker() if _mem.enabled() else None
        for nid in range(len(self._values)):
            if tracker is not None and self._values[nid] is not None:
                tracker.on_free(id(self), nid)
            self._values[nid] = None

    def set_root_values(self, vals: np.ndarray) -> None:
        """Replace the tensor's nonzero *values* (same sparsity pattern).

        The symbolic tree depends only on the coordinate pattern, so callers
        whose values change but whose pattern is fixed — e.g. the residual
        tensor in gradient-based completion — reuse all symbolic work.
        Drops every cached node.
        """
        vals = np.ascontiguousarray(vals, dtype=VALUE_DTYPE)
        if vals.shape != (self.tensor.nnz,):
            raise ValueError(
                f"values must have shape ({self.tensor.nnz},), got {vals.shape}"
            )
        self._root_vals = vals
        self.invalidate_all()

    # ------------------------------------------------------------------
    # numeric phase
    # ------------------------------------------------------------------
    def mttkrp(self, mode: int) -> np.ndarray:
        """The mode-``n`` MTTKRP ``M^(n)`` (shape ``I_n x R``).

        Entering mode ``n``'s sub-iteration eagerly frees every cached node
        contracted with ``n``: those values are doomed (the imminent factor
        update invalidates them) and freeing first is what bounds live value
        matrices by the tree height.
        """
        mode = check_mode(mode, self.tensor.ndim)
        attr = _attr.get_recorder() if _attr.enabled() else None
        if attr is not None:
            attr.begin_mode(mode)
        with _trace.span("mttkrp", mode=mode):
            tracker = _mem.get_tracker() if _mem.enabled() else None
            for nid in self.strategy.invalidated_by(mode):
                if tracker is not None and self._values[nid] is not None:
                    tracker.on_free(id(self), nid)
                self._values[nid] = None
            leaf_id = self.strategy.leaf_id(mode)
            self._ensure_node(leaf_id)
            sym = self.symbolic.nodes[leaf_id]
            vals = self._values[leaf_id]
            assert vals is not None
            out = np.zeros(
                (self.tensor.shape[mode], self.rank), dtype=VALUE_DTYPE
            )
            out[sym.index[:, 0]] = vals
            perf.record(mttkrps=1, words=vals.size)
            if attr is not None:
                attr.end_mode(mode, leaf_id, vals.size)
            if _trace.enabled():
                self._publish_memory_gauges()
            return out

    def mttkrp_all(self) -> list[np.ndarray]:
        """All N MTTKRPs under the *current* factors, one tree sweep.

        With fixed factors the N leaf tensors share every internal node, so
        the whole set costs a single full-tree materialization — the
        gradient-evaluation pattern of CP completion/optimization, where all
        factors update simultaneously between evaluations.  Skips the
        per-mode eager free (every node stays cached until the next
        invalidation), trading the tree-height memory bound for speed.
        """
        outs: list[np.ndarray] = [None] * self.tensor.ndim  # type: ignore[list-item]
        for mode in self.strategy.mode_order:
            with _trace.span("mttkrp", mode=mode, sweep=True):
                leaf_id = self.strategy.leaf_id(mode)
                self._ensure_node(leaf_id)
                sym = self.symbolic.nodes[leaf_id]
                vals = self._values[leaf_id]
                assert vals is not None
                out = np.zeros(
                    (self.tensor.shape[mode], self.rank), dtype=VALUE_DTYPE
                )
                out[sym.index[:, 0]] = vals
                perf.record(mttkrps=1, words=vals.size)
                outs[mode] = out
        if _trace.enabled():
            self._publish_memory_gauges()
        return outs

    def node_tensor(self, node_id: int) -> SemiSparseTensor:
        """Materialize a node's semi-sparse tensor (computing if needed)."""
        self._ensure_node(node_id)
        sym = self.symbolic.nodes[node_id]
        if self.strategy.nodes[node_id].is_root:
            vals = np.broadcast_to(
                self._root_vals[:, None], (self.tensor.nnz, self.rank)
            )
        else:
            vals = self._values[node_id]
            assert vals is not None
        return SemiSparseTensor(
            sym.modes,
            sym.index,
            vals,
            tuple(self.tensor.shape[m] for m in sym.modes),
        )

    def cached_node_ids(self) -> list[int]:
        """Ids of non-root nodes currently holding a value matrix."""
        return [
            nid
            for nid, v in enumerate(self._values)
            if v is not None and not self.strategy.nodes[nid].is_root
        ]

    def live_value_bytes(self) -> int:
        """Bytes held by cached value matrices right now."""
        return sum(
            v.nbytes for v in self._values if v is not None
        )

    def _ensure_node(self, node_id: int) -> None:
        node = self.strategy.nodes[node_id]
        if node.is_root or self._values[node_id] is not None:
            return
        assert node.parent is not None
        self._ensure_node(node.parent)
        value = self._compute_node(node_id)
        self._values[node_id] = value
        if _mem.enabled():
            _mem.get_tracker().on_store(id(self), node_id, value.nbytes)

    def _rebuild_context(self, node_id: int) -> RebuildContext:
        """Assemble the static + numeric state a kernel backend consumes."""
        node = self.strategy.nodes[node_id]
        sym = self.symbolic.nodes[node_id]
        parent = self.strategy.nodes[node.parent]  # type: ignore[index]
        parent_sym = self.symbolic.nodes[node.parent]  # type: ignore[index]
        if parent.is_root:
            parent_vals, root_vals = None, self._root_vals
        else:
            parent_vals = self._values[parent.id]
            assert parent_vals is not None
            root_vals = None
        return RebuildContext(
            symbolic=self.symbolic,
            node_id=node_id,
            sym=sym,
            parent_sym=parent_sym,
            factors=self.factors,
            parent_vals=parent_vals,
            root_vals=root_vals,
            rank=self.rank,
            arena=self._arena,
        )

    def _compute_node(self, node_id: int) -> np.ndarray:
        ctx = self._rebuild_context(node_id)
        attr = _attr.get_recorder() if _attr.enabled() else None
        seconds = 0.0
        if _trace.enabled():
            with _trace.span("node_rebuild", node=node_id,
                             nnz=ctx.sym.nnz,
                             parent_nnz=ctx.parent_sym.nnz) as rec:
                result = self._kernel.traced_rebuild(ctx)
            if rec is not None:
                seconds = rec.duration
                if _events.enabled():
                    _events.emit("node_rebuild", node=node_id,
                                 nnz=ctx.sym.nnz, seconds=seconds)
        elif _events.enabled() or attr is not None:
            t0 = time.perf_counter()
            result = self._kernel.rebuild(ctx)
            seconds = time.perf_counter() - t0
            if _events.enabled():
                _events.emit("node_rebuild", node=node_id, nnz=ctx.sym.nnz,
                             seconds=seconds)
        else:
            result = self._kernel.rebuild(ctx)
        flops, words = contraction_work(
            ctx.parent_sym.nnz, self.rank, len(ctx.sym.delta_modes)
        )
        perf.record(
            flops=flops,
            words=words,
            contractions=len(ctx.sym.delta_modes),
            node_builds=1,
        )
        if attr is not None:
            attr.on_rebuild(node_id, flops, words, seconds)
        return result

    def workspace_nbytes(self) -> int:
        """Bytes currently held by the kernel workspace arena."""
        return self._arena.nbytes()

    def factor_bytes(self) -> int:
        """Bytes of the installed dense factor matrices (0 before install)."""
        if self._factors is None:
            return 0
        return sum(U.nbytes for U in self._factors)

    def _publish_memory_gauges(self) -> None:
        """Push this engine's memory view into the metrics registry.

        Called at span boundaries while tracing is on, so ``repro trace`` /
        ``repro report`` show live/workspace/factor bytes even when the
        full :class:`repro.obs.memory.MemTracker` is not enabled.
        """
        live = self.live_value_bytes()
        _metrics.set_gauge("mem.live_value_bytes", live)
        _metrics.set_max_gauge("mem.live_value_bytes_peak", live)
        _metrics.set_gauge("mem.workspace_bytes", self.workspace_nbytes())
        _metrics.set_gauge("mem.factor_bytes", self.factor_bytes())

    def __repr__(self) -> str:
        return (
            f"MemoizedMttkrp(strategy={self.strategy.name!r}, "
            f"nnz={self.tensor.nnz}, rank={self._rank}, "
            f"kernel={self._kernel.name!r})"
        )
