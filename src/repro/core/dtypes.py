"""Canonical dtypes and numeric constants used across the library.

Every index array in the library is ``INDEX_DTYPE`` and every value array is
``VALUE_DTYPE``; keeping a single definition avoids silent mixed-dtype
promotions in the hot kernels (gathers, segment reductions) where an
unexpected upcast doubles memory traffic.
"""

from __future__ import annotations

import numpy as np

#: dtype of all nonzero coordinate arrays.
INDEX_DTYPE = np.int64

#: dtype of all nonzero value / factor-matrix arrays.
VALUE_DTYPE = np.float64

#: Bytes per index element (used by the memory model).
INDEX_ITEMSIZE = np.dtype(INDEX_DTYPE).itemsize

#: Bytes per value element (used by the memory model).
VALUE_ITEMSIZE = np.dtype(VALUE_DTYPE).itemsize

#: Default absolute tolerance when deciding a computed entry is zero.
ZERO_TOL = 0.0

#: Default relative tolerance for floating-point agreement tests between
#: independent MTTKRP implementations.
AGREEMENT_RTOL = 1e-10


def as_index_array(a, *, copy: bool = False) -> np.ndarray:
    """Return ``a`` as a C-contiguous ``INDEX_DTYPE`` ndarray.

    ``copy=False`` copies only when dtype/layout conversion requires it.
    """
    if copy:
        return np.array(a, dtype=INDEX_DTYPE, copy=True, order="C")
    return np.ascontiguousarray(a, dtype=INDEX_DTYPE)


def as_value_array(a, *, copy: bool = False) -> np.ndarray:
    """Return ``a`` as a C-contiguous ``VALUE_DTYPE`` ndarray.

    ``copy=False`` copies only when dtype/layout conversion requires it.
    """
    if copy:
        return np.array(a, dtype=VALUE_DTYPE, copy=True, order="C")
    return np.ascontiguousarray(a, dtype=VALUE_DTYPE)
