"""Structural statistics of sparse tensors.

The quantities the planner and the dataset registry care about: per-mode
slice-frequency skew (fitted Zipf exponent), fiber/overlap profiles, and a
one-stop summary used by ``python -m repro info``.
"""

from __future__ import annotations

import numpy as np

from .coo import CooTensor
from .validate import check_mode


def mode_skew(tensor: CooTensor, mode: int) -> float:
    """Fitted Zipf exponent of the mode's slice-frequency distribution.

    Sorts per-slice nonzero counts descending and fits ``log(count) =
    c - a*log(rank)`` by least squares over the nonempty slices; ``a`` is
    returned (0 = uniform, >1 = heavy hub structure).  Returns 0.0 when
    fewer than two nonempty slices exist.
    """
    mode = check_mode(mode, tensor.ndim)
    counts = tensor.slice_nnz(mode)
    counts = np.sort(counts[counts > 0])[::-1].astype(np.float64)
    if counts.shape[0] < 2:
        return 0.0
    ranks = np.arange(1, counts.shape[0] + 1, dtype=np.float64)
    x = np.log(ranks)
    y = np.log(counts)
    slope = float(np.polyfit(x, y, 1)[0])
    return max(-slope, 0.0)


def used_slices(tensor: CooTensor, mode: int) -> int:
    """Number of nonempty slices along ``mode``."""
    mode = check_mode(mode, tensor.ndim)
    return int((tensor.slice_nnz(mode) > 0).sum())


def pairwise_overlap(tensor: CooTensor) -> dict[tuple[int, int], float]:
    """nnz / distinct(projection) for every unordered mode pair.

    Values above 1 mean contracting the *other* modes collapses coordinates
    — the quantity memoization gains scale with.
    """
    from ..model.overlap import DistinctCounter

    counter = DistinctCounter(tensor)
    out: dict[tuple[int, int], float] = {}
    for a in range(tensor.ndim):
        for b in range(a + 1, tensor.ndim):
            distinct = counter.count([a, b])
            out[(a, b)] = tensor.nnz / max(distinct, 1)
    return out


def summary(tensor: CooTensor) -> dict:
    """Structural summary: shape, sparsity, per-mode usage and skew."""
    per_mode = []
    for n in range(tensor.ndim):
        per_mode.append({
            "size": tensor.shape[n],
            "used_slices": used_slices(tensor, n),
            "skew": round(mode_skew(tensor, n), 3),
            "max_slice_nnz": int(tensor.slice_nnz(n).max()) if tensor.nnz else 0,
        })
    overlaps = pairwise_overlap(tensor) if tensor.ndim >= 2 else {}
    return {
        "shape": tensor.shape,
        "order": tensor.ndim,
        "nnz": tensor.nnz,
        "density": tensor.density,
        "norm": tensor.norm(),
        "coo_bytes": tensor.nbytes(),
        "modes": per_mode,
        "max_pairwise_overlap": max(overlaps.values()) if overlaps else 1.0,
    }
