"""Row-encoding utilities: map multi-column integer rows to scalar keys.

Grouping identical coordinate tuples is the backbone of both tensor
canonicalization and the symbolic contraction phase.  When the mixed-radix
product of the mode sizes fits in ``int64`` we encode each row as a single
scalar (one ``lexsort``-free ``np.unique`` over a flat array, the fast path);
otherwise we fall back to a lexicographic sort over the columns.
"""

from __future__ import annotations

import numpy as np

from .dtypes import INDEX_DTYPE

#: Largest mixed-radix product for which scalar encoding is safe.
_MAX_CODE = np.iinfo(np.int64).max


def fits_int64(dims) -> bool:
    """True if the mixed-radix encoding of ``dims`` fits in a signed int64."""
    prod = 1
    for d in dims:
        prod *= int(d)
        if prod > _MAX_CODE:
            return False
    return True


def encode_rows(idx: np.ndarray, dims) -> np.ndarray:
    """Encode each row of ``idx`` (``m x k``) as a scalar int64 key.

    The encoding is the mixed-radix number with digit ``idx[:, j]`` and radix
    ``dims[j]`` — row-major, so scalar-key order equals lexicographic row
    order.  Raises ``OverflowError`` when the key space exceeds int64; callers
    should check :func:`fits_int64` first or catch and fall back to
    :func:`lexsort_rows`.
    """
    dims = [int(d) for d in dims]
    if idx.shape[1] != len(dims):
        raise ValueError(
            f"idx has {idx.shape[1]} columns but dims has {len(dims)} entries"
        )
    if not fits_int64(dims):
        raise OverflowError("mixed-radix key space exceeds int64")
    m, k = idx.shape
    if k == 0:
        return np.zeros(m, dtype=INDEX_DTYPE)
    codes = idx[:, 0].astype(INDEX_DTYPE, copy=True)
    for j in range(1, k):
        codes *= dims[j]
        codes += idx[:, j]
    return codes


def lexsort_rows(idx: np.ndarray) -> np.ndarray:
    """Return the permutation sorting rows of ``idx`` lexicographically."""
    if idx.shape[0] == 0:
        return np.zeros(0, dtype=np.intp)
    if idx.shape[1] == 0:
        return np.arange(idx.shape[0], dtype=np.intp)
    # np.lexsort keys: last key is primary, so reverse the column order.
    return np.lexsort(idx.T[::-1])


def group_rows(idx: np.ndarray, dims) -> tuple[np.ndarray, np.ndarray]:
    """Group identical rows of ``idx``.

    Returns ``(unique_rows, inverse)`` where ``unique_rows`` is ``u x k`` in
    lexicographic order and ``inverse`` maps each input row to its group id,
    exactly like ``np.unique(idx, axis=0, return_inverse=True)`` but much
    faster on the common int64-encodable path.
    """
    m, k = idx.shape
    if m == 0:
        return idx[:0].copy(), np.zeros(0, dtype=np.intp)
    if k == 0:
        return idx[:1].copy(), np.zeros(m, dtype=np.intp)
    if fits_int64(dims):
        codes = encode_rows(idx, dims)
        _, first, inverse = np.unique(codes, return_index=True, return_inverse=True)
        return idx[first], inverse
    unique_rows, inverse = np.unique(idx, axis=0, return_inverse=True)
    return unique_rows, inverse.ravel()


def count_distinct_rows(idx: np.ndarray, dims) -> int:
    """Number of distinct rows of ``idx`` (cheaper than :func:`group_rows`)."""
    m, k = idx.shape
    if m == 0:
        return 0
    if k == 0:
        return 1
    if fits_int64(dims):
        return int(np.unique(encode_rows(idx, dims)).size)
    return int(np.unique(idx, axis=0).shape[0])
