"""CP-ALS: alternating least squares for the CP decomposition.

The driver is backend-agnostic: any object providing ``set_factors`` /
``update_factor`` / ``mttkrp`` / ``mode_order`` can supply the MTTKRP, so the
same loop runs the memoized engine (any strategy), the planner-selected
engine, and the baseline implementations — which is what makes the paper's
comparisons apples-to-apples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..linalg.gram import GramCache
from ..linalg.innerprod import innerprod_from_mttkrp
from ..linalg.norms import normalize_columns
from ..linalg.solve import solve_normal_equations
from ..obs import attribution as _obs_attr
from ..obs import events as _obs_events
from ..obs import health as _obs_health
from ..obs import memory as _obs_mem
from ..obs import runctx as _runctx
from ..obs import trace as _obs
from ..perf import counters as perf
from .coo import CooTensor
from .dtypes import VALUE_DTYPE, VALUE_ITEMSIZE
from .engine import MemoizedMttkrp
from .kruskal import KruskalTensor
from .validate import check_factor_matrices, check_positive_int, check_random_state


@dataclass
class CPResult:
    """Outcome of a CP-ALS run.

    Attributes
    ----------
    ktensor: the fitted model (weights pushed out of the factors).
    fits: per-iteration fit values ``1 - ||X - model|| / ||X||``.
    n_iterations: iterations executed.
    converged: whether the fit-change tolerance was met.
    strategy_name: memoization strategy used (or backend description).
    planner_report: the planner's ranked candidate list when
        ``strategy='auto'`` was requested, else None.
    timings: wall-clock breakdown: ``setup`` (symbolic phase + planning),
        ``per_iteration`` (mean seconds), ``total``.
    drift_readings: per-iteration
        :class:`~repro.obs.watchdog.DriftReading` list when a model-drift
        watchdog was active (tracing enabled or one passed in), else None.
    memory_readings: per-iteration
        :class:`~repro.obs.memory.MemReading` list (measured vs predicted
        peak memoized-value bytes) when memory tracking was enabled
        (:func:`repro.obs.memory.enabled`), else None.
    attribution_readings: per-iteration
        :class:`~repro.obs.attribution.AttributionReading` list (measured
        per-tree-node / per-mode work aligned node-for-node with the cost
        model) when attribution was enabled
        (:func:`repro.obs.attribution.enabled`), else None.
    health_readings: per-iteration
        :class:`~repro.obs.health.HealthReading` list (Gram conditioning,
        factor deltas, congruence/swamp detection, fit-trajectory
        classification) when numerical-health collection was enabled
        (:func:`repro.obs.health.enabled`), else None.
    """

    ktensor: KruskalTensor
    fits: list[float]
    n_iterations: int
    converged: bool
    strategy_name: str
    planner_report: object | None = None
    timings: dict = field(default_factory=dict)
    drift_readings: list | None = None
    memory_readings: list | None = None
    attribution_readings: list | None = None
    health_readings: list | None = None

    @property
    def fit(self) -> float:
        return self.fits[-1] if self.fits else float("nan")


def initialize_factors(
    tensor: CooTensor,
    rank: int,
    init: str | Sequence[np.ndarray] = "random",
    random_state=None,
) -> list[np.ndarray]:
    """Initial factor matrices for CP-ALS.

    ``init='random'`` draws uniform(0, 1) entries (the usual choice for
    sparse count data); ``init='hosvd'`` uses leading left singular vectors
    of each matricization, padded with random columns when the mode is
    smaller than the rank; a list of arrays is validated and copied.
    """
    rng = check_random_state(random_state)
    if isinstance(init, str):
        name = init.lower()
        if name == "random":
            return [
                rng.random((dim, rank), dtype=VALUE_DTYPE)
                for dim in tensor.shape
            ]
        if name == "hosvd":
            return _hosvd_init(tensor, rank, rng)
        raise ValueError(f"unknown init: {init!r}")
    factors = [np.array(U, dtype=VALUE_DTYPE, copy=True) for U in init]
    check_factor_matrices(factors, tensor.shape, rank)
    return factors


def _hosvd_init(tensor: CooTensor, rank: int, rng) -> list[np.ndarray]:
    from scipy.sparse.linalg import svds

    factors = []
    for n, dim in enumerate(tensor.shape):
        k = min(rank, dim - 1, max(tensor.nnz - 1, 0))
        U = rng.random((dim, rank), dtype=VALUE_DTYPE)
        if k >= 1:
            try:
                mat = tensor.matricize(n)
                u, _, _ = svds(mat.astype(np.float64), k=k)
                U[:, :k] = np.abs(u[:, ::-1])  # descending singular values
            except (OverflowError, ValueError, MemoryError):
                pass  # fall back to the random columns
        factors.append(U)
    return factors


def cp_als(
    tensor: CooTensor,
    rank: int,
    *,
    strategy="auto",
    n_iter_max: int = 50,
    tol: float = 1e-8,
    init: str | Sequence[np.ndarray] = "random",
    random_state=None,
    memory_budget: int | None = None,
    engine_factory: Callable[[CooTensor], object] | None = None,
    callback: Callable[[int, float, KruskalTensor], None] | None = None,
    watchdog=None,
    run_ctx=None,
) -> CPResult:
    """Fit a rank-``R`` CP decomposition with alternating least squares.

    Parameters
    ----------
    tensor: sparse input tensor.
    rank: number of CP components.
    strategy:
        MTTKRP memoization strategy — ``'auto'`` runs the model-driven
        planner (the paper's headline mode); otherwise a strategy name,
        nested tuple, or :class:`~repro.core.strategy.MemoStrategy`.
        Ignored when ``engine_factory`` is given.
    n_iter_max: iteration cap.
    tol: convergence threshold on the fit change per iteration; ``0``
        disables early stopping.
    init: ``'random'``, ``'hosvd'``, or explicit factor matrices.
    random_state: seed or Generator for the initialization.
    memory_budget:
        byte cap on memoized intermediates handed to the planner when
        ``strategy='auto'``.
    engine_factory:
        escape hatch for benchmarking: a callable returning an MTTKRP
        backend for the tensor.
    callback: invoked as ``callback(iteration, fit, model)`` per iteration;
        returning a truthy value stops the run after that iteration
        (without marking it converged) — the hook
        :func:`repro.algos.restarts.cp_als_restarts` uses for its
        ``early_stop`` hopeless-restart cutoff.
    watchdog:
        a :class:`~repro.obs.watchdog.DriftWatchdog` comparing the model's
        predicted per-iteration cost against measured counters and wall
        time.  When None and tracing is enabled
        (:func:`repro.obs.enabled`), one is built automatically from the
        engine's symbolic tree; when tracing is off and none is passed,
        the watchdog machinery is skipped entirely.
    run_ctx:
        a :class:`~repro.obs.runctx.RunContext` scoping this run's
        telemetry.  When None, the run joins the ambient context if one is
        active (a caller's ``runctx.using`` block), else it creates and
        registers an ambient context of its own — so every run has a
        ``run_id``, appears on ``/runz``, and stamps its events, while
        single-run behavior on the global instruments is unchanged.  Pass
        :meth:`RunContext.scoped() <repro.obs.runctx.RunContext.scoped>`
        to give the run fully isolated tracer/events/metrics/memory
        (required for concurrent runs with zero telemetry cross-talk).
    """
    check_positive_int(rank, "rank")
    check_positive_int(n_iter_max, "n_iter_max")
    if tol < 0:
        raise ValueError(f"tol must be >= 0, got {tol}")
    if tensor.ndim < 2:
        raise ValueError("CP-ALS requires an order >= 2 tensor")

    ctx = run_ctx if run_ctx is not None else _runctx.current()
    if ctx is not None:
        ctx.meta.setdefault("shape", list(tensor.shape))
        ctx.meta.setdefault("nnz", tensor.nnz)
        ctx.meta.setdefault("rank", rank)
    if ctx is not None and _runctx.current() is ctx:
        # Already active (the caller's own ``using`` block): run in place.
        return _cp_als_run(
            tensor, rank, strategy=strategy, n_iter_max=n_iter_max, tol=tol,
            init=init, random_state=random_state,
            memory_budget=memory_budget, engine_factory=engine_factory,
            callback=callback, watchdog=watchdog,
        )
    if ctx is None:
        ctx = _runctx.RunContext.ambient(
            shape=list(tensor.shape), nnz=tensor.nnz, rank=rank,
        )
    with _runctx.using(ctx):
        return _cp_als_run(
            tensor, rank, strategy=strategy, n_iter_max=n_iter_max, tol=tol,
            init=init, random_state=random_state,
            memory_budget=memory_budget, engine_factory=engine_factory,
            callback=callback, watchdog=watchdog,
        )


def _cp_als_run(
    tensor: CooTensor,
    rank: int,
    *,
    strategy,
    n_iter_max: int,
    tol: float,
    init,
    random_state,
    memory_budget,
    engine_factory,
    callback,
    watchdog,
) -> CPResult:
    """The ALS loop proper, always running inside an active run context."""
    factors = initialize_factors(tensor, rank, init, random_state)
    norm_x = tensor.norm()

    planner_report = None
    t0 = time.perf_counter()
    if engine_factory is not None:
        engine = engine_factory(tensor)
        strategy_name = getattr(engine, "name", type(engine).__name__)
    else:
        if isinstance(strategy, str) and strategy.lower() == "auto":
            from ..model.planner import plan

            planner_report = plan(tensor, rank, memory_budget=memory_budget)
            chosen = planner_report.best.strategy
        else:
            chosen = strategy
        engine = MemoizedMttkrp(tensor, chosen)
        strategy_name = engine.strategy.name
    engine.set_factors(factors)
    setup_time = time.perf_counter() - t0
    run_ctx = _runctx.current()
    if run_ctx is not None:
        run_ctx.meta.setdefault("strategy", strategy_name)

    if watchdog is None and _obs.enabled() and isinstance(engine, MemoizedMttkrp):
        from ..model.cost import cost_from_symbolic
        from ..obs.watchdog import DriftWatchdog

        watchdog = DriftWatchdog(cost_from_symbolic(engine.symbolic, rank))

    mem_tracker = None
    mem_readings: list | None = None
    predicted_peak = 0
    if _obs_mem.enabled() and isinstance(engine, MemoizedMttkrp):
        mem_tracker = _obs_mem.get_tracker()
        node_nnz = engine.symbolic.node_nnz()
        mem_tracker.register_expected(
            id(engine),
            [n * rank * VALUE_ITEMSIZE for n in node_nnz],
        )
        if watchdog is not None:
            predicted_peak = watchdog.cost.peak_value_bytes
        else:
            from ..model.cost import simulate_peak_value_bytes

            predicted_peak = simulate_peak_value_bytes(
                engine.strategy, node_nnz, rank
            )
        mem_readings = []

    attr_recorder = None
    attr_readings: list | None = None
    if _obs_attr.enabled() and isinstance(engine, MemoizedMttkrp):
        attr_recorder = _obs_attr.get_recorder()
        attr_recorder.register(
            engine.strategy, engine.symbolic.node_nnz(), rank
        )
        attr_readings = []

    health_collector = None
    health_readings: list | None = None
    if _obs_health.enabled():
        health_collector = _obs_health.get_collector()
        health_collector.start_run(n_modes=tensor.ndim, rank=rank)
        health_readings = []
    # Solve-site attribution for the solver's fallback telemetry: cheap
    # (one contextvar set per mode), but only paid when someone listens.
    track_site = health_collector is not None or _obs_events.enabled()

    if _obs_events.enabled():
        _obs_events.emit(
            "run_start", shape=list(tensor.shape), nnz=tensor.nnz,
            rank=rank, strategy=strategy_name, n_iter_max=n_iter_max,
            tol=tol,
        )

    mode_order = tuple(engine.mode_order)
    grams = GramCache(engine.factors)
    weights = np.ones(rank, dtype=VALUE_DTYPE)
    fits: list[float] = []
    converged = False
    iter_times: list[float] = []

    def run_modes(iteration: int) -> np.ndarray:
        nonlocal weights
        M_last: np.ndarray | None = None
        for n in mode_order:
            if track_site:
                _obs_health.set_site(iteration, n)
            M = engine.mttkrp(n)
            with _obs.span("factor_solve", mode=n):
                H = grams.combined(skip=n)
                U = solve_normal_equations(M, H)
                # First iteration: 2-norm normalization settles scale;
                # later iterations use max-norm so weights track
                # convergence smoothly (the Tensor Toolbox convention).
                U, norms = normalize_columns(
                    U, order=2 if iteration == 0 else "max"
                )
                norms = np.where(norms > 0, norms, 1.0)
                weights = norms
                if health_collector is not None:
                    # Read-only: conditioning of the Gram just solved and
                    # the relative change against the outgoing factor.
                    health_collector.observe_mode(
                        n, H, engine.factors[n], U
                    )
                engine.update_factor(n, U)
                grams.update(n, U)
            M_last = M
        assert M_last is not None
        return M_last

    try:
        for iteration in range(n_iter_max):
            it0 = time.perf_counter()
            if mem_tracker is not None:
                mem_tracker.begin_window()
            if attr_recorder is not None:
                attr_recorder.begin_window()
            if health_collector is not None:
                health_collector.begin_iteration(iteration)
            with _obs.span("als_iteration", iteration=iteration):
                if watchdog is not None:
                    # Count this iteration's work in a private sink, then
                    # fold it into any caller-installed counters so their
                    # totals are unchanged by the watchdog being active.
                    outer = perf.active_counters()
                    with perf.counting() as it_counters:
                        M_last = run_modes(iteration)
                    if outer is not None:
                        outer.add(it_counters)
                else:
                    M_last = run_modes(iteration)
            it_seconds = time.perf_counter() - it0
            iter_times.append(it_seconds)
            mem_reading = None
            if mem_tracker is not None:
                mem_reading = mem_tracker.observe_iteration(
                    iteration,
                    predicted_peak_bytes=predicted_peak,
                    workspace_bytes=engine.workspace_nbytes(),
                    factor_bytes=engine.factor_bytes(),
                )
                mem_readings.append(mem_reading)
            attr_reading = None
            if attr_recorder is not None:
                attr_reading = attr_recorder.observe_iteration(iteration)
                attr_readings.append(attr_reading)

            last = mode_order[-1]
            fit = _compute_fit(
                norm_x, weights, engine.factors, grams, M_last, last
            )
            fits.append(fit)
            health_reading = None
            if health_collector is not None:
                health_reading = health_collector.observe_iteration(
                    iteration, grams=grams, fit=fit
                )
                health_readings.append(health_reading)
            if watchdog is not None:
                watchdog.observe(iteration, it_counters, it_seconds,
                                 mem=mem_reading, attribution=attr_reading,
                                 health=health_reading)
            if _obs_events.enabled():
                fields = {"iteration": iteration, "fit": fit,
                          "seconds": it_seconds}
                if len(fits) > 1:
                    fields["delta"] = fits[-1] - fits[-2]
                if mem_reading is not None:
                    fields["mem_peak_bytes"] = \
                        mem_reading.measured_peak_bytes
                    fields["mem_live_bytes"] = mem_reading.live_bytes
                if health_reading is not None:
                    max_cond = health_reading.max_condition_number
                    if np.isfinite(max_cond):
                        fields["health_max_condition"] = max_cond
                    max_delta = health_reading.max_factor_delta
                    if np.isfinite(max_delta):
                        fields["health_max_factor_delta"] = max_delta
                    fields["health_congruence"] = health_reading.congruence
                    fields["health_trajectory"] = health_reading.trajectory
                    if health_reading.n_truncated:
                        fields["health_truncated_eigenvalues"] = \
                            health_reading.n_truncated
                    if health_reading.pinv_fallbacks:
                        fields["health_pinv_fallbacks"] = \
                            health_reading.pinv_fallbacks
                if watchdog is not None and watchdog.readings:
                    reading = watchdog.readings[-1]
                    fields["drift_flops_ratio"] = reading.flops_ratio
                    fields["drift_words_ratio"] = reading.words_ratio
                    if reading.time_ratio is not None:
                        fields["drift_time_ratio"] = reading.time_ratio
                    if reading.mem_ratio is not None:
                        fields["drift_mem_ratio"] = reading.mem_ratio
                    if reading.fired:
                        fields["drift_fired"] = list(reading.fired)
                _obs_events.emit("iteration", **fields)
            if callback is not None:
                # A truthy return requests early termination (used by
                # cp_als_restarts' hopeless-restart cutoff).
                if callback(iteration, fit,
                            KruskalTensor(weights, engine.factors)):
                    break
            if tol > 0 and iteration > 0 and abs(fits[-1] - fits[-2]) < tol:
                converged = True
                break
    finally:
        if track_site:
            _obs_health.clear_site()

    ktensor = KruskalTensor(weights, engine.factors).normalize()
    if _obs_events.enabled():
        _obs_events.emit(
            "run_stop", n_iterations=len(fits), converged=converged,
            fit=fits[-1] if fits else None,
            total_seconds=setup_time + float(np.sum(iter_times)),
        )
    return CPResult(
        ktensor=ktensor,
        fits=fits,
        n_iterations=len(fits),
        converged=converged,
        strategy_name=strategy_name,
        planner_report=planner_report,
        timings={
            "setup": setup_time,
            "per_iteration": float(np.mean(iter_times)) if iter_times else 0.0,
            "total": setup_time + float(np.sum(iter_times)),
        },
        drift_readings=watchdog.readings if watchdog is not None else None,
        memory_readings=mem_readings,
        attribution_readings=attr_readings,
        health_readings=health_readings,
    )


def _compute_fit(
    norm_x: float,
    weights: np.ndarray,
    factors: Sequence[np.ndarray],
    grams: GramCache,
    M_last: np.ndarray,
    last_mode: int,
) -> float:
    """Fit from the final MTTKRP of the iteration (no extra tensor pass)."""
    H_all = grams.combined()
    norm_model_sq = float(weights @ H_all @ weights)
    inner = innerprod_from_mttkrp(M_last, factors[last_mode], weights)
    err_sq = max(norm_x**2 + norm_model_sq - 2.0 * inner, 0.0)
    if norm_x == 0.0:
        return 1.0 if norm_model_sq == 0.0 else float("-inf")
    return 1.0 - float(np.sqrt(err_sq)) / norm_x
