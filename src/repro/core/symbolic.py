"""Symbolic contraction phase: per-node index blocks and reduction plans.

The sparsity pattern of every memoized intermediate is determined entirely by
the input tensor and the strategy tree — it never changes across CP-ALS
(sub-)iterations or restarts.  The symbolic phase therefore computes, once:

* each node's unique coordinate block over its kept modes, and
* a :class:`~repro.core.segreduce.SegmentPlan` mapping parent nonzeros to
  node rows (the "reduction set" of the memoization literature),

after which every numeric rebuild of a node is a gather + Hadamard +
segmented-sum with no sorting or hashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import rowcodes
from ..kernels.indices import NodeKernelIndex, build_node_index
from .coo import CooTensor
from .segreduce import SegmentPlan
from .strategy import MemoStrategy


@dataclass
class NodeSymbolic:
    """Static structure of one strategy node's intermediate tensor."""

    node_id: int
    modes: tuple[int, ...]
    #: unique coordinate rows over ``modes`` (lexicographic order).
    index: np.ndarray
    #: plan summing parent rows into this node's rows (None for the root).
    plan: SegmentPlan | None
    #: for each delta mode, its column position in the *parent's* index block.
    delta_parent_cols: tuple[int, ...]
    #: the delta modes themselves (aligned with ``delta_parent_cols``).
    delta_modes: tuple[int, ...]

    @property
    def nnz(self) -> int:
        return int(self.index.shape[0])

    def index_nbytes(self) -> int:
        plan_bytes = self.plan.index_nbytes() if self.plan is not None else 0
        return int(self.index.nbytes) + plan_bytes


class SymbolicTree:
    """Symbolic structures for every node of ``strategy`` applied to ``tensor``.

    Parameters
    ----------
    tensor:
        input tensor in canonical COO form.
    strategy:
        memoization tree over the tensor's modes.
    """

    def __init__(self, tensor: CooTensor, strategy: MemoStrategy):
        if strategy.n_modes != tensor.ndim:
            raise ValueError(
                f"strategy covers {strategy.n_modes} modes, tensor has "
                f"{tensor.ndim}"
            )
        self.tensor = tensor
        self.strategy = strategy
        self.nodes: list[NodeSymbolic] = [None] * len(strategy.nodes)  # type: ignore[list-item]
        self._kernel_indices: dict[int, NodeKernelIndex] = {}
        self._build()

    def _build(self) -> None:
        strat = self.strategy
        root = strat.root
        self.nodes[root.id] = NodeSymbolic(
            node_id=root.id,
            modes=root.modes,
            index=self.tensor.idx,
            plan=None,
            delta_parent_cols=(),
            delta_modes=(),
        )
        for nid in strat.topological_order():
            node = strat.nodes[nid]
            if node.is_root:
                continue
            parent_sym = self.nodes[node.parent]  # type: ignore[index]
            parent_modes = strat.nodes[node.parent].modes  # type: ignore[index]
            keep_cols = [parent_modes.index(m) for m in node.modes]
            delta_cols = tuple(parent_modes.index(m) for m in node.delta)
            projected = parent_sym.index[:, keep_cols]
            dims = [self.tensor.shape[m] for m in node.modes]
            unique_rows, inverse = rowcodes.group_rows(projected, dims)
            self.nodes[nid] = NodeSymbolic(
                node_id=nid,
                modes=node.modes,
                index=np.ascontiguousarray(unique_rows),
                plan=SegmentPlan(inverse),
                delta_parent_cols=delta_cols,
                delta_modes=node.delta,
            )

    # ------------------------------------------------------------------
    # kernel indices
    # ------------------------------------------------------------------
    def kernel_index(self, node_id: int) -> NodeKernelIndex | None:
        """The node's flat gather/reduction indices (``None`` for the root).

        Built on first request and cached on the tree, so every engine,
        restart, and parallel worker sharing this symbolic tree shares one
        set of precomputed arrays.  Like the index blocks themselves, these
        depend only on the sparsity pattern and the strategy.
        """
        node = self.strategy.nodes[node_id]
        if node.is_root:
            return None
        ki = self._kernel_indices.get(node_id)
        if ki is None:
            assert node.parent is not None
            ki = build_node_index(self.nodes[node_id], self.nodes[node.parent])
            self._kernel_indices[node_id] = ki
        return ki

    def build_kernel_indices(self) -> None:
        """Eagerly build every node's kernel index (normally lazy)."""
        for sym in self.nodes:
            self.kernel_index(sym.node_id)

    def kernel_index_nbytes(self) -> int:
        """Bytes held by kernel indices built so far (excluded from
        :meth:`index_nbytes`, which the cost model predicts exactly)."""
        return sum(ki.nbytes() for ki in self._kernel_indices.values())

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def node_nnz(self) -> list[int]:
        """Per-node intermediate nonzero counts (cost-model input)."""
        return [sym.nnz for sym in self.nodes]

    def index_nbytes(self) -> int:
        """Total bytes of all symbolic index structures."""
        return sum(sym.index_nbytes() for sym in self.nodes)

    def compression_ratios(self) -> dict[int, float]:
        """Per non-root node: parent nnz / node nnz (index-overlap factor).

        Ratios above 1 quantify how much contraction shrinks the
        intermediates — the effect that makes memoization pay beyond the pure
        operation-count argument.
        """
        out: dict[int, float] = {}
        for sym in self.nodes:
            node = self.strategy.nodes[sym.node_id]
            if node.is_root:
                continue
            parent_nnz = self.nodes[node.parent].nnz  # type: ignore[index]
            out[sym.node_id] = parent_nnz / max(sym.nnz, 1)
        return out

    def __repr__(self) -> str:
        return (
            f"SymbolicTree(strategy={self.strategy.name!r}, "
            f"root_nnz={self.tensor.nnz}, "
            f"index_bytes={self.index_nbytes()})"
        )
