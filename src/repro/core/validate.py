"""Input-validation helpers shared by public entry points.

All validators raise ``ValueError``/``TypeError`` with messages that name the
offending argument, so that errors surfacing from deep inside CP-ALS point
back at the user-facing parameter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive_int(value, name: str, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_shape(shape, name: str = "shape") -> tuple[int, ...]:
    """Validate a tensor shape: a non-empty sequence of positive ints."""
    try:
        shape = tuple(int(s) for s in shape)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a sequence of integers") from exc
    if len(shape) == 0:
        raise ValueError(f"{name} must have at least one mode")
    for i, s in enumerate(shape):
        if s < 1:
            raise ValueError(f"{name}[{i}] must be >= 1, got {s}")
    return shape


def check_mode(mode, ndim: int, name: str = "mode") -> int:
    """Validate a mode index against ``ndim``; negative modes wrap."""
    if isinstance(mode, bool) or not isinstance(mode, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(mode).__name__}")
    mode = int(mode)
    if mode < 0:
        mode += ndim
    if not 0 <= mode < ndim:
        raise ValueError(f"{name} out of range for an order-{ndim} tensor: {mode}")
    return mode


def check_indices_in_bounds(idx: np.ndarray, shape: Sequence[int]) -> None:
    """Validate an ``nnz x N`` coordinate array against ``shape``."""
    if idx.ndim != 2:
        raise ValueError(f"coordinate array must be 2-D, got ndim={idx.ndim}")
    if idx.shape[1] != len(shape):
        raise ValueError(
            f"coordinate array has {idx.shape[1]} columns but shape has "
            f"{len(shape)} modes"
        )
    if idx.shape[0] == 0:
        return
    lo = idx.min(axis=0)
    hi = idx.max(axis=0)
    if (lo < 0).any():
        mode = int(np.argmax(lo < 0))
        raise ValueError(f"negative index in mode {mode}")
    dims = np.asarray(shape, dtype=idx.dtype)
    if (hi >= dims).any():
        mode = int(np.argmax(hi >= dims))
        raise ValueError(
            f"index {int(hi[mode])} out of bounds for mode {mode} of size "
            f"{shape[mode]}"
        )


def check_factor_matrices(
    factors: Sequence[np.ndarray], shape: Sequence[int], rank: int | None = None
) -> int:
    """Validate a list of factor matrices against a tensor shape.

    Returns the common rank (number of columns).
    """
    if len(factors) != len(shape):
        raise ValueError(
            f"expected {len(shape)} factor matrices, got {len(factors)}"
        )
    ranks = set()
    for n, (U, dim) in enumerate(zip(factors, shape)):
        U = np.asarray(U)
        if U.ndim != 2:
            raise ValueError(f"factors[{n}] must be 2-D, got ndim={U.ndim}")
        if U.shape[0] != dim:
            raise ValueError(
                f"factors[{n}] has {U.shape[0]} rows but mode {n} has size {dim}"
            )
        ranks.add(U.shape[1])
    if len(ranks) != 1:
        raise ValueError(f"factor matrices have inconsistent ranks: {sorted(ranks)}")
    found = ranks.pop()
    if rank is not None and found != rank:
        raise ValueError(f"factor matrices have rank {found}, expected {rank}")
    return found


def check_random_state(random_state) -> np.random.Generator:
    """Coerce ``random_state`` (None, seed, or Generator) to a Generator."""
    if random_state is None or isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(random_state)
    if isinstance(random_state, np.random.Generator):
        return random_state
    raise TypeError(
        "random_state must be None, an int seed, or a numpy Generator; got "
        f"{type(random_state).__name__}"
    )
