"""Memoization strategies: trees over tensor modes.

A *memoization strategy* for an order-``N`` tensor is a rooted tree in which
every node carries a set of modes: the root carries all ``N`` modes, each
internal node's children partition its mode set, and each mode appears as a
singleton leaf.  A node represents the semi-sparse intermediate tensor
obtained by contracting the input tensor with the factor matrices of all
modes *outside* its mode set; the leaf for mode ``n`` is exactly the mode-``n``
MTTKRP result.

The strategy space is the paper's algorithm space.  Its special cases:

* :func:`star` — no memoization: each MTTKRP computed directly from the input
  tensor (``N * (N-1)`` contractions per CP-ALS iteration; the SPLATT-style
  work bound).
* :func:`two_way` — one memoized split (Phan et al.'s factor-of-2 scheme).
* :func:`chain` — ``m`` memoized intermediates along a caterpillar
  (the adaptive family's tunable knob).
* :func:`balanced_binary` — a balanced binary dimension tree
  (``O(N log N)`` contractions per iteration).

The model-driven planner (:mod:`repro.model.planner`) enumerates candidates
from these generators (plus an exhaustive binary-tree search for small ``N``)
and selects by predicted cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .validate import check_positive_int

NestedSpec = int | tuple


@dataclass(frozen=True)
class TreeNode:
    """One node of a memoization tree.

    Attributes
    ----------
    id: position in the strategy's node list.
    modes: sorted tuple of modes this node's tensor keeps *sparse*.
    parent: parent node id, or ``None`` for the root.
    children: child node ids (empty for leaves).
    delta: modes contracted when computing this node from its parent
        (``modes(parent) - modes(self)``); empty for the root.
    """

    id: int
    modes: tuple[int, ...]
    parent: int | None
    children: tuple[int, ...]
    delta: tuple[int, ...]

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None


class MemoStrategy:
    """A validated memoization tree over modes ``0 .. n_modes-1``.

    Build with :func:`from_nested` or one of the named generators rather than
    constructing nodes by hand.
    """

    def __init__(self, nodes: Sequence[TreeNode], name: str = "custom"):
        self.nodes: tuple[TreeNode, ...] = tuple(nodes)
        self.name = name
        self._validate()
        self.root_id = next(n.id for n in self.nodes if n.is_root)
        self.n_modes = len(self.nodes[self.root_id].modes)
        self._leaf_of_mode = {
            n.modes[0]: n.id for n in self.nodes if n.is_leaf
        }
        self._postorder = tuple(self._compute_postorder())
        self.mode_order: tuple[int, ...] = tuple(
            self.nodes[i].modes[0] for i in self._postorder if self.nodes[i].is_leaf
        )
        # contracted(t) = all modes not in modes(t); precomputed as frozensets
        # because the engine's invalidation test runs every sub-iteration.
        all_modes = frozenset(range(self.n_modes))
        self._contracted = tuple(
            all_modes - frozenset(n.modes) for n in self.nodes
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.nodes:
            raise ValueError("strategy must have at least one node")
        roots = [n for n in self.nodes if n.is_root]
        if len(roots) != 1:
            raise ValueError(f"strategy must have exactly one root, got {len(roots)}")
        ids = {n.id for n in self.nodes}
        if ids != set(range(len(self.nodes))):
            raise ValueError("node ids must be 0..len(nodes)-1")
        for n in self.nodes:
            if tuple(sorted(set(n.modes))) != n.modes:
                raise ValueError(f"node {n.id} modes must be sorted and unique")
            if n.children:
                child_modes: list[int] = []
                for c in n.children:
                    if self.nodes[c].parent != n.id:
                        raise ValueError(
                            f"child {c} does not point back to parent {n.id}"
                        )
                    child_modes.extend(self.nodes[c].modes)
                if sorted(child_modes) != list(n.modes):
                    raise ValueError(
                        f"children of node {n.id} do not partition its modes"
                    )
                if len(n.children) < 2:
                    raise ValueError(
                        f"internal node {n.id} must have >= 2 children"
                    )
            else:
                if len(n.modes) != 1:
                    raise ValueError(
                        f"leaf node {n.id} must carry exactly one mode"
                    )
            if n.parent is not None:
                expected_delta = tuple(
                    sorted(set(self.nodes[n.parent].modes) - set(n.modes))
                )
                if n.delta != expected_delta:
                    raise ValueError(
                        f"node {n.id} delta {n.delta} inconsistent with parent"
                    )
            elif n.delta:
                raise ValueError("root delta must be empty")
        root = roots[0]
        if root.modes != tuple(range(len(root.modes))):
            raise ValueError("root must carry modes 0..N-1")

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def root(self) -> TreeNode:
        return self.nodes[self.root_id]

    def leaf_id(self, mode: int) -> int:
        """Node id of the leaf carrying ``mode``."""
        return self._leaf_of_mode[mode]

    def contracted(self, node_id: int) -> frozenset[int]:
        """Modes contracted into node ``node_id`` (its ``mu'`` set)."""
        return self._contracted[node_id]

    def path_to_root(self, node_id: int) -> list[int]:
        """Node ids from ``node_id`` up to and including the root."""
        path = [node_id]
        while self.nodes[path[-1]].parent is not None:
            path.append(self.nodes[path[-1]].parent)  # type: ignore[arg-type]
        return path

    def invalidated_by(self, mode: int) -> list[int]:
        """Node ids whose cached tensors become stale when ``mode`` updates."""
        return [
            n.id
            for n in self.nodes
            if not n.is_root and mode in self._contracted[n.id]
        ]

    def topological_order(self) -> list[int]:
        """Node ids in a parent-before-children order."""
        order: list[int] = []
        stack = [self.root_id]
        while stack:
            nid = stack.pop()
            order.append(nid)
            stack.extend(reversed(self.nodes[nid].children))
        return order

    def _compute_postorder(self) -> Iterator[int]:
        def walk(nid: int) -> Iterator[int]:
            for c in self.nodes[nid].children:
                yield from walk(c)
            yield nid

        return walk(self.root_id)

    def rebuild_schedule(self) -> list[tuple[int, tuple[int, ...]]]:
        """Steady-state per-mode rebuild schedule: ``[(mode, node_ids), ...]``.

        Replays the engine's cache behaviour (eager frees on entering a
        sub-iteration, root-path materialization) until the per-mode rebuild
        assignment repeats, and returns that fixed point: for each mode in
        :attr:`mode_order`, the non-root node ids rebuilt during its
        sub-iteration, in build (root-to-leaf) order.  Under the post-order
        mode schedule every non-root node appears exactly once per iteration,
        so this is a partition of the non-root nodes — the structural basis
        for attributing per-node cost to modes.
        """
        live: set[int] = set()
        prev: list[tuple[int, tuple[int, ...]]] | None = None
        # The cache-state transition per iteration is deterministic, so the
        # schedule reaches its cycle within a couple of passes; the bound is
        # a safety net, not a tuning knob.
        for _ in range(4):
            schedule: list[tuple[int, tuple[int, ...]]] = []
            for n in self.mode_order:
                for nid in self.invalidated_by(n):
                    live.discard(nid)
                built: list[int] = []
                for nid in reversed(self.path_to_root(self.leaf_id(n))):
                    if self.nodes[nid].is_root or nid in live:
                        continue
                    live.add(nid)
                    built.append(nid)
                schedule.append((n, tuple(built)))
            if schedule == prev:
                break
            prev = schedule
        assert prev is not None
        return prev

    def depth(self) -> int:
        """Tree height: edges on the longest root-to-leaf path."""
        best = 0
        for n in self.nodes:
            if n.is_leaf:
                best = max(best, len(self.path_to_root(n.id)) - 1)
        return best

    # ------------------------------------------------------------------
    # work/memory accounting (structure-only; the cost model adds nnz)
    # ------------------------------------------------------------------
    def contractions_per_iteration(self) -> int:
        """Total single-mode contractions per CP-ALS iteration.

        With the mode update order of :attr:`mode_order` every non-root node
        is rebuilt exactly once per iteration, performing ``|delta|``
        contractions; the star tree yields ``N*(N-1)`` and a balanced binary
        tree at most ``N * ceil(log2 N)``.
        """
        return sum(len(n.delta) for n in self.nodes if not n.is_root)

    def max_live_nodes(self) -> int:
        """Max simultaneously cached non-root value matrices.

        Equals the tree height: during the sub-iteration for mode ``n`` only
        the nodes on the root-to-``leaf(n)`` path hold values.
        """
        return self.depth()

    def n_intermediates(self) -> int:
        """Number of memoized intermediate (internal, non-root) nodes."""
        return sum(
            1 for n in self.nodes if not n.is_root and not n.is_leaf
        )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def to_nested(self) -> NestedSpec:
        """Inverse of :func:`from_nested`."""

        def build(nid: int) -> NestedSpec:
            node = self.nodes[nid]
            if node.is_leaf:
                return node.modes[0]
            return tuple(build(c) for c in node.children)

        return build(self.root_id)

    def signature(self) -> str:
        """Canonical string form of the tree shape (hashable/dedup key)."""
        return repr(self.to_nested())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MemoStrategy)
            and self.to_nested() == other.to_nested()
        )

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        return (
            f"MemoStrategy({self.name!r}, n_modes={self.n_modes}, "
            f"contractions/iter={self.contractions_per_iteration()}, "
            f"spec={self.to_nested()})"
        )


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------

def from_nested(spec: NestedSpec, name: str = "custom") -> MemoStrategy:
    """Build a strategy from a nested tuple spec.

    An int is a leaf; a tuple is an internal node whose children are its
    elements.  Example for four modes::

        from_nested(((0, 1), (2, 3)))   # one two-way split
        from_nested((0, 1, 2, 3))       # star (no memoization)
    """
    nodes: list[dict] = []

    def walk(s: NestedSpec, parent: int | None) -> int:
        nid = len(nodes)
        nodes.append({"parent": parent, "children": [], "modes": None, "spec": s})
        if isinstance(s, tuple):
            if len(s) < 2:
                raise ValueError(f"internal spec nodes need >= 2 children: {s!r}")
            modes: list[int] = []
            for child in s:
                cid = walk(child, nid)
                nodes[nid]["children"].append(cid)
                modes.extend(nodes[cid]["modes"])
            nodes[nid]["modes"] = tuple(sorted(modes))
        elif isinstance(s, int):
            nodes[nid]["modes"] = (s,)
        else:
            raise TypeError(f"spec elements must be int or tuple, got {type(s)}")
        return nid

    walk(spec, None)
    tree_nodes = []
    for nid, info in enumerate(nodes):
        parent = info["parent"]
        delta: tuple[int, ...] = ()
        if parent is not None:
            delta = tuple(
                sorted(set(nodes[parent]["modes"]) - set(info["modes"]))
            )
        tree_nodes.append(
            TreeNode(
                id=nid,
                modes=info["modes"],
                parent=parent,
                children=tuple(info["children"]),
                delta=delta,
            )
        )
    return MemoStrategy(tree_nodes, name=name)


def star(n_modes: int) -> MemoStrategy:
    """No memoization: every leaf hangs off the root."""
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)
    return from_nested(tuple(range(n_modes)), name="star")


def two_way(n_modes: int, split: int | None = None) -> MemoStrategy:
    """One memoized split: modes ``[0, split)`` vs ``[split, N)``.

    ``split`` defaults to ``ceil(N/2)``.  Each side that has more than one
    mode becomes a memoized internal node with star children.
    """
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)
    if split is None:
        split = (n_modes + 1) // 2
    if not 1 <= split <= n_modes - 1:
        raise ValueError(f"split must be in [1, {n_modes - 1}], got {split}")
    left: NestedSpec = (
        0 if split == 1 else tuple(range(split))
    )
    right: NestedSpec = (
        split if split == n_modes - 1 else tuple(range(split, n_modes))
    )
    return from_nested((left, right), name=f"two_way[{split}]")


def chain(n_modes: int, n_intermediates: int) -> MemoStrategy:
    """Caterpillar with ``m`` memoized intermediates.

    ``m = 0`` is the star; intermediate ``i`` (1-based) carries modes
    ``{i..N-1}``; the deepest intermediate fans out to the remaining leaves.
    ``m = N-2`` is the full caterpillar.
    """
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)
    m = int(n_intermediates)
    if not 0 <= m <= n_modes - 2:
        raise ValueError(
            f"n_intermediates must be in [0, {n_modes - 2}], got {m}"
        )
    spec: NestedSpec = tuple(range(m, n_modes))
    if m == n_modes - 2:
        # Deepest intermediate has exactly two leaves.
        spec = (n_modes - 2, n_modes - 1)
    for i in range(m - 1, -1, -1):
        spec = (i, spec)
    strategy = from_nested(spec, name=f"chain[{m}]")
    return strategy


def balanced_binary(n_modes: int) -> MemoStrategy:
    """Balanced binary dimension tree over contiguous mode ranges."""
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)

    def build(lo: int, hi: int) -> NestedSpec:
        if hi - lo == 1:
            return lo
        mid = (lo + hi) // 2
        return (build(lo, mid), build(mid, hi))

    return from_nested(build(0, n_modes), name="bdt")


def enumerate_binary(n_modes: int, *, max_trees: int | None = None) -> list[MemoStrategy]:
    """All binary trees over contiguous mode ranges (Catalan-many).

    For ``N <= 8`` this is an exhaustive search of the contiguous-split
    strategy space (429 trees at ``N = 8``); ``max_trees`` truncates the
    enumeration for larger orders.
    """
    n_modes = check_positive_int(n_modes, "n_modes", minimum=2)

    from functools import lru_cache

    @lru_cache(maxsize=None)
    def build(lo: int, hi: int) -> tuple[NestedSpec, ...]:
        if hi - lo == 1:
            return (lo,)
        specs: list[NestedSpec] = []
        for mid in range(lo + 1, hi):
            for left in build(lo, mid):
                for right in build(mid, hi):
                    specs.append((left, right))
        return tuple(specs)

    specs = build(0, n_modes)
    if max_trees is not None:
        specs = specs[:max_trees]
    return [
        from_nested(s, name=f"binary#{i}") for i, s in enumerate(specs)
    ]


def catalan(n: int) -> int:
    """The ``n``-th Catalan number (size of :func:`enumerate_binary`'s space
    for ``n_modes = n + 1``)."""
    return math.comb(2 * n, n) // (n + 1)


def default_candidates(n_modes: int, *, exhaustive_limit: int = 8) -> list[MemoStrategy]:
    """The planner's default candidate set for an order-``N`` tensor.

    Always contains the star (baseline work bound), every chain depth, every
    two-way split, and the balanced binary tree; for ``N <= exhaustive_limit``
    the full contiguous-binary enumeration is added.  Duplicate tree shapes
    are removed (e.g. ``chain(N, N-2)`` coincides with one of the enumerated
    binary trees).
    """
    candidates: list[MemoStrategy] = [star(n_modes)]
    for m in range(1, n_modes - 1):
        candidates.append(chain(n_modes, m))
    for split in range(1, n_modes):
        candidates.append(two_way(n_modes, split))
    candidates.append(balanced_binary(n_modes))
    if n_modes <= exhaustive_limit:
        candidates.extend(enumerate_binary(n_modes))
    seen: set[str] = set()
    unique: list[MemoStrategy] = []
    for c in candidates:
        sig = c.signature()
        if sig not in seen:
            seen.add(sig)
            unique.append(c)
    return unique


def resolve_strategy(spec, n_modes: int) -> MemoStrategy:
    """Coerce a user-facing strategy spec to a :class:`MemoStrategy`.

    Accepts a ``MemoStrategy``, a nested tuple, or one of the names
    ``'star'``, ``'bdt'``/``'balanced'``, ``'two_way'``, ``'chain'`` (chain
    uses the maximum memoization depth).
    """
    if isinstance(spec, MemoStrategy):
        if spec.n_modes != n_modes:
            raise ValueError(
                f"strategy is for {spec.n_modes} modes, tensor has {n_modes}"
            )
        return spec
    if isinstance(spec, tuple):
        return from_nested(spec)
    if isinstance(spec, str):
        name = spec.lower()
        if name == "star":
            return star(n_modes)
        if name in ("bdt", "balanced", "balanced_binary"):
            return balanced_binary(n_modes)
        if name == "two_way":
            return two_way(n_modes)
        if name == "chain":
            return chain(n_modes, max(n_modes - 2, 0))
        raise ValueError(f"unknown strategy name: {spec!r}")
    raise TypeError(f"cannot interpret strategy spec of type {type(spec)}")
