"""Segmented-reduction plans: the numeric engine's scatter-add primitive.

Memoized MTTKRP repeatedly sums groups of ``R``-wide value rows into target
rows given a *static* source-to-target mapping (the mapping is fixed by the
tensor's sparsity pattern and the memoization strategy, while the values
change every sub-iteration).  A :class:`SegmentPlan` pays the sort once, at
symbolic time, and turns every subsequent reduction into one gather plus one
``np.add.reduceat`` — both contiguous, vectorized passes.
"""

from __future__ import annotations

import numpy as np

from .dtypes import INDEX_ITEMSIZE, as_index_array


class SegmentPlan:
    """Precomputed plan for summing source rows into target groups.

    Parameters
    ----------
    targets:
        Integer array of length ``m`` mapping each source row to a target
        group id.  Group ids need not be contiguous or sorted; the plan's
        output rows follow ascending group-id order.

    Attributes
    ----------
    n_sources: number of source rows ``m``.
    n_segments: number of distinct target groups ``u``.
    group_ids: the ``u`` distinct target ids, ascending.
    """

    __slots__ = ("n_sources", "n_segments", "group_ids", "_perm", "_starts",
                 "_identity", "_perm_identity")

    def __init__(self, targets: np.ndarray):
        targets = as_index_array(targets)
        if targets.ndim != 1:
            raise ValueError(f"targets must be 1-D, got ndim={targets.ndim}")
        m = targets.shape[0]
        self.n_sources = int(m)
        if m == 0:
            self.group_ids = targets[:0]
            self._perm = np.zeros(0, dtype=np.intp)
            self._starts = np.zeros(0, dtype=np.intp)
            self.n_segments = 0
            self._identity = True
            self._perm_identity = True
            return
        perm = np.argsort(targets, kind="stable")
        # Sorted-input fast path: memoization-tree nodes keep their rows in
        # lexicographic order, so a child projecting onto a *prefix* of the
        # parent's modes sees non-decreasing targets — the gather permutation
        # is the identity and reduce() can skip the fancy-index pass.
        self._perm_identity = bool(
            np.array_equal(perm, np.arange(m, dtype=perm.dtype))
        )
        sorted_targets = targets[perm] if not self._perm_identity else targets
        boundary = np.empty(m, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_targets[1:], sorted_targets[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        self.group_ids = sorted_targets[starts]
        self.n_segments = int(starts.shape[0])
        # Identity fast path: every source row its own segment, already in
        # order.  Then reduce() is a no-op view of the input.
        self._identity = self.n_segments == m and self._perm_identity
        self._perm = perm
        self._starts = starts

    @property
    def perm(self) -> np.ndarray:
        """Source permutation bringing rows into segment order."""
        return self._perm

    @property
    def starts(self) -> np.ndarray:
        """Segment start offsets into the permuted source order."""
        return self._starts

    @property
    def is_identity(self) -> bool:
        """True when every source row is its own segment, already in order."""
        return self._identity

    @property
    def has_identity_perm(self) -> bool:
        """True when the sources are already in segment order (no gather)."""
        return self._perm_identity

    def reduce(self, values: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Sum source ``values`` (``m x R`` or ``m``) into segment rows.

        Returns a ``u x R`` (or length-``u``) array whose ``k``-th row is the
        sum of the source rows mapped to ``group_ids[k]``.
        """
        values = np.asarray(values)
        if values.shape[0] != self.n_sources:
            raise ValueError(
                f"values has {values.shape[0]} rows, plan expects {self.n_sources}"
            )
        if self.n_sources == 0:
            shape = (0,) + values.shape[1:]
            return np.zeros(shape, dtype=values.dtype) if out is None else out
        if self._identity:
            if out is not None:
                out[...] = values
                return out
            return values.copy()
        gathered = values if self._perm_identity else values[self._perm]
        result = np.add.reduceat(gathered, self._starts, axis=0)
        if out is not None:
            out[...] = result
            return out
        return result

    def scatter_into(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Reduce ``values`` and add the segment sums into ``out[group_ids]``.

        ``out`` must be writable with first dimension covering
        ``group_ids.max()``.  Rows of ``out`` not named by any group id are
        left untouched.  Returns ``out``.
        """
        if self.n_sources == 0:
            return out
        reduced = self.reduce(values)
        out[self.group_ids] += reduced
        return out

    def chunks(self, n_chunks: int) -> list[tuple[slice, slice]]:
        """Split the plan into segment-aligned chunks for parallel reduction.

        Returns up to ``n_chunks`` pairs ``(source_slice, segment_slice)``:
        applying :meth:`reduce_chunk` to a source slice produces exactly the
        rows ``segment_slice`` of the full :meth:`reduce` output, so workers
        write disjoint output ranges with no reduction conflicts.
        """
        if n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        if self.n_segments == 0:
            return []
        n_chunks = min(n_chunks, self.n_segments)
        bounds = np.linspace(0, self.n_segments, n_chunks + 1).astype(np.intp)
        out = []
        for k in range(n_chunks):
            seg_lo, seg_hi = int(bounds[k]), int(bounds[k + 1])
            if seg_lo == seg_hi:
                continue
            src_lo = int(self._starts[seg_lo])
            src_hi = (
                int(self._starts[seg_hi])
                if seg_hi < self.n_segments
                else self.n_sources
            )
            out.append((slice(src_lo, src_hi), slice(seg_lo, seg_hi)))
        return out

    def reduce_chunk(
        self, values: np.ndarray, source_slice: slice, segment_slice: slice
    ) -> np.ndarray:
        """Reduce one chunk from :meth:`chunks`.

        ``values`` is the full ``m x R`` source array; the gather for the
        chunk's rows happens here so callers can share one input array across
        workers.
        """
        if self.n_sources == 0:
            return values[:0]
        if self._perm_identity:
            gathered = values[source_slice]
        else:
            gathered = values[self._perm[source_slice]]
        local_starts = self._starts[segment_slice] - source_slice.start
        return np.add.reduceat(gathered, local_starts, axis=0)

    def sorted_sources(self, source_slice: slice) -> np.ndarray:
        """Source row ids (pre-gather order) for one chunk's slice."""
        return self._perm[source_slice]

    def local_starts(self, source_slice: slice, segment_slice: slice) -> np.ndarray:
        """Segment start offsets relative to a chunk's source slice."""
        return self._starts[segment_slice] - source_slice.start

    def index_nbytes(self) -> int:
        """Bytes held by the plan's index structures (for the memory model)."""
        return int(
            self._perm.nbytes + self._starts.nbytes
            + self.group_ids.shape[0] * INDEX_ITEMSIZE
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SegmentPlan(n_sources={self.n_sources}, "
            f"n_segments={self.n_segments}, identity={self._identity})"
        )


def segment_sum(values: np.ndarray, targets: np.ndarray, n_targets: int) -> np.ndarray:
    """One-shot dense segmented sum: rows of ``values`` into ``n_targets`` bins.

    Unlike :class:`SegmentPlan` the output has exactly ``n_targets`` rows
    (empty bins are zero).  Used where the mapping is not reused and the
    target space is dense, e.g. scattering leaf values into a factor-shaped
    MTTKRP output.
    """
    values = np.asarray(values)
    targets = np.asarray(targets)
    if values.ndim == 1:
        return np.bincount(targets, weights=values, minlength=n_targets).astype(
            values.dtype, copy=False
        )
    out = np.zeros((n_targets,) + values.shape[1:], dtype=values.dtype)
    np.add.at(out, targets, values)
    return out
