"""Core: sparse tensors, memoization strategies, the MTTKRP engine, CP-ALS."""

from .coo import CooTensor
from .cpals import CPResult, cp_als, initialize_factors
from .engine import MemoizedMttkrp
from .kruskal import KruskalTensor
from .semisparse import SemiSparseTensor
from .strategy import (MemoStrategy, balanced_binary, chain,
                       default_candidates, enumerate_binary, from_nested,
                       resolve_strategy, star, two_way)
from .stats import mode_skew, pairwise_overlap, summary, used_slices
from .symbolic import SymbolicTree

__all__ = [
    "CooTensor",
    "CPResult",
    "cp_als",
    "initialize_factors",
    "MemoizedMttkrp",
    "KruskalTensor",
    "SemiSparseTensor",
    "MemoStrategy",
    "balanced_binary",
    "chain",
    "default_candidates",
    "enumerate_binary",
    "from_nested",
    "resolve_strategy",
    "star",
    "two_way",
    "SymbolicTree",
    "mode_skew",
    "pairwise_overlap",
    "summary",
    "used_slices",
]
