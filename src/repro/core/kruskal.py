"""Kruskal (CP) tensors: the output of a CP decomposition.

A rank-``R`` Kruskal tensor is ``[[lambda; U^(1), ..., U^(N)]]`` — a weight
vector plus one factor matrix per mode, representing
``sum_r lambda_r u_r^(1) o ... o u_r^(N)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..linalg.gram import gram, hadamard_grams
from ..linalg.khatri_rao import khatri_rao_rows
from ..linalg.norms import normalize_columns
from .coo import CooTensor
from .dtypes import VALUE_DTYPE, as_index_array, as_value_array
from .validate import check_factor_matrices, check_shape


class KruskalTensor:
    """A weighted CP model.

    Parameters
    ----------
    weights: length-``R`` component weights (``lambda``).
    factors: list of ``I_n x R`` factor matrices.
    """

    __slots__ = ("weights", "factors")

    def __init__(self, weights, factors: Sequence[np.ndarray], *, copy: bool = True):
        factors = [as_value_array(U, copy=copy) for U in factors]
        shape = tuple(U.shape[0] for U in factors)
        check_shape(shape, "factor shape")
        rank = check_factor_matrices(factors, shape)
        weights = as_value_array(weights, copy=copy)
        if weights.shape != (rank,):
            raise ValueError(
                f"weights must have shape ({rank},), got {weights.shape}"
            )
        self.weights = weights
        self.factors = factors

    # ------------------------------------------------------------------
    @classmethod
    def from_factors(cls, factors: Sequence[np.ndarray]) -> "KruskalTensor":
        """Unit-weight model from raw factors."""
        rank = np.asarray(factors[0]).shape[1]
        return cls(np.ones(rank, dtype=VALUE_DTYPE), factors)

    @property
    def rank(self) -> int:
        return int(self.weights.shape[0])

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(U.shape[0] for U in self.factors)

    @property
    def ndim(self) -> int:
        return len(self.factors)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize the full tensor (small shapes only)."""
        total = 1
        for s in self.shape:
            total *= s
        if total > 50_000_000:
            raise MemoryError("refusing to densify a large Kruskal tensor")
        out = self.factors[0] * self.weights  # I_0 x R
        for U in self.factors[1:]:
            out = out[..., None, :] * U  # broadcast over the new mode
        return out.sum(axis=-1)

    def values_at(self, coords) -> np.ndarray:
        """Model values at a ``q x N`` block of coordinates."""
        coords = as_index_array(coords)
        rows = [coords[:, n] for n in range(self.ndim)]
        prod = khatri_rao_rows(self.factors, rows)
        return prod @ self.weights

    def norm(self) -> float:
        """Frobenius norm via the Gram-Hadamard identity (no densification)."""
        H = hadamard_grams([gram(U) for U in self.factors])
        val = float(self.weights @ H @ self.weights)
        return float(np.sqrt(max(val, 0.0)))

    def fit(self, tensor: CooTensor) -> float:
        """CP fit ``1 - ||X - model|| / ||X||`` against a sparse tensor."""
        from ..linalg.innerprod import sparse_kruskal_innerprod

        xnorm = tensor.norm()
        if xnorm == 0.0:
            return 1.0 if self.norm() == 0.0 else float("-inf")
        inner = sparse_kruskal_innerprod(tensor, self.weights, self.factors)
        err_sq = max(xnorm**2 + self.norm() ** 2 - 2.0 * inner, 0.0)
        return 1.0 - float(np.sqrt(err_sq)) / xnorm

    # ------------------------------------------------------------------
    # canonical forms
    # ------------------------------------------------------------------
    def normalize(self) -> "KruskalTensor":
        """Push all column norms into the weights."""
        weights = self.weights.copy()
        factors = []
        for U in self.factors:
            Un, norms = normalize_columns(U)
            weights *= norms
            factors.append(Un)
        return KruskalTensor(weights, factors, copy=False)

    def arrange(self) -> "KruskalTensor":
        """Normalize and sort components by descending weight magnitude."""
        normalized = self.normalize()
        order = np.argsort(-np.abs(normalized.weights), kind="stable")
        return KruskalTensor(
            normalized.weights[order],
            [U[:, order] for U in normalized.factors],
            copy=False,
        )

    def congruence(self, other: "KruskalTensor") -> float:
        """Factor match score (FMS) against another model of equal rank.

        Greedily matches components by the product of per-mode cosine
        similarities; 1.0 means identical up to permutation/scaling.  Used by
        recovery tests on planted low-rank tensors.
        """
        if self.shape != other.shape or self.rank != other.rank:
            raise ValueError("congruence requires equal shapes and ranks")
        a, b = self.arrange(), other.arrange()
        rank = self.rank
        # Per-mode cosine similarity matrices between all component pairs.
        sim = np.ones((rank, rank), dtype=VALUE_DTYPE)
        for Ua, Ub in zip(a.factors, b.factors):
            na = np.sqrt(np.einsum("ir,ir->r", Ua, Ua))
            nb = np.sqrt(np.einsum("ir,ir->r", Ub, Ub))
            cross = np.abs(Ua.T @ Ub)
            denom = np.outer(np.where(na > 0, na, 1), np.where(nb > 0, nb, 1))
            sim *= cross / denom
        # Greedy matching (Hungarian-free; adequate for well-separated
        # components, which is what the recovery tests construct).
        remaining = set(range(rank))
        total = 0.0
        for i in range(rank):
            j = max(remaining, key=lambda jj: sim[i, jj])
            total += sim[i, j]
            remaining.remove(j)
        return total / rank

    def astype_coo(self, *, tol: float = 0.0) -> CooTensor:
        """Densify then sparsify (tests/examples on small shapes only)."""
        return CooTensor.from_dense(self.to_dense(), tol=tol)

    def __repr__(self) -> str:
        return f"KruskalTensor(shape={self.shape}, rank={self.rank})"
