"""Command-line interface: decompose / plan / complete / inspect tensors.

Usage::

    python -m repro decompose data.tns --rank 16 --out factors.npz
    python -m repro plan data.tns --rank 16 --top 8
    python -m repro complete ratings.tns --rank 8 --test-fraction 0.2
    python -m repro info delicious --scale 0.2
    python -m repro datasets
    python -m repro trace --trace-dir out/ decompose data.tns --rank 16
    python -m repro profile --trace-dir out/ decompose data.tns --rank 16
    python -m repro report out/trace.jsonl
    python -m repro serve --port 9464 decompose data.tns --rank 16
    python -m repro tail out/events.jsonl

Tensor inputs are ``.tns``/``.tns.gz`` (FROSTT), ``.npz`` (this library's
cache format), or a registry dataset name (generated on the fly; use
``--scale``).

``repro trace <command> ...`` runs any other subcommand with the span
tracer, memory tracker, and metrics registry enabled and writes
``trace.chrome.json`` (Chrome ``trace_event`` format — load in
``chrome://tracing`` or Perfetto, with a live-bytes counter track),
``trace.jsonl``, ``memory.json``, ``metrics.json``, and a text summary;
``repro profile <command>`` (or ``repro trace --profile``) additionally
runs the sampling stack profiler and writes ``profile.json`` +
``profile.folded`` (span-joined flamegraph data; see
``docs/observability.md``).  ``repro report`` pretty-prints a saved
JSONL trace (including per-worker pool utilization when the trace has
``pool_task`` spans, and the profiler's top-hotspots table when one was
recorded).  ``repro
serve`` exposes an OpenMetrics endpoint (``/metrics`` + ``/healthz`` +
``/runz``) either around a wrapped subcommand or over saved trace
artifacts; ``repro tail`` renders an ``events.jsonl`` structured event
log.  ``repro bench-diff``
compares benchmark history entries against the stored baseline with the
noise-aware comparator (see ``docs/benchmarking.md``) and exits non-zero
on regression; ``repro dashboard`` renders history + memory + trace into
one self-contained HTML file.  ``--log-level`` controls the ``repro.*``
loggers (the drift watchdog logs there), and ``--version`` prints build
info (version, git revision, toolchain).
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time

import numpy as np

from .core.coo import CooTensor


def load_input(path_or_name: str, scale: float = 1.0) -> CooTensor:
    """Resolve a CLI tensor argument to a CooTensor."""
    from .io.cache import load_npz
    from .io.frostt import read_tns
    from .synth.datasets import dataset_names, load_dataset

    lower = path_or_name.lower()
    if lower.endswith((".tns", ".tns.gz")):
        return read_tns(path_or_name)
    if lower.endswith(".npz"):
        return load_npz(path_or_name)
    if path_or_name in dataset_names():
        return load_dataset(path_or_name, scale=scale)
    if os.path.exists(path_or_name):
        raise ValueError(
            f"unrecognized tensor file extension: {path_or_name!r} "
            "(expected .tns, .tns.gz, or .npz)"
        )
    raise ValueError(
        f"{path_or_name!r} is neither an existing file nor a registry "
        f"dataset; datasets: {', '.join(dataset_names())}"
    )


def _save_model(model, path: str) -> None:
    from .io.model import save_model

    save_model(model, path)


def cmd_info(args) -> int:
    tensor = load_input(args.input, args.scale)
    print(tensor)
    print(f"  shape      : {tensor.shape}")
    print(f"  nnz        : {tensor.nnz:,}")
    print(f"  density    : {tensor.density:.3e}")
    print(f"  fro norm   : {tensor.norm():.6g}")
    print(f"  memory     : {tensor.nbytes() / 1e6:.2f} MB (COO)")
    from .core.stats import mode_skew, pairwise_overlap

    for n in range(tensor.ndim):
        used = int((tensor.slice_nnz(n) > 0).sum())
        skew = mode_skew(tensor, n)
        print(f"  mode {n}: size {tensor.shape[n]:>8,}  used slices "
              f"{used:,}  skew {skew:.2f}")
    if tensor.ndim >= 2 and tensor.nnz:
        overlaps = pairwise_overlap(tensor)
        best_pair = max(overlaps, key=overlaps.get)
        print(f"  max pairwise overlap: {overlaps[best_pair]:.2f} "
              f"(modes {best_pair[0]},{best_pair[1]})")
    return 0


def cmd_datasets(args) -> int:
    from .model.report import format_table
    from .synth.datasets import dataset_names, get_spec

    rows = []
    for name in dataset_names():
        spec = get_spec(name)
        rows.append([
            name,
            spec.order,
            "x".join(map(str, spec.shape)),
            spec.nnz,
            spec.analog_of or "synthetic",
        ])
    print(format_table(
        ["name", "order", "shape (scale=1)", "nnz", "analog of"], rows
    ))
    return 0


def cmd_plan(args) -> int:
    from .model.calibrate import calibrate_machine
    from .model.planner import plan

    tensor = load_input(args.input, args.scale)
    machine = calibrate_machine() if args.calibrate else None
    if args.explain or args.json:
        from .obs.explain import explain_plan
        from .parallel.pool import resolve_worker_count

        expl = explain_plan(
            tensor, args.rank, memory_budget=args.memory_budget,
            machine=machine,
            n_workers=resolve_worker_count(args.workers),
        )
        if args.json:
            import json as _json

            print(_json.dumps(
                expl.to_artifact(input=args.input, scale=args.scale),
                indent=2,
            ))
        else:
            print(expl.summary(top=args.top))
        return 0
    report = plan(
        tensor, args.rank, memory_budget=args.memory_budget, machine=machine
    )
    print(report.summary(top=args.top))
    best = report.best
    print(f"\nselected: {best.strategy.name}  "
          f"spec={best.strategy.to_nested()}")
    return 0


def cmd_explain(args) -> int:
    from .model.calibrate import calibrate_machine
    from .obs.explain import explain_plan, validate_plan_artifact
    from .parallel.pool import resolve_worker_count

    tensor = load_input(args.input, args.scale)
    machine = calibrate_machine() if args.calibrate else None
    expl = explain_plan(
        tensor, args.rank, memory_budget=args.memory_budget, machine=machine,
        n_workers=resolve_worker_count(args.workers),
    )
    measured = None
    if args.measure:
        from .core.cpals import cp_als
        from .obs import attribution as obs_attr

        with obs_attr.recording() as rec:
            cp_als(
                tensor, args.rank, strategy=expl.report.best.strategy,
                n_iter_max=args.iters, tol=0.0, random_state=args.seed,
            )
        measured = rec.snapshot()
    artifact = expl.to_artifact(input=args.input, scale=args.scale)
    if measured is not None:
        artifact["result"]["measured"] = measured
    validate_plan_artifact(artifact)
    import json as _json

    if args.out:
        with open(args.out, "w") as fh:
            _json.dump(artifact, fh, indent=2)
            fh.write("\n")
    if args.json:
        print(_json.dumps(artifact, indent=2))
        return 0
    print(expl.summary(top=args.top))
    if measured is not None:
        from .obs.attribution import format_attribution

        rendered = format_attribution(measured)
        if rendered:
            print()
            print(rendered)
    if args.out:
        print(f"\nwrote {args.out}")
    return 0


def cmd_decompose(args) -> int:
    tensor = load_input(args.input, args.scale)
    if args.nonneg:
        from .algos.ncp import cp_nmu

        result = cp_nmu(
            tensor, args.rank, strategy=args.strategy
            if args.strategy != "auto" else "bdt",
            n_iter_max=args.iters, tol=args.tol, random_state=args.seed,
        )
    else:
        from .core.cpals import cp_als

        tier, layout = args.tier, args.layout
        if tier == "auto" and (layout != "auto" or args.workers is not None):
            # A layout or worker request implies an execution decision:
            # let the model pick the tier for it.
            from .model.cost import recommend_execution
            from .parallel.pool import resolve_worker_count

            rec = recommend_execution(
                tensor.shape, tensor.nnz, args.rank,
                resolve_worker_count(args.workers),
            )
            tier = rec.tier
            if layout == "auto":
                layout = rec.layout
            print(f"model picked tier={tier} layout={layout}")
        closeables: list = []
        engine_factory = None
        if tier == "process":
            from .model.cost import recommend_execution
            from .parallel.pool import resolve_worker_count
            from .parallel.procpool import ProcessMttkrp

            def engine_factory(t, _layout=layout):
                if _layout == "auto":
                    _layout = recommend_execution(
                        t.shape, t.nnz, args.rank,
                        resolve_worker_count(args.workers),
                    ).layout
                engine = ProcessMttkrp(t, args.workers, layout=_layout)
                closeables.append(engine)
                return engine
        elif tier == "thread" and layout == "alto":
            from .parallel.procpool import AltoCooMttkrp

            def engine_factory(t):
                engine = AltoCooMttkrp(t, args.workers)
                closeables.append(engine)
                return engine
        elif args.workers is not None and args.workers > 1:
            # Parallel memoized engine: resolve 'auto' through the planner
            # here, since engine_factory bypasses cp_als's own planning path.
            def engine_factory(t, _w=args.workers):
                from .parallel.engine import ParallelMemoizedMttkrp

                strategy = args.strategy
                if isinstance(strategy, str) and strategy.lower() == "auto":
                    from .model.planner import plan

                    strategy = plan(t, args.rank).best.strategy
                return ParallelMemoizedMttkrp(
                    t, strategy, n_workers=_w,
                    min_chunk_rows=args.min_chunk_rows,
                )

        try:
            result = cp_als(
                tensor, args.rank, strategy=args.strategy,
                n_iter_max=args.iters, tol=args.tol, random_state=args.seed,
                engine_factory=engine_factory,
            )
        finally:
            for engine in closeables:
                engine.close()
    print(f"strategy   : {result.strategy_name}")
    print(f"iterations : {result.n_iterations} (converged={result.converged})")
    print(f"fit        : {result.fit:.6f}")
    if args.out:
        _save_model(result.ktensor, args.out)
        print(f"model written to {args.out}")
    return 0


def cmd_complete(args) -> int:
    from .algos.completion import complete, holdout_split

    tensor = load_input(args.input, args.scale)
    if args.test_fraction > 0:
        train, test_idx, test_vals = holdout_split(
            tensor, args.test_fraction, random_state=args.seed
        )
    else:
        train, test_idx, test_vals = tensor, None, None
    result = complete(
        train, args.rank, n_iter_max=args.iters, tol=args.tol,
        learning_rate=args.learning_rate, random_state=args.seed,
    )
    print(f"strategy    : {result.strategy_name}")
    print(f"epochs      : {result.n_iterations} "
          f"(converged={result.converged})")
    print(f"train RMSE  : {result.rmse:.6g}")
    if test_idx is not None:
        pred = result.predict(test_idx)
        rmse = float(np.sqrt(np.mean((pred - test_vals) ** 2)))
        print(f"test RMSE   : {rmse:.6g} "
              f"({test_idx.shape[0]:,} held-out entries)")
    if args.out:
        _save_model(result.ktensor, args.out)
        print(f"model written to {args.out}")
    return 0


def cmd_trace(args) -> int:
    from .obs import attribution as obs_attr
    from .obs import events as obs_events
    from .obs import health as obs_health
    from .obs import memory as obs_memory
    from .obs import profiler as obs_profiler
    from .obs import runctx as obs_runctx
    from .obs import trace as obs_trace
    from .obs.buildinfo import build_info
    from .obs.export import (kind_table, tree_summary, write_chrome_trace,
                             write_jsonl)
    from .obs.metrics import registry
    from .perf import counters as perf_counters

    verb = getattr(args, "verb", "trace")
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest.pop(0)
    if not rest:
        raise ValueError(
            f"{verb}: missing command to run, e.g. "
            f"'repro {verb} decompose data.tns --rank 16'"
        )
    if rest[0] in ("trace", "profile", "report", "bench-diff", "dashboard",
                   "serve", "tail"):
        raise ValueError(f"{verb}: cannot {verb} the {rest[0]!r} command")
    inner = build_parser().parse_args(rest)
    os.makedirs(args.trace_dir, exist_ok=True)

    was_enabled = obs_trace.enabled()
    mem_was_enabled = obs_memory.enabled()
    events_were_enabled = obs_events.enabled()
    attr_was_enabled = obs_attr.enabled()
    prof_was_enabled = obs_profiler.enabled()
    health_was_enabled = obs_health.enabled()
    profile_on = bool(getattr(args, "profile", False)) or prof_was_enabled
    obs_trace.enable(clear=True)
    obs_memory.enable(clear=True, sample_tracemalloc=True)
    obs_events.enable(clear=not events_were_enabled)
    obs_attr.enable(clear=True)
    obs_health.enable(clear=True)
    if profile_on:
        obs_profiler.enable(getattr(args, "profile_hz", None), clear=True)
    registry.reset()
    # An ambient run context: telemetry still lands in the globals the
    # artifact writers below read, but events carry the run_id and the
    # run is listed on /runz if a server is scraping this process.
    run_ctx = obs_runctx.RunContext.ambient(command=rest[0])
    t0 = time.perf_counter()
    try:
        with perf_counters.counting(registry.counters), \
                obs_runctx.using(run_ctx):
            rc = inner.fn(inner)
    finally:
        if not was_enabled:
            obs_trace.disable()
        if not mem_was_enabled:
            obs_memory.disable()
        if not events_were_enabled:
            obs_events.disable()
        if not attr_was_enabled:
            obs_attr.disable()
        if not health_was_enabled:
            obs_health.disable()
        if profile_on and not prof_was_enabled:
            obs_profiler.disable()
    elapsed = time.perf_counter() - t0

    spans = obs_trace.get_tracer().finished()
    mem = obs_memory.get_tracker()
    chrome_path = os.path.join(args.trace_dir, "trace.chrome.json")
    jsonl_path = os.path.join(args.trace_dir, "trace.jsonl")
    summary_path = os.path.join(args.trace_dir, "trace_summary.txt")
    metrics_path = os.path.join(args.trace_dir, "metrics.json")
    memory_path = os.path.join(args.trace_dir, "memory.json")
    events_path = os.path.join(args.trace_dir, "events.jsonl")
    write_chrome_trace(chrome_path, spans, mem_samples=mem.samples)
    write_jsonl(jsonl_path, spans)
    obs_events.get_log().write_jsonl(events_path)
    with open(summary_path, "w") as fh:
        fh.write(tree_summary(spans) + "\n\n" + kind_table(spans) + "\n")
    import json as _json

    with open(metrics_path, "w") as fh:
        _json.dump(
            {"build": build_info(), "wall_seconds": elapsed,
             "run_id": run_ctx.run_id,
             "metrics": registry.snapshot()},
            fh, indent=2,
        )
        fh.write("\n")
    with open(memory_path, "w") as fh:
        _json.dump(mem.snapshot(), fh, indent=2)
        fh.write("\n")
    attr = obs_attr.get_recorder()
    attribution_path = None
    if attr.has_data:
        attribution_path = os.path.join(args.trace_dir, "attribution.json")
        with open(attribution_path, "w") as fh:
            _json.dump(attr.snapshot(), fh, indent=2)
            fh.write("\n")
    health_collector = obs_health.get_collector()
    health_path = None
    if health_collector.has_data:
        health_path = obs_health.write_health(
            args.trace_dir, run_id=run_ctx.run_id,
        )
    # Snapshot the host calibration (load-only, never measures) so the
    # trace dir is self-contained for later roofline attribution.
    from .model.calibrate import load_roofline, machine_artifact

    roofline = load_roofline()
    if roofline is not None:
        with open(os.path.join(args.trace_dir, "machine.json"), "w") as fh:
            _json.dump(machine_artifact(roofline), fh, indent=2)
            fh.write("\n")
    profile_path = None
    profile_doc = None
    if profile_on:
        snapshot = obs_profiler.get_store().snapshot()
        profile_doc = obs_profiler.profile_artifact(
            snapshot, run_id=run_ctx.run_id, command=rest[0],
            duration_seconds=elapsed,
        )
        profile_path, _folded = obs_profiler.write_profile(
            args.trace_dir, snapshot, run_id=run_ctx.run_id,
            command=rest[0], duration_seconds=elapsed,
        )

    print(f"\n-- traced {len(spans)} spans in {elapsed:.2f}s "
          f"({run_ctx.run_id})")
    print(kind_table(spans))
    if mem.readings:
        last = mem.readings[-1]
        print(f"\nmemory: peak memoized values {mem.peak_bytes:,} B "
              f"(predicted {last.predicted_peak_bytes:,} B, "
              f"{len(mem.readings)} iteration readings)")
    if health_path is not None:
        last = health_collector.readings[-1]
        import math as _math

        max_cond = last.max_condition_number
        print(f"\nhealth: {len(health_collector.readings)} iteration "
              f"readings, final trajectory {last.trajectory!r}, "
              f"max κ(H) "
              + (f"{max_cond:.3e}" if _math.isfinite(max_cond)
                 else "singular")
              + f", congruence {last.congruence:.4f}, "
              f"{health_collector.total_pinv_fallbacks} pinv fallbacks")
    if profile_doc is not None:
        print(f"\nprofile: {profile_doc['n_samples']} samples @ "
              f"{profile_doc['hz']:g} Hz "
              f"({profile_doc['sampled_seconds']:.2f}s sampled, lanes: "
              f"{', '.join(profile_doc['lanes']) or 'none'})")
        hot = obs_profiler.format_hotspots(profile_doc, top=5)
        if hot != "(no samples)":
            print(hot)
    print(f"\nwrote {chrome_path} (open in chrome://tracing or "
          f"https://ui.perfetto.dev), {jsonl_path}, {memory_path}, "
          f"{metrics_path}, {events_path}"
          + (f", {attribution_path}" if attribution_path else "")
          + (f", {health_path}" if health_path else "")
          + (f", {profile_path} (+ profile.folded for flamegraph.pl/"
             "speedscope)" if profile_path else ""))
    return rc


def cmd_profile(args) -> int:
    """``repro profile <cmd>``: ``repro trace`` with the sampler forced on."""
    args.profile = True
    args.verb = "profile"
    return cmd_trace(args)


def cmd_report(args) -> int:
    from .obs.artifacts import TraceArtifacts
    from .obs.events import format_event
    from .obs.export import kind_table, read_jsonl, tree_summary
    from .obs.utilization import format_utilization, utilization_from_spans

    path = args.trace
    if os.path.isdir(path):
        path = os.path.join(path, "trace.jsonl")
    if not os.path.exists(path):
        raise FileNotFoundError(f"no trace file at {path!r} (run "
                                "'repro trace <command>' first)")
    trace_dir = os.path.dirname(path) or "."
    arts = TraceArtifacts(trace_dir)
    spans = read_jsonl(path)
    print(f"{len(spans)} spans from {path}\n")
    print(kind_table(spans))
    print()
    print(tree_summary(spans, max_children=args.max_children))
    util = utilization_from_spans(spans)
    if util is not None:
        print()
        print(format_utilization(util))
    events = arts.events()
    if events is not None:
        print(f"\n{len(events)} events from {arts.path('events')} (last 5):")
        for event in events[-5:]:
            print("  " + format_event(event))
    metrics_doc = arts.metrics()
    if metrics_doc is not None:
        counters = metrics_doc.get("metrics", {}).get("counters", {})
        gauges = metrics_doc.get("metrics", {}).get("gauges", {})
        if counters:
            print("\ncounters: " + ", ".join(
                f"{k}={v:,}" for k, v in counters.items()
            ))
        if gauges:
            print("gauges  : " + ", ".join(
                f"{k}={v:.3f}" for k, v in sorted(gauges.items())
            ))
    from .obs.attribution import attribution_from_spans, format_attribution

    doc = arts.attribution()
    if doc is not None:
        rendered = format_attribution(doc)
        if rendered:
            print(f"\ncost attribution from {arts.path('attribution')}:")
            print(rendered)
    else:
        # No recorder artifact: reconstruct the time attribution the
        # spans alone support (per-node seconds, per-mode seconds).
        doc = attribution_from_spans(spans)
        if doc is not None:
            rendered = format_attribution(doc)
            if rendered:
                print()
                print(rendered)
    # One-line achieved-throughput summary; trace dirs recorded before
    # calibration existed simply report "uncalibrated".
    from .obs.roofline import report_from_trace_dir, report_line

    print()
    print(report_line(report_from_trace_dir(trace_dir)))
    # Top hotspots from the sampling profiler, when the run recorded one;
    # pre-profiler trace dirs degrade to an explicit note, not an error.
    from .obs.profiler import format_hotspots

    profile_doc = arts.profile()
    if profile_doc is not None:
        print(f"\nsampling profile: {profile_doc.get('n_samples', 0)} "
              f"samples @ {profile_doc.get('hz', 0):g} Hz — top hotspots:")
        print(format_hotspots(profile_doc))
    else:
        print("\nno profile captured (run 'repro profile <cmd>' or "
              "'repro trace --profile' to record one)")
    # Numerical-health section; pre-health trace dirs degrade to an
    # explicit note rather than an error.
    from .obs.health import format_health

    health_doc = arts.health()
    if health_doc is not None:
        print(f"\nnumerical health from {arts.path('health')}:")
        print(format_health(health_doc))
    else:
        print("\nno numerical-health readings (pre-health trace dir; "
              "re-run 'repro trace <cmd>' or set REPRO_HEALTH=1 to "
              "record them)")
    for filename, reason in arts.skipped:
        print(f"warning: skipped malformed {filename}: {reason}",
              file=sys.stderr)
    return 0


def cmd_roofline(args) -> int:
    from .model.calibrate import calibrate_roofline, default_machine_path
    from .obs.roofline import (publish_roofline_gauges, report_from_trace_dir,
                               roofline_report)

    path = args.out or default_machine_path()
    roofline = calibrate_roofline(
        force=args.force, quick=args.quick, path=path,
        max_threads=args.max_threads,
    )
    if args.trace_dir:
        report = report_from_trace_dir(args.trace_dir, roofline)
    else:
        report = roofline_report([], roofline)
    publish_roofline_gauges(report.roofline, report.configs)
    if args.json:
        import json as _json

        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
        print(f"\nmachine artifact: {path}")
    return 0


def cmd_bench_diff(args) -> int:
    from .obs.history import BenchHistory, compare, format_diff_table

    history = BenchHistory(args.history).entries()
    if args.current:
        current = BenchHistory(args.current).entries()
    else:
        # No separate run file: the newest run recorded in the history
        # itself is the "current" run, everything before it the baseline.
        if not history:
            print(f"error: no benchmark history at {args.history} — run a "
                  "benchmark first (e.g. 'python benchmarks/"
                  "bench_kernels.py') or pass --history",
                  file=sys.stderr)
            return 2
        last_run = history[-1].run_id
        current = [e for e in history if e.run_id == last_run]
    if not current:
        print("error: no current entries to compare", file=sys.stderr)
        return 2
    results = compare(current, history, rel_band=args.band, k=args.k)
    if args.json:
        import json as _json

        print(_json.dumps([r.to_dict() for r in results], indent=2))
    else:
        print(format_diff_table(results))
    return 1 if any(r.status == "regression" for r in results) else 0


def cmd_serve(args) -> int:
    from .obs import attribution as obs_attr
    from .obs import events as obs_events
    from .obs import health as obs_health
    from .obs import memory as obs_memory
    from .obs import runctx as obs_runctx
    from .obs import trace as obs_trace
    from .obs.metrics import registry
    from .obs.serve import ObsServer, load_trace_dir
    from .perf import counters as perf_counters

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest.pop(0)
    if rest and rest[0] in ("trace", "profile", "serve", "tail", "report",
                            "bench-diff", "dashboard"):
        raise ValueError(f"serve: cannot wrap the {rest[0]!r} command")

    try:
        server = ObsServer(port=args.port, host=args.host)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2

    if not rest:
        # Artifact mode: reconstruct metrics/events/run state from a
        # 'repro trace' output directory, then serve it until killed.
        loaded = load_trace_dir(args.trace_dir)
        print(f"loaded {loaded['spans']} spans, {loaded['events']} events, "
              f"{loaded['gauges']} gauges from {args.trace_dir}")
        print(f"serving {server.url}/metrics (also /healthz, /runz); "
              "Ctrl-C to stop")
        server.serve_forever()
        return 0

    # Wrap mode: run another subcommand with telemetry on and the
    # endpoint live for the duration (mirrors 'repro trace' enablement).
    inner = build_parser().parse_args(rest)
    was_enabled = obs_trace.enabled()
    mem_was_enabled = obs_memory.enabled()
    events_were_enabled = obs_events.enabled()
    attr_was_enabled = obs_attr.enabled()
    health_was_enabled = obs_health.enabled()
    obs_trace.enable(clear=True)
    obs_memory.enable(clear=True)
    obs_events.enable(clear=not events_were_enabled)
    obs_attr.enable(clear=True)
    obs_health.enable(clear=True)
    registry.reset()
    server.start()
    run_ctx = obs_runctx.RunContext.ambient(command=rest[0])
    print(f"serving {server.url}/metrics (also /healthz, /runz) "
          f"for the duration of the command ({run_ctx.run_id})")
    try:
        with perf_counters.counting(registry.counters), \
                obs_runctx.using(run_ctx):
            rc = inner.fn(inner)
    finally:
        server.stop()
        if not was_enabled:
            obs_trace.disable()
        if not mem_was_enabled:
            obs_memory.disable()
        if not events_were_enabled:
            obs_events.disable()
        if not attr_was_enabled:
            obs_attr.disable()
        if not health_was_enabled:
            obs_health.disable()
    return rc


def cmd_tail(args) -> int:
    from .obs.events import format_event, read_events, validate_events

    path = args.events
    if os.path.isdir(path):
        path = os.path.join(path, "events.jsonl")
    if not os.path.exists(path):
        raise FileNotFoundError(f"no event log at {path!r} (run with "
                                "REPRO_EVENTS=1 under 'repro trace', or "
                                "point REPRO_EVENTS at a sink path)")
    events = read_events(path)
    problems = validate_events(events)
    shown = events if args.n is None else events[-args.n:]
    for event in shown:
        print(format_event(event))
    if problems:
        print(f"warning: {len(problems)} schema problems "
              f"(first: {problems[0]})", file=sys.stderr)
    if not args.follow:
        return 1 if problems else 0
    # Follow mode: poll for appended lines (the sink flushes per event).
    with open(path) as fh:
        fh.seek(0, os.SEEK_END)
        try:
            while True:
                line = fh.readline()
                if not line:
                    time.sleep(args.interval)
                    continue
                line = line.strip()
                if line:
                    import json as _json

                    print(format_event(_json.loads(line)), flush=True)
        except KeyboardInterrupt:
            return 0


def cmd_dashboard(args) -> int:
    from .obs.dashboard import write_dashboard
    from .obs.export import kind_table, tree_summary
    from .obs.history import BenchHistory, compare

    entries = BenchHistory(args.history).entries()
    diffs = []
    if entries:
        last_run = entries[-1].run_id
        current = [e for e in entries if e.run_id == last_run]
        diffs = compare(current, entries, rel_band=args.band, k=args.k)

    readings: list = []
    kinds = summary = None
    utilization = None
    pool_tasks: list[dict] = []
    attribution_doc = None
    roofline_doc = None
    profile_doc = None
    health_doc = None
    skipped: list[tuple[str, str]] = []
    if args.trace_dir and os.path.isdir(args.trace_dir):
        from .obs.artifacts import TraceArtifacts
        from .obs.roofline import report_from_trace_dir

        roofline_report = report_from_trace_dir(args.trace_dir)
        if roofline_report.calibrated or roofline_report.configs:
            roofline_doc = roofline_report.to_dict()
        arts = TraceArtifacts(args.trace_dir)
        readings = arts.memory_readings() or []
        attribution_doc = arts.attribution()
        profile_doc = arts.profile()
        health_doc = arts.health()
        spans = arts.spans()
        if spans is not None:
            from .obs.utilization import utilization_from_spans

            kinds = kind_table(spans)
            summary = tree_summary(spans)
            utilization = utilization_from_spans(spans)
            pool_tasks = [
                {"worker": rec.attrs.get("worker", 0), "t0": rec.t0,
                 "t1": rec.t1,
                 "queue_wait": rec.attrs.get("queue_wait", 0.0),
                 "parent": rec.parent}
                for rec in spans
                if rec.kind == "pool_task" and rec.t1 is not None
            ]
        skipped = arts.skipped

    out = write_dashboard(
        args.out,
        history_entries=entries,
        diffs=diffs,
        memory_readings=readings,
        utilization=utilization,
        pool_tasks=pool_tasks,
        kind_table_text=kinds,
        trace_summary=summary,
        attribution=attribution_doc,
        roofline=roofline_doc,
        profile=profile_doc,
        health=health_doc,
    )
    print(f"wrote {out} ({len(entries)} history entries, "
          f"{len(readings)} memory readings)")
    for filename, reason in skipped:
        print(f"warning: skipped malformed {filename}: {reason}",
              file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    from .obs.buildinfo import version_string

    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version",
                        version=version_string())
    parser.add_argument(
        "--log-level", default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help="configure the 'repro' loggers (default: leave logging as-is)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input(p):
        p.add_argument("input", help="tensor file or registry dataset name")
        p.add_argument("--scale", type=float, default=1.0,
                       help="scale for registry datasets")

    p = sub.add_parser("info", help="print tensor statistics")
    add_input(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("datasets", help="list registry datasets")
    p.set_defaults(fn=cmd_datasets)

    p = sub.add_parser("plan", help="rank memoization strategies")
    add_input(p)
    p.add_argument("--rank", type=int, default=16)
    p.add_argument("--memory-budget", type=int, default=None,
                   help="cap on memoization memory (bytes)")
    p.add_argument("--top", type=int, default=8)
    p.add_argument("--calibrate", action="store_true",
                   help="micro-benchmark this machine first")
    p.add_argument("--json", action="store_true",
                   help="machine-readable repro-plan/v1 artifact in the "
                   "repro-bench/v1 envelope")
    p.add_argument("--explain", action="store_true",
                   help="full decision trace: margins, dominant cost "
                   "terms, the winner's per-node predicted costs")
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for the execution tier/layout "
                   "decision (default: REPRO_WORKERS, else cpu count)")
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser(
        "explain",
        help="explain a plan: full candidate search + per-node costs",
        description="Run the planner and keep the whole decision trace: "
        "every candidate with its tree shape, per-node and per-mode "
        "predicted flop/word/byte terms, the winner's margin over each "
        "runner-up and which cost term dominates it.  --measure then runs "
        "CP-ALS on the winner with cost attribution enabled and appends "
        "the measured per-node breakdown (exact flop alignment on the "
        "numpy backend).  --json emits the repro-plan/v1 artifact in the "
        "shared repro-bench/v1 envelope.",
    )
    add_input(p)
    p.add_argument("--rank", type=int, default=16)
    p.add_argument("--memory-budget", type=int, default=None,
                   help="cap on memoization memory (bytes)")
    p.add_argument("--top", type=int, default=8)
    p.add_argument("--calibrate", action="store_true",
                   help="micro-benchmark this machine first")
    p.add_argument("--measure", action="store_true",
                   help="run CP-ALS on the winner and attach the measured "
                   "per-node attribution")
    p.add_argument("--iters", type=int, default=3,
                   help="iterations for --measure (default: 3)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="print the artifact JSON instead of tables")
    p.add_argument("--out", default=None,
                   help="also write the artifact JSON to this path")
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for the execution tier/layout "
                   "decision (default: REPRO_WORKERS, else cpu count)")
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("decompose", help="CP-ALS / nonnegative CP")
    add_input(p)
    p.add_argument("--rank", type=int, default=16)
    p.add_argument("--strategy", default="auto")
    p.add_argument("--iters", type=int, default=50)
    p.add_argument("--tol", type=float, default=1e-7)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nonneg", action="store_true",
                   help="nonnegative CP via multiplicative updates")
    p.add_argument("--workers", type=int, default=None,
                   help="run CP-ALS on the parallel engine with this many "
                   "pool workers (default: sequential engine)")
    p.add_argument("--min-chunk-rows", type=int, default=None,
                   help="parallel-engine chunking threshold override "
                   "(lower it to force pool fan-out on small tensors)")
    p.add_argument("--tier", choices=("auto", "thread", "process"),
                   default="auto",
                   help="execution tier: worker threads (GIL-released "
                   "kernels) or worker processes with shared-memory "
                   "factors; auto consults the cost model when a layout "
                   "or worker count is requested")
    p.add_argument("--layout", choices=("auto", "numpy", "alto"),
                   default="auto",
                   help="index layout: COO index matrix or ALTO packed "
                   "codes (one uint64 per nonzero); auto picks by "
                   "modeled cost")
    p.add_argument("--out", default=None, help="write factors to .npz")
    p.set_defaults(fn=cmd_decompose)

    p = sub.add_parser("complete", help="tensor completion (missing-data CP)")
    add_input(p)
    p.add_argument("--rank", type=int, default=8)
    p.add_argument("--iters", type=int, default=300)
    p.add_argument("--tol", type=float, default=1e-6)
    p.add_argument("--learning-rate", type=float, default=0.1)
    p.add_argument("--test-fraction", type=float, default=0.0,
                   help="hold out this fraction for test RMSE")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, help="write factors to .npz")
    p.set_defaults(fn=cmd_complete)

    p = sub.add_parser(
        "trace", help="run another subcommand with tracing enabled",
        description="Run any other repro subcommand with the span tracer "
        "and metrics registry enabled, then export the trace (Chrome "
        "trace_event JSON + JSONL + text summary + metrics snapshot).",
    )
    p.add_argument("--trace-dir", default="repro-trace",
                   help="directory for trace artifacts (default: "
                   "./repro-trace)")
    p.add_argument("--profile", action="store_true",
                   help="also run the sampling stack profiler and write "
                   "profile.json + profile.folded")
    p.add_argument("--profile-hz", type=float, default=None,
                   help="sampling rate for --profile (default: 97, or "
                   "REPRO_PROFILE_HZ)")
    p.add_argument("rest", nargs=argparse.REMAINDER,
                   help="the command to trace, e.g. 'decompose data.tns "
                   "--rank 16'")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="run another subcommand under the sampling stack profiler",
        description="'repro trace' with the wall-clock sampling profiler "
        "forced on: runs the wrapped subcommand with every instrument "
        "enabled, then writes the usual trace artifacts plus "
        "profile.json (repro-profile/v1: folded stacks joined to the "
        "span tree, per-span sampled seconds) and profile.folded "
        "(collapsed-stack text for flamegraph.pl / speedscope).  Worker "
        "threads appear as worker-<n> lanes; worker processes sample "
        "themselves and merge back as pid-<pid> lanes under their "
        "pool_task spans.",
    )
    p.add_argument("--trace-dir", default="repro-trace",
                   help="directory for trace + profile artifacts "
                   "(default: ./repro-trace)")
    p.add_argument("--hz", type=float, default=None, dest="profile_hz",
                   help="sampling rate (default: 97, or REPRO_PROFILE_HZ; "
                   "raise for short runs, lower for long ones)")
    p.add_argument("rest", nargs=argparse.REMAINDER,
                   help="the command to profile, e.g. 'decompose data.tns "
                   "--rank 16'")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "serve",
        help="OpenMetrics endpoint: scrape a running or saved run",
        description="Stdlib HTTP exporter with /metrics (OpenMetrics "
        "text), /healthz, and /runz (JSON run snapshot: iteration, fit, "
        "ETA).  With a trailing subcommand, runs it with telemetry "
        "enabled and the endpoint live for the duration ('repro serve "
        "--port 9464 decompose nips --rank 16'); with no subcommand, "
        "reconstructs state from a 'repro trace' artifact directory and "
        "serves it until killed.",
    )
    p.add_argument("--port", type=int, default=9464,
                   help="listen port (default: 9464; 0 = ephemeral)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--trace-dir", default="repro-trace",
                   help="artifact directory to replay when no subcommand "
                   "is given (default: ./repro-trace)")
    p.add_argument("rest", nargs=argparse.REMAINDER,
                   help="optional subcommand to run while serving")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "tail",
        help="render an events.jsonl log as human-readable lines",
        description="Pretty-print a structured event log "
        "(repro-events/v1): one line per event with timestamp, kind, and "
        "fields.  --follow polls for appended events (the sink flushes "
        "per event, so a live run streams).  Exits 1 when the log has "
        "schema problems.",
    )
    p.add_argument("events",
                   help="events.jsonl file (or a trace directory)")
    p.add_argument("-n", type=int, default=None,
                   help="only show the last N events")
    p.add_argument("-f", "--follow", action="store_true",
                   help="keep polling for appended events (Ctrl-C stops)")
    p.add_argument("--interval", type=float, default=0.5,
                   help="poll interval for --follow (default: 0.5s)")
    p.set_defaults(fn=cmd_tail)

    p = sub.add_parser(
        "bench-diff",
        help="compare benchmark history against the stored baseline",
        description="Noise-aware benchmark regression check: per bench id "
        "the current value (min over the run's samples) is compared to the "
        "min of the last k matching baseline entries; a regression is "
        "flagged only outside the relative band.  Exit code 1 on "
        "regression (CI runs this soft-fail).  See docs/benchmarking.md.",
    )
    p.add_argument("current", nargs="?", default=None,
                   help="JSONL file with the current run's entries "
                   "(default: the newest run inside --history)")
    p.add_argument("--history",
                   default=os.path.join("benchmarks", "history",
                                        "history.jsonl"),
                   help="baseline history JSONL (default: "
                   "benchmarks/history/history.jsonl)")
    p.add_argument("--band", type=float, default=0.10,
                   help="relative tolerance band (default: 0.10 = ±10%%)")
    p.add_argument("--k", type=int, default=5,
                   help="baseline = min of the last k matching entries")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(fn=cmd_bench_diff)

    p = sub.add_parser(
        "dashboard",
        help="render history + memory + trace into one HTML file",
        description="Self-contained HTML dashboard: bench history "
        "sparklines with baseline verdicts, the measured-vs-predicted "
        "memory series, and trace summaries.  No JS, inline SVG only — "
        "open the file directly in a browser.",
    )
    p.add_argument("--history",
                   default=os.path.join("benchmarks", "history",
                                        "history.jsonl"),
                   help="bench history JSONL")
    p.add_argument("--trace-dir", default=None,
                   help="a 'repro trace' output directory (memory.json + "
                   "trace.jsonl) to include")
    p.add_argument("--out", default="dashboard.html",
                   help="output HTML path (default: dashboard.html)")
    p.add_argument("--band", type=float, default=0.10)
    p.add_argument("--k", type=int, default=5)
    p.set_defaults(fn=cmd_dashboard)

    p = sub.add_parser("report", help="summarize a saved JSONL trace")
    p.add_argument("trace", help="trace.jsonl file (or the trace directory)")
    p.add_argument("--max-children", type=int, default=12,
                   help="sibling spans shown per node before eliding")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "roofline",
        help="measure machine ceilings / attribute achieved throughput",
        description="STREAM-style bandwidth saturation curve + dense "
        "compute ceiling, cached as a repro-machine/v1 artifact that "
        "'repro plan' prices bandwidth scaling from.  With --trace-dir, "
        "joins a saved trace's kernel spans with the cost model's "
        "flop/byte terms to report achieved GB/s and GFLOP/s per kernel "
        "config as roofline fractions.",
    )
    p.add_argument("--quick", action="store_true",
                   help="small measurement sizes (CI smoke; still a valid "
                   "artifact)")
    p.add_argument("--force", action="store_true",
                   help="re-measure even when a cached artifact exists")
    p.add_argument("--max-threads", type=int, default=None,
                   help="cap the bandwidth curve's thread counts")
    p.add_argument("--trace-dir", default=None,
                   help="a 'repro trace' output directory to attribute")
    p.add_argument("--out", default=None,
                   help="artifact path (default: $REPRO_MACHINE or "
                   "~/.cache/repro/repro-machine-v1.json)")
    p.add_argument("--json", action="store_true",
                   help="print the repro-roofline/v1 report as JSON")
    p.set_defaults(fn=cmd_roofline)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            format="%(asctime)s %(levelname)s %(name)s: %(message)s",
        )
        logging.getLogger("repro").setLevel(
            getattr(logging, args.log_level.upper())
        )
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    except (ValueError, KeyError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
