"""Dense multilinear-algebra kernels used by CP-ALS."""

from .gram import GramCache, gram, hadamard_grams
from .innerprod import innerprod_from_mttkrp, sparse_kruskal_innerprod
from .khatri_rao import khatri_rao, khatri_rao_rows
from .norms import column_norms, normalize_columns
from .solve import psd_pinv, solve_normal_equations

__all__ = [
    "GramCache",
    "gram",
    "hadamard_grams",
    "innerprod_from_mttkrp",
    "sparse_kruskal_innerprod",
    "khatri_rao",
    "khatri_rao_rows",
    "column_norms",
    "normalize_columns",
    "psd_pinv",
    "solve_normal_equations",
]
