"""Normal-equation solves for the CP-ALS factor update.

The update is ``U^(n) = M^(n) H^(n)+`` where ``H^(n)`` is an ``R x R``
Hadamard product of Gram matrices — symmetric positive *semi*-definite, and
frequently ill-conditioned near convergence.  We solve via Cholesky when the
matrix is comfortably positive definite and fall back to a truncated
eigendecomposition pseudoinverse otherwise (matching the reference CP-ALS
behaviour of Tensor Toolbox).

The fallback used to be completely silent; it now reports itself to the
perf counters (``pinv_fallbacks`` / ``truncated_eigenvalues``), the
numerical-health collector (:mod:`repro.obs.health`), and the structured
event log — attributed to the in-flight (iteration, mode) solve site when
a run context has one.  The observability imports stay off the happy
path: the Cholesky branch touches nothing beyond NumPy/SciPy.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from ..perf import counters as _perf

#: Relative eigenvalue cutoff for the pseudoinverse fallback.
PINV_RCOND = 1e-12


def solve_normal_equations(M: np.ndarray, H: np.ndarray) -> np.ndarray:
    """Solve ``U H = M`` for ``U`` with SPD-aware fallbacks.

    Parameters
    ----------
    M : ``I x R`` MTTKRP result.
    H : ``R x R`` symmetric PSD coefficient matrix.
    """
    H = np.asarray(H)
    M = np.asarray(M)
    if H.shape[0] != H.shape[1] or H.shape[0] != M.shape[1]:
        raise ValueError(f"incompatible shapes M{M.shape} H{H.shape}")
    try:
        c, low = sla.cho_factor(H, check_finite=False)
        return sla.cho_solve((c, low), M.T, check_finite=False).T
    except (np.linalg.LinAlgError, sla.LinAlgError, ValueError):
        pinv, n_truncated = psd_pinv_diagnosed(H)
        _note_pinv_fallback(H.shape[0], n_truncated)
        return M @ pinv


def psd_pinv(H: np.ndarray, rcond: float = PINV_RCOND) -> np.ndarray:
    """Moore-Penrose pseudoinverse of a symmetric PSD matrix via ``eigh``."""
    return psd_pinv_diagnosed(H, rcond)[0]


def psd_pinv_diagnosed(H: np.ndarray,
                       rcond: float = PINV_RCOND
                       ) -> tuple[np.ndarray, int]:
    """:func:`psd_pinv` plus the number of truncated eigenvalues.

    The count is how many eigenvalues fell at or below the relative
    ``rcond`` cutoff and were zeroed in the inverse — the rank deficiency
    the solve proceeded through.
    """
    w, V = np.linalg.eigh((H + H.T) * 0.5)
    cutoff = rcond * max(float(w[-1]), 0.0)
    keep = w > cutoff
    inv_w = np.where(keep, 1.0 / np.where(keep, w, 1.0), 0.0)
    return (V * inv_w) @ V.T, int(w.size - np.count_nonzero(keep))


def _note_pinv_fallback(rank: int, n_truncated: int) -> None:
    """Telemetry for one Cholesky→pinv fallback.

    Counts always land in the active perf counters (a no-op without a
    :func:`repro.perf.counters.counting` block); when the health
    collector or event log is enabled, the fallback is additionally
    attributed to the in-flight (iteration, mode) site the cp_als loop
    registered.  Lazy imports keep the linalg layer observability-free
    until a fallback actually fires.
    """
    _perf.record(pinv_fallbacks=1, truncated_eigenvalues=n_truncated)
    from ..obs import events as _events
    from ..obs import health as _health

    iteration, mode = _health.current_site()
    _health.record_fallback(n_truncated)
    if _events.enabled():
        message = (
            f"normal-equation solve fell back to pseudoinverse "
            f"({n_truncated}/{rank} eigenvalues truncated)"
        )
        if mode is not None:
            message += f" in mode {mode}"
        if iteration is not None:
            message += f" at iteration {iteration}"
        fields: dict = {
            "message": message,
            "metric": "pinv_fallback",
            "n_truncated": n_truncated,
        }
        if iteration is not None:
            fields["iteration"] = iteration
        if mode is not None:
            fields["mode"] = mode
        _events.emit("warning", **fields)
