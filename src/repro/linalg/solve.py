"""Normal-equation solves for the CP-ALS factor update.

The update is ``U^(n) = M^(n) H^(n)+`` where ``H^(n)`` is an ``R x R``
Hadamard product of Gram matrices — symmetric positive *semi*-definite, and
frequently ill-conditioned near convergence.  We solve via Cholesky when the
matrix is comfortably positive definite and fall back to a truncated
eigendecomposition pseudoinverse otherwise (matching the reference CP-ALS
behaviour of Tensor Toolbox).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

#: Relative eigenvalue cutoff for the pseudoinverse fallback.
PINV_RCOND = 1e-12


def solve_normal_equations(M: np.ndarray, H: np.ndarray) -> np.ndarray:
    """Solve ``U H = M`` for ``U`` with SPD-aware fallbacks.

    Parameters
    ----------
    M : ``I x R`` MTTKRP result.
    H : ``R x R`` symmetric PSD coefficient matrix.
    """
    H = np.asarray(H)
    M = np.asarray(M)
    if H.shape[0] != H.shape[1] or H.shape[0] != M.shape[1]:
        raise ValueError(f"incompatible shapes M{M.shape} H{H.shape}")
    try:
        c, low = sla.cho_factor(H, check_finite=False)
        return sla.cho_solve((c, low), M.T, check_finite=False).T
    except (np.linalg.LinAlgError, sla.LinAlgError, ValueError):
        return M @ psd_pinv(H)


def psd_pinv(H: np.ndarray, rcond: float = PINV_RCOND) -> np.ndarray:
    """Moore-Penrose pseudoinverse of a symmetric PSD matrix via ``eigh``."""
    w, V = np.linalg.eigh((H + H.T) * 0.5)
    cutoff = rcond * max(float(w[-1]), 0.0)
    inv_w = np.where(w > cutoff, 1.0 / np.where(w > cutoff, w, 1.0), 0.0)
    return (V * inv_w) @ V.T
