"""Inner products between sparse tensors and Kruskal (CP) models.

The CP-ALS convergence check needs ``<X, [[lambda; U1..UN]]>`` every
iteration.  Computing it from scratch costs an MTTKRP; instead we use the
standard trick of reusing the *last* MTTKRP of the iteration, which reduces
the inner product to an ``R``-length dot with the just-updated factor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.coo import CooTensor
from .khatri_rao import khatri_rao_rows


def sparse_kruskal_innerprod(
    tensor: CooTensor,
    weights: np.ndarray,
    factors: Sequence[np.ndarray],
) -> float:
    """Exact ``<X, [[lambda; U1..UN]]>`` evaluated over X's nonzeros."""
    if len(factors) != tensor.ndim:
        raise ValueError(
            f"expected {tensor.ndim} factors, got {len(factors)}"
        )
    if tensor.nnz == 0:
        return 0.0
    rows = [tensor.idx[:, n] for n in range(tensor.ndim)]
    prod = khatri_rao_rows(list(factors), rows)  # nnz x R
    per_component = tensor.vals @ prod  # length R
    return float(per_component @ np.asarray(weights))


def innerprod_from_mttkrp(
    M_last: np.ndarray, U_last: np.ndarray, weights: np.ndarray
) -> float:
    """``<X, model>`` from the final-mode MTTKRP ``M_last`` of an iteration.

    ``<X, [[lambda; U..]]> = sum_r lambda_r <M^(N)(:, r), U^(N)(:, r)>`` —
    valid whenever ``M_last`` was computed with the *current* values of all
    other factors, which is exactly the state at the end of a CP-ALS
    iteration's last sub-iteration.
    """
    per_component = np.einsum("ir,ir->r", M_last, U_last)
    return float(per_component @ np.asarray(weights))
