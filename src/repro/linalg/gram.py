"""Gram matrices and their Hadamard combinations (the ``H^(n)`` matrices)."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def gram(U: np.ndarray) -> np.ndarray:
    """``U.T @ U`` as a symmetric ``R x R`` matrix."""
    G = U.T @ U
    # Enforce exact symmetry so downstream Cholesky/eigh treatment is stable.
    return (G + G.T) * 0.5


def hadamard_grams(grams: Sequence[np.ndarray], skip: int | None = None) -> np.ndarray:
    """Element-wise product of Gram matrices, optionally skipping one.

    This is ``H^(n) = *_{i != n} (U^(i)^T U^(i))`` from CP-ALS; with
    ``skip=None`` it is the full Hadamard product over all modes (used by the
    Kruskal-tensor norm).
    """
    grams = list(grams)
    if not grams:
        raise ValueError("hadamard_grams requires at least one Gram matrix")
    if skip is not None and not 0 <= skip < len(grams):
        raise ValueError(f"skip={skip} out of range for {len(grams)} grams")
    out: np.ndarray | None = None
    for i, G in enumerate(grams):
        if i == skip:
            continue
        out = G.copy() if out is None else out * G
    if out is None:
        # skip removed the only matrix: identity of the Hadamard monoid.
        r = grams[0].shape[0]
        return np.ones((r, r), dtype=grams[0].dtype)
    return out


class GramCache:
    """Tracks per-mode Gram matrices, recomputing only on factor update.

    CP-ALS touches ``H^(n)`` every sub-iteration but only one factor changes
    between touches; caching the per-mode Grams turns the Hadamard combination
    into the only per-sub-iteration cost.
    """

    def __init__(self, factors: Sequence[np.ndarray]):
        self._grams = [gram(U) for U in factors]

    def update(self, mode: int, U: np.ndarray) -> None:
        """Recompute the Gram of one mode after its factor changed."""
        self._grams[mode] = gram(U)

    def combined(self, skip: int | None = None) -> np.ndarray:
        """Hadamard product of the cached Grams, optionally skipping a mode."""
        return hadamard_grams(self._grams, skip=skip)

    def __getitem__(self, mode: int) -> np.ndarray:
        return self._grams[mode]

    def __len__(self) -> int:
        return len(self._grams)
