"""Column normalization and norm helpers for factor matrices."""

from __future__ import annotations

import numpy as np


def column_norms(U: np.ndarray, order: float | str = 2) -> np.ndarray:
    """Per-column norms of ``U``; ``order`` is 2 (default), 1, or 'max'."""
    if order == 2:
        return np.sqrt(np.einsum("ir,ir->r", U, U))
    if order == 1:
        return np.abs(U).sum(axis=0)
    if order == "max":
        return np.abs(U).max(axis=0) if U.shape[0] else np.zeros(U.shape[1])
    raise ValueError(f"unsupported norm order: {order!r}")


def normalize_columns(
    U: np.ndarray, order: float | str = 2
) -> tuple[np.ndarray, np.ndarray]:
    """Normalize columns of ``U``; returns ``(U_normalized, norms)``.

    Zero columns are left as-is with a reported norm of 0 (the CP-ALS driver
    treats a zero norm as a degenerate component and reinitializes it).
    """
    norms = column_norms(U, order)
    safe = np.where(norms > 0, norms, 1.0)
    return U / safe, norms
