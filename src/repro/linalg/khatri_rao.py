"""Khatri-Rao (column-wise Kronecker) products."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def khatri_rao(matrices: Sequence[np.ndarray], *, reverse: bool = False) -> np.ndarray:
    """Khatri-Rao product of a sequence of matrices with equal column counts.

    For inputs ``A_1 (I_1 x R), ..., A_k (I_k x R)`` returns the
    ``(prod I_j) x R`` matrix whose ``r``-th column is
    ``A_1[:, r] (x) ... (x) A_k[:, r]`` (Kronecker), with row index running
    row-major over ``(i_1, ..., i_k)``.

    ``reverse=True`` processes the matrices in reverse order (the convention
    used by some MTTKRP formulations; equivalent to permuting the inputs).
    """
    mats = list(matrices)
    if not mats:
        raise ValueError("khatri_rao requires at least one matrix")
    if reverse:
        mats = mats[::-1]
    ranks = {m.shape[1] for m in mats}
    if len(ranks) != 1:
        raise ValueError(f"inconsistent column counts: {sorted(ranks)}")
    rank = ranks.pop()
    out = mats[0]
    for m in mats[1:]:
        # (I x R) , (J x R) -> (I*J x R) via broadcasting.
        out = (out[:, None, :] * m[None, :, :]).reshape(-1, rank)
    return np.ascontiguousarray(out)


def khatri_rao_rows(
    matrices: Sequence[np.ndarray], rows: Sequence[np.ndarray]
) -> np.ndarray:
    """Hadamard product of selected rows, one row set per matrix.

    Computes ``prod_j A_j[rows[j], :]`` element-wise — the sparse-tensor view
    of a Khatri-Rao product, evaluated only at the coordinates that matter.
    Returns an ``m x R`` array where ``m = len(rows[j])`` for all ``j``.
    """
    mats = list(matrices)
    rows = list(rows)
    if len(mats) != len(rows):
        raise ValueError("need exactly one row-index array per matrix")
    if not mats:
        raise ValueError("khatri_rao_rows requires at least one matrix")
    out = mats[0][rows[0]]
    if len(mats) > 1:
        out = out.copy()
        for m, r in zip(mats[1:], rows[1:]):
            out *= m[r]
    return out
