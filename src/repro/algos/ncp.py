"""Nonnegative CP via multiplicative updates (NCP-MU).

Sparse count tensors (EHR, tag, word-frequency data — the paper's motivating
workloads) are usually factored under nonnegativity so components read as
additive parts.  The multiplicative-update algorithm is CP-ALS with the
normal-equation solve replaced by the Lee-Seung rule

    U <- U * M / (U H + eps),

which preserves nonnegativity and never increases the Frobenius error.  The
MTTKRP ``M`` is the identical kernel, so every memoization strategy and
backend of :func:`repro.core.cpals.cp_als` applies unchanged — this module
is the "any MTTKRP-based algorithm benefits" claim, exercised.
"""

from __future__ import annotations

import numpy as np

from ..core.coo import CooTensor
from ..core.cpals import CPResult, initialize_factors
from ..core.dtypes import VALUE_DTYPE
from ..core.engine import MemoizedMttkrp
from ..core.kruskal import KruskalTensor
from ..linalg.gram import GramCache
from ..linalg.innerprod import innerprod_from_mttkrp
from ..linalg.norms import normalize_columns
from ..core.validate import check_positive_int

#: divide-guard for the multiplicative rule.
MU_EPSILON = 1e-12


def cp_nmu(
    tensor: CooTensor,
    rank: int,
    *,
    strategy="bdt",
    n_iter_max: int = 100,
    tol: float = 1e-7,
    init="random",
    random_state=None,
    engine_factory=None,
) -> CPResult:
    """Nonnegative CP decomposition by multiplicative updates.

    Parameters mirror :func:`repro.core.cpals.cp_als`; the tensor's values
    must be nonnegative and the initialization is clipped at zero.  Returns
    a :class:`CPResult` whose model has elementwise-nonnegative factors and
    weights.
    """
    check_positive_int(rank, "rank")
    if tensor.nnz and float(tensor.vals.min()) < 0:
        raise ValueError("cp_nmu requires a nonnegative tensor")
    if tensor.ndim < 2:
        raise ValueError("cp_nmu requires an order >= 2 tensor")

    factors = initialize_factors(tensor, rank, init, random_state)
    factors = [np.maximum(U, MU_EPSILON) for U in factors]
    norm_x = tensor.norm()

    if engine_factory is not None:
        engine = engine_factory(tensor)
        strategy_name = getattr(engine, "name", type(engine).__name__)
    else:
        engine = MemoizedMttkrp(tensor, strategy)
        strategy_name = f"nmu:{engine.strategy.name}"
    engine.set_factors(factors)
    grams = GramCache(engine.factors)
    mode_order = tuple(engine.mode_order)

    fits: list[float] = []
    converged = False
    for iteration in range(n_iter_max):
        M_last = None
        for n in mode_order:
            M = engine.mttkrp(n)
            H = grams.combined(skip=n)
            U = engine.factors[n]
            denom = U @ H
            np.maximum(denom, MU_EPSILON, out=denom)
            # M can carry tiny negative round-off; clip so U stays >= 0.
            U = U * np.maximum(M, 0.0) / denom
            engine.update_factor(n, U)
            grams.update(n, U)
            M_last = M
        assert M_last is not None
        last = mode_order[-1]
        weights = np.ones(rank, dtype=VALUE_DTYPE)
        H_all = grams.combined()
        norm_model_sq = float(weights @ H_all @ weights)
        inner = innerprod_from_mttkrp(M_last, engine.factors[last], weights)
        err_sq = max(norm_x**2 + norm_model_sq - 2.0 * inner, 0.0)
        fit = 1.0 - float(np.sqrt(err_sq)) / norm_x if norm_x else 1.0
        fits.append(fit)
        if tol > 0 and iteration > 0 and abs(fits[-1] - fits[-2]) < tol:
            converged = True
            break

    # Fold column norms into weights for a canonical nonnegative model.
    weights = np.ones(rank, dtype=VALUE_DTYPE)
    normed = []
    for U in engine.factors:
        Un, norms = normalize_columns(U)
        weights *= np.where(norms > 0, norms, 1.0)
        normed.append(Un)
    return CPResult(
        ktensor=KruskalTensor(weights, normed, copy=False),
        fits=fits,
        n_iterations=len(fits),
        converged=converged,
        strategy_name=strategy_name,
    )
