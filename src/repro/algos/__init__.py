"""Higher-level algorithms built on the memoized MTTKRP engine."""

from .completion import CompletionResult, complete, holdout_split
from .ncp import cp_nmu
from .restarts import (RankSelection, RestartReport, cp_als_restarts,
                       select_rank)

__all__ = [
    "CompletionResult",
    "complete",
    "holdout_split",
    "cp_nmu",
    "RankSelection",
    "RestartReport",
    "cp_als_restarts",
    "select_rank",
]
