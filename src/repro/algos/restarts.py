"""Multi-restart CP-ALS and rank selection.

CP-ALS is sensitive to initialization, so practice runs several restarts and
keeps the best fit; rank selection sweeps `R` and looks for the fit knee.
Both workloads amortize the engine's symbolic phase across runs — the
amortization argument of the memoization literature — which this module
implements by sharing one :class:`SymbolicTree` across all restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.coo import CooTensor
from ..core.cpals import CPResult, cp_als
from ..core.engine import MemoizedMttkrp
from ..core.strategy import resolve_strategy
from ..core.symbolic import SymbolicTree
from ..core.validate import check_positive_int, check_random_state
from ..obs.health import (FitTrajectory, TRAJECTORY_STALLED,
                          TRAJECTORY_SWAMPED, congruence_from_factors)


@dataclass
class RestartReport:
    """All restart outcomes plus the winner."""

    results: list[CPResult]
    best_index: int
    #: restart index -> {"iteration": int, "reason": label} for restarts
    #: the ``early_stop`` classifier cut short (empty otherwise).
    early_stops: dict[int, dict] = field(default_factory=dict)

    @property
    def best(self) -> CPResult:
        return self.results[self.best_index]

    def fits(self) -> list[float]:
        return [r.fit for r in self.results]


class _HopelessRestartStopper:
    """Per-restart cp_als callback ending stalled/swamped runs early.

    Fully deterministic: the decision depends only on the restart's own
    fit series and factor congruence (via
    :class:`repro.obs.health.FitTrajectory`), never on wall time or
    telemetry state, so repeated runs cut the same restarts at the same
    iterations.  A wrapped user callback still runs first and its truthy
    return is honored unrecorded (it is the caller's stop, not ours).
    """

    def __init__(self, index: int, record: dict, *, window: int,
                 stall_tol: float, swamp_congruence: float,
                 user_callback=None):
        self.index = index
        self.record = record
        self.user_callback = user_callback
        self.trajectory = FitTrajectory(
            window=window, stall_tol=stall_tol,
            swamp_congruence=swamp_congruence,
        )

    def __call__(self, iteration: int, fit: float, model) -> bool:
        if self.user_callback is not None and self.user_callback(
                iteration, fit, model):
            return True
        congruence, _ = congruence_from_factors(model.factors)
        label, _rate = self.trajectory.observe(fit, congruence)
        if label in (TRAJECTORY_STALLED, TRAJECTORY_SWAMPED):
            self.record[self.index] = {
                "iteration": iteration, "reason": label,
            }
            return True
        return False


def cp_als_restarts(
    tensor: CooTensor,
    rank: int,
    n_restarts: int = 5,
    *,
    strategy="auto",
    random_state=None,
    early_stop: bool = False,
    early_stop_window: int = 5,
    early_stop_tol: float = 1e-6,
    early_stop_congruence: float = 0.97,
    **cp_kwargs,
) -> RestartReport:
    """Run CP-ALS from ``n_restarts`` random inits, sharing symbolic work.

    With ``strategy='auto'`` the planner runs once; the chosen strategy's
    symbolic tree is then reused by every restart (restart ``k`` costs only
    numeric work).  Extra keyword arguments go to
    :func:`repro.core.cpals.cp_als`.

    With ``early_stop=True`` each restart is watched by the
    numerical-health stall/swamp classifier
    (:class:`repro.obs.health.FitTrajectory`): a restart whose fit
    flat-lines below ``early_stop_tol`` over ``early_stop_window``
    iterations — or swamps with component congruence at/above
    ``early_stop_congruence`` — is terminated instead of burning its
    remaining iteration budget.  Every restart still runs (seeds are drawn
    in the same order as without the option) and ``best_index`` selection
    stays deterministic: ``argmax`` over the final fits, first winner on
    ties.  Cut-short restarts are recorded in
    :attr:`RestartReport.early_stops`.
    """
    check_positive_int(n_restarts, "n_restarts")
    rng = check_random_state(random_state)
    if isinstance(strategy, str) and strategy.lower() == "auto":
        from ..model.planner import plan

        chosen = plan(tensor, rank).best.strategy
    else:
        chosen = resolve_strategy(strategy, tensor.ndim)
    shared_symbolic = SymbolicTree(tensor, chosen)

    def engine_factory(t: CooTensor) -> MemoizedMttkrp:
        return MemoizedMttkrp(t, chosen, symbolic=shared_symbolic)

    results = []
    early_stops: dict[int, dict] = {}
    for i in range(n_restarts):
        seed = int(rng.integers(0, 2**31 - 1))
        kwargs = cp_kwargs
        if early_stop:
            kwargs = dict(cp_kwargs)
            kwargs["callback"] = _HopelessRestartStopper(
                i, early_stops,
                window=early_stop_window, stall_tol=early_stop_tol,
                swamp_congruence=early_stop_congruence,
                user_callback=cp_kwargs.get("callback"),
            )
        results.append(
            cp_als(
                tensor, rank, engine_factory=engine_factory,
                random_state=seed, **kwargs,
            )
        )
    best_index = int(np.argmax([r.fit for r in results]))
    return RestartReport(results=results, best_index=best_index,
                         early_stops=early_stops)


@dataclass
class RankSelection:
    """Fit-vs-rank sweep and the suggested knee."""

    ranks: list[int]
    fits: dict[int, float]
    suggested_rank: int
    reports: dict[int, RestartReport] = field(default_factory=dict)


def select_rank(
    tensor: CooTensor,
    ranks: Sequence[int],
    *,
    n_restarts: int = 2,
    min_gain: float = 0.01,
    random_state=None,
    **cp_kwargs,
) -> RankSelection:
    """Sweep CP ranks and suggest the first rank with diminishing fit gain.

    ``min_gain`` is the fit improvement below which a larger rank is judged
    not worth its parameters (a simple, standard knee rule).
    """
    ranks = sorted(set(int(r) for r in ranks))
    if not ranks:
        raise ValueError("ranks must be non-empty")
    rng = check_random_state(random_state)
    fits: dict[int, float] = {}
    reports: dict[int, RestartReport] = {}
    for r in ranks:
        report = cp_als_restarts(
            tensor, r, n_restarts, random_state=rng, **cp_kwargs
        )
        reports[r] = report
        fits[r] = report.best.fit
    suggested = ranks[-1]
    for prev, cur in zip(ranks, ranks[1:]):
        if fits[cur] - fits[prev] < min_gain:
            suggested = prev
            break
    return RankSelection(
        ranks=ranks, fits=fits, suggested_rank=suggested, reports=reports
    )
