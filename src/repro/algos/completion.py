"""Sparse CP tensor completion on the memoized MTTKRP engine.

Treats a sparse tensor's nonzeros as *observed samples* of an unknown
low-rank tensor (zeros are missing, not zero) and fits factors by minimizing

    f(U1..UN) = 1/2 * || P_Omega(X - [[U1..UN]]) ||^2  +  reg/2 * sum ||Un||^2

with first-order optimization (Adam).  The gradient w.r.t. ``Un`` is
``-MTTKRP(R_Omega, n) + reg * Un`` where ``R_Omega`` is the sparse residual
on the observed pattern — a tensor whose *pattern never changes*.  That is
exactly the engine's sweet spot:

* the symbolic tree is built once for the observation pattern;
* each gradient evaluation swaps in new residual values
  (:meth:`~repro.core.engine.MemoizedMttkrp.set_root_values`) and obtains
  all ``N`` MTTKRPs from a single tree sweep
  (:meth:`~repro.core.engine.MemoizedMttkrp.mttkrp_all`), since all factors
  are fixed within an evaluation.

This is the completion workload of the memoized-MTTKRP literature (SPLATT's
tensor-completion extension), reproduced on the adaptive framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.coo import CooTensor
from ..core.cpals import initialize_factors
from ..core.dtypes import VALUE_DTYPE
from ..core.engine import MemoizedMttkrp
from ..core.kruskal import KruskalTensor
from ..core.validate import check_positive_int, check_random_state
from ..linalg.khatri_rao import khatri_rao_rows


@dataclass
class CompletionResult:
    """Outcome of :func:`complete`.

    Attributes
    ----------
    ktensor: fitted low-rank model (predicts unobserved cells).
    train_rmse: per-epoch RMSE on the observed entries.
    converged: whether the RMSE-change tolerance was met.
    n_iterations: epochs executed.
    strategy_name: memoization strategy used for the gradient MTTKRPs.
    """

    ktensor: KruskalTensor
    train_rmse: list[float] = field(default_factory=list)
    converged: bool = False
    n_iterations: int = 0
    strategy_name: str = ""

    @property
    def rmse(self) -> float:
        return self.train_rmse[-1] if self.train_rmse else float("nan")

    def predict(self, coords) -> np.ndarray:
        """Model values at arbitrary coordinates (observed or not)."""
        return self.ktensor.values_at(coords)


def model_values_at_pattern(
    factors: Sequence[np.ndarray], idx: np.ndarray
) -> np.ndarray:
    """Unit-weight CP model evaluated at each coordinate row of ``idx``."""
    rows = [idx[:, n] for n in range(len(factors))]
    return khatri_rao_rows(list(factors), rows).sum(axis=1)


def complete(
    tensor: CooTensor,
    rank: int,
    *,
    strategy="bdt",
    n_iter_max: int = 500,
    tol: float = 1e-6,
    learning_rate: float = 0.1,
    regularization: float = 1e-4,
    init="random",
    random_state=None,
    callback=None,
) -> CompletionResult:
    """Fit a rank-``R`` CP model to the *observed* entries of ``tensor``.

    Parameters
    ----------
    tensor: observations; entries absent from the pattern are treated as
        missing (not zero).
    rank: CP rank of the model.
    strategy: memoization strategy for the gradient MTTKRPs.
    n_iter_max / tol: epoch cap and RMSE-change stopping threshold.
    learning_rate / regularization: Adam step size and L2 weight.
    init / random_state: as in :func:`repro.core.cpals.cp_als`.
    callback: ``callback(epoch, rmse, factors)`` per epoch.
    """
    check_positive_int(rank, "rank")
    if tensor.ndim < 2:
        raise ValueError("completion requires an order >= 2 tensor")
    if tensor.nnz == 0:
        raise ValueError("completion requires at least one observed entry")
    if learning_rate <= 0:
        raise ValueError("learning_rate must be > 0")
    if regularization < 0:
        raise ValueError("regularization must be >= 0")

    rng = check_random_state(random_state)
    factors = initialize_factors(tensor, rank, init, rng)
    # Scale the init so model values start in the data's magnitude range:
    # a uniform(0,1) init at order N overshoots by ~R per entry.
    data_scale = float(np.sqrt(np.mean(tensor.vals**2))) or 1.0
    model_scale = float(
        np.sqrt(np.mean(model_values_at_pattern(factors, tensor.idx) ** 2))
    )
    if model_scale > 0:
        adjust = (data_scale / model_scale) ** (1.0 / tensor.ndim)
        factors = [U * adjust for U in factors]

    engine = MemoizedMttkrp(tensor, strategy, factors)
    strategy_name = engine.strategy.name
    n_obs = tensor.nnz

    # Adam state.
    m = [np.zeros_like(U) for U in factors]
    v = [np.zeros_like(U) for U in factors]
    beta1, beta2, eps = 0.9, 0.999, 1e-8

    rmse_history: list[float] = []
    converged = False
    for epoch in range(1, n_iter_max + 1):
        predicted = model_values_at_pattern(engine.factors, tensor.idx)
        residual = tensor.vals - predicted
        rmse = float(np.sqrt(np.mean(residual**2)))
        rmse_history.append(rmse)
        if callback is not None:
            callback(epoch - 1, rmse, engine.factors)
        if tol > 0 and len(rmse_history) > 1 and (
            abs(rmse_history[-2] - rmse_history[-1])
            < tol * max(rmse_history[-2], 1e-30)
        ):
            converged = True
            break

        # Gradient: -MTTKRP(residual, n) + reg * Un, all modes in one sweep.
        engine.set_root_values(residual)
        mttkrps = engine.mttkrp_all()
        new_factors = []
        for n, U in enumerate(engine.factors):
            grad = -mttkrps[n] / n_obs + regularization * U
            m[n] = beta1 * m[n] + (1 - beta1) * grad
            v[n] = beta2 * v[n] + (1 - beta2) * grad**2
            m_hat = m[n] / (1 - beta1**epoch)
            v_hat = v[n] / (1 - beta2**epoch)
            new_factors.append(
                U - learning_rate * m_hat / (np.sqrt(v_hat) + eps)
            )
        engine.set_factors(new_factors)

    weights = np.ones(rank, dtype=VALUE_DTYPE)
    model = KruskalTensor(weights, engine.factors).normalize()
    return CompletionResult(
        ktensor=model,
        train_rmse=rmse_history,
        converged=converged,
        n_iterations=len(rmse_history),
        strategy_name=strategy_name,
    )


def holdout_split(
    tensor: CooTensor, test_fraction: float = 0.2, random_state=None
) -> tuple[CooTensor, np.ndarray, np.ndarray]:
    """Split observed entries into train tensor + held-out (coords, values).

    Standard completion evaluation: fit on the train pattern, report RMSE on
    the held-out coordinates.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = check_random_state(random_state)
    n_test = max(1, int(round(tensor.nnz * test_fraction)))
    if n_test >= tensor.nnz:
        raise ValueError("not enough observations to hold any out")
    test_rows = rng.choice(tensor.nnz, size=n_test, replace=False)
    mask = np.zeros(tensor.nnz, dtype=bool)
    mask[test_rows] = True
    train = CooTensor(
        tensor.idx[~mask], tensor.vals[~mask], tensor.shape,
        canonical=True, copy=True,
    )
    return train, tensor.idx[mask].copy(), tensor.vals[mask].copy()
