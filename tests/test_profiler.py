"""Sampling stack profiler: span-join, both execution tiers, artifacts.

Covers the PR-9 tentpole surface end to end:

* enable/disable idempotence and instant-exit zero-sample runs;
* per-span sampled seconds agreeing with measured span durations
  (within generous sampling error — wall-clock sampling under the GIL);
* two *concurrent* profiled ``RunContext.scoped`` runs with zero
  cross-talk between their private stores;
* thread-tier ``worker-<n>`` lanes from :class:`ThreadPool` and
  process-tier ``pid-<pid>`` lanes with ``pool_task``-prefixed span
  paths carrying *worker-interior* frames from real child processes;
* the ``repro-profile/v1`` artifact round trip (JSON + folded text) and
  :class:`TraceArtifacts`' missing-vs-malformed policy, including the
  ``repro report`` degradation path on pre-profiler trace dirs.
"""

import json
import math
import os
import threading
import time

import pytest

from repro.cli import main
from repro.obs import events as obs_events
from repro.obs import profiler, runctx, trace
from repro.obs.artifacts import TraceArtifacts
from repro.obs.export import write_jsonl
from repro.obs.metrics import registry
from repro.obs.profiler import (PROFILE_SCHEMA, ProfileStore, folded_lines,
                                format_hotspots, hotspots, profile_artifact,
                                validate_profile_artifact, write_profile)
from repro.parallel.pool import WorkerPool
from repro.parallel.procpool import ProcessPool


@pytest.fixture(autouse=True)
def clean_state():
    """Each test starts and ends with profiler/tracer off and empty."""
    def reset():
        profiler.disable()
        store = profiler.get_store()
        if store is not None:
            store.clear()
        profiler._labels.clear()
        profiler._bound.clear()
        profiler._observer.clear()
        trace.disable()
        trace.get_tracer().clear()
        obs_events.disable()
        obs_events.get_log().clear()
        registry.reset()
        runctx.run_registry.clear()
    reset()
    yield
    reset()


def _busy(seconds=0.3):
    """CPU-bound spin the sampler can catch (module-level: picklable)."""
    deadline = time.perf_counter() + float(seconds)
    x = 0.0
    while time.perf_counter() < deadline:
        x += math.sqrt(x + 1.0)
    return x


def _sampler_threads():
    return [t for t in threading.enumerate() if t.name == "repro-profiler"]


class TestLifecycle:
    def test_enable_disable_idempotent(self):
        assert not profiler.enabled()
        profiler.enable(hz=50)
        store = profiler.get_store()
        profiler.enable(hz=50)  # second enable: same store, same sampler
        assert profiler.enabled()
        assert profiler.get_store() is store
        assert len(_sampler_threads()) == 1
        profiler.disable()
        profiler.disable()
        assert not profiler.enabled()
        assert not any(t.is_alive() for t in _sampler_threads())
        # samples collected so far survive disable for export
        assert profiler.get_store() is store

    def test_enable_clear_drops_samples(self):
        profiler.enable(hz=50)
        profiler.get_store().add("main", (), ("m.f",), 0.02)
        assert profiler.get_store().n_samples == 1
        profiler.enable(clear=True)
        assert profiler.get_store().n_samples == 0
        profiler.disable()

    def test_instant_exit_records_zero_samples(self):
        with profiler.profiling(hz=50) as store:
            pass  # exits before the sampler's first sweep fires
        assert store.n_samples == 0
        assert store.sampled_seconds == 0.0
        doc = profile_artifact(store.snapshot(), run_id="r0", command="noop")
        assert validate_profile_artifact(doc) == []
        assert doc["n_samples"] == 0
        assert format_hotspots(doc) == "(no samples)"

    def test_env_off_means_cheap_noop(self):
        assert not profiler.enabled()
        assert profiler.active_hz() is None
        with trace.span("untraced_unprofiled"):
            _busy(0.01)
        store = profiler.get_store()
        assert store is None or store.n_samples == 0


class TestSpanJoin:
    def test_span_seconds_agree_with_measured_duration(self):
        trace.enable()
        t0 = time.perf_counter()
        with profiler.profiling(hz=250) as store:
            with trace.span("hotwork"):
                _busy(0.4)
        elapsed = time.perf_counter() - t0
        snap = store.snapshot()
        assert snap["n_samples"] > 0
        hot = snap["span_samples"]["hotwork"]
        # Generous: wall-clock sampling under GIL contention, shared CI.
        assert 0.25 * elapsed <= hot["self_seconds"] <= 2.0 * elapsed
        assert hot["total_seconds"] >= hot["self_seconds"]
        lines = folded_lines(snap)
        assert any("span:hotwork" in ln and "_busy" in ln for ln in lines)
        assert all(ln.rsplit(" ", 1)[1].isdigit() for ln in lines)

    def test_concurrent_scoped_runs_zero_crosstalk(self):
        ctxs = [runctx.RunContext.scoped(run_id=f"run-{i}", profile=True,
                                         profile_hz=250) for i in range(2)]

        def drive(ctx):
            with runctx.using(ctx):
                _busy(0.5)

        threads = [threading.Thread(target=drive, args=(ctx,),
                                    name=f"ctxthread-{i}")
                   for i, ctx in enumerate(ctxs)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Both private stores sampled, each only from its own thread.
        for i, ctx in enumerate(ctxs):
            snap = ctx.profiler.snapshot()
            assert snap["n_samples"] > 0, f"run-{i} collected no samples"
            lanes = {e["lane"] for e in snap["folded"]}
            assert lanes == {f"ctxthread-{i}"}
        # The scoped runs never turned the module-global profiler on.
        assert not profiler.enabled()
        assert not any(t.is_alive() for t in _sampler_threads())


class TestTiers:
    def test_thread_tier_worker_lanes(self):
        trace.enable()
        with profiler.profiling(hz=250) as store:
            with trace.span("fanout"):
                pool = WorkerPool(3)
                try:
                    pool.run([lambda: _busy(0.25) for _ in range(3)])
                finally:
                    pool.close()
        snap = store.snapshot()
        assert snap["n_samples"] > 0
        worker = [e for e in snap["folded"]
                  if e["lane"].startswith("worker-")]
        assert worker, f"no worker lanes in {sorted({e['lane'] for e in snap['folded']})}"
        assert any("pool_task" in e["spans"] for e in worker)

    def test_process_tier_worker_stacks(self):
        trace.enable()
        profiler.enable(hz=250, clear=True)
        try:
            with trace.span("fanout"):
                pool = ProcessPool(2, allow_oversubscribe=True)
                try:
                    pool.run([(_busy, (0.5,)), (_busy, (0.5,))])
                finally:
                    pool.close()
        finally:
            profiler.disable()
        snap = profiler.get_store().snapshot()
        child = [e for e in snap["folded"] if e["lane"].startswith("pid-")]
        assert child, "no worker-process samples merged into the parent"
        pids = {int(e["lane"].split("-", 1)[1]) for e in child}
        assert os.getpid() not in pids  # real child pids, not the parent
        # Worker-interior stacks re-rooted under the pool_task span.
        assert all(e["spans"][0] == "pool_task" for e in child)
        assert any(any("_busy" in f for f in e["frames"]) for e in child)


class TestArtifact:
    def _profiled_snapshot(self):
        trace.enable()
        with profiler.profiling(hz=250) as store:
            with trace.span("hotwork"):
                _busy(0.3)
        trace.disable()
        return store.snapshot()

    def test_write_validate_roundtrip(self, tmp_path):
        snap = self._profiled_snapshot()
        json_path, folded_path = write_profile(
            str(tmp_path), snap, run_id="r1", command="decompose",
            duration_seconds=0.3)
        with open(json_path) as fh:
            doc = json.load(fh)
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["run_id"] == "r1" and doc["command"] == "decompose"
        assert validate_profile_artifact(doc) == []
        with open(folded_path) as fh:
            lines = fh.read().splitlines()
        assert lines and lines == folded_lines(doc)
        rows = hotspots(doc, top=3)
        assert rows and rows[0]["self_seconds"] >= rows[-1]["self_seconds"]
        arts = TraceArtifacts(str(tmp_path))
        assert arts.profile()["n_samples"] == doc["n_samples"]
        assert arts.skipped == []

    def test_validator_flags_broken_docs(self):
        snap = self._profiled_snapshot()
        doc = profile_artifact(snap, run_id="r2", command="x")
        assert validate_profile_artifact(doc) == []
        bad = dict(doc, schema="bogus/v9")
        assert validate_profile_artifact(bad)
        bad = json.loads(json.dumps(doc))
        bad["n_samples"] += 7
        assert any("samples" in e for e in validate_profile_artifact(bad))


def _make_trace_dir(tmp_path):
    """A minimal pre-profiler trace dir: spans only, no profile.json."""
    trace.enable()
    with trace.span("als_iteration"):
        with trace.span("mttkrp"):
            pass
    trace_dir = tmp_path / "tr"
    trace_dir.mkdir()
    write_jsonl(str(trace_dir / "trace.jsonl"))
    trace.disable()
    trace.get_tracer().clear()
    return trace_dir


class TestDegradation:
    def test_report_on_pre_profiler_trace_dir(self, tmp_path, capsys):
        trace_dir = _make_trace_dir(tmp_path)
        assert main(["report", str(trace_dir)]) == 0
        captured = capsys.readouterr()
        assert "no profile captured" in captured.out
        assert "skipped" not in captured.err

    def test_report_skips_malformed_profile(self, tmp_path, capsys):
        trace_dir = _make_trace_dir(tmp_path)
        (trace_dir / "profile.json").write_text(
            json.dumps({"schema": "bogus/v9"}))
        assert main(["report", str(trace_dir)]) == 0
        captured = capsys.readouterr()
        assert "no profile captured" in captured.out
        assert "skipped malformed profile.json" in captured.err

    def test_trace_artifacts_missing_vs_malformed(self, tmp_path):
        arts = TraceArtifacts(str(tmp_path))
        assert arts.is_empty
        assert arts.profile() is None and arts.metrics() is None
        assert arts.skipped == []  # missing is not an error
        (tmp_path / "metrics.json").write_text("{not json")
        arts = TraceArtifacts(str(tmp_path))
        assert arts.metrics() is None
        assert [name for name, _ in arts.skipped] == ["metrics.json"]
        assert arts.metrics() is None  # cached: warn once, not per call

    def test_dashboard_notes_missing_profile(self, tmp_path):
        from repro.obs.dashboard import render_dashboard

        html = render_dashboard(trace_summary="1 span")
        assert "no profile captured" in html

    def test_dashboard_renders_icicle(self):
        from repro.obs.dashboard import render_dashboard

        snap = TestArtifact._profiled_snapshot(TestArtifact())
        doc = profile_artifact(snap, run_id="r3", command="x")
        html = render_dashboard(profile=doc)
        assert "span-joined icicle" in html
        assert "<svg" in html and "span:hotwork" in html
