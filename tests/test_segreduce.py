"""Unit tests for repro.core.segreduce."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segreduce import SegmentPlan, segment_sum


def reference_reduce(values, targets):
    """Dict-based reference segmented sum (ascending group-id order)."""
    groups = {}
    for t, v in zip(targets, values):
        groups.setdefault(int(t), []).append(v)
    keys = sorted(groups)
    return keys, np.array([np.sum(groups[k], axis=0) for k in keys])


class TestSegmentPlan:
    def test_basic_2d(self):
        targets = np.array([2, 0, 2, 1])
        values = np.arange(8.0).reshape(4, 2)
        plan = SegmentPlan(targets)
        out = plan.reduce(values)
        keys, ref = reference_reduce(values, targets)
        assert plan.group_ids.tolist() == keys
        np.testing.assert_allclose(out, ref)

    def test_1d_values(self):
        plan = SegmentPlan(np.array([1, 1, 0]))
        out = plan.reduce(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(out, [3.0, 3.0])

    def test_empty(self):
        plan = SegmentPlan(np.array([], dtype=np.int64))
        assert plan.n_sources == 0
        assert plan.n_segments == 0
        out = plan.reduce(np.zeros((0, 3)))
        assert out.shape == (0, 3)

    def test_identity_fast_path(self):
        plan = SegmentPlan(np.array([0, 1, 2, 3]))
        assert plan._identity
        values = np.random.default_rng(0).random((4, 2))
        out = plan.reduce(values)
        np.testing.assert_array_equal(out, values)
        out[0, 0] = -1.0  # must be a copy, not a view of the input
        assert values[0, 0] != -1.0

    def test_non_contiguous_group_ids(self):
        plan = SegmentPlan(np.array([100, 5, 100]))
        assert plan.group_ids.tolist() == [5, 100]
        out = plan.reduce(np.array([[1.0], [2.0], [3.0]]))
        np.testing.assert_allclose(out, [[2.0], [4.0]])

    def test_wrong_row_count_raises(self):
        plan = SegmentPlan(np.array([0, 1]))
        with pytest.raises(ValueError):
            plan.reduce(np.zeros((3, 2)))

    def test_rejects_2d_targets(self):
        with pytest.raises(ValueError):
            SegmentPlan(np.zeros((2, 2), dtype=np.int64))

    def test_out_parameter(self):
        plan = SegmentPlan(np.array([0, 0, 1]))
        out = np.empty((2, 1))
        res = plan.reduce(np.array([[1.0], [2.0], [4.0]]), out=out)
        assert res is out
        np.testing.assert_allclose(out, [[3.0], [4.0]])

    def test_scatter_into(self):
        plan = SegmentPlan(np.array([3, 1, 3]))
        out = np.ones((5, 1))
        plan.scatter_into(np.array([[1.0], [2.0], [3.0]]), out)
        np.testing.assert_allclose(out.ravel(), [1, 3, 1, 5, 1])

    def test_index_nbytes_positive(self):
        plan = SegmentPlan(np.array([0, 0, 1, 2]))
        assert plan.index_nbytes() > 0

    @given(
        st.lists(st.integers(0, 10), min_size=1, max_size=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_reference(self, targets):
        targets = np.asarray(targets)
        rng = np.random.default_rng(42)
        values = rng.standard_normal((len(targets), 3))
        plan = SegmentPlan(targets)
        out = plan.reduce(values)
        keys, ref = reference_reduce(values, targets)
        assert plan.group_ids.tolist() == keys
        np.testing.assert_allclose(out, ref, atol=1e-12)


class TestChunks:
    def test_chunks_cover_everything(self):
        rng = np.random.default_rng(1)
        targets = rng.integers(0, 20, size=200)
        plan = SegmentPlan(targets)
        values = rng.standard_normal((200, 4))
        full = plan.reduce(values)
        for k in (1, 2, 3, 7, 50):
            chunks = plan.chunks(k)
            rebuilt = np.zeros_like(full)
            for src, seg in chunks:
                rebuilt[seg] = plan.reduce_chunk(values, src, seg)
            np.testing.assert_allclose(rebuilt, full, atol=1e-12)

    def test_chunk_output_ranges_disjoint(self):
        plan = SegmentPlan(np.random.default_rng(2).integers(0, 9, size=50))
        chunks = plan.chunks(4)
        covered = []
        for _, seg in chunks:
            covered.extend(range(seg.start, seg.stop))
        assert sorted(covered) == list(range(plan.n_segments))
        assert len(covered) == len(set(covered))

    def test_more_chunks_than_segments(self):
        plan = SegmentPlan(np.array([0, 0, 1]))
        assert len(plan.chunks(10)) == 2

    def test_empty_plan_chunks(self):
        plan = SegmentPlan(np.array([], dtype=np.int64))
        assert plan.chunks(4) == []

    def test_invalid_chunk_count(self):
        plan = SegmentPlan(np.array([0]))
        with pytest.raises(ValueError):
            plan.chunks(0)


class TestSegmentSum:
    def test_dense_bins_2d(self):
        out = segment_sum(
            np.array([[1.0, 1.0], [2.0, 0.0]]), np.array([2, 2]), 4
        )
        assert out.shape == (4, 2)
        np.testing.assert_allclose(out[2], [3.0, 1.0])
        np.testing.assert_allclose(out[[0, 1, 3]], 0.0)

    def test_dense_bins_1d(self):
        out = segment_sum(np.array([1.0, 2.0, 3.0]), np.array([0, 0, 2]), 3)
        np.testing.assert_allclose(out, [3.0, 0.0, 3.0])
