"""Tests for greedy strategy search (repro.model.search)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core import strategy as S
from repro.core.engine import MemoizedMttkrp
from repro.model.overlap import DistinctCounter
from repro.model.planner import plan
from repro.model.search import greedy_tree, search_candidates
from repro.synth.skewed import skewed_random_tensor

from .helpers import dense_mttkrp, random_coo, random_factors


@pytest.fixture(scope="module")
def tensor6d():
    return skewed_random_tensor((40,) * 6, 4000, 1.2, random_state=0)


@pytest.fixture(scope="module")
def tensor10d():
    return skewed_random_tensor((20,) * 10, 3000, 1.0, random_state=1)


class TestGreedyTree:
    def test_valid_strategy(self, tensor6d):
        strat = greedy_tree(tensor6d)
        assert strat.n_modes == 6
        assert sorted(strat.mode_order) == list(range(6))
        # Binary tree: every internal node has exactly two children.
        for node in strat.nodes:
            if node.children:
                assert len(node.children) == 2

    def test_engine_correct_on_greedy_tree(self, tensor6d):
        rng = np.random.default_rng(2)
        small = random_coo(rng, (4, 5, 3, 4, 5, 3), 50)
        strat = greedy_tree(small)
        factors = random_factors(rng, small.shape, 2)
        eng = MemoizedMttkrp(small, strat, factors)
        dense = small.to_dense()
        for mode in range(6):
            np.testing.assert_allclose(
                eng.mttkrp(mode),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-10, atol=1e-10,
            )

    def test_explicit_mode_order(self, tensor6d):
        strat = greedy_tree(tensor6d, mode_order=[5, 4, 3, 2, 1, 0])
        assert strat.n_modes == 6

    def test_bad_mode_order(self, tensor6d):
        with pytest.raises(ValueError):
            greedy_tree(tensor6d, mode_order=[0, 0, 1, 2, 3, 4])

    def test_order_one_rejected(self):
        from repro.core.coo import CooTensor

        with pytest.raises(ValueError):
            greedy_tree(CooTensor.empty((5,)))

    def test_greedy_not_worse_than_star(self, tensor6d):
        """Greedy tree must beat the star in predicted flops (it memoizes)."""
        from repro.model.cost import cost_report

        counter = DistinctCounter(tensor6d)
        g = greedy_tree(tensor6d, counter=counter)
        g_cost = cost_report(g, counter.node_nnz(g), 16)
        s = S.star(6)
        s_cost = cost_report(s, counter.node_nnz(s), 16)
        assert g_cost.flops_per_iteration < s_cost.flops_per_iteration

    def test_greedy_competitive_with_exhaustive(self, tensor6d):
        """Order 6: greedy within 25% of the exhaustive-search optimum."""
        from repro.model.cost import cost_report

        counter = DistinctCounter(tensor6d)
        g = greedy_tree(tensor6d, counter=counter)
        g_flops = cost_report(g, counter.node_nnz(g), 16).flops_per_iteration
        best = min(
            cost_report(c, counter.node_nnz(c), 16).flops_per_iteration
            for c in S.enumerate_binary(6)
        )
        assert g_flops <= 1.25 * best


class TestSearchCandidates:
    def test_low_order_superset_of_defaults(self, tensor6d):
        cands = search_candidates(tensor6d)
        sigs = {c.signature() for c in cands}
        default_sigs = {c.signature() for c in S.default_candidates(6)}
        assert default_sigs <= sigs
        # Exactly one extra family: the size-sorted greedy tree.
        assert len(sigs - default_sigs) <= 1

    def test_high_order_includes_greedy(self, tensor10d):
        cands = search_candidates(tensor10d)
        names = [c.name for c in cands]
        assert any(n.startswith("greedy") for n in names)
        # No Catalan explosion at order 10.
        assert len(cands) < 50

    def test_no_duplicate_signatures(self, tensor10d):
        cands = search_candidates(tensor10d)
        sigs = [c.signature() for c in cands]
        assert len(sigs) == len(set(sigs))

    def test_planner_uses_search_for_high_order(self, tensor10d):
        report = plan(tensor10d, rank=4)
        assert report.best.feasible
        # Memoization must be predicted to win at order 10.
        assert report.best.strategy.n_intermediates() > 0

    def test_signatures_unique_across_orders(self):
        for order in (3, 4, 6, 9):
            t = skewed_random_tensor((6,) * order, 100, 1.0,
                                     random_state=order)
            sigs = [c.signature() for c in search_candidates(t)]
            assert len(sigs) == len(set(sigs))

    def test_greedy_included_below_exhaustive_limit(self, tensor6d):
        """Order <= limit: the size-sorted greedy tree joins the Catalan
        enumeration instead of being crowded out by it."""
        counter = DistinctCounter(tensor6d)
        g = greedy_tree(tensor6d, counter=counter)
        cands = search_candidates(tensor6d, counter=counter)
        assert g.signature() in {c.signature() for c in cands}
        # The exhaustive family is still there alongside it.
        assert len(cands) > len(S.default_candidates(6)) - 1

    def test_greedy_included_above_exhaustive_limit(self):
        """Order > limit: both greedy orders present, no Catalan blow-up."""
        t = skewed_random_tensor((4, 20, 6, 15, 3, 9, 12, 5, 8), 2500, 1.1,
                                 random_state=7)
        cands = search_candidates(t)
        names = [c.name for c in cands]
        assert "greedy" in names
        assert "greedy-natural" in names
        assert len(cands) < 30

    def test_order3_degenerate(self):
        """Order 3 leaves nothing to memoize: every family collapses to a
        handful of distinct shapes, all of them valid."""
        t = skewed_random_tensor((10, 12, 9), 300, 1.0, random_state=0)
        cands = search_candidates(t)
        sigs = [c.signature() for c in cands]
        assert len(sigs) == len(set(sigs))
        assert cands
        for c in cands:
            assert c.n_modes == 3
            assert sorted(c.mode_order) == [0, 1, 2]

    @given(order=hst.integers(3, 9), seed=hst.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_leaves_cover_all_modes_exactly_once(self, order, seed):
        t = skewed_random_tensor((5,) * order, 80, 1.0, random_state=seed)
        for cand in search_candidates(t):
            leaf_modes = sorted(
                m for node in cand.nodes if node.is_leaf for m in node.modes
            )
            assert leaf_modes == list(range(order))
