"""Tests for instrumentation (repro.perf)."""

import time

import pytest

from repro.perf import (Counters, Timer, active_counters, counting, record,
                        time_callable)


class TestCounters:
    def test_record_into_active(self):
        with counting() as c:
            record(flops=10, words=5)
            record(flops=1)
        assert c.flops == 11
        assert c.words == 5

    def test_no_active_is_noop(self):
        assert active_counters() is None
        record(flops=100)  # must not raise

    def test_nested_contexts_isolate(self):
        with counting() as outer:
            record(flops=1)
            with counting() as inner:
                record(flops=10)
            record(flops=1)
        assert inner.flops == 10
        assert outer.flops == 2

    def test_extra_events(self):
        with counting() as c:
            record(custom_event=3)
            record(custom_event=4)
        assert c.extra["custom_event"] == 7
        assert c.snapshot()["custom_event"] == 7

    def test_add_and_reset(self):
        a = Counters(flops=1, words=2)
        b = Counters(flops=10, extra={"x": 1})
        a.add(b)
        assert a.flops == 11 and a.extra["x"] == 1
        a.reset()
        assert a.flops == 0 and not a.extra

    def test_external_counters_object(self):
        mine = Counters()
        with counting(mine) as c:
            assert c is mine
            record(mttkrps=2)
        assert mine.mttkrps == 2


class TestTimer:
    def test_accumulates_laps(self):
        t = Timer()
        for _ in range(3):
            with t:
                time.sleep(0.001)
        assert len(t.laps) == 3
        assert t.elapsed >= 0.003
        assert t.best <= t.mean <= t.elapsed

    def test_empty_timer(self):
        t = Timer()
        assert t.mean == 0.0
        assert t.best == 0.0

    def test_time_callable(self):
        calls = []
        out = time_callable(lambda: calls.append(1), repeats=2, warmup=1)
        assert len(calls) == 3
        assert out >= 0.0
