"""Tests for instrumentation (repro.perf)."""

import time

import pytest

from repro.perf import (Counters, Timer, active_counters, counting, record,
                        time_callable)


class TestCounters:
    def test_record_into_active(self):
        with counting() as c:
            record(flops=10, words=5)
            record(flops=1)
        assert c.flops == 11
        assert c.words == 5

    def test_no_active_is_noop(self):
        assert active_counters() is None
        record(flops=100)  # must not raise

    def test_nested_contexts_isolate(self):
        with counting() as outer:
            record(flops=1)
            with counting() as inner:
                record(flops=10)
            record(flops=1)
        assert inner.flops == 10
        assert outer.flops == 2

    def test_extra_events(self):
        with counting() as c:
            record(custom_event=3)
            record(custom_event=4)
        assert c.extra["custom_event"] == 7
        assert c.snapshot()["custom_event"] == 7

    def test_add_and_reset(self):
        a = Counters(flops=1, words=2)
        b = Counters(flops=10, extra={"x": 1})
        a.add(b)
        assert a.flops == 11 and a.extra["x"] == 1
        a.reset()
        assert a.flops == 0 and not a.extra

    def test_external_counters_object(self):
        mine = Counters()
        with counting(mine) as c:
            assert c is mine
            record(mttkrps=2)
        assert mine.mttkrps == 2

    def test_snapshot_lists_every_field(self):
        c = Counters(flops=1, words=2, contractions=3, node_builds=4,
                     mttkrps=5, extra={"custom": 6})
        snap = c.snapshot()
        assert snap == {"flops": 1, "words": 2, "contractions": 3,
                        "node_builds": 4, "mttkrps": 5, "custom": 6}

    def test_add_merges_overlapping_extra(self):
        a = Counters(extra={"shared": 1, "only_a": 2})
        b = Counters(extra={"shared": 10, "only_b": 3})
        a.add(b)
        assert a.extra == {"shared": 11, "only_a": 2, "only_b": 3}
        # the source is unchanged by the merge
        assert b.extra == {"shared": 10, "only_b": 3}

    def test_add_covers_every_field(self):
        a = Counters(flops=1, words=1, contractions=1, node_builds=1,
                     mttkrps=1)
        a.add(Counters(flops=10, words=20, contractions=30, node_builds=40,
                       mttkrps=50))
        assert a.snapshot() == {"flops": 11, "words": 21, "contractions": 31,
                                "node_builds": 41, "mttkrps": 51}

    def test_reset_clears_every_field(self):
        c = Counters(flops=1, words=2, contractions=3, node_builds=4,
                     mttkrps=5, extra={"custom": 6})
        c.reset()
        assert c.snapshot() == {"flops": 0, "words": 0, "contractions": 0,
                                "node_builds": 0, "mttkrps": 0}
        assert c.extra == {}

    def test_nested_contexts_isolate_extra(self):
        with counting() as outer:
            record(custom=1)
            with counting() as inner:
                record(custom=10, flops=2)
        assert inner.extra == {"custom": 10} and inner.flops == 2
        assert outer.extra == {"custom": 1} and outer.flops == 0

    def test_record_unknown_field_lands_in_extra(self):
        with counting() as c:
            record(gathers=4)
            record(gathers=5, flops=1)
        assert c.extra["gathers"] == 9
        assert c.flops == 1
        assert "gathers" in repr(c)


class TestTimer:
    def test_accumulates_laps(self):
        t = Timer()
        for _ in range(3):
            with t:
                time.sleep(0.001)
        assert len(t.laps) == 3
        assert t.elapsed >= 0.003
        assert t.best <= t.mean <= t.elapsed

    def test_empty_timer(self):
        t = Timer()
        assert t.mean == 0.0
        assert t.best == 0.0

    def test_time_callable(self):
        calls = []
        out = time_callable(lambda: calls.append(1), repeats=2, warmup=1)
        assert len(calls) == 3
        assert out >= 0.0
