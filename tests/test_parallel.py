"""Tests for the multicore runtime (repro.parallel)."""

import numpy as np
import pytest

from repro.core import strategy as S
from repro.core.coo import CooTensor
from repro.core.cpals import cp_als
from repro.model.cost import cost_from_symbolic
from repro.core.symbolic import SymbolicTree
from repro.parallel import (ParallelCooMttkrp, ParallelMemoizedMttkrp,
                            ScalingParams, WorkerPool, contiguous_chunks,
                            greedy_partition, load_imbalance,
                            partition_balance, partition_nonzeros,
                            partition_slices, simulate_parallel_time,
                            simulate_speedup_curve)
from repro.synth.lowrank import lowrank_tensor

from .helpers import dense_mttkrp, random_coo, random_factors


class TestPartition:
    def test_contiguous_chunks_cover(self):
        chunks = contiguous_chunks(10, 3)
        assert chunks[0][0] == 0
        assert chunks[-1][1] == 10
        for (a, b), (c, d) in zip(chunks, chunks[1:]):
            assert b == c

    def test_chunks_near_equal(self):
        sizes = [hi - lo for lo, hi in contiguous_chunks(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        chunks = contiguous_chunks(2, 5)
        assert len(chunks) == 5
        assert sum(hi - lo for lo, hi in chunks) == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            contiguous_chunks(-1, 2)
        with pytest.raises((TypeError, ValueError)):
            contiguous_chunks(5, 0)

    def test_greedy_partition_balances(self):
        weights = [10, 9, 8, 1, 1, 1]
        assign = greedy_partition(weights, 2)
        assert partition_balance(weights, assign, 2) <= 1.2

    def test_greedy_partition_negative_rejected(self):
        with pytest.raises(ValueError):
            greedy_partition([-1.0], 2)

    def test_partition_nonzeros(self):
        rng = np.random.default_rng(0)
        t = random_coo(rng, (5, 5, 5), 50)
        chunks = partition_nonzeros(t, 4)
        assert sum(hi - lo for lo, hi in chunks) == t.nnz

    def test_partition_slices_assigns_all(self):
        rng = np.random.default_rng(1)
        t = random_coo(rng, (10, 5, 5), 80)
        assign = partition_slices(t, 0, 3)
        assert assign.shape == (10,)
        assert set(assign) <= {0, 1, 2}


class TestWorkerPool:
    def test_single_worker_inline(self):
        pool = WorkerPool(1)
        assert pool.run([lambda: 1, lambda: 2]) == [1, 2]
        pool.close()

    def test_multi_worker_ordered_results(self):
        with WorkerPool(4) as pool:
            results = pool.run([(lambda i=i: i * i) for i in range(10)])
        assert results == [i * i for i in range(10)]

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("boom")

        with WorkerPool(2) as pool:
            with pytest.raises(RuntimeError, match="boom"):
                pool.run([boom, boom])

    def test_invalid_worker_count(self):
        with pytest.raises((TypeError, ValueError)):
            WorkerPool(0)


class TestDefaultWorkers:
    @pytest.fixture(autouse=True)
    def restore_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)

    def test_env_override(self, monkeypatch):
        import os

        from repro.parallel.pool import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert default_workers() == 3
        # The override feeds the pool default too.
        pool = WorkerPool()
        assert pool.n_workers == 3
        pool.close()

    def test_env_not_an_integer(self, monkeypatch):
        from repro.parallel.pool import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="positive integer"):
            default_workers()

    def test_env_below_one(self, monkeypatch):
        from repro.parallel.pool import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match=">= 1"):
            default_workers()

    def test_unset_uses_cpu_count(self):
        from repro.parallel.pool import default_workers

        assert 1 <= default_workers() <= 8


class TestResolveWorkerCount:
    """The shared precedence + clamp rule behind every tier's worker knob."""

    @pytest.fixture(autouse=True)
    def eight_cpus(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_ALLOW_OVERSUBSCRIBE", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)

    def test_explicit_beats_env(self, monkeypatch):
        from repro.parallel.pool import resolve_worker_count

        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert resolve_worker_count(2) == 2

    def test_clamps_with_warning(self):
        from repro.parallel.pool import resolve_worker_count

        with pytest.warns(RuntimeWarning,
                          match=r"exceeds os\.cpu_count\(\)=8; clamping"):
            assert resolve_worker_count(12, tier="process") == 8

    def test_env_count_also_clamped(self, monkeypatch):
        from repro.parallel.pool import resolve_worker_count

        monkeypatch.setenv("REPRO_WORKERS", "12")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS=12"):
            assert resolve_worker_count(None) == 8

    def test_oversubscribe_argument_keeps_count(self):
        from repro.parallel.pool import resolve_worker_count

        with pytest.warns(RuntimeWarning, match="oversubscribes"):
            assert resolve_worker_count(12, allow_oversubscribe=True) == 12

    def test_oversubscribe_env_optout(self, monkeypatch):
        from repro.parallel.pool import resolve_worker_count

        monkeypatch.setenv("REPRO_ALLOW_OVERSUBSCRIBE", "1")
        with pytest.warns(RuntimeWarning, match="oversubscribes"):
            assert resolve_worker_count(12) == 12

    def test_within_budget_is_silent(self):
        import warnings as _warnings

        from repro.parallel.pool import resolve_worker_count

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert resolve_worker_count(8) == 8

    def test_explicit_worker_pool_count_not_clamped(self):
        """Thread oversubscription is harmless, so explicit WorkerPool
        counts bypass the clamp entirely — no warning, count honored."""
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            pool = WorkerPool(n_workers=12)
        assert pool.n_workers == 12
        pool.close()


class TestPoolTaskSpans:
    @pytest.fixture(autouse=True)
    def clean_trace(self):
        from repro.obs import trace

        trace.disable()
        trace.get_tracer().clear()
        yield
        trace.disable()
        trace.get_tracer().clear()

    def _task_spans(self, n_workers, n_tasks=4):
        from repro.obs import trace

        with trace.tracing():
            with WorkerPool(n_workers) as pool:
                results = pool.run(
                    [(lambda i=i: i * i) for i in range(n_tasks)]
                )
        assert results == [i * i for i in range(n_tasks)]
        return [s for s in trace.get_tracer().finished()
                if s.kind == "pool_task"]

    def test_inline_path_emits_identical_span_shape(self):
        spans = self._task_spans(n_workers=1)
        assert len(spans) == 4
        for s in spans:
            assert set(s.attrs) == {"index", "worker", "queue_wait",
                                    "source"}
            # Inline execution: submitting thread is lane 0, no queue.
            assert s.attrs["worker"] == 0
            assert s.attrs["queue_wait"] == 0.0
            assert s.attrs["source"] == "measured"

    def test_threaded_path_attrs(self):
        spans = self._task_spans(n_workers=2, n_tasks=8)
        assert len(spans) == 8
        for s in spans:
            assert set(s.attrs) == {"index", "worker", "queue_wait",
                                    "source"}
            assert s.attrs["queue_wait"] >= 0.0
            assert s.attrs["source"] == "measured"
        workers = {s.attrs["worker"] for s in spans}
        assert workers <= {0, 1} and len(workers) >= 1
        assert sorted(s.attrs["index"] for s in spans) == list(range(8))

    def test_single_task_fanout_runs_inline(self):
        # len(tasks) <= 1 short-circuits to the inline path even with a
        # threaded pool: exactly one span, zero queue wait.
        from repro.obs import trace

        with trace.tracing():
            with WorkerPool(4) as pool:
                assert pool.run([lambda: 42]) == [42]
        (span,) = [s for s in trace.get_tracer().finished()
                   if s.kind == "pool_task"]
        assert span.attrs["queue_wait"] == 0.0

    def test_imbalance_gauge_published(self):
        import time

        from repro.obs import trace
        from repro.obs.metrics import registry

        registry.reset()
        with trace.tracing():
            with WorkerPool(1) as pool:
                pool.run([lambda: time.sleep(0.002), lambda: None])
        gauges = registry.snapshot()["gauges"]
        assert gauges.get("pool.imbalance", 0.0) > 1.0
        registry.reset()


class TestParallelCoo:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_dense(self, n_workers):
        rng = np.random.default_rng(2)
        t = random_coo(rng, (6, 7, 5), 60)
        factors = random_factors(rng, t.shape, 3)
        backend = ParallelCooMttkrp(t, n_workers=n_workers)
        backend.set_factors(factors)
        dense = t.to_dense()
        for mode in range(3):
            np.testing.assert_allclose(
                backend.mttkrp(mode),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-10, atol=1e-10,
            )
        backend.close()

    def test_empty_tensor(self):
        backend = ParallelCooMttkrp(CooTensor.empty((3, 4)), n_workers=2)
        backend.set_factors(random_factors(np.random.default_rng(3), (3, 4), 2))
        np.testing.assert_array_equal(backend.mttkrp(0), 0.0)
        backend.close()

    def test_worker_count_exceeds_nnz(self):
        rng = np.random.default_rng(4)
        t = random_coo(rng, (4, 4), 3)
        factors = random_factors(rng, t.shape, 2)
        backend = ParallelCooMttkrp(t, n_workers=8)
        backend.set_factors(factors)
        np.testing.assert_allclose(
            backend.mttkrp(1),
            dense_mttkrp(t.to_dense(), factors, 1),
            rtol=1e-10, atol=1e-10,
        )
        backend.close()


class TestParallelMemoized:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize("strategy", ["star", "bdt"])
    def test_matches_dense(self, n_workers, strategy):
        rng = np.random.default_rng(5)
        t = random_coo(rng, (6, 5, 7, 4), 70)
        factors = random_factors(rng, t.shape, 3)
        eng = ParallelMemoizedMttkrp(t, strategy, factors, n_workers=n_workers,
                                     min_chunk_rows=4)
        dense = t.to_dense()
        for mode in range(4):
            np.testing.assert_allclose(
                eng.mttkrp(mode),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-10, atol=1e-10,
            )
        eng.close()

    def test_matches_sequential_engine_through_cpals(self):
        planted = lowrank_tensor((10, 8, 6, 5), rank=2, nnz=10 * 8 * 6 * 5,
                                 random_state=6)
        seq = cp_als(planted.tensor, rank=2, strategy="bdt", n_iter_max=4,
                     tol=0.0, random_state=7)
        par = cp_als(
            planted.tensor, rank=2, n_iter_max=4, tol=0.0, random_state=7,
            engine_factory=lambda t: ParallelMemoizedMttkrp(
                t, S.balanced_binary(4), n_workers=3, min_chunk_rows=4
            ),
        )
        np.testing.assert_allclose(seq.fits, par.fits, rtol=1e-9)

    def test_update_invalidation_still_correct(self):
        rng = np.random.default_rng(8)
        t = random_coo(rng, (5, 5, 5, 5), 60)
        factors = random_factors(rng, t.shape, 2)
        eng = ParallelMemoizedMttkrp(t, "bdt", factors, n_workers=2,
                                     min_chunk_rows=4)
        eng.mttkrp(0)
        newU = rng.standard_normal((5, 2))
        eng.update_factor(2, newU)
        factors[2] = newU
        np.testing.assert_allclose(
            eng.mttkrp(0),
            dense_mttkrp(t.to_dense(), factors, 0),
            rtol=1e-10, atol=1e-10,
        )
        eng.close()


class TestScalingSimulator:
    @pytest.fixture
    def cost(self):
        # Large enough that per-sync overhead does not dominate the model.
        rng = np.random.default_rng(9)
        t = random_coo(rng, (100, 100, 100, 100), 200_000)
        return cost_from_symbolic(SymbolicTree(t, S.balanced_binary(4)), 16)

    def test_speedup_monotone_until_saturation(self, cost):
        curve = simulate_speedup_curve(cost, [1, 2, 4, 8])
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] > 1.0
        assert curve[4] > curve[2]

    def test_bandwidth_saturation_limits_speedup(self, cost):
        params = ScalingParams(bandwidth_workers=2, sync_seconds=0.0,
                               memory_bound_fraction=1.0)
        curve = simulate_speedup_curve(cost, [1, 2, 4, 16], params=params)
        assert curve[16] <= 2.0 + 1e-9

    def test_perfect_scaling_when_compute_bound(self, cost):
        params = ScalingParams(bandwidth_workers=10**6, sync_seconds=0.0,
                               memory_bound_fraction=0.0)
        curve = simulate_speedup_curve(cost, [1, 4], params=params)
        assert curve[4] == pytest.approx(4.0)

    def test_sync_overhead_hurts_small_problems(self, cost):
        slow_sync = ScalingParams(sync_seconds=10.0)
        t = simulate_parallel_time(cost, 8, params=slow_sync)
        assert t > simulate_parallel_time(cost, 8)

    def test_invalid_worker_count(self, cost):
        with pytest.raises(ValueError):
            simulate_parallel_time(cost, 0)

    def test_load_imbalance_uniform(self):
        rng = np.random.default_rng(10)
        t = random_coo(rng, (10, 10, 10), 400)
        assert load_imbalance(t, 4) <= 1.05


class TestSliceParallel:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_dense(self, n_workers):
        from repro.parallel import SliceParallelMttkrp

        rng = np.random.default_rng(20)
        t = random_coo(rng, (7, 6, 5), 70)
        factors = random_factors(rng, t.shape, 3)
        backend = SliceParallelMttkrp(t, n_workers=n_workers)
        backend.set_factors(factors)
        dense = t.to_dense()
        for mode in range(3):
            np.testing.assert_allclose(
                backend.mttkrp(mode),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-10, atol=1e-10,
            )
        backend.close()

    def test_imbalance_recorded(self):
        from repro.parallel import SliceParallelMttkrp

        rng = np.random.default_rng(21)
        t = random_coo(rng, (8, 8, 8), 100)
        backend = SliceParallelMttkrp(t, n_workers=3)
        backend.set_factors(random_factors(rng, t.shape, 2))
        backend.mttkrp(0)
        assert backend.imbalance[0] >= 1.0

    def test_skewed_slices_increase_imbalance(self):
        from repro.parallel import SliceParallelMttkrp
        from repro.core.coo import CooTensor

        # One dominant slice: imbalance must exceed the uniform case.
        idx = np.array([[0, i % 9, i % 7] for i in range(60)]
                       + [[1 + i % 4, i % 9, i % 7] for i in range(20)])
        t = CooTensor(idx, np.ones(len(idx)), (5, 9, 7))
        backend = SliceParallelMttkrp(t, n_workers=4)
        backend.set_factors(random_factors(np.random.default_rng(22), t.shape, 2))
        backend.mttkrp(0)
        assert backend.imbalance[0] > 1.5

    def test_empty_tensor(self):
        from repro.parallel import SliceParallelMttkrp
        from repro.core.coo import CooTensor

        backend = SliceParallelMttkrp(CooTensor.empty((3, 3)), n_workers=2)
        backend.set_factors(random_factors(np.random.default_rng(23), (3, 3), 2))
        np.testing.assert_array_equal(backend.mttkrp(0), 0.0)
        backend.close()
