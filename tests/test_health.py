"""Tests for numerical-health telemetry (repro.obs.health)."""

import json
import warnings

import numpy as np
import pytest

import repro
from repro.core.coo import CooTensor
from repro.linalg import gram
from repro.linalg.solve import PINV_RCOND
from repro.obs import events as obs_events
from repro.obs import health
from repro.obs.artifacts import TraceArtifacts
from repro.obs.health import (FactorDeltaTracker, FitTrajectory,
                              HealthCollector, TRAJECTORY_CONVERGING,
                              TRAJECTORY_STALLED, TRAJECTORY_SWAMPED,
                              TRAJECTORY_WARMUP, congruence_from_factors,
                              congruence_from_grams, gram_conditioning,
                              health_artifact, rel_delta,
                              validate_health_artifact, write_health)
from repro.synth.lowrank import lowrank_tensor

from .helpers import random_coo


class TestRelDelta:
    def test_no_baseline_is_inf(self):
        assert rel_delta(np.ones((3, 2)), None) == float("inf")

    def test_shape_change_is_inf(self):
        assert rel_delta(np.ones((3, 2)), np.ones((4, 2))) == float("inf")

    def test_identical_is_zero(self):
        U = np.arange(6.0).reshape(3, 2)
        assert rel_delta(U, U.copy()) == 0.0

    def test_relative_scaling(self):
        U = np.eye(3)
        assert rel_delta(2.0 * U, U) == pytest.approx(1.0)

    def test_zero_baseline(self):
        Z = np.zeros((2, 2))
        assert rel_delta(Z, Z) == 0.0
        assert rel_delta(np.ones((2, 2)), Z) == float("inf")


class TestGramConditioning:
    def test_identity_is_one(self):
        cond, n_trunc = gram_conditioning(np.eye(4))
        assert cond == pytest.approx(1.0)
        assert n_trunc == 0

    def test_known_spectrum(self):
        H = np.diag([4.0, 2.0, 1.0])
        cond, n_trunc = gram_conditioning(H)
        assert cond == pytest.approx(4.0)
        assert n_trunc == 0

    def test_rank_deficient_counts_truncated(self):
        # Exact-zero eigenvalue: singular, one eigenvalue under the cutoff.
        H = np.diag([1.0, 1.0, 0.0])
        cond, n_trunc = gram_conditioning(H)
        assert cond == float("inf")
        assert n_trunc == 1

    def test_near_singular_truncation_matches_rcond(self):
        H = np.diag([1.0, 0.5 * PINV_RCOND])
        cond, n_trunc = gram_conditioning(H)
        assert n_trunc == 1
        H = np.diag([1.0, 10.0 * PINV_RCOND])
        cond, n_trunc = gram_conditioning(H)
        assert n_trunc == 0
        assert cond == pytest.approx(0.1 / PINV_RCOND)

    def test_zero_matrix(self):
        cond, n_trunc = gram_conditioning(np.zeros((3, 3)))
        assert cond == float("inf")
        assert n_trunc == 3


class TestCongruence:
    def test_rank_one_has_none(self):
        factors = [np.ones((4, 1)) for _ in range(3)]
        c, pair = congruence_from_factors(factors)
        assert c == 0.0 and pair is None

    def test_orthogonal_components_near_zero(self):
        factors = [np.eye(4)[:, :2] for _ in range(3)]
        c, pair = congruence_from_factors(factors)
        assert c == pytest.approx(0.0, abs=1e-12)

    def test_degenerate_pair_near_one(self):
        # Two nearly collinear components in every mode: the classic
        # swamp signature.
        rng = np.random.default_rng(0)
        factors = []
        for s in (6, 5, 4):
            u = rng.standard_normal(s)
            v = u + 1e-6 * rng.standard_normal(s)
            w = rng.standard_normal(s)
            factors.append(np.column_stack([u, v, w]))
        c, pair = congruence_from_factors(factors)
        assert c > 0.999
        assert pair == (0, 1)

    def test_grams_and_factors_agree(self):
        rng = np.random.default_rng(1)
        factors = [rng.standard_normal((s, 3)) for s in (5, 4, 6)]
        via_factors = congruence_from_factors(factors)
        via_grams = congruence_from_grams([gram(U) for U in factors])
        assert via_factors[0] == pytest.approx(via_grams[0])
        assert via_factors[1] == via_grams[1]

    def test_zero_column_does_not_nan(self):
        U = np.column_stack([np.zeros(4), np.ones(4)])
        c, _pair = congruence_from_factors([U, U])
        assert np.isfinite(c)


class TestFactorDeltaTracker:
    def test_first_observation_is_inf(self):
        t = FactorDeltaTracker()
        assert t.update(0, np.ones((3, 2))) == float("inf")

    def test_snapshot_style(self):
        t = FactorDeltaTracker(n_modes=1)
        U = np.eye(3)
        t.update(0, U)
        assert t.update(0, 2.0 * U) == pytest.approx(1.0)
        assert t.delta(0) == pytest.approx(1.0)

    def test_caller_baseline_style_keeps_no_snapshot(self):
        t = FactorDeltaTracker(n_modes=1)
        U = np.eye(3)
        assert t.update(0, 2.0 * U, previous=U) == pytest.approx(1.0)
        # No snapshot was stored, so a snapshot-style update is "first".
        assert t.update(0, U) == float("inf")

    def test_peek_does_not_record(self):
        t = FactorDeltaTracker(n_modes=1)
        U = np.eye(2)
        t.update(0, U)
        assert t.peek(0, 3.0 * U) == pytest.approx(2.0)
        assert t.delta(0) == float("inf")

    def test_deltas_and_reset(self):
        t = FactorDeltaTracker(n_modes=2)
        t.update(0, np.ones((2, 2)))
        assert len(t.deltas()) == 2
        t.reset()
        assert t.deltas() == [float("inf")] * 2


class TestFitTrajectory:
    def test_warmup_then_converging(self):
        traj = FitTrajectory()
        label, _ = traj.observe(0.1)
        assert label == TRAJECTORY_WARMUP
        traj.observe(0.2)
        label, rate = traj.observe(0.3)
        assert label == TRAJECTORY_CONVERGING
        assert rate == pytest.approx(1.0)

    def test_stalled_on_flat_series(self):
        traj = FitTrajectory(window=3, stall_tol=1e-6)
        for _ in range(5):
            label, _ = traj.observe(0.5)
        assert label == TRAJECTORY_STALLED

    def test_swamped_requires_congruence(self):
        flat = FitTrajectory(window=3, stall_tol=1e-6)
        for _ in range(5):
            label, _ = flat.observe(0.5, congruence=0.1)
        assert label == TRAJECTORY_STALLED
        swamp = FitTrajectory(window=3, stall_tol=1e-6)
        for _ in range(5):
            label, _ = swamp.observe(0.5, congruence=0.99)
        assert label == TRAJECTORY_SWAMPED

    def test_swamped_on_slow_crawl(self):
        # Fit still rising, but with decay ratio ~0.99 and degenerate
        # components: a swamp, not honest convergence.
        traj = FitTrajectory(window=5, stall_tol=1e-9, swamp_rate=0.95)
        fit, step = 0.5, 1e-3
        label = None
        for _ in range(8):
            fit += step
            step *= 0.99
            label, _ = traj.observe(fit, congruence=0.99)
        assert label == TRAJECTORY_SWAMPED

    def test_reset(self):
        traj = FitTrajectory()
        for _ in range(4):
            traj.observe(0.5)
        traj.reset()
        assert traj.label == TRAJECTORY_WARMUP
        assert traj.rate is None


class TestHealthCollector:
    def test_observe_cycle(self):
        hc = HealthCollector()
        hc.start_run(n_modes=2, rank=2)
        hc.begin_iteration(0)
        H = np.diag([2.0, 1.0])
        U0, U1 = np.eye(3)[:, :2], np.eye(4)[:, :2]
        hc.observe_mode(0, H, U0, U0)
        hc.observe_mode(1, H, U1, 2.0 * U1)
        reading = hc.observe_iteration(
            0, grams=[gram(U0), gram(U1)], fit=0.5
        )
        assert reading.condition_numbers == [pytest.approx(2.0)] * 2
        assert reading.factor_deltas[0] == 0.0
        assert reading.factor_deltas[1] == pytest.approx(1.0)
        assert reading.worst_mode in (0, 1)
        assert hc.has_data

    def test_record_fallback_sites(self):
        hc = HealthCollector()
        hc.start_run(n_modes=2)
        hc.begin_iteration(3)
        hc.record_fallback(1, mode=1, iteration=3)
        assert hc.total_pinv_fallbacks == 1
        assert hc.fallback_sites == [(3, 1)]
        reading = hc.observe_iteration(3, fit=0.1)
        assert reading.pinv_fallbacks == 1

    def test_reset(self):
        hc = HealthCollector()
        hc.start_run(n_modes=1)
        hc.observe_iteration(0, fit=0.1)
        hc.reset()
        assert not hc.has_data
        assert hc.total_pinv_fallbacks == 0


class TestCpAlsHealth:
    @pytest.fixture(scope="class")
    def planted(self):
        shape = (9, 8, 7)
        return lowrank_tensor(shape, rank=2, nnz=int(np.prod(shape)),
                              random_state=5)

    def test_off_by_default(self, planted):
        res = repro.cp_als(planted.tensor, rank=2, n_iter_max=3,
                           strategy="bdt", random_state=0)
        assert res.health_readings is None

    def test_collecting_populates_readings(self, planted):
        with health.collecting() as hc:
            res = repro.cp_als(planted.tensor, rank=2, n_iter_max=5,
                               tol=0.0, strategy="bdt", random_state=0)
        assert res.health_readings is not None
        assert len(res.health_readings) == 5
        assert len(hc.readings) == 5
        r = hc.readings[-1]
        assert len(r.condition_numbers) == planted.tensor.ndim
        assert all(c >= 1.0 for c in r.condition_numbers)
        assert all(np.isfinite(d) for d in r.factor_deltas)
        assert 0.0 <= r.congruence <= 1.0
        assert r.trajectory in (TRAJECTORY_CONVERGING, TRAJECTORY_STALLED,
                                TRAJECTORY_SWAMPED)
        assert [x.iteration for x in hc.readings] == list(range(5))

    def test_factors_bitwise_identical_with_telemetry(self, planted):
        """Health collection must not perturb the numeric path at all."""
        kwargs = dict(rank=2, n_iter_max=6, tol=0.0, strategy="bdt",
                      random_state=42)
        off = repro.cp_als(planted.tensor, **kwargs)
        with health.collecting():
            on = repro.cp_als(planted.tensor, **kwargs)
        assert (off.ktensor.weights == on.ktensor.weights).all()
        for a, b in zip(off.ktensor.factors, on.ktensor.factors):
            assert (a == b).all()
        assert off.fit == on.fit

    def test_scoped_run_context_isolates_collector(self, planted):
        from repro.obs import runctx

        before = len(health._collector.readings)
        ctx = runctx.RunContext.scoped(health=True)
        with runctx.using(ctx):
            repro.cp_als(planted.tensor, rank=2, n_iter_max=3,
                         strategy="bdt", random_state=0)
        assert ctx.health.has_data
        # Nothing leaked into the process-global collector.
        assert len(health._collector.readings) == before

    def test_events_carry_health_fields(self, planted):
        with health.collecting(), obs_events.logging_events() as log:
            repro.cp_als(planted.tensor, rank=2, n_iter_max=3, tol=0.0,
                         strategy="bdt", random_state=0)
        iterations = [e for e in log.tail() if e["kind"] == "iteration"]
        assert iterations
        assert "health_congruence" in iterations[-1]
        assert "health_trajectory" in iterations[-1]
        assert "health_max_condition" in iterations[-1]


class TestEarlyStopCallback:
    def test_truthy_callback_return_stops(self):
        rng = np.random.default_rng(2)
        t = random_coo(rng, (8, 7, 6), 200)
        seen = []

        def stop_at_two(iteration, fit, model):
            seen.append(iteration)
            return iteration >= 2

        res = repro.cp_als(t, rank=2, n_iter_max=20, tol=0.0,
                           strategy="bdt", random_state=0,
                           callback=stop_at_two)
        assert seen == [0, 1, 2]
        assert res.n_iterations == 3


class TestHealthArtifact:
    def _readings(self, tensor):
        with health.collecting() as hc:
            repro.cp_als(tensor, rank=2, n_iter_max=4, tol=0.0,
                         strategy="bdt", random_state=0)
        return list(hc.readings)

    def test_round_trip_validates_and_loads(self, tmp_path):
        rng = np.random.default_rng(3)
        t = random_coo(rng, (7, 6, 5), 150)
        readings = self._readings(t)
        path = write_health(str(tmp_path), readings, run_id="run-x",
                            rank=2, strategy="bdt")
        with open(path) as fh:
            doc = json.load(fh)
        assert validate_health_artifact(doc) == []
        assert doc["run_id"] == "run-x"
        assert doc["n_iterations"] == len(readings)
        arts = TraceArtifacts(str(tmp_path))
        assert arts.health() == doc

    def test_validate_catches_problems(self):
        doc = health_artifact([], run_id="r")
        doc["schema"] = "bogus/v9"
        assert any("schema" in e for e in validate_health_artifact(doc))
        doc = health_artifact(
            [dict(iteration=0, condition_numbers=[2.0],
                  truncated_eigenvalues=[0], factor_deltas=[0.1],
                  congruence=0.5, congruence_pair=None, pinv_fallbacks=0,
                  fit=0.5, fit_delta=None, trajectory="warmup",
                  convergence_rate=None)]
        )
        doc["total_pinv_fallbacks"] = 7
        assert any("total_pinv_fallbacks" in e
                   for e in validate_health_artifact(doc))
        bad = health_artifact(
            [dict(iteration=0, condition_numbers=[0.5],
                  truncated_eigenvalues=[0], factor_deltas=[0.1],
                  congruence=1.7, congruence_pair=None, pinv_fallbacks=0,
                  fit=0.5, fit_delta=None, trajectory="sideways",
                  convergence_rate=None)]
        )
        errors = validate_health_artifact(bad)
        assert any("condition number" in e for e in errors)
        assert any("congruence" in e for e in errors)
        assert any("trajectory" in e for e in errors)

    def test_artifacts_loader_skips_wrong_schema(self, tmp_path):
        with open(tmp_path / "health.json", "w") as fh:
            json.dump({"schema": "not-health/v1"}, fh)
        arts = TraceArtifacts(str(tmp_path))
        assert arts.health() is None
        assert any(name == "health.json" for name, _ in arts.skipped)

    def test_pre_health_trace_dir_is_none(self, tmp_path):
        arts = TraceArtifacts(str(tmp_path))
        assert arts.health() is None
        assert arts.skipped == []

    def test_write_refuses_invalid(self, tmp_path):
        bad = [dict(iteration=0, condition_numbers=[2.0],
                    truncated_eigenvalues=[0], factor_deltas=[0.1],
                    congruence=0.5, congruence_pair=None, pinv_fallbacks=0,
                    fit=0.5, fit_delta=None, trajectory="sideways",
                    convergence_rate=None)]
        with pytest.raises(ValueError, match="invalid health artifact"):
            write_health(str(tmp_path), bad)

    def test_format_health_renders(self):
        rng = np.random.default_rng(4)
        t = random_coo(rng, (7, 6, 5), 150)
        doc = health_artifact(self._readings(t), rank=2, strategy="bdt")
        text = health.format_health(doc)
        assert "trajectory" in text
        assert "pinv fallbacks" in text


class TestServeReplay:
    def test_health_gauges_from_trace_dir(self, tmp_path):
        from repro.obs.metrics import registry
        from repro.obs.serve import load_trace_dir, render_openmetrics

        rng = np.random.default_rng(6)
        t = random_coo(rng, (7, 6, 5), 150)
        with health.collecting() as hc:
            repro.cp_als(t, rank=2, n_iter_max=4, tol=0.0,
                         strategy="bdt", random_state=0)
        write_health(str(tmp_path), hc.readings, run_id="r")
        registry.reset()
        loaded = load_trace_dir(str(tmp_path))
        assert loaded["gauges"] >= 5
        text = render_openmetrics()
        assert "repro_health_max_condition_number" in text
        assert "repro_health_congruence" in text
        assert "repro_health_trajectory_code" in text
        assert "repro_health_total_pinv_fallbacks" in text
        registry.reset()


class TestWatchdogConditionBand:
    def _cost(self):
        from repro.core.strategy import resolve_strategy
        from repro.core.symbolic import SymbolicTree
        from repro.model.cost import cost_from_symbolic

        rng = np.random.default_rng(7)
        t = random_coo(rng, (6, 5, 4), 60)
        tree = SymbolicTree(t, resolve_strategy("bdt", t.ndim))
        return cost_from_symbolic(tree, 2)

    def _reading(self, max_cond):
        from repro.obs.health import HealthReading

        return HealthReading(
            iteration=0, condition_numbers=[max_cond, 2.0],
            truncated_eigenvalues=[0, 0], factor_deltas=[0.1, 0.1],
            congruence=0.2, congruence_pair=(0, 1), pinv_fallbacks=0,
            fit=0.5, fit_delta=None, trajectory="converging",
            convergence_rate=None,
        )

    def test_fires_above_band_and_blames_mode(self):
        from repro.obs.watchdog import DriftWatchdog, ModelDriftWarning
        from repro.perf.counters import Counters

        dog = DriftWatchdog(self._cost(), work_band=(0.0, float("inf")),
                            min_predicted_seconds=float("inf"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reading = dog.observe(0, Counters(), 0.01,
                                  health=self._reading(1e11))
        assert "condition" in reading.fired
        assert reading.condition_margin == pytest.approx(1e11 * PINV_RCOND)
        fired = [w for w in caught
                 if issubclass(w.category, ModelDriftWarning)]
        assert fired and fired[0].message.mode == 0
        assert "worst mode 0" in str(fired[0].message)

    def test_quiet_inside_band(self):
        from repro.obs.watchdog import DriftWatchdog
        from repro.perf.counters import Counters

        dog = DriftWatchdog(self._cost(), work_band=(0.0, float("inf")),
                            min_predicted_seconds=float("inf"))
        reading = dog.observe(0, Counters(), 0.01,
                              health=self._reading(100.0))
        assert reading.fired == []
        assert reading.condition_margin == pytest.approx(100.0 * PINV_RCOND)

    def test_singular_clamps_to_one(self):
        from repro.obs.watchdog import DriftWatchdog
        from repro.perf.counters import Counters

        dog = DriftWatchdog(self._cost(), work_band=(0.0, float("inf")),
                            min_predicted_seconds=float("inf"), warn=False)
        reading = dog.observe(0, Counters(), 0.01,
                              health=self._reading(float("inf")))
        assert reading.condition_margin == 1.0
        assert "condition" in reading.fired


class TestDashboardPanel:
    def test_health_section_renders(self):
        from repro.obs.dashboard import render_dashboard

        rng = np.random.default_rng(8)
        t = random_coo(rng, (7, 6, 5), 150)
        with health.collecting() as hc:
            repro.cp_als(t, rank=2, n_iter_max=4, tol=0.0,
                         strategy="bdt", random_state=0)
        doc = health_artifact(hc.readings, run_id="r", rank=2,
                              strategy="bdt")
        page = render_dashboard(health=doc)
        assert "Numerical health" in page
        assert "trajectory" in page
        assert "<svg" in page
