"""Property-based tests over *random* memoization trees.

The named generators cover structured trees; these tests draw arbitrary
recursive partitions of the mode set (any fan-out, any grouping, any mode
permutation) and assert the engine's core guarantees hold for every one:
agreement with the dense reference, schedule work bounds, and cost-model
equality.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import strategy as S
from repro.core.engine import MemoizedMttkrp
from repro.core.symbolic import SymbolicTree
from repro.model.cost import iteration_flops_words, simulate_peak_value_bytes
from repro.perf import counting

from .helpers import dense_mttkrp, random_coo, random_factors


def random_tree_spec(modes, rng) -> S.NestedSpec:
    """A uniformly-random recursive partition of ``modes``."""
    modes = [int(m) for m in modes]
    if len(modes) == 1:
        return modes[0]
    n_groups = int(rng.integers(2, len(modes) + 1))
    rng.shuffle(modes)
    # Random composition of len(modes) into n_groups positive parts.
    cuts = sorted(rng.choice(
        np.arange(1, len(modes)), size=n_groups - 1, replace=False
    ))
    groups = np.split(np.array(modes), cuts)
    return tuple(
        random_tree_spec([int(x) for x in g], rng) for g in groups
    )


@st.composite
def tree_and_tensor(draw):
    order = draw(st.integers(3, 6))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    spec = random_tree_spec(range(order), rng)
    strategy = S.from_nested(spec, name="random")
    shape = tuple(int(d) for d in rng.integers(3, 6, size=order))
    tensor = random_coo(rng, shape, int(rng.integers(5, 60)))
    return strategy, tensor, rng


class TestRandomTrees:
    @given(tree_and_tensor())
    @settings(max_examples=40, deadline=None)
    def test_engine_matches_dense(self, data):
        strategy, tensor, rng = data
        factors = random_factors(rng, tensor.shape, 3)
        engine = MemoizedMttkrp(tensor, strategy, factors)
        dense = tensor.to_dense()
        for mode in range(tensor.ndim):
            np.testing.assert_allclose(
                engine.mttkrp(mode),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-9, atol=1e-9,
            )

    @given(tree_and_tensor())
    @settings(max_examples=30, deadline=None)
    def test_each_node_built_once_per_iteration(self, data):
        strategy, tensor, rng = data
        factors = random_factors(rng, tensor.shape, 2)
        engine = MemoizedMttkrp(tensor, strategy, factors)
        for _ in range(2):
            with counting() as c:
                for n in engine.mode_order:
                    engine.mttkrp(n)
                    engine.update_factor(
                        n, rng.standard_normal((tensor.shape[n], 2))
                    )
        assert c.node_builds == len(strategy.nodes) - 1

    @given(tree_and_tensor())
    @settings(max_examples=30, deadline=None)
    def test_model_matches_counters(self, data):
        strategy, tensor, rng = data
        factors = random_factors(rng, tensor.shape, 2)
        sym = SymbolicTree(tensor, strategy)
        engine = MemoizedMttkrp(tensor, strategy, factors, symbolic=sym)
        for _ in range(2):
            with counting() as c:
                for n in engine.mode_order:
                    engine.mttkrp(n)
                    engine.update_factor(
                        n, rng.standard_normal((tensor.shape[n], 2))
                    )
        flops, words = iteration_flops_words(strategy, sym.node_nnz(), 2)
        assert c.flops == flops
        assert c.words == words

    @given(tree_and_tensor())
    @settings(max_examples=30, deadline=None)
    def test_peak_memory_simulation_exact(self, data):
        strategy, tensor, rng = data
        factors = random_factors(rng, tensor.shape, 2)
        sym = SymbolicTree(tensor, strategy)
        engine = MemoizedMttkrp(tensor, strategy, factors, symbolic=sym)
        peak = 0
        for _ in range(2):
            for n in engine.mode_order:
                engine.mttkrp(n)
                peak = max(peak, engine.live_value_bytes())
                engine.update_factor(
                    n, rng.standard_normal((tensor.shape[n], 2))
                )
        assert peak == simulate_peak_value_bytes(strategy, sym.node_nnz(), 2)

    @given(tree_and_tensor())
    @settings(max_examples=30, deadline=None)
    def test_live_nodes_bounded_by_depth(self, data):
        strategy, tensor, rng = data
        factors = random_factors(rng, tensor.shape, 2)
        engine = MemoizedMttkrp(tensor, strategy, factors)
        for _ in range(2):
            for n in engine.mode_order:
                engine.mttkrp(n)
                assert len(engine.cached_node_ids()) <= strategy.depth()
                engine.update_factor(
                    n, rng.standard_normal((tensor.shape[n], 2))
                )

    @given(tree_and_tensor())
    @settings(max_examples=25, deadline=None)
    def test_mttkrp_all_agrees(self, data):
        strategy, tensor, rng = data
        factors = random_factors(rng, tensor.shape, 2)
        engine = MemoizedMttkrp(tensor, strategy, factors)
        all_out = engine.mttkrp_all()
        dense = tensor.to_dense()
        for mode in range(tensor.ndim):
            np.testing.assert_allclose(
                all_out[mode],
                dense_mttkrp(dense, factors, mode),
                rtol=1e-9, atol=1e-9,
            )
