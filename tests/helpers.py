"""Shared test helpers: dense reference implementations.

The references here are deliberately naive (dense, loop-based) and
independent of the library's sparse kernels, so agreement tests are
meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.core.coo import CooTensor


def dense_mttkrp(dense: np.ndarray, factors, mode: int) -> np.ndarray:
    """Reference MTTKRP on a dense array via successive tensordots."""
    ndim = dense.ndim
    rank = factors[0].shape[1]
    out = np.zeros((dense.shape[mode], rank))
    for r in range(rank):
        t = dense
        # Contract every other mode with its factor column; contracting the
        # highest mode first keeps axis numbering stable.
        for m in sorted((m for m in range(ndim) if m != mode), reverse=True):
            t = np.tensordot(t, factors[m][:, r], axes=([m], [0]))
        out[:, r] = t
    return out


def random_coo(rng, shape, nnz) -> CooTensor:
    """Small random tensor with possibly duplicate coordinate draws."""
    idx = np.column_stack(
        [rng.integers(0, s, size=nnz) for s in shape]
    )
    vals = rng.standard_normal(nnz)
    return CooTensor(idx, vals, shape)


def random_factors(rng, shape, rank):
    return [rng.standard_normal((s, rank)) for s in shape]
