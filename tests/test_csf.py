"""Tests for the CSF format (repro.formats.csf)."""

import numpy as np
import pytest

from repro.core.coo import CooTensor
from repro.formats.csf import CsfTensor, default_mode_order

from .helpers import dense_mttkrp, random_coo, random_factors


class TestConstruction:
    def test_node_counts_monotone(self):
        rng = np.random.default_rng(0)
        t = random_coo(rng, (5, 6, 7), 60)
        csf = CsfTensor(t, (0, 1, 2))
        counts = csf.node_counts()
        assert counts[-1] == t.nnz
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_root_count_is_used_slices(self):
        rng = np.random.default_rng(1)
        t = random_coo(rng, (5, 6, 7), 40)
        csf = CsfTensor(t, (0, 1, 2))
        assert csf.node_counts()[0] == np.unique(t.idx[:, 0]).size

    def test_fiber_compression(self):
        # Many nonzeros share (i, j) prefixes -> level-1 nodes << nnz.
        idx = np.array([[0, 0, k] for k in range(10)] + [[1, 1, k] for k in range(10)])
        t = CooTensor(idx, np.ones(20), (2, 2, 10))
        csf = CsfTensor(t, (0, 1, 2))
        assert csf.node_counts() == [2, 2, 20]

    def test_ptrs_partition_children(self):
        rng = np.random.default_rng(2)
        t = random_coo(rng, (4, 5, 6, 3), 50)
        csf = CsfTensor(t, (0, 1, 2, 3))
        counts = csf.node_counts()
        for l, ptr in enumerate(csf.ptrs):
            assert ptr[0] == 0
            assert ptr[-1] == counts[l + 1]
            assert (np.diff(ptr) >= 1).all()  # every node has >= 1 child

    def test_invalid_mode_order(self):
        t = CooTensor.empty((2, 2))
        with pytest.raises(ValueError):
            CsfTensor(t, (0, 0))

    def test_empty_tensor(self):
        t = CooTensor.empty((3, 4, 5))
        csf = CsfTensor(t, (0, 1, 2))
        assert csf.nnz == 0
        out = csf.mttkrp_root([np.ones((s, 2)) for s in t.shape])
        np.testing.assert_array_equal(out, 0.0)

    def test_nbytes_positive(self):
        rng = np.random.default_rng(3)
        t = random_coo(rng, (4, 4, 4), 20)
        assert CsfTensor(t, (0, 1, 2)).nbytes() > 0


class TestMttkrp:
    @pytest.mark.parametrize("order", [2, 3, 4, 5])
    def test_root_mode_matches_dense(self, order):
        rng = np.random.default_rng(order)
        shape = tuple(rng.integers(3, 7, size=order))
        t = random_coo(rng, shape, 50)
        factors = random_factors(rng, shape, 4)
        dense = t.to_dense()
        for mode in range(order):
            csf = CsfTensor(t, default_mode_order(mode, order))
            np.testing.assert_allclose(
                csf.mttkrp_root(factors),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-10, atol=1e-10,
            )

    def test_arbitrary_mode_order(self):
        rng = np.random.default_rng(9)
        t = random_coo(rng, (4, 5, 6, 3), 40)
        factors = random_factors(rng, t.shape, 3)
        csf = CsfTensor(t, (2, 0, 3, 1))  # root mode 2, scrambled rest
        np.testing.assert_allclose(
            csf.mttkrp_root(factors),
            dense_mttkrp(t.to_dense(), factors, 2),
            rtol=1e-10, atol=1e-10,
        )

    def test_single_nonzero(self):
        t = CooTensor([[1, 2, 3]], [5.0], (3, 4, 5))
        factors = random_factors(np.random.default_rng(10), t.shape, 2)
        csf = CsfTensor(t, (0, 1, 2))
        expected = dense_mttkrp(t.to_dense(), factors, 0)
        np.testing.assert_allclose(csf.mttkrp_root(factors), expected)


def test_default_mode_order():
    assert default_mode_order(2, 4) == (2, 0, 1, 3)
    assert default_mode_order(0, 3) == (0, 1, 2)


class TestMttkrpLevel:
    """CSF-1: MTTKRP for arbitrary modes from a single tree."""

    @pytest.mark.parametrize("order", [2, 3, 4, 5])
    def test_every_level_matches_dense(self, order):
        rng = np.random.default_rng(30 + order)
        shape = tuple(rng.integers(3, 7, size=order))
        t = random_coo(rng, shape, 60)
        factors = random_factors(rng, shape, 3)
        csf = CsfTensor(t, tuple(range(order)))
        dense = t.to_dense()
        for level in range(order):
            target_mode = csf.mode_order[level]
            np.testing.assert_allclose(
                csf.mttkrp_level(factors, level),
                dense_mttkrp(dense, factors, target_mode),
                rtol=1e-10, atol=1e-10,
            )

    def test_scrambled_mode_order(self):
        rng = np.random.default_rng(40)
        t = random_coo(rng, (4, 6, 5, 3), 50)
        factors = random_factors(rng, t.shape, 2)
        csf = CsfTensor(t, (3, 1, 0, 2))
        dense = t.to_dense()
        for level in range(4):
            np.testing.assert_allclose(
                csf.mttkrp_level(factors, level),
                dense_mttkrp(dense, factors, csf.mode_order[level]),
                rtol=1e-10, atol=1e-10,
            )

    def test_level_zero_is_root_algorithm(self):
        rng = np.random.default_rng(41)
        t = random_coo(rng, (5, 5, 5), 30)
        factors = random_factors(rng, t.shape, 2)
        csf = CsfTensor(t, (0, 1, 2))
        np.testing.assert_allclose(
            csf.mttkrp_level(factors, 0), csf.mttkrp_root(factors)
        )

    def test_invalid_level(self):
        t = CooTensor([[0, 0]], [1.0], (2, 2))
        csf = CsfTensor(t, (0, 1))
        with pytest.raises(ValueError):
            csf.mttkrp_level([np.ones((2, 1))] * 2, 2)

    def test_empty_tensor_any_level(self):
        csf = CsfTensor(CooTensor.empty((3, 4, 5)), (0, 1, 2))
        out = csf.mttkrp_level([np.ones((s, 2)) for s in (3, 4, 5)], 1)
        np.testing.assert_array_equal(out, 0.0)


class TestSplattOne:
    def test_backend_matches_dense(self):
        from repro.baselines import SplattOneMttkrp

        rng = np.random.default_rng(50)
        t = random_coo(rng, (6, 4, 7, 5), 60)
        factors = random_factors(rng, t.shape, 3)
        backend = SplattOneMttkrp(t)
        backend.set_factors(factors)
        dense = t.to_dense()
        for mode in range(4):
            np.testing.assert_allclose(
                backend.mttkrp(mode),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-10, atol=1e-10,
            )

    def test_storage_mode_order_ascending(self):
        from repro.baselines import storage_mode_order

        t = CooTensor.empty((50, 5, 20))
        assert storage_mode_order(t) == (1, 2, 0)

    def test_single_tree_uses_less_index_memory(self):
        from repro.baselines import SplattMttkrp, SplattOneMttkrp

        rng = np.random.default_rng(51)
        t = random_coo(rng, (40, 40, 40, 40), 400)
        one = SplattOneMttkrp(t)
        alln = SplattMttkrp(t, eager=True)
        assert one.index_nbytes() < alln.index_nbytes()

    def test_registry_name(self):
        from repro.baselines import make_backend

        t = CooTensor.empty((2, 2, 2))
        assert make_backend("splatt1", t).name == "splatt1"
