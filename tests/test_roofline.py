"""Tests for roofline calibration (repro.model.calibrate) and the
achieved-throughput attribution layer (repro.obs.roofline)."""

import json
import os

import pytest

from repro.model.calibrate import (calibrate_roofline, default_machine_path,
                                   load_roofline, machine_artifact,
                                   measure_roofline, reset_calibration,
                                   validate_machine_artifact)
from repro.model.cost import (DEFAULT_EXECUTION, ExecutionParams,
                              FALLBACK_BANDWIDTH_WORKERS, coo_mode_work,
                              iteration_io_lower_bound_bytes,
                              resolve_bandwidth_workers)
from repro.obs.roofline import (ConfigThroughput, publish_roofline_gauges,
                                report_from_trace_dir, report_line,
                                roofline_report, throughput_from_attribution,
                                throughput_from_spans, tree_node_terms)
from repro.obs.trace import SpanRecord

QUICK = dict(n_elements=50_000, repeats=1, matmul_n=64, max_threads=2)


@pytest.fixture
def machine_path(tmp_path, monkeypatch):
    """Isolate every test from the user's cached calibration artifact."""
    path = str(tmp_path / "machine.json")
    monkeypatch.setenv("REPRO_MACHINE", path)
    reset_calibration()
    yield path
    reset_calibration()


@pytest.fixture(scope="module")
def quick_roofline():
    return measure_roofline(quick=True, **QUICK)


class TestMeasureRoofline:
    def test_structure(self, quick_roofline):
        r = quick_roofline
        threads = [p.threads for p in r.bandwidth_points]
        assert threads[0] == 1 and threads == sorted(set(threads))
        assert all(p.triad_gbs > 0 and p.gather_gbs > 0
                   for p in r.bandwidth_points)
        assert r.peak_bandwidth_gbs > 0 and r.peak_gflops > 0
        assert r.saturation_workers in threads
        assert r.quick

    def test_round_trip(self, quick_roofline):
        again = type(quick_roofline).from_dict(quick_roofline.to_dict())
        assert again.to_dict() == quick_roofline.to_dict()

    def test_summary_renders(self, quick_roofline):
        text = quick_roofline.summary()
        assert "saturates" in text and "GB/s" in text


class TestMachineArtifact:
    def test_calibrate_writes_and_validates(self, machine_path):
        r = calibrate_roofline(quick=True)
        assert os.path.exists(machine_path)
        with open(machine_path) as fh:
            validate_machine_artifact(json.load(fh))
        assert default_machine_path() == machine_path
        # load-only path reads the same ceilings back
        loaded = load_roofline()
        assert loaded is not None
        assert loaded.to_dict() == r.to_dict()

    def test_second_call_loads_without_measuring(self, machine_path):
        r1 = calibrate_roofline(quick=True)
        r2 = calibrate_roofline(quick=True)
        assert r2 is r1  # in-process memo
        reset_calibration()
        r3 = calibrate_roofline(quick=True)  # disk hit, no re-measure
        assert r3.to_dict() == r1.to_dict()

    def test_load_missing_or_corrupt_is_none(self, machine_path):
        assert load_roofline() is None
        with open(machine_path, "w") as fh:
            fh.write("{not json")
        assert load_roofline() is None

    def test_validator_rejects_structural_damage(self, quick_roofline):
        good = machine_artifact(quick_roofline)
        validate_machine_artifact(good)
        bad = json.loads(json.dumps(good))
        bad["result"]["schema"] = "repro-machine/v0"
        with pytest.raises(ValueError):
            validate_machine_artifact(bad)
        bad = json.loads(json.dumps(good))
        bad["result"]["roofline"]["bandwidth_points"].reverse()
        if len(bad["result"]["roofline"]["bandwidth_points"]) > 1:
            with pytest.raises(ValueError):
                validate_machine_artifact(bad)
        bad = json.loads(json.dumps(good))
        bad["result"]["roofline"]["saturation_workers"] = 99
        with pytest.raises(ValueError):
            validate_machine_artifact(bad)
        bad = json.loads(json.dumps(good))
        bad["result"]["roofline"]["peak_bandwidth_gbs"] = 0.0
        with pytest.raises(ValueError):
            validate_machine_artifact(bad)


class TestBandwidthWorkers:
    def test_explicit_wins(self, machine_path):
        calibrate_roofline(quick=True)
        value, source = resolve_bandwidth_workers(
            ExecutionParams(bandwidth_workers=3)
        )
        assert (value, source) == (3, "explicit")

    def test_default_without_artifact(self, machine_path):
        value, source = resolve_bandwidth_workers(DEFAULT_EXECUTION)
        assert (value, source) == (FALLBACK_BANDWIDTH_WORKERS, "default")

    def test_calibrated_saturation_point(self, machine_path):
        r = calibrate_roofline(quick=True)
        value, source = resolve_bandwidth_workers(DEFAULT_EXECUTION)
        assert source == "calibrated"
        assert value == r.saturation_workers


class TestCooModeWork:
    SHAPE = (30, 40, 50)

    def test_alto_trades_index_words_for_decode_flops(self):
        f_np, w_np = coo_mode_work(self.SHAPE, 1000, 8, 0, "numpy")
        f_alto, w_alto = coo_mode_work(self.SHAPE, 1000, 8, 0, "alto")
        assert f_alto > f_np      # decode flops
        assert w_alto < w_np      # one packed word vs ndim index words

    def test_io_lower_bound_below_model_traffic(self):
        words = sum(
            coo_mode_work(self.SHAPE, 1000, 8, m, "numpy")[1]
            for m in range(len(self.SHAPE))
        )
        lower = iteration_io_lower_bound_bytes(self.SHAPE, 1000, 8)
        assert 0 < lower < words * 8


def _span(kind, seconds, **attrs):
    return SpanRecord(id=1, parent=None, kind=kind, t0=0.0, tid=0,
                      attrs=attrs, t1=seconds)


class TestThroughputJoins:
    def test_tree_join_prices_node_rebuilds(self):
        node_terms = {7: {"flops": 4000.0, "words": 1000.0}}
        configs = throughput_from_spans(
            [_span("node_rebuild", 0.001, node=7)] * 2,
            node_terms=node_terms,
        )
        (c,) = configs
        assert c.config == "thread/tree"
        assert c.spans == 2
        assert c.flops == 8000.0
        assert c.bytes_moved == 2 * 1000.0 * 8
        assert c.gflops == pytest.approx(8000.0 / 0.002 / 1e9)

    def test_kernel_joins_by_backend(self):
        spans = [
            _span("kernel", 0.001, backend="process-alto", mode=0, nnz=500),
            _span("kernel", 0.001, backend="process-numpy", mode=0, nnz=500),
            _span("kernel", 0.001, backend="alto-coo", mode=1, nnz=1000),
            _span("kernel", 0.001, backend="parallel-coo", mode=1, nnz=1000),
            _span("kernel", 0.001, backend="mystery", mode=1, nnz=1000),
        ]
        configs = throughput_from_spans(spans, shape=(30, 40, 50), rank=8)
        names = {c.config for c in configs}
        assert names == {"process/alto", "process/numpy",
                         "thread/alto-coo", "thread/parallel-coo"}

    def test_join_inputs_missing_skips(self):
        spans = [_span("kernel", 0.001, backend="process-alto",
                       mode=0, nnz=500)]
        assert throughput_from_spans(spans) == []       # no shape/rank
        assert throughput_from_spans(
            [_span("node_rebuild", 0.001, node=3)]
        ) == []                                          # no node terms

    def test_attribution_join(self):
        doc = {"strategy": "bdt", "modes": [
            {"mode": 0, "seconds": 0.5, "measured_flops": 1e9,
             "measured_words": 1e8},
            {"mode": 1, "seconds": 0.5, "measured_flops": 1e9,
             "measured_words": 1e8},
        ]}
        c = throughput_from_attribution(doc)
        assert c.config == "attr/bdt"
        assert c.gflops == pytest.approx(2.0)
        assert c.gbs == pytest.approx(2e8 * 8 / 1e9)
        assert throughput_from_attribution({"modes": []}) is None

    def test_tree_node_terms_excludes_scatter_and_root(self):
        from repro.core.strategy import balanced_binary
        from repro.core.symbolic import SymbolicTree
        from repro.synth.skewed import skewed_random_tensor

        t = skewed_random_tensor((20, 20, 20, 20), 500, 1.0, random_state=0)
        strategy = balanced_binary(4)
        terms = tree_node_terms(
            strategy, SymbolicTree(t, strategy).node_nnz(), 8
        )
        assert terms and all(v["words"] >= 0 for v in terms.values())


class TestRooflineReport:
    def test_uncalibrated_degrades_gracefully(self, machine_path):
        c = ConfigThroughput(config="thread/tree", spans=1, seconds=0.1,
                             flops=1e8, bytes_moved=1e8, source="spans+model")
        report = roofline_report([c])
        assert not report.calibrated
        assert c.bandwidth_fraction is None
        assert any("uncalibrated" in n for n in report.notes)
        assert "uncalibrated" in report_line(report)
        assert report.guidance() == []
        assert "thread/tree" in report.summary()

    def test_calibrated_fractions_and_guidance(self, quick_roofline):
        fast = ConfigThroughput(
            config="thread/tree", spans=1, seconds=1.0, flops=1e6,
            bytes_moved=0.8 * quick_roofline.peak_bandwidth_gbs * 1e9,
            source="spans+model",
        )
        slow = ConfigThroughput(
            config="process/alto", spans=1, seconds=1.0, flops=1e6,
            bytes_moved=0.1 * quick_roofline.peak_bandwidth_gbs * 1e9,
            source="spans+model",
        )
        report = roofline_report([fast, slow], quick_roofline, load=False)
        assert fast.bandwidth_fraction == pytest.approx(0.8)
        assert report.best() is fast
        saturated = [g for g in report.guidance() if "cannot help" in g]
        assert saturated and "thread/tree" in saturated[0]
        assert "80%" in report_line(report)
        doc = report.to_dict()
        assert doc["schema"] == "repro-roofline/v1"
        assert doc["calibrated"] and len(doc["configs"]) == 2

    def test_trace_dir_missing_artifacts(self, tmp_path, machine_path):
        report = report_from_trace_dir(str(tmp_path))
        assert not report.calibrated
        assert any("no trace.jsonl" in n for n in report.notes)
        assert "uncalibrated" in report_line(report)

    def test_trace_dir_prefers_snapshotted_machine(self, tmp_path,
                                                   quick_roofline,
                                                   machine_path):
        with open(tmp_path / "machine.json", "w") as fh:
            json.dump(machine_artifact(quick_roofline), fh)
        report = report_from_trace_dir(str(tmp_path))
        assert report.calibrated
        assert (report.roofline.peak_bandwidth_gbs
                == quick_roofline.peak_bandwidth_gbs)

    def test_gauges_render_as_openmetrics(self, quick_roofline):
        from repro.obs.metrics import registry
        from repro.obs.serve import render_openmetrics, validate_openmetrics

        c = ConfigThroughput(config="thread/alto-coo", spans=1, seconds=0.1,
                             flops=1e8, bytes_moved=1e8, source="spans+model")
        roofline_report([c], quick_roofline, load=False)
        publish_roofline_gauges(quick_roofline, [c])
        try:
            text = render_openmetrics()
            assert "repro_roofline_peak_bandwidth_gbs" in text
            assert "repro_roofline_saturation_workers" in text
            assert "repro_roofline_fraction_thread_alto_coo" in text
            assert validate_openmetrics(text) == []
        finally:
            registry.reset()


class TestPlanRooflineSection:
    @pytest.fixture(scope="class")
    def tensor(self):
        from repro.synth.skewed import skewed_random_tensor

        return skewed_random_tensor((40, 50, 30, 20), 3000, 1.1,
                                    random_state=0)

    def test_uncalibrated_execution_section(self, machine_path, tensor):
        from repro.obs.explain import explain_plan, validate_plan_artifact

        expl = explain_plan(tensor, rank=8, n_workers=2)
        validate_plan_artifact(expl.to_artifact())
        ex = expl.to_dict()["execution"]
        assert ex["bandwidth_workers"] == FALLBACK_BANDWIDTH_WORKERS
        assert ex["bandwidth_workers_source"] == "default"
        assert ex["roofline"] == {"calibrated": False}
        assert "uncalibrated" in expl.summary()

    def test_calibrated_execution_section(self, machine_path, tensor):
        from repro.obs.explain import explain_plan, validate_plan_artifact

        r = calibrate_roofline(quick=True)
        expl = explain_plan(tensor, rank=8, n_workers=2)
        validate_plan_artifact(expl.to_artifact())
        ex = expl.to_dict()["execution"]
        assert ex["bandwidth_workers_source"] == "calibrated"
        assert ex["bandwidth_workers"] == r.saturation_workers
        assert ex["roofline"]["calibrated"]
        summary = expl.summary()
        assert "roofline" in summary and "ceiling" in summary
        assert "of the bandwidth roofline" in summary


class TestRooflineCli:
    def test_quick_json(self, machine_path, capsys):
        from repro.cli import main

        assert main(["roofline", "--quick", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-roofline/v1"
        assert doc["calibrated"]
        assert os.path.exists(machine_path)

    def test_trace_dir_report(self, machine_path, tmp_path, capsys):
        from repro.cli import main

        assert main(["roofline", "--quick"]) == 0
        capsys.readouterr()
        assert main(["roofline", "--trace-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "machine artifact" in out
