"""Tests for closed-loop model fitting (repro.model.fit) and model I/O."""

import numpy as np
import pytest

from repro.core import strategy as S
from repro.core.kruskal import KruskalTensor
from repro.io.model import load_model, save_model
from repro.model.cost import MachineModel
from repro.model.fit import (WorkSample, collect_samples, fit_machine_model,
                             fitted_machine)
from repro.synth.skewed import skewed_random_tensor

from .helpers import random_factors


class TestFitMachineModel:
    def test_exact_recovery(self):
        """Noise-free samples recover the generating alpha/beta."""
        true = MachineModel(alpha_per_flop=3e-10, beta_per_word=7e-10)
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(6):
            f = int(rng.integers(10**6, 10**8))
            w = int(rng.integers(10**6, 10**8))
            samples.append(WorkSample(f, w, true.seconds(f, w)))
        fitted = fit_machine_model(samples)
        assert fitted.alpha_per_flop == pytest.approx(3e-10, rel=1e-6)
        assert fitted.beta_per_word == pytest.approx(7e-10, rel=1e-6)

    def test_noisy_recovery_close(self):
        true = MachineModel(alpha_per_flop=2e-10, beta_per_word=5e-10)
        rng = np.random.default_rng(1)
        samples = []
        for _ in range(20):
            f = int(rng.integers(10**7, 10**9))
            w = int(rng.integers(10**7, 10**9))
            t = true.seconds(f, w) * (1 + 0.05 * rng.standard_normal())
            samples.append(WorkSample(f, w, max(t, 0)))
        fitted = fit_machine_model(samples)
        assert fitted.alpha_per_flop == pytest.approx(2e-10, rel=0.3)
        assert fitted.beta_per_word == pytest.approx(5e-10, rel=0.3)

    def test_nonnegative_coefficients(self):
        # Adversarial samples that would push OLS negative.
        samples = [
            WorkSample(100, 100, 1.0),
            WorkSample(200, 100, 1.0),
        ]
        fitted = fit_machine_model(samples)
        assert fitted.alpha_per_flop >= 0
        assert fitted.beta_per_word >= 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_machine_model([])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            fit_machine_model([WorkSample(1, 1, -1.0)])

    def test_degenerate_zero_work(self):
        fitted = fit_machine_model([WorkSample(0, 0, 0.0)])
        assert fitted.alpha_per_flop > 0


class TestCollectSamples:
    @pytest.fixture(scope="class")
    def tensor(self):
        return skewed_random_tensor((60, 70, 50, 40), 4000, 1.0,
                                    random_state=0)

    def test_counts_and_times_populated(self, tensor):
        samples = collect_samples(
            tensor, [S.star(4), S.balanced_binary(4)], rank=4, repeats=1
        )
        assert len(samples) == 2
        for s in samples:
            assert s.flops > 0
            assert s.words > 0
            assert s.seconds > 0

    def test_star_has_more_flops(self, tensor):
        samples = collect_samples(
            tensor, [S.star(4), S.balanced_binary(4)], rank=4, repeats=1
        )
        by_label = {s.label: s for s in samples}
        assert by_label["star"].flops > by_label["bdt"].flops

    def test_fitted_machine_end_to_end(self, tensor):
        machine = fitted_machine(tensor, rank=4, repeats=1)
        assert machine.name == "fitted"
        # Sanity: per-flop cost between 1ps and 1ms.
        assert 1e-12 < machine.alpha_per_flop + machine.beta_per_word < 1e-3

    def test_fitted_machine_usable_by_planner(self, tensor):
        from repro.model.planner import plan

        machine = fitted_machine(tensor, rank=4, repeats=1)
        report = plan(tensor, 4, machine=machine)
        assert report.machine is machine
        assert report.best.feasible


class TestModelIO:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(2)
        model = KruskalTensor(
            rng.random(3), random_factors(rng, (5, 6, 7), 3)
        )
        path = tmp_path / "model.npz"
        save_model(model, path)
        back = load_model(path)
        np.testing.assert_allclose(back.weights, model.weights)
        for a, b in zip(back.factors, model.factors):
            np.testing.assert_allclose(a, b)

    def test_missing_weights_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, factor_0=np.ones((2, 1)))
        with pytest.raises(ValueError, match="weights"):
            load_model(path)

    def test_missing_factors_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, weights=np.ones(1))
        with pytest.raises(ValueError, match="factor"):
            load_model(path)

    def test_creates_directories(self, tmp_path):
        model = KruskalTensor(np.ones(1), [np.ones((2, 1)), np.ones((3, 1))])
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_model(model, path)
        assert load_model(path).shape == (2, 3)
