"""Tests for the dense multilinear-algebra substrate (repro.linalg)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coo import CooTensor
from repro.core.kruskal import KruskalTensor
from repro.linalg import (GramCache, column_norms, gram, hadamard_grams,
                          innerprod_from_mttkrp, khatri_rao, khatri_rao_rows,
                          normalize_columns, psd_pinv,
                          solve_normal_equations, sparse_kruskal_innerprod)

from .helpers import dense_mttkrp, random_coo, random_factors


class TestKhatriRao:
    def test_two_matrices_matches_kron_columns(self):
        rng = np.random.default_rng(0)
        A, B = rng.random((3, 2)), rng.random((4, 2))
        W = khatri_rao([A, B])
        assert W.shape == (12, 2)
        for r in range(2):
            np.testing.assert_allclose(W[:, r], np.kron(A[:, r], B[:, r]))

    def test_three_matrices_associative(self):
        rng = np.random.default_rng(1)
        mats = [rng.random((s, 3)) for s in (2, 3, 4)]
        direct = khatri_rao(mats)
        nested = khatri_rao([khatri_rao(mats[:2]), mats[2]])
        np.testing.assert_allclose(direct, nested)

    def test_reverse(self):
        rng = np.random.default_rng(2)
        mats = [rng.random((s, 2)) for s in (2, 3)]
        np.testing.assert_allclose(
            khatri_rao(mats, reverse=True), khatri_rao(mats[::-1])
        )

    def test_single_matrix_identity(self):
        A = np.random.default_rng(3).random((4, 2))
        np.testing.assert_allclose(khatri_rao([A]), A)

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            khatri_rao([])

    def test_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            khatri_rao([np.ones((2, 2)), np.ones((2, 3))])

    def test_row_major_ordering_matches_matricize(self):
        """khatri_rao ordering matches CooTensor.matricize columns."""
        rng = np.random.default_rng(4)
        t = random_coo(rng, (3, 4, 5), 20)
        factors = random_factors(rng, t.shape, 2)
        M_via_matricize = t.matricize(0) @ khatri_rao(factors[1:])
        np.testing.assert_allclose(
            M_via_matricize, dense_mttkrp(t.to_dense(), factors, 0),
            atol=1e-12,
        )


class TestKhatriRaoRows:
    def test_matches_full_product(self):
        rng = np.random.default_rng(5)
        A, B = rng.random((3, 2)), rng.random((4, 2))
        full = khatri_rao([A, B])
        rows_a = np.array([0, 2, 1])
        rows_b = np.array([1, 3, 0])
        sel = khatri_rao_rows([A, B], [rows_a, rows_b])
        np.testing.assert_allclose(sel, full[rows_a * 4 + rows_b])

    def test_input_not_mutated(self):
        A = np.ones((2, 2))
        B = np.full((2, 2), 2.0)
        khatri_rao_rows([A, B], [np.array([0]), np.array([0])])
        np.testing.assert_array_equal(A, 1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            khatri_rao_rows([np.ones((2, 2))], [])


class TestGram:
    def test_gram_symmetric(self):
        U = np.random.default_rng(6).random((5, 3))
        G = gram(U)
        np.testing.assert_allclose(G, G.T)
        np.testing.assert_allclose(G, U.T @ U, atol=1e-12)

    def test_hadamard_grams_skip(self):
        rng = np.random.default_rng(7)
        grams = [gram(rng.random((4, 2))) for _ in range(3)]
        out = hadamard_grams(grams, skip=1)
        np.testing.assert_allclose(out, grams[0] * grams[2])

    def test_hadamard_grams_all(self):
        rng = np.random.default_rng(8)
        grams = [gram(rng.random((4, 2))) for _ in range(3)]
        np.testing.assert_allclose(
            hadamard_grams(grams), grams[0] * grams[1] * grams[2]
        )

    def test_skip_only_matrix_gives_ones(self):
        out = hadamard_grams([np.full((2, 2), 7.0)], skip=0)
        np.testing.assert_allclose(out, 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            hadamard_grams([])

    def test_skip_out_of_range(self):
        with pytest.raises(ValueError):
            hadamard_grams([np.ones((2, 2))], skip=5)

    def test_gram_cache_update(self):
        rng = np.random.default_rng(9)
        factors = random_factors(rng, (3, 4, 5), 2)
        cache = GramCache(factors)
        newU = rng.random((4, 2))
        cache.update(1, newU)
        np.testing.assert_allclose(cache[1], gram(newU), atol=1e-12)
        expected = gram(factors[0]) * gram(newU)
        np.testing.assert_allclose(cache.combined(skip=2), expected, atol=1e-12)
        assert len(cache) == 3


class TestSolve:
    def test_well_conditioned(self):
        rng = np.random.default_rng(10)
        U_true = rng.random((6, 3))
        H = gram(rng.random((8, 3))) + np.eye(3)
        M = U_true @ H
        np.testing.assert_allclose(
            solve_normal_equations(M, H), U_true, atol=1e-8
        )

    def test_singular_falls_back_to_pinv(self):
        H = np.array([[1.0, 1.0], [1.0, 1.0]])  # rank 1
        M = np.array([[2.0, 2.0]])
        U = solve_normal_equations(M, H)
        # Minimum-norm solution of U H = M.
        np.testing.assert_allclose(U @ H, M, atol=1e-8)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_normal_equations(np.ones((2, 3)), np.ones((2, 2)))

    def test_psd_pinv_inverts_full_rank(self):
        rng = np.random.default_rng(11)
        H = gram(rng.random((10, 4))) + 0.1 * np.eye(4)
        np.testing.assert_allclose(psd_pinv(H) @ H, np.eye(4), atol=1e-8)

    def test_psd_pinv_zero_matrix(self):
        np.testing.assert_allclose(psd_pinv(np.zeros((3, 3))), 0.0)

    def test_psd_pinv_rank_deficient(self):
        # Rank-2 PSD with one exact-zero eigenvalue: the pinv must invert
        # the range and annihilate the null space.
        rng = np.random.default_rng(12)
        B = rng.standard_normal((5, 2))
        H = B @ B.T  # 5x5, rank 2
        P = psd_pinv(H)
        np.testing.assert_allclose(P @ H @ P, P, atol=1e-10)
        np.testing.assert_allclose(H @ P @ H, H, atol=1e-10)

    def test_psd_pinv_diagnosed_counts_truncations(self):
        from repro.linalg.solve import PINV_RCOND, psd_pinv_diagnosed

        H = np.diag([1.0, 1.0, 0.0])
        pinv, n_truncated = psd_pinv_diagnosed(H)
        assert n_truncated == 1
        np.testing.assert_allclose(pinv, np.diag([1.0, 1.0, 0.0]))
        # Eigenvalues just under the relative cutoff are truncated too.
        H = np.diag([1.0, 0.5 * PINV_RCOND, 0.1 * PINV_RCOND])
        _, n_truncated = psd_pinv_diagnosed(H)
        assert n_truncated == 2
        _, n_truncated = psd_pinv_diagnosed(np.eye(4))
        assert n_truncated == 0

    def test_fallback_records_perf_counters(self):
        from repro.perf import counters as perf

        H = np.array([[1.0, 1.0], [1.0, 1.0]])  # rank 1: Cholesky fails
        M = np.array([[2.0, 2.0]])
        with perf.counting() as c:
            solve_normal_equations(M, H)
        assert c.extra["pinv_fallbacks"] == 1
        assert c.extra["truncated_eigenvalues"] >= 1

    def test_cholesky_path_records_nothing(self):
        from repro.perf import counters as perf

        rng = np.random.default_rng(13)
        H = gram(rng.random((8, 3))) + np.eye(3)
        with perf.counting() as c:
            solve_normal_equations(rng.random((5, 3)), H)
        assert "pinv_fallbacks" not in c.extra

    def test_fallback_emits_structured_warning_event(self):
        from repro.obs import events as obs_events

        H = np.zeros((3, 3))
        H[0, 0] = 1.0
        M = np.ones((4, 3))
        with obs_events.logging_events() as log:
            solve_normal_equations(M, H)
        warnings_ = [e for e in log.tail() if e["kind"] == "warning"]
        assert len(warnings_) == 1
        event = warnings_[0]
        assert event["metric"] == "pinv_fallback"
        assert event["n_truncated"] == 2
        assert "pseudoinverse" in event["message"]

    def test_fallback_site_attribution(self):
        from repro.obs import health

        H = np.array([[1.0, 1.0], [1.0, 1.0]])
        M = np.array([[2.0, 2.0]])
        with health.collecting() as hc:
            health.set_site(4, 1)
            try:
                solve_normal_equations(M, H)
            finally:
                health.clear_site()
        assert hc.fallback_sites == [(4, 1)]
        assert hc.total_pinv_fallbacks == 1


class TestNorms:
    def test_column_norms_orders(self):
        U = np.array([[3.0, 1.0], [4.0, -2.0]])
        np.testing.assert_allclose(column_norms(U), [5.0, np.sqrt(5.0)])
        np.testing.assert_allclose(column_norms(U, 1), [7.0, 3.0])
        np.testing.assert_allclose(column_norms(U, "max"), [4.0, 2.0])

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            column_norms(np.ones((2, 2)), 3)

    def test_normalize_columns(self):
        U = np.array([[3.0, 0.0], [4.0, 0.0]])
        Un, norms = normalize_columns(U)
        np.testing.assert_allclose(norms, [5.0, 0.0])
        np.testing.assert_allclose(Un[:, 0], [0.6, 0.8])
        np.testing.assert_allclose(Un[:, 1], 0.0)  # zero column untouched

    @given(st.integers(1, 5), st.integers(1, 4), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_unit_norms(self, rows, cols, seed):
        U = np.random.default_rng(seed).standard_normal((rows, cols))
        Un, norms = normalize_columns(U)
        recomputed = column_norms(Un)
        for r in range(cols):
            if norms[r] > 1e-12:
                assert recomputed[r] == pytest.approx(1.0)


class TestInnerProd:
    def test_sparse_kruskal_matches_dense(self):
        rng = np.random.default_rng(12)
        t = random_coo(rng, (4, 5, 3), 20)
        factors = random_factors(rng, t.shape, 3)
        weights = rng.random(3)
        model = KruskalTensor(weights, factors)
        expected = float(np.sum(t.to_dense() * model.to_dense()))
        assert sparse_kruskal_innerprod(t, weights, factors) == pytest.approx(
            expected
        )

    def test_innerprod_from_mttkrp_identity(self):
        rng = np.random.default_rng(13)
        t = random_coo(rng, (4, 5, 3), 25)
        factors = random_factors(rng, t.shape, 2)
        weights = rng.random(2)
        M_last = dense_mttkrp(t.to_dense(), factors, 2)
        via_mttkrp = innerprod_from_mttkrp(M_last, factors[2], weights)
        direct = sparse_kruskal_innerprod(t, weights, factors)
        assert via_mttkrp == pytest.approx(direct)

    def test_empty_tensor(self):
        t = CooTensor.empty((2, 2))
        assert sparse_kruskal_innerprod(
            t, np.ones(1), [np.ones((2, 1)), np.ones((2, 1))]
        ) == 0.0

    def test_wrong_factor_count(self):
        t = CooTensor.empty((2, 2))
        with pytest.raises(ValueError):
            sparse_kruskal_innerprod(t, np.ones(1), [np.ones((2, 1))])
