"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import load_input, main
from repro.core.coo import CooTensor
from repro.io.frostt import write_tns
from repro.synth.lowrank import lowrank_tensor

from .helpers import random_coo


@pytest.fixture
def tns_file(tmp_path):
    t = random_coo(np.random.default_rng(0), (8, 9, 7), 60)
    path = tmp_path / "t.tns"
    write_tns(t, path)
    return str(path), t


class TestLoadInput:
    def test_tns(self, tns_file):
        path, t = tns_file
        assert load_input(path).allclose(t)

    def test_npz(self, tmp_path):
        from repro.io.cache import save_npz

        t = random_coo(np.random.default_rng(1), (5, 5), 10)
        path = tmp_path / "t.npz"
        save_npz(t, path)
        assert load_input(str(path)).allclose(t)

    def test_registry_name(self):
        t = load_input("nips", scale=0.01)
        assert t.ndim == 4

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("hi")
        with pytest.raises(ValueError, match="extension"):
            load_input(str(path))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="neither"):
            load_input("no-such-thing")


class TestCommands:
    def test_info(self, tns_file, capsys):
        path, _ = tns_file
        assert main(["info", path]) == 0
        out = capsys.readouterr().out
        assert "nnz" in out and "mode 2" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "delicious" in out and "analog" in out

    def test_plan(self, capsys):
        assert main(["plan", "nips", "--scale", "0.02", "--rank", "4",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "selected:" in out

    def test_decompose_writes_model(self, tmp_path, capsys):
        planted = lowrank_tensor((8, 7, 6), rank=2, nnz=8 * 7 * 6,
                                 random_state=2)
        src = tmp_path / "x.tns"
        write_tns(planted.tensor, src)
        out_path = tmp_path / "model.npz"
        assert main([
            "decompose", str(src), "--rank", "2", "--strategy", "bdt",
            "--iters", "25", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "fit" in out
        with np.load(out_path) as data:
            assert data["weights"].shape == (2,)
            assert data["factor_0"].shape == (8, 2)
            assert data["factor_2"].shape == (6, 2)

    def test_decompose_process_tier(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ALLOW_OVERSUBSCRIBE", "1")
        planted = lowrank_tensor((8, 7, 6), rank=2, nnz=8 * 7 * 6,
                                 random_state=2)
        src = tmp_path / "x.tns"
        write_tns(planted.tensor, src)
        import warnings

        for layout in ("numpy", "alto"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                assert main([
                    "decompose", str(src), "--rank", "2", "--strategy",
                    "bdt", "--iters", "5", "--tier", "process",
                    "--workers", "2", "--layout", layout,
                ]) == 0
            assert "fit" in capsys.readouterr().out

    def test_decompose_tier_auto_reports_pick(self, tmp_path, capsys):
        planted = lowrank_tensor((8, 7, 6), rank=2, nnz=8 * 7 * 6,
                                 random_state=2)
        src = tmp_path / "x.tns"
        write_tns(planted.tensor, src)
        assert main([
            "decompose", str(src), "--rank", "2", "--iters", "3",
            "--tier", "auto", "--layout", "auto", "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        # Tiny tensor at one worker: the model must keep it on threads.
        assert "model picked tier=thread" in out

    def test_decompose_nonneg(self, capsys):
        assert main([
            "decompose", "nips", "--scale", "0.01", "--rank", "2",
            "--iters", "5", "--nonneg",
        ]) == 0
        assert "nmu" in capsys.readouterr().out

    def test_complete_with_holdout(self, tmp_path, capsys):
        planted = lowrank_tensor((10, 9, 8), rank=2, nnz=500,
                                 random_state=3)
        src = tmp_path / "obs.tns"
        write_tns(planted.tensor, src)
        assert main([
            "complete", str(src), "--rank", "2", "--iters", "40",
            "--test-fraction", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "train RMSE" in out and "test RMSE" in out

    def test_error_exit_code(self, capsys):
        assert main(["info", "definitely-not-a-dataset"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_log_level(self, capsys):
        import logging

        assert main(["--log-level", "warning", "datasets"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING


class TestTraceCommands:
    @pytest.fixture(autouse=True)
    def clean_obs_state(self):
        from repro.obs import trace
        from repro.obs.metrics import registry

        yield
        trace.disable()
        trace.get_tracer().clear()
        registry.reset()

    def _trace_run(self, tmp_path, capsys):
        trace_dir = tmp_path / "tr"
        assert main([
            "trace", "--trace-dir", str(trace_dir),
            "decompose", "nips", "--scale", "0.01", "--rank", "2",
            "--iters", "2", "--strategy", "bdt",
        ]) == 0
        return trace_dir, capsys.readouterr().out

    def test_trace_writes_artifacts(self, tmp_path, capsys):
        import json

        from repro.obs.export import validate_chrome_trace

        trace_dir, out = self._trace_run(tmp_path, capsys)
        for name in ("trace.chrome.json", "trace.jsonl",
                     "trace_summary.txt", "metrics.json"):
            assert (trace_dir / name).exists(), name
        assert "traced" in out and "mttkrp" in out
        with open(trace_dir / "trace.chrome.json") as fh:
            assert validate_chrome_trace(json.load(fh)) == []
        with open(trace_dir / "metrics.json") as fh:
            snap = json.load(fh)
        assert snap["metrics"]["counters"]["flops"] > 0
        assert "als_iteration" in snap["metrics"]["spans"]

    def test_trace_restores_disabled_state(self, tmp_path, capsys):
        from repro.obs import trace

        assert not trace.enabled()
        self._trace_run(tmp_path, capsys)
        assert not trace.enabled()

    def test_report_renders_saved_trace(self, tmp_path, capsys):
        trace_dir, _ = self._trace_run(tmp_path, capsys)
        assert main(["report", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "spans from" in out
        assert "mttkrp" in out and "als_iteration" in out

    def test_trace_rejects_empty_and_nested(self, capsys):
        assert main(["trace"]) == 2
        assert "missing command" in capsys.readouterr().err
        assert main(["trace", "trace", "datasets"]) == 2
        assert "cannot trace" in capsys.readouterr().err

    def test_trace_writes_events(self, tmp_path, capsys):
        from repro.obs.events import read_events, validate_events

        trace_dir, _ = self._trace_run(tmp_path, capsys)
        events = read_events(str(trace_dir / "events.jsonl"))
        assert validate_events(events) == []
        assert {e["kind"] for e in events} >= {"run_start", "iteration",
                                              "run_stop"}

    def test_report_on_missing_trace_dir(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "no trace file" in err

    def test_trace_wrapping_failing_subcommand(self, tmp_path, capsys):
        assert main([
            "trace", "--trace-dir", str(tmp_path / "tr"),
            "decompose", str(tmp_path / "no-such.tns"), "--rank", "2",
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestServeAndTail:
    @pytest.fixture(autouse=True)
    def clean_obs_state(self):
        from repro.obs import events, trace
        from repro.obs.metrics import registry

        yield
        trace.disable()
        trace.get_tracer().clear()
        events.disable()
        events.get_log().close_sink()
        events.get_log().clear()
        registry.reset()

    @pytest.fixture
    def trace_dir(self, tmp_path, capsys):
        trace_dir = tmp_path / "tr"
        assert main([
            "trace", "--trace-dir", str(trace_dir),
            "decompose", "nips", "--scale", "0.01", "--rank", "2",
            "--iters", "2", "--strategy", "bdt",
        ]) == 0
        capsys.readouterr()
        return trace_dir

    def test_serve_rejects_nested(self, capsys):
        assert main(["serve", "serve"]) == 2
        assert "cannot wrap" in capsys.readouterr().err

    def test_serve_occupied_port(self, trace_dir, capsys):
        from repro.obs.serve import ObsServer

        with ObsServer(port=0) as server:
            assert main(["serve", "--port", str(server.port),
                         "--trace-dir", str(trace_dir)]) == 2
        assert "cannot bind" in capsys.readouterr().err

    def test_tail_missing_file(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_tail_renders_events(self, trace_dir, capsys):
        assert main(["tail", str(trace_dir), "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "run_stop" in out
