"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import load_input, main
from repro.core.coo import CooTensor
from repro.io.frostt import write_tns
from repro.synth.lowrank import lowrank_tensor

from .helpers import random_coo


@pytest.fixture
def tns_file(tmp_path):
    t = random_coo(np.random.default_rng(0), (8, 9, 7), 60)
    path = tmp_path / "t.tns"
    write_tns(t, path)
    return str(path), t


class TestLoadInput:
    def test_tns(self, tns_file):
        path, t = tns_file
        assert load_input(path).allclose(t)

    def test_npz(self, tmp_path):
        from repro.io.cache import save_npz

        t = random_coo(np.random.default_rng(1), (5, 5), 10)
        path = tmp_path / "t.npz"
        save_npz(t, path)
        assert load_input(str(path)).allclose(t)

    def test_registry_name(self):
        t = load_input("nips", scale=0.01)
        assert t.ndim == 4

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("hi")
        with pytest.raises(ValueError, match="extension"):
            load_input(str(path))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="neither"):
            load_input("no-such-thing")


class TestCommands:
    def test_info(self, tns_file, capsys):
        path, _ = tns_file
        assert main(["info", path]) == 0
        out = capsys.readouterr().out
        assert "nnz" in out and "mode 2" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "delicious" in out and "analog" in out

    def test_plan(self, capsys):
        assert main(["plan", "nips", "--scale", "0.02", "--rank", "4",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "selected:" in out

    def test_decompose_writes_model(self, tmp_path, capsys):
        planted = lowrank_tensor((8, 7, 6), rank=2, nnz=8 * 7 * 6,
                                 random_state=2)
        src = tmp_path / "x.tns"
        write_tns(planted.tensor, src)
        out_path = tmp_path / "model.npz"
        assert main([
            "decompose", str(src), "--rank", "2", "--strategy", "bdt",
            "--iters", "25", "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "fit" in out
        with np.load(out_path) as data:
            assert data["weights"].shape == (2,)
            assert data["factor_0"].shape == (8, 2)
            assert data["factor_2"].shape == (6, 2)

    def test_decompose_nonneg(self, capsys):
        assert main([
            "decompose", "nips", "--scale", "0.01", "--rank", "2",
            "--iters", "5", "--nonneg",
        ]) == 0
        assert "nmu" in capsys.readouterr().out

    def test_complete_with_holdout(self, tmp_path, capsys):
        planted = lowrank_tensor((10, 9, 8), rank=2, nnz=500,
                                 random_state=3)
        src = tmp_path / "obs.tns"
        write_tns(planted.tensor, src)
        assert main([
            "complete", str(src), "--rank", "2", "--iters", "40",
            "--test-fraction", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "train RMSE" in out and "test RMSE" in out

    def test_error_exit_code(self, capsys):
        assert main(["info", "definitely-not-a-dataset"]) == 2
        assert "error:" in capsys.readouterr().err
