"""Edge cases and failure-injection tests across modules.

Deliberately hostile inputs: degenerate shapes, huge key spaces (int64
overflow fallbacks), single-element tensors, zero columns, adversarial
strategies — the inputs that exercise every fallback branch.
"""

import numpy as np
import pytest

from repro.core import rowcodes
from repro.core import strategy as S
from repro.core.coo import CooTensor
from repro.core.cpals import cp_als
from repro.core.engine import MemoizedMttkrp
from repro.core.symbolic import SymbolicTree
from repro.model.planner import plan

from .helpers import dense_mttkrp, random_factors


class TestHugeKeySpaces:
    """Mode-size products beyond int64 force the lexicographic fallbacks."""

    HUGE = (2**40, 2**40, 2**40)

    def make(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 2**40, size=(40, 3)).astype(np.int64)
        idx = np.unique(idx, axis=0)
        return CooTensor(idx, rng.random(idx.shape[0]), self.HUGE,
                         canonical=False)

    def test_canonicalization(self):
        t = self.make()
        order = rowcodes.lexsort_rows(t.idx)
        assert np.array_equal(order, np.arange(t.nnz))

    def test_values_at_dict_fallback(self):
        t = self.make()
        got = t.values_at(t.idx[:5])
        np.testing.assert_allclose(got, t.vals[:5])
        miss = t.values_at(np.zeros((1, 3), dtype=np.int64))
        assert miss[0] == 0.0 or miss[0] == t.vals[0]

    def test_symbolic_tree_fallback_grouping(self):
        t = self.make()
        sym = SymbolicTree(t, S.balanced_binary(3))
        assert sym.nodes[sym.strategy.root_id].nnz == t.nnz

    def test_engine_correct_on_huge_dims(self):
        t = self.make()
        compact, _ = t.remove_empty_slices()
        factors = random_factors(np.random.default_rng(1), compact.shape, 2)
        eng = MemoizedMttkrp(compact, "bdt", factors)
        # Reference via the COO baseline (densification impossible here).
        from repro.baselines import coo_mttkrp

        for mode in range(3):
            np.testing.assert_allclose(
                eng.mttkrp(mode), coo_mttkrp(compact, factors, mode),
                rtol=1e-10, atol=1e-10,
            )

    def test_matricize_overflow_raises(self):
        t = self.make()
        with pytest.raises(OverflowError):
            t.matricize(0)


class TestDegenerateShapes:
    def test_all_size_one_modes(self):
        t = CooTensor([[0, 0, 0]], [5.0], (1, 1, 1))
        factors = [np.full((1, 2), 2.0) for _ in range(3)]
        eng = MemoizedMttkrp(t, "bdt", factors)
        np.testing.assert_allclose(eng.mttkrp(0), [[20.0, 20.0]])

    def test_single_nonzero_cp_als(self):
        t = CooTensor([[1, 2, 3]], [4.0], (3, 4, 5))
        result = cp_als(t, rank=1, strategy="star", n_iter_max=5,
                        random_state=0)
        assert result.fit > 0.999  # a single entry is exactly rank 1

    def test_one_long_one_short_mode(self):
        rng = np.random.default_rng(2)
        idx = np.column_stack([
            rng.integers(0, 1000, 50), rng.integers(0, 2, 50),
        ])
        t = CooTensor(idx, rng.random(50), (1000, 2))
        factors = random_factors(rng, t.shape, 3)
        eng = MemoizedMttkrp(t, "star", factors)
        np.testing.assert_allclose(
            eng.mttkrp(1), dense_mttkrp(t.to_dense(), factors, 1),
            rtol=1e-10, atol=1e-10,
        )

    def test_planner_on_tiny_tensor(self):
        t = CooTensor([[0, 0, 0], [1, 1, 1]], [1.0, 2.0], (2, 2, 2))
        report = plan(t, rank=2)
        assert report.best.feasible

    def test_explicit_zero_values_kept(self):
        # Explicit zeros are legitimate stored entries (pattern matters for
        # symbolic structures even if the value is zero).
        t = CooTensor([[0, 0], [1, 1]], [0.0, 1.0], (2, 2))
        assert t.nnz == 2
        eng = MemoizedMttkrp(t, "star",
                             random_factors(np.random.default_rng(3), (2, 2), 1))
        assert eng.mttkrp(0).shape == (2, 1)


class TestAdversarialStrategies:
    def test_maximum_fanout_tree(self):
        """A root with N leaf children and no internal structure (= star)."""
        rng = np.random.default_rng(4)
        order = 6
        t = CooTensor(
            rng.integers(0, 4, (30, order)), rng.random(30), (4,) * order
        )
        strategy = S.from_nested(tuple(range(order)))
        factors = random_factors(rng, t.shape, 2)
        eng = MemoizedMttkrp(t, strategy, factors)
        np.testing.assert_allclose(
            eng.mttkrp(3), dense_mttkrp(t.to_dense(), factors, 3),
            rtol=1e-9, atol=1e-9,
        )

    def test_mixed_fanout_tree(self):
        rng = np.random.default_rng(5)
        t = CooTensor(rng.integers(0, 4, (30, 5)), rng.random(30), (4,) * 5)
        strategy = S.from_nested((0, (1, 2, 3), 4))  # ternary root
        factors = random_factors(rng, t.shape, 2)
        eng = MemoizedMttkrp(t, strategy, factors)
        for mode in range(5):
            np.testing.assert_allclose(
                eng.mttkrp(mode), dense_mttkrp(t.to_dense(), factors, mode),
                rtol=1e-9, atol=1e-9,
            )

    def test_deep_caterpillar_order8(self):
        rng = np.random.default_rng(6)
        t = CooTensor(rng.integers(0, 3, (25, 8)), rng.random(25), (3,) * 8)
        strategy = S.chain(8, 6)
        assert strategy.depth() == 7
        factors = random_factors(rng, t.shape, 2)
        eng = MemoizedMttkrp(t, strategy, factors)
        np.testing.assert_allclose(
            eng.mttkrp(7), dense_mttkrp(t.to_dense(), factors, 7),
            rtol=1e-9, atol=1e-9,
        )


class TestNumericRobustness:
    def test_extreme_value_magnitudes(self):
        rng = np.random.default_rng(7)
        idx = np.unique(rng.integers(0, 6, (30, 3)), axis=0)
        vals = 10.0 ** rng.uniform(-150, 150, idx.shape[0])
        t = CooTensor(idx, vals, (6, 6, 6))
        factors = random_factors(rng, t.shape, 2)
        eng = MemoizedMttkrp(t, "bdt", factors)
        out = eng.mttkrp(0)
        assert np.isfinite(out).all()

    def test_cp_als_on_constant_tensor(self):
        # A constant (all-ones over its pattern) tensor is rank 1 when the
        # pattern is a full grid.
        dense = np.ones((4, 5, 3))
        t = CooTensor.from_dense(dense)
        result = cp_als(t, rank=1, strategy="bdt", n_iter_max=10,
                        random_state=8)
        assert result.fit > 0.9999

    def test_negative_values_supported(self):
        rng = np.random.default_rng(9)
        idx = np.unique(rng.integers(0, 5, (40, 3)), axis=0)
        t = CooTensor(idx, -np.abs(rng.random(idx.shape[0])), (5, 5, 5))
        result = cp_als(t, rank=3, strategy="auto", n_iter_max=10,
                        random_state=10)
        assert np.isfinite(result.fit)
