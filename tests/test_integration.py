"""End-to-end integration tests across subsystem boundaries.

These tie the whole pipeline together: every MTTKRP implementation in the
repository against every other on one tensor; file-roundtrip workflows
through the CLI surface; and full decompose-store-reload-predict loops.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.baselines import make_backend
from repro.core import strategy as S
from repro.core.coo import CooTensor
from repro.core.cpals import cp_als
from repro.core.engine import MemoizedMttkrp
from repro.formats.csf import CsfTensor
from repro.formats.hicoo import HicooTensor
from repro.io.frostt import read_tns, write_tns
from repro.io.model import load_model, save_model
from repro.parallel import ParallelMemoizedMttkrp, SliceParallelMttkrp
from repro.synth.lowrank import lowrank_tensor
from repro.synth.skewed import skewed_random_tensor

from .helpers import dense_mttkrp, random_coo, random_factors


class TestAllImplementationsAgree:
    """Every MTTKRP path in the repository, one tensor, one truth."""

    @pytest.fixture(scope="class")
    def setting(self):
        rng = np.random.default_rng(0)
        tensor = random_coo(rng, (7, 6, 5, 4), 90)
        factors = random_factors(rng, tensor.shape, 4)
        reference = [
            dense_mttkrp(tensor.to_dense(), factors, m) for m in range(4)
        ]
        return tensor, factors, reference

    def _check(self, outputs, reference):
        for out, ref in zip(outputs, reference):
            np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize(
        "name", ["coo", "ttv", "splatt", "splatt1", "memoized:star",
                 "memoized:bdt", "memoized:chain", "memoized:two_way"]
    )
    def test_registry_backends(self, setting, name):
        tensor, factors, reference = setting
        backend = make_backend(name, tensor)
        backend.set_factors(factors)
        self._check([backend.mttkrp(m) for m in range(4)], reference)

    def test_parallel_engines(self, setting):
        tensor, factors, reference = setting
        for backend in (
            ParallelMemoizedMttkrp(tensor, "bdt", factors, n_workers=3,
                                   min_chunk_rows=4),
            SliceParallelMttkrp(tensor, n_workers=3),
        ):
            if backend.__class__ is SliceParallelMttkrp:
                backend.set_factors(factors)
            self._check([backend.mttkrp(m) for m in range(4)], reference)
            backend.close()

    def test_hicoo_format(self, setting):
        tensor, factors, reference = setting
        h = HicooTensor(tensor, block_size=4)
        self._check([h.mttkrp(factors, m) for m in range(4)], reference)

    def test_csf1_all_levels(self, setting):
        tensor, factors, reference = setting
        csf = CsfTensor(tensor, (2, 0, 3, 1))
        for level in range(4):
            mode = csf.mode_order[level]
            np.testing.assert_allclose(
                csf.mttkrp_level(factors, level), reference[mode],
                rtol=1e-9, atol=1e-9,
            )

    @given(hst.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_property_csf1_matches_engine(self, seed):
        rng = np.random.default_rng(seed)
        order = int(rng.integers(3, 6))
        shape = tuple(int(d) for d in rng.integers(3, 7, size=order))
        tensor = random_coo(rng, shape, int(rng.integers(5, 50)))
        factors = random_factors(rng, shape, 2)
        perm = rng.permutation(order)
        csf = CsfTensor(tensor, tuple(int(p) for p in perm))
        engine = MemoizedMttkrp(tensor, "bdt", factors)
        for level in range(order):
            mode = csf.mode_order[level]
            np.testing.assert_allclose(
                csf.mttkrp_level(factors, level),
                engine.mttkrp(mode),
                rtol=1e-9, atol=1e-9,
            )


class TestFileWorkflows:
    def test_tns_roundtrip_preserves_decomposition(self, tmp_path):
        planted = lowrank_tensor((8, 7, 6), rank=2, nnz=8 * 7 * 6,
                                 random_state=1)
        path = tmp_path / "x.tns"
        write_tns(planted.tensor, path)
        reloaded = read_tns(path)
        a = cp_als(planted.tensor, 2, strategy="bdt", n_iter_max=5, tol=0.0,
                   random_state=2)
        b = cp_als(reloaded, 2, strategy="bdt", n_iter_max=5, tol=0.0,
                   random_state=2)
        np.testing.assert_allclose(a.fits, b.fits, rtol=1e-10)

    def test_decompose_save_reload_predict(self, tmp_path):
        planted = lowrank_tensor((9, 8, 7), rank=2, nnz=9 * 8 * 7,
                                 random_state=3)
        result = cp_als(planted.tensor, 2, strategy="auto", n_iter_max=40,
                        random_state=4)
        path = tmp_path / "model.npz"
        save_model(result.ktensor, path)
        model = load_model(path)
        coords = planted.tensor.idx[:10]
        np.testing.assert_allclose(
            model.values_at(coords), result.ktensor.values_at(coords),
            rtol=1e-12,
        )
        assert model.fit(planted.tensor) == pytest.approx(result.fit, abs=1e-8)


class TestPlannerEngineLoop:
    def test_auto_plan_runs_chosen_strategy(self):
        tensor = skewed_random_tensor((30, 30, 30, 30), 2000, 1.1,
                                      random_state=5)
        result = cp_als(tensor, 4, strategy="auto", n_iter_max=3, tol=0.0,
                        random_state=6)
        report = result.planner_report
        assert result.strategy_name == report.best.strategy.name
        # Every scored candidate must be runnable, not just the winner.
        for scored in report.scored[:4]:
            engine = MemoizedMttkrp(tensor, scored.strategy)
            engine.set_factors(
                random_factors(np.random.default_rng(7), tensor.shape, 4)
            )
            assert engine.mttkrp(0).shape == (30, 4)

    def test_memory_budget_respected_at_runtime(self):
        tensor = skewed_random_tensor((40, 40, 40, 40), 3000, 1.0,
                                      random_state=8)
        from repro.model.planner import plan

        report = plan(tensor, 8)
        budget = report.best.cost.total_memory_bytes
        engine = MemoizedMttkrp(tensor, report.best.strategy)
        engine.set_factors(
            random_factors(np.random.default_rng(9), tensor.shape, 8)
        )
        peak = 0
        for _ in range(2):
            for n in engine.mode_order:
                engine.mttkrp(n)
                peak = max(
                    peak,
                    engine.live_value_bytes() + engine.symbolic.index_nbytes(),
                )
                engine.update_factor(n, engine.factors[n])
        assert peak <= budget
