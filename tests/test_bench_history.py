"""Tests for the benchmark history store and the noise-aware comparator."""

import json

import pytest

from repro.obs.history import (BenchEntry, BenchHistory, compare,
                               format_diff_table, make_entry)


def entry(bench_id="b", value=1.0, run_id="r0", unit="seconds",
          knobs=None) -> BenchEntry:
    return BenchEntry(
        bench_id=bench_id, value=value, unit=unit, timestamp="t",
        git_rev="rev", run_id=run_id, knobs=knobs or {},
    )


def history_of(values, bench_id="b", knobs=None) -> list[BenchEntry]:
    """One entry per value, each its own run (r0, r1, ...)."""
    return [entry(bench_id, v, run_id=f"r{i}", knobs=knobs)
            for i, v in enumerate(values)]


class TestStore:
    def test_append_and_reload(self, tmp_path):
        h = BenchHistory(str(tmp_path / "nested" / "h.jsonl"))
        h.append(entry("a", 1.5))
        h.record("b", 2.5, note="x")
        assert len(h) == 2
        back = h.entries()
        assert back[0].bench_id == "a" and back[0].value == 1.5
        assert back[1].extra == {"note": "x"}
        assert h.bench_ids() == ["a", "b"]

    def test_append_only_preserves_order(self, tmp_path):
        h = BenchHistory(str(tmp_path / "h.jsonl"))
        for v in (3.0, 1.0, 2.0):
            h.append(entry("a", v))
        assert [e.value for e in h.entries()] == [3.0, 1.0, 2.0]

    def test_missing_file_is_empty(self, tmp_path):
        h = BenchHistory(str(tmp_path / "absent.jsonl"))
        assert h.entries() == [] and len(h) == 0

    def test_jsonl_round_trip(self, tmp_path):
        e = make_entry("bench.x", 0.123, unit="bytes", note="hello")
        h = BenchHistory(str(tmp_path / "h.jsonl"))
        h.append(e)
        (back,) = h.entries()
        assert back == e
        with open(h.path) as fh:
            doc = json.loads(fh.readline())
        assert doc["schema"] == "repro-bench-history/v1"
        assert doc["unit"] == "bytes"

    def test_make_entry_stamps_everything(self):
        e = make_entry("bench.x", 1.0)
        assert e.timestamp and e.git_rev and e.run_id
        assert "kernel_backend" in e.knobs


class TestCompare:
    def test_regression_flagged(self):
        base = history_of([1.00, 0.98, 1.02])
        cur = [entry(value=1.25, run_id="new")]  # +27% over min 0.98
        (r,) = compare(cur, base, rel_band=0.10)
        assert r.status == "regression" and not r.ok
        assert r.baseline == 0.98
        assert r.ratio == pytest.approx(1.25 / 0.98)

    def test_injected_ten_percent_slowdown_flagged(self):
        # the acceptance scenario: a 10% slowdown must trip a 5% band
        base = history_of([1.0, 1.0, 1.0])
        cur = [entry(value=1.10, run_id="new")]
        (r,) = compare(cur, base, rel_band=0.05)
        assert r.status == "regression"

    def test_clean_rerun_not_flagged(self):
        # normal timer jitter around the baseline stays inside the band
        base = history_of([1.00, 0.97, 1.03, 0.99])
        for v in (0.98, 1.01, 1.05):
            (r,) = compare([entry(value=v, run_id="new")], base,
                           rel_band=0.10)
            assert r.status == "ok" and r.ok

    def test_improvement(self):
        base = history_of([1.0, 1.0])
        (r,) = compare([entry(value=0.8, run_id="new")], base,
                       rel_band=0.10)
        assert r.status == "improvement" and r.ok

    def test_band_edges_are_ok(self):
        base = history_of([1.0])
        for v in (1.10, 0.90):  # exactly on the band boundary: inside
            (r,) = compare([entry(value=v, run_id="new")], base,
                           rel_band=0.10)
            assert r.status == "ok"

    def test_no_baseline_is_not_a_failure(self):
        (r,) = compare([entry("brand.new", 5.0, run_id="new")], [])
        assert r.status == "no-baseline" and r.ok
        assert r.baseline is None and r.ratio is None

    def test_min_of_current_samples(self):
        # run the bench twice, only the best counts
        base = history_of([1.0])
        cur = [entry(value=1.5, run_id="new"),
               entry(value=1.02, run_id="new")]
        (r,) = compare(cur, base, rel_band=0.10)
        assert r.current == 1.02 and r.status == "ok"

    def test_min_of_last_k_baseline(self):
        # an ancient fast outlier beyond the k-window must not count
        base = history_of([0.5] + [1.0] * 5)
        (r,) = compare([entry(value=1.05, run_id="new")], base, k=5)
        assert r.baseline == 1.0 and r.status == "ok"
        (r,) = compare([entry(value=1.05, run_id="new")], base, k=10)
        assert r.baseline == 0.5 and r.status == "regression"

    def test_current_run_excluded_from_baseline(self):
        # a pre-merged history containing the current run's own (slow)
        # lines must not let the run baseline itself
        base = history_of([1.0, 1.0]) + [entry(value=2.0, run_id="new")]
        (r,) = compare([entry(value=2.0, run_id="new")], base,
                       rel_band=0.10)
        assert r.baseline == 1.0 and r.status == "regression"

    def test_knob_signature_isolation(self):
        # a numba baseline never serves a numpy run
        base = history_of([0.1], knobs={"kernel_backend": "numba"})
        cur = [entry(value=1.0, run_id="new",
                     knobs={"kernel_backend": "numpy"})]
        (r,) = compare(cur, base)
        assert r.status == "no-baseline"
        cur2 = [entry(value=1.0, run_id="new",
                      knobs={"kernel_backend": "numba"})]
        (r2,) = compare(cur2, base)
        assert r2.status == "regression"

    def test_unit_mismatch_isolated(self):
        base = history_of([1000.0])
        cur = [entry(value=900.0, run_id="new", unit="bytes")]
        (r,) = compare(cur, base)
        assert r.status == "no-baseline"

    def test_multiple_benches_sorted(self):
        base = history_of([1.0], bench_id="z") + history_of([1.0],
                                                            bench_id="a")
        cur = [entry("z", 2.0, run_id="new"), entry("a", 1.0, run_id="new")]
        results = compare(cur, base)
        assert [r.bench_id for r in results] == ["a", "z"]
        assert [r.status for r in results] == ["ok", "regression"]

    def test_zero_baseline_guard(self):
        (r,) = compare([entry(value=1.0, run_id="new")],
                       history_of([0.0]))
        assert r.ratio == float("inf") and r.status == "regression"

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError, match="rel_band"):
            compare([], [], rel_band=-0.1)
        with pytest.raises(ValueError, match="k"):
            compare([], [], k=0)

    def test_diff_result_json(self):
        (r,) = compare([entry(value=1.0, run_id="new")], history_of([1.0]))
        json.dumps(r.to_dict())


class TestFormatting:
    def test_table_marks_regressions(self):
        base = history_of([1.0])
        results = compare([entry(value=2.0, run_id="new"),
                           entry("other", 1.0, run_id="new")], base)
        text = format_diff_table(results)
        assert "REGRESSION" in text
        assert "no-baseline" in text
        assert "1 regression(s)" in text

    def test_empty_results(self):
        assert "(no entries)" in format_diff_table([])


class TestCli:
    def _seed_history(self, path, values, bench_id="bench.t"):
        h = BenchHistory(str(path))
        for i, v in enumerate(values):
            h.append(entry(bench_id, v, run_id=f"r{i}"))
        return h

    def test_bench_diff_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        hist = tmp_path / "h.jsonl"
        self._seed_history(hist, [1.0, 1.0])
        # newest run inside the history is clean -> exit 0
        BenchHistory(str(hist)).append(
            entry("bench.t", 1.01, run_id="current")
        )
        assert main(["bench-diff", "--history", str(hist)]) == 0
        assert "ok" in capsys.readouterr().out
        # a separate current file with a big regression -> exit 1
        cur = tmp_path / "cur.jsonl"
        BenchHistory(str(cur)).append(
            entry("bench.t", 2.0, run_id="slow")
        )
        assert main(["bench-diff", str(cur), "--history", str(hist)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_diff_json_output(self, tmp_path, capsys):
        from repro.cli import main

        hist = tmp_path / "h.jsonl"
        self._seed_history(hist, [1.0, 1.05])
        rc = main(["bench-diff", "--history", str(hist), "--json"])
        docs = json.loads(capsys.readouterr().out)
        assert rc in (0, 1)
        assert docs[0]["bench_id"] == "bench.t"

    def test_bench_diff_missing_history(self, tmp_path):
        from repro.cli import main

        rc = main(["bench-diff", "--history",
                   str(tmp_path / "nope.jsonl")])
        assert rc == 2

    def test_dashboard_renders(self, tmp_path, capsys):
        from repro.cli import main

        hist = tmp_path / "h.jsonl"
        self._seed_history(hist, [1.0, 0.9, 1.1])
        out = tmp_path / "dash.html"
        rc = main(["dashboard", "--history", str(hist),
                   "--out", str(out)])
        assert rc == 0
        html = out.read_text()
        assert html.startswith("<!doctype html>")
        assert "bench.t" in html
        assert "<svg" in html  # sparkline rendered
        assert "repro dashboard" in html

    def test_dashboard_with_trace_dir(self, tmp_path):
        from repro.cli import main
        from repro.obs.dashboard import load_memory_json

        trace_dir = tmp_path / "tr"
        trace_dir.mkdir()
        readings = [{"iteration": i, "measured_peak_bytes": 100,
                     "predicted_peak_bytes": 100, "ratio": 1.0,
                     "live_bytes": 0, "workspace_bytes": 8,
                     "factor_bytes": 16} for i in range(3)]
        (trace_dir / "memory.json").write_text(
            json.dumps({"peak_bytes": 100, "readings": readings})
        )
        assert len(load_memory_json(str(trace_dir / "memory.json"))) == 3
        out = tmp_path / "dash.html"
        rc = main(["dashboard", "--history",
                   str(tmp_path / "absent.jsonl"),
                   "--trace-dir", str(trace_dir), "--out", str(out)])
        assert rc == 0
        html = out.read_text()
        assert "measured" in html and "predicted" in html
