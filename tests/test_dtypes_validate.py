"""Tests for the low-level substrate modules: dtypes and validate."""

import numpy as np
import pytest

from repro.core import dtypes
from repro.core import validate as V


class TestDtypes:
    def test_as_index_array_converts_dtype(self):
        out = dtypes.as_index_array([1, 2, 3])
        assert out.dtype == dtypes.INDEX_DTYPE
        assert out.flags.c_contiguous

    def test_as_index_array_no_copy_when_possible(self):
        src = np.arange(5, dtype=dtypes.INDEX_DTYPE)
        assert dtypes.as_index_array(src) is src

    def test_as_index_array_copy_forces_copy(self):
        src = np.arange(5, dtype=dtypes.INDEX_DTYPE)
        out = dtypes.as_index_array(src, copy=True)
        assert out is not src
        out[0] = 99
        assert src[0] == 0

    def test_as_value_array_from_list(self):
        out = dtypes.as_value_array([1, 2.5])
        assert out.dtype == dtypes.VALUE_DTYPE

    def test_as_value_array_fortran_made_contiguous(self):
        src = np.asfortranarray(np.ones((3, 2)))
        out = dtypes.as_value_array(src)
        assert out.flags.c_contiguous

    def test_itemsizes(self):
        assert dtypes.INDEX_ITEMSIZE == 8
        assert dtypes.VALUE_ITEMSIZE == 8


class TestValidate:
    def test_check_positive_int(self):
        assert V.check_positive_int(3, "x") == 3
        assert V.check_positive_int(np.int64(5), "x") == 5
        with pytest.raises(ValueError):
            V.check_positive_int(0, "x")
        with pytest.raises(TypeError):
            V.check_positive_int(1.5, "x")
        with pytest.raises(TypeError):
            V.check_positive_int(True, "x")  # bools are not counts

    def test_check_positive_int_minimum(self):
        assert V.check_positive_int(0, "x", minimum=0) == 0

    def test_check_shape(self):
        assert V.check_shape([2, 3]) == (2, 3)
        with pytest.raises(ValueError):
            V.check_shape([])
        with pytest.raises(ValueError):
            V.check_shape([2, 0])
        with pytest.raises(TypeError):
            V.check_shape(5)

    def test_check_mode_wrapping(self):
        assert V.check_mode(-1, 3) == 2
        assert V.check_mode(0, 3) == 0
        with pytest.raises(ValueError):
            V.check_mode(3, 3)
        with pytest.raises(TypeError):
            V.check_mode("0", 3)

    def test_check_indices_in_bounds(self):
        idx = np.array([[0, 1], [1, 0]], dtype=np.int64)
        V.check_indices_in_bounds(idx, (2, 2))  # no raise
        with pytest.raises(ValueError, match="out of bounds"):
            V.check_indices_in_bounds(idx, (2, 1))
        with pytest.raises(ValueError, match="2-D"):
            V.check_indices_in_bounds(idx.ravel(), (2, 2))
        with pytest.raises(ValueError, match="columns"):
            V.check_indices_in_bounds(idx, (2, 2, 2))

    def test_check_factor_matrices(self):
        factors = [np.ones((3, 2)), np.ones((4, 2))]
        assert V.check_factor_matrices(factors, (3, 4)) == 2
        with pytest.raises(ValueError, match="rank"):
            V.check_factor_matrices(factors, (3, 4), rank=3)
        with pytest.raises(ValueError, match="rows"):
            V.check_factor_matrices(factors, (3, 5))
        with pytest.raises(ValueError, match="inconsistent"):
            V.check_factor_matrices(
                [np.ones((3, 2)), np.ones((4, 3))], (3, 4)
            )
        with pytest.raises(ValueError, match="expected 2"):
            V.check_factor_matrices([np.ones((3, 2))], (3, 4))

    def test_check_random_state(self):
        g = V.check_random_state(None)
        assert isinstance(g, np.random.Generator)
        g2 = V.check_random_state(42)
        g3 = V.check_random_state(42)
        assert g2.random() == g3.random()
        assert V.check_random_state(g) is g
        with pytest.raises(TypeError):
            V.check_random_state("seed")
