"""Tests for the live-telemetry layer: events, serve, utilization."""

import json
import urllib.request

import numpy as np
import pytest

from repro.core.cpals import cp_als
from repro.obs import events as obs_events
from repro.obs import memory as obs_memory
from repro.obs import trace
from repro.obs.metrics import registry
from repro.obs.serve import (ObsServer, load_trace_dir, render_openmetrics,
                             validate_openmetrics)
from repro.obs.trace import SpanRecord
from repro.obs.utilization import (format_utilization,
                                   utilization_from_spans)
from repro.synth.lowrank import lowrank_tensor


@pytest.fixture(autouse=True)
def clean_telemetry_state():
    """Every test starts and ends with events/trace off and state empty."""
    def reset():
        trace.disable()
        trace.get_tracer().clear()
        obs_events.disable()
        obs_events.get_log().close_sink()
        obs_events.get_log().clear()
        obs_memory.disable()
        obs_memory.get_tracker().reset()
        registry.reset()

    reset()
    yield
    reset()


def emit_run(n_iters=3, seconds=0.5):
    """A canned run_start / iteration* / run_stop event sequence."""
    obs_events.enable()
    obs_events.emit("run_start", shape=[4, 4, 4], nnz=30, rank=2,
                    strategy="bdt", n_iter_max=10, tol=1e-5)
    for i in range(n_iters):
        obs_events.emit("iteration", iteration=i, fit=0.5 + 0.1 * i,
                        seconds=seconds)
    obs_events.emit("run_stop", n_iterations=n_iters, converged=False,
                    fit=0.5 + 0.1 * (n_iters - 1),
                    total_seconds=seconds * n_iters)


class TestEventLog:
    def test_disabled_emits_nothing(self):
        assert not obs_events.enabled()
        assert obs_events.emit("warning", message="x") is None
        assert len(obs_events.get_log()) == 0

    def test_envelope_stamped(self):
        obs_events.enable()
        event = obs_events.emit("warning", message="hello")
        assert event["schema"] == obs_events.EVENTS_SCHEMA
        assert event["kind"] == "warning"
        assert event["seq"] == 1
        assert isinstance(event["t"], float)

    def test_ring_drops_oldest(self):
        log = obs_events.EventLog(maxlen=3)
        for i in range(5):
            log.emit("warning", message=str(i))
        assert len(log) == 3
        assert log.n_dropped == 2
        assert [e["message"] for e in log.tail()] == ["2", "3", "4"]

    def test_sink_flushed_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs_events.enable(sink_path=str(path))
        obs_events.emit("warning", message="first")
        # Visible on disk before any close: the sink flushes per event.
        events = obs_events.read_events(str(path))
        assert len(events) == 1 and events[0]["message"] == "first"

    def test_write_jsonl_roundtrip(self, tmp_path):
        emit_run(n_iters=2)
        path = tmp_path / "dump.jsonl"
        n = obs_events.get_log().write_jsonl(str(path))
        events = obs_events.read_events(str(path))
        assert len(events) == n == 4
        assert obs_events.validate_events(events) == []

    def test_replay_restores_run_state(self, tmp_path):
        emit_run(n_iters=3)
        path = tmp_path / "dump.jsonl"
        obs_events.get_log().write_jsonl(str(path))
        events = obs_events.read_events(str(path))

        fresh = obs_events.EventLog()
        assert fresh.replay(events) == 5
        assert fresh.run.iteration == 2
        assert fresh.run.converged is False
        assert not fresh.run.active

    def test_logging_events_restores_disabled(self):
        assert not obs_events.enabled()
        with obs_events.logging_events() as log:
            assert obs_events.enabled()
            obs_events.emit("warning", message="inside")
            assert len(log) == 1
        assert not obs_events.enabled()

    def test_validate_catches_broken_events(self):
        errors = obs_events.validate_events([
            {"schema": "wrong", "kind": "warning", "t": 1.0, "seq": 1,
             "message": "x"},
            {"schema": obs_events.EVENTS_SCHEMA, "kind": "iteration",
             "t": 2.0, "seq": 1},
            "not-a-dict",
        ])
        assert any("schema" in e for e in errors)
        assert any("not increasing" in e for e in errors)
        assert any("missing" in e for e in errors)
        assert any("not an object" in e for e in errors)

    def test_format_event_one_line(self):
        line = obs_events.format_event(
            {"schema": obs_events.EVENTS_SCHEMA, "kind": "iteration",
             "t": 0.0, "seq": 1, "iteration": 2, "fit": 0.75}
        )
        assert "\n" not in line
        assert "iteration=2" in line and "fit=0.75" in line


class TestRunState:
    def test_fold_and_eta(self):
        emit_run(n_iters=4, seconds=0.5)
        run = obs_events.get_log().run
        assert run.rate_seconds_per_iteration() == pytest.approx(0.5)
        # run_stop deactivates the run, so the ETA is gone.
        assert run.eta_seconds() is None
        doc = run.to_dict()
        assert doc["iteration"] == 3
        assert doc["n_iter_max"] == 10
        assert doc["converged"] is False

    def test_eta_while_active(self):
        obs_events.enable()
        obs_events.emit("run_start", shape=[4], nnz=1, rank=1,
                        strategy="bdt", n_iter_max=10)
        obs_events.emit("iteration", iteration=0, fit=0.1, seconds=2.0)
        run = obs_events.get_log().run
        # 9 iterations left at 2 s each.
        assert run.eta_seconds() == pytest.approx(18.0)

    def test_cpals_emits_schema_valid_events(self):
        planted = lowrank_tensor((6, 5, 4), rank=2, nnz=80, random_state=0)
        with obs_events.logging_events() as log:
            result = cp_als(planted.tensor, rank=2, strategy="bdt",
                            n_iter_max=3, tol=0.0, random_state=1)
        events = log.tail()
        assert obs_events.validate_events(events) == []
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_stop"
        iterations = [e for e in events if e["kind"] == "iteration"]
        assert len(iterations) == len(result.fits)
        assert iterations[-1]["fit"] == pytest.approx(result.fits[-1])


class TestOpenMetrics:
    def test_render_validates(self):
        emit_run()
        registry.observe_span("mttkrp", 0.01)
        registry.observe_span("mttkrp", 0.5)
        registry.set_gauge("pool.imbalance", 1.25)
        text = render_openmetrics()
        assert validate_openmetrics(text) == []
        assert text.endswith("# EOF\n")
        assert "repro_pool_imbalance 1.25" in text
        assert "repro_run_fit" in text
        assert 'repro_span_duration_seconds_count{kind="mttkrp"} 2' in text

    def test_histogram_buckets_cumulative(self):
        registry.observe_span("kernel", 0.001)
        registry.observe_span("kernel", 0.002)
        text = render_openmetrics()
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_span_duration_seconds_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in lines[-1] and counts[-1] == 2

    def test_validator_catches_breakage(self):
        assert validate_openmetrics("repro_x 1\n") != []  # no TYPE, no EOF
        bad = "# TYPE repro_c counter\nrepro_c 1\n# EOF\n"
        assert any("_total" in e for e in validate_openmetrics(bad))


class TestObsServer:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()

    def test_scrape_endpoints(self):
        emit_run()
        registry.set_gauge("pool.imbalance", 1.1)
        with ObsServer(port=0) as server:
            status, body = self._get(server.url + "/metrics")
            assert status == 200
            assert validate_openmetrics(body) == []
            assert "repro_pool_imbalance" in body

            status, body = self._get(server.url + "/healthz")
            assert (status, body) == (200, "ok\n")

            status, body = self._get(server.url + "/runz")
            doc = json.loads(body)
            assert doc["run"]["iteration"] == 2
            assert doc["events"]["buffered"] == 5
            assert doc["last_events"][-1]["kind"] == "run_stop"

    def test_unknown_path_404(self):
        with ObsServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as exc:
                self._get(server.url + "/nope")
            assert exc.value.code == 404

    def test_occupied_port_raises(self):
        with ObsServer(port=0) as server:
            with pytest.raises(OSError):
                ObsServer(port=server.port)


class TestLoadTraceDir:
    def test_missing_artifacts_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no trace artifacts"):
            load_trace_dir(str(tmp_path))

    def test_replays_events_and_metrics(self, tmp_path):
        emit_run(n_iters=2)
        obs_events.get_log().write_jsonl(str(tmp_path / "events.jsonl"))
        with open(tmp_path / "metrics.json", "w") as fh:
            json.dump({"metrics": {"gauges": {"pool.imbalance": 1.5},
                                   "counters": {"flops": 123},
                                   "events": {"drift.warnings": 2}}}, fh)
        obs_events.get_log().clear()
        registry.reset()

        loaded = load_trace_dir(str(tmp_path))
        assert loaded["events"] == 4
        assert loaded["gauges"] == 1
        text = render_openmetrics()
        assert "repro_pool_imbalance 1.5" in text
        assert "repro_counter_flops_total 123" in text
        assert obs_events.get_log().run.iteration == 1


def task_span(id, parent, worker, t0, t1, wait=0.0):
    return SpanRecord(id=id, parent=parent, kind="pool_task", t0=t0, t1=t1,
                      tid=0, attrs={"index": 0, "worker": worker,
                                    "queue_wait": wait})


class TestUtilization:
    def test_no_pool_tasks_is_none(self):
        spans = [SpanRecord(1, None, "mttkrp", 0.0, 0, {}, t1=1.0)]
        assert utilization_from_spans(spans) is None

    def test_worker_and_fanout_math(self):
        # Iteration span 1 encloses fan-out parent 2 with two tasks:
        # worker 0 busy 1.0s, worker 1 busy 3.0s -> imbalance 2/1.33 = 1.5.
        it = SpanRecord(1, None, "als_iteration", 0.0, 0,
                        {"iteration": 0}, t1=4.0)
        par = SpanRecord(2, 1, "mttkrp", 0.0, 0, {}, t1=4.0)
        spans = [
            it, par,
            task_span(3, 2, worker=0, t0=0.0, t1=1.0),
            task_span(4, 2, worker=1, t0=0.0, t1=3.0, wait=0.25),
        ]
        report = utilization_from_spans(spans)
        assert report.n_tasks == 2
        assert report.window_seconds == pytest.approx(3.0)
        by_worker = {w.worker: w for w in report.workers}
        assert by_worker[0].busy_seconds == pytest.approx(1.0)
        assert by_worker[1].busy_fraction == pytest.approx(1.0)
        assert by_worker[1].queue_wait_max == pytest.approx(0.25)
        (fanout,) = report.fanouts
        assert fanout.iteration == 0
        assert fanout.imbalance == pytest.approx(3.0 / 2.0)
        (iteration,) = report.iterations
        assert iteration.wall_seconds == pytest.approx(4.0)
        assert iteration.imbalance == pytest.approx(1.5)
        assert report.mean_imbalance == pytest.approx(1.5)

    def test_format_renders_tables(self):
        it = SpanRecord(1, None, "als_iteration", 0.0, 0,
                        {"iteration": 0}, t1=2.0)
        spans = [it,
                 task_span(2, 1, worker=0, t0=0.0, t1=1.0),
                 task_span(3, 1, worker=1, t0=0.0, t1=1.0)]
        text = format_utilization(utilization_from_spans(spans))
        assert "pool utilization" in text
        assert "worker" in text and "imbalance" in text

    def test_live_engine_produces_report(self):
        from repro.parallel.engine import ParallelMemoizedMttkrp

        from .helpers import random_coo, random_factors

        rng = np.random.default_rng(0)
        t = random_coo(rng, (12, 11, 10, 9), 400)
        factors = random_factors(rng, t.shape, 3)
        with trace.tracing():
            with ParallelMemoizedMttkrp(t, "bdt", factors, n_workers=2,
                                        min_chunk_rows=1) as eng:
                eng.mttkrp(0)
        report = utilization_from_spans(trace.get_tracer().finished())
        assert report is not None
        assert report.n_tasks >= 2
        assert all(w.busy_fraction <= 1.0 + 1e-9 for w in report.workers)
        assert report.mean_imbalance >= 1.0


class TestDashboardUtilization:
    def test_worker_lanes_rendered(self):
        from repro.obs.dashboard import render_dashboard

        it = SpanRecord(1, None, "als_iteration", 0.0, 0,
                        {"iteration": 0}, t1=2.0)
        spans = [it,
                 task_span(2, 1, worker=0, t0=0.0, t1=1.0),
                 task_span(3, 1, worker=1, t0=0.5, t1=2.0)]
        report = utilization_from_spans(spans)
        tasks = [{"worker": s.attrs["worker"], "t0": s.t0, "t1": s.t1,
                  "queue_wait": s.attrs["queue_wait"], "parent": s.parent}
                 for s in spans if s.kind == "pool_task"]
        doc = render_dashboard(utilization=report, pool_tasks=tasks)
        assert "Worker utilization" in doc
        assert "worker 0" in doc and "worker 1" in doc
        assert "mean imbalance" in doc

    def test_section_absent_without_data(self):
        from repro.obs.dashboard import render_dashboard

        assert "Worker utilization" not in render_dashboard()
