"""Unit tests for repro.core.strategy (memoization trees)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import strategy as S


class TestFromNested:
    def test_star_spec(self):
        t = S.from_nested((0, 1, 2))
        assert t.n_modes == 3
        assert t.root.modes == (0, 1, 2)
        assert len([n for n in t.nodes if n.is_leaf]) == 3

    def test_nested_spec(self):
        t = S.from_nested(((0, 1), (2, 3)))
        assert t.n_modes == 4
        assert t.n_intermediates() == 2

    def test_roundtrip(self):
        spec = ((0, 1), (2, (3, 4)))
        assert S.from_nested(spec).to_nested() == spec

    def test_delta_computed(self):
        t = S.from_nested(((0, 1), 2))
        internal = next(
            n for n in t.nodes if not n.is_root and not n.is_leaf
        )
        assert internal.modes == (0, 1)
        assert internal.delta == (2,)

    def test_single_child_internal_rejected(self):
        with pytest.raises(ValueError):
            S.from_nested(((0,), 1))

    def test_duplicate_mode_rejected(self):
        with pytest.raises(ValueError):
            S.from_nested((0, 0))

    def test_missing_mode_rejected(self):
        # Root must carry 0..N-1; modes {0, 2} skip 1.
        with pytest.raises(ValueError):
            S.from_nested((0, 2))

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            S.from_nested((0, "x"))


class TestGenerators:
    def test_star_contractions(self):
        for n in range(2, 9):
            assert S.star(n).contractions_per_iteration() == n * (n - 1)

    def test_star_no_intermediates(self):
        assert S.star(5).n_intermediates() == 0

    def test_bdt_contraction_bound(self):
        # Theorem: at most N * ceil(log2 N) contractions per iteration.
        for n in range(2, 17):
            bdt = S.balanced_binary(n)
            bound = n * math.ceil(math.log2(n))
            assert bdt.contractions_per_iteration() <= max(bound, 2)

    def test_bdt_depth(self):
        assert S.balanced_binary(8).depth() == 3
        assert S.balanced_binary(5).depth() == 3

    def test_bdt_live_bound(self):
        # Theorem: at most ceil(log2 N) live value matrices.
        for n in range(2, 17):
            assert S.balanced_binary(n).max_live_nodes() <= math.ceil(
                math.log2(n)
            ) + 1

    def test_chain_zero_is_star(self):
        assert S.chain(5, 0) == S.star(5)

    def test_chain_full_depth(self):
        t = S.chain(5, 3)
        assert t.to_nested() == (0, (1, (2, (3, 4))))

    def test_chain_intermediate_counts(self):
        for m in range(0, 4):
            assert S.chain(6, m).n_intermediates() == m

    def test_chain_out_of_range(self):
        with pytest.raises(ValueError):
            S.chain(4, 3)
        with pytest.raises(ValueError):
            S.chain(4, -1)

    def test_two_way_default_split(self):
        t = S.two_way(4)
        assert t.to_nested() == ((0, 1), (2, 3))

    def test_two_way_single_mode_side(self):
        t = S.two_way(3, split=1)
        assert t.to_nested() == (0, (1, 2))

    def test_two_way_bad_split(self):
        with pytest.raises(ValueError):
            S.two_way(4, split=0)
        with pytest.raises(ValueError):
            S.two_way(4, split=4)

    def test_enumerate_binary_catalan_count(self):
        for n in range(2, 7):
            assert len(S.enumerate_binary(n)) == S.catalan(n - 1)

    def test_enumerate_binary_max_trees(self):
        assert len(S.enumerate_binary(6, max_trees=3)) == 3

    def test_enumerate_all_valid(self):
        for t in S.enumerate_binary(5):
            assert t.n_modes == 5
            assert t.contractions_per_iteration() > 0

    def test_minimum_modes(self):
        with pytest.raises(ValueError):
            S.star(1)


class TestStructureQueries:
    def test_mode_order_star_is_natural(self):
        assert S.star(4).mode_order == (0, 1, 2, 3)

    def test_mode_order_is_permutation(self):
        for t in S.enumerate_binary(5)[:10]:
            assert sorted(t.mode_order) == list(range(5))

    def test_leaf_id(self):
        t = S.balanced_binary(4)
        for mode in range(4):
            leaf = t.nodes[t.leaf_id(mode)]
            assert leaf.is_leaf
            assert leaf.modes == (mode,)

    def test_contracted_complement(self):
        t = S.balanced_binary(4)
        for node in t.nodes:
            assert t.contracted(node.id) == frozenset(range(4)) - set(node.modes)

    def test_path_to_root(self):
        t = S.balanced_binary(8)
        path = t.path_to_root(t.leaf_id(0))
        assert path[-1] == t.root_id
        assert len(path) == t.depth() + 1

    def test_invalidated_by_excludes_keepers(self):
        t = S.from_nested(((0, 1), (2, 3)))
        stale = {t.nodes[i].modes for i in t.invalidated_by(0)}
        # Node (0,1) keeps mode 0 sparse -> not invalidated.
        assert (0, 1) not in stale
        assert (2, 3) in stale
        assert (2,) in stale and (3,) in stale

    def test_topological_order_parent_first(self):
        t = S.balanced_binary(8)
        pos = {nid: i for i, nid in enumerate(t.topological_order())}
        for node in t.nodes:
            if node.parent is not None:
                assert pos[node.parent] < pos[node.id]

    def test_equality_and_hash(self):
        a = S.balanced_binary(4)
        b = S.from_nested(((0, 1), (2, 3)), name="renamed")
        assert a == b
        assert hash(a) == hash(b)
        assert a != S.star(4)


class TestDefaultCandidates:
    def test_contains_star_and_bdt(self):
        cands = S.default_candidates(5)
        sigs = {c.signature() for c in cands}
        assert S.star(5).signature() in sigs
        assert S.balanced_binary(5).signature() in sigs

    def test_no_duplicates(self):
        cands = S.default_candidates(6)
        sigs = [c.signature() for c in cands]
        assert len(sigs) == len(set(sigs))

    def test_exhaustive_limit_respected(self):
        small = S.default_candidates(4)
        big = S.default_candidates(4, exhaustive_limit=3)
        assert len(big) < len(small)

    @given(st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_all_candidates_valid(self, n):
        for c in S.default_candidates(n):
            assert c.n_modes == n
            assert sorted(c.mode_order) == list(range(n))


class TestResolveStrategy:
    def test_names(self):
        assert S.resolve_strategy("star", 4) == S.star(4)
        assert S.resolve_strategy("bdt", 4) == S.balanced_binary(4)
        assert S.resolve_strategy("balanced", 4) == S.balanced_binary(4)
        assert S.resolve_strategy("two_way", 4) == S.two_way(4)
        assert S.resolve_strategy("chain", 4) == S.chain(4, 2)

    def test_passthrough_checks_modes(self):
        with pytest.raises(ValueError):
            S.resolve_strategy(S.star(3), 4)

    def test_tuple_spec(self):
        assert S.resolve_strategy(((0, 1), (2, 3)), 4) == S.balanced_binary(4)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            S.resolve_strategy("nope", 4)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            S.resolve_strategy(3.14, 4)


def test_catalan_values():
    assert [S.catalan(n) for n in range(6)] == [1, 1, 2, 5, 14, 42]
