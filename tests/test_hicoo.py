"""Tests for the HiCOO blocked format (repro.formats.hicoo)."""

import numpy as np
import pytest

from repro.core.coo import CooTensor
from repro.formats.hicoo import HicooTensor

from .helpers import dense_mttkrp, random_coo, random_factors


class TestRoundTrip:
    def test_to_coo_exact(self):
        rng = np.random.default_rng(0)
        t = random_coo(rng, (300, 400, 250), 500)
        h = HicooTensor(t, block_size=128)
        back = h.to_coo()
        assert back.shape == t.shape
        np.testing.assert_array_equal(back.idx, t.idx)
        np.testing.assert_allclose(back.vals, t.vals)

    def test_empty(self):
        h = HicooTensor(CooTensor.empty((10, 10)), block_size=4)
        assert h.nnz == 0
        assert h.n_blocks == 0
        assert h.to_coo().nnz == 0

    @pytest.mark.parametrize("block_size", [2, 16, 128, 100_000])
    def test_various_block_sizes(self, block_size):
        rng = np.random.default_rng(1)
        t = random_coo(rng, (50, 60, 40), 200)
        h = HicooTensor(t, block_size=block_size)
        assert h.to_coo().allclose(t)

    def test_offsets_within_block(self):
        rng = np.random.default_rng(2)
        t = random_coo(rng, (100, 100), 100)
        h = HicooTensor(t, block_size=16)
        assert int(h.offsets.max()) < 16

    def test_offset_dtype_narrow(self):
        rng = np.random.default_rng(3)
        t = random_coo(rng, (1000, 1000), 100)
        assert HicooTensor(t, block_size=128).offsets.dtype == np.uint8
        assert HicooTensor(t, block_size=1024).offsets.dtype == np.uint16


class TestCompression:
    def test_clustered_tensor_compresses(self):
        # Nonzeros packed in a few blocks: index memory far below COO.
        rng = np.random.default_rng(4)
        base = rng.integers(0, 4, size=(800, 3)) * 128
        idx = base + rng.integers(0, 128, size=(800, 3))
        t = CooTensor(idx, rng.random(800), (512, 512, 512))
        h = HicooTensor(t, block_size=128)
        assert h.compression_vs_coo() > 2.0
        assert h.block_density() > 5.0

    def test_scattered_tensor_compresses_less(self):
        rng = np.random.default_rng(5)
        scattered = random_coo(rng, (100_000, 100_000, 100_000), 300)
        clustered_idx = rng.integers(0, 128, size=(300, 3))
        clustered = CooTensor(
            clustered_idx, rng.random(300), (100_000,) * 3
        )
        h_scattered = HicooTensor(scattered, block_size=128)
        h_clustered = HicooTensor(clustered, block_size=128)
        assert (
            h_clustered.compression_vs_coo()
            > h_scattered.compression_vs_coo()
        )

    def test_index_nbytes_consistent(self):
        rng = np.random.default_rng(6)
        t = random_coo(rng, (60, 60, 60), 150)
        h = HicooTensor(t)
        assert h.nbytes() == h.index_nbytes() + h.vals.nbytes


class TestMttkrp:
    def test_matches_dense(self):
        rng = np.random.default_rng(7)
        t = random_coo(rng, (40, 50, 30), 150)
        factors = random_factors(rng, t.shape, 3)
        h = HicooTensor(t, block_size=16)
        dense = t.to_dense()
        for mode in range(3):
            np.testing.assert_allclose(
                h.mttkrp(factors, mode),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-10, atol=1e-10,
            )

    def test_matches_dense_4d(self):
        rng = np.random.default_rng(8)
        t = random_coo(rng, (10, 12, 9, 11), 80)
        factors = random_factors(rng, t.shape, 2)
        h = HicooTensor(t, block_size=4)
        dense = t.to_dense()
        for mode in range(4):
            np.testing.assert_allclose(
                h.mttkrp(factors, mode),
                dense_mttkrp(dense, factors, mode),
                rtol=1e-10, atol=1e-10,
            )

    def test_empty_mttkrp(self):
        h = HicooTensor(CooTensor.empty((5, 6)), block_size=4)
        out = h.mttkrp([np.ones((5, 2)), np.ones((6, 2))], 0)
        np.testing.assert_array_equal(out, 0.0)
