"""Tests for tensor structural statistics (repro.core.stats)."""

import numpy as np
import pytest

from repro.core.coo import CooTensor
from repro.core.stats import (mode_skew, pairwise_overlap, summary,
                              used_slices)
from repro.synth.skewed import skewed_random_tensor
from repro.synth.random_tensor import uniform_random_tensor

from .helpers import random_coo


class TestModeSkew:
    def test_uniform_low_skew(self):
        t = uniform_random_tensor((50, 50, 50), 5000, random_state=0)
        assert mode_skew(t, 0) < 0.6

    def test_zipf_high_skew(self):
        t = skewed_random_tensor((200, 200, 200), 8000, 1.4, random_state=1)
        assert mode_skew(t, 0) > 0.6

    def test_skew_ordering(self):
        uni = uniform_random_tensor((100, 100), 2000, random_state=2)
        skw = skewed_random_tensor((100, 100), 2000, 1.5, random_state=2)
        assert mode_skew(skw, 0) > mode_skew(uni, 0)

    def test_degenerate_cases(self):
        assert mode_skew(CooTensor.empty((5, 5)), 0) == 0.0
        single = CooTensor([[2, 3]], [1.0], (5, 5))
        assert mode_skew(single, 0) == 0.0


class TestUsedSlices:
    def test_counts(self):
        t = CooTensor([[0, 0], [0, 1], [4, 0]], [1, 1, 1], (5, 2))
        assert used_slices(t, 0) == 2
        assert used_slices(t, 1) == 2


class TestPairwiseOverlap:
    def test_keys_cover_all_pairs(self):
        t = random_coo(np.random.default_rng(3), (4, 5, 6), 30)
        overlaps = pairwise_overlap(t)
        assert set(overlaps) == {(0, 1), (0, 2), (1, 2)}
        assert all(v >= 1.0 for v in overlaps.values())

    def test_repeated_pairs_increase_overlap(self):
        idx = np.array([[0, 0, k] for k in range(10)])
        t = CooTensor(idx, np.ones(10), (2, 2, 10))
        overlaps = pairwise_overlap(t)
        assert overlaps[(0, 1)] == pytest.approx(10.0)
        assert overlaps[(2, 1)] if False else overlaps[(1, 2)] == pytest.approx(1.0)


class TestSummary:
    def test_structure(self):
        t = random_coo(np.random.default_rng(4), (6, 7, 8), 50)
        s = summary(t)
        assert s["order"] == 3
        assert s["nnz"] == t.nnz
        assert len(s["modes"]) == 3
        assert s["max_pairwise_overlap"] >= 1.0
        assert s["modes"][1]["size"] == 7
